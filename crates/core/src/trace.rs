//! Replay a saved telemetry trace back into campaign results.
//!
//! `fisec <cmd> --trace-out run.jsonl` records one [`RunEvent`] per
//! injection run between a campaign header and trailer. This module
//! rebuilds [`CampaignResult`]s from that stream so `fisec stats` can
//! re-render the paper's tables (byte-identical to the live output for
//! a complete trace) plus the phase breakdown — without re-running a
//! single injection.

use crate::campaign::{CampaignResult, ClientCampaign, RunRecord};
use crate::counts::{LocationCounts, OutcomeCounts};
use crate::random::{render_report, RandomCampaignResult, RandomStats};
use crate::tables::render_table1;
use fisec_encoding::EncodingScheme;
use fisec_inject::{ErrorLocation, GoldenRun, OutcomeClass};
use fisec_net::{ClientStatus, Trace};
use fisec_os::Stop;
use fisec_telemetry::{
    metric, read_jsonl_path, render_phase_table, CampaignEndEvent, CampaignEvent, LogHistogram,
    OutcomeHists, PhaseTimes, ProfileEvent, PropagationEvent, RandomCampaignEvent, RandomEndEvent,
    RunEvent, SpanEvent, TraceEvent,
};
use std::path::Path;

/// One campaign reconstructed from a trace: its header, the rebuilt
/// result, the trailer (absent when the stream was truncated) and the
/// raw run events for custom analysis.
#[derive(Debug, Clone)]
pub struct ReplayedCampaign {
    /// Campaign header as recorded.
    pub header: CampaignEvent,
    /// Result rebuilt from the run events. The golden runs are stubs
    /// (only `golden_denied` survives a trace); every consumer of the
    /// tables reads tallies and records, not golden state.
    pub result: CampaignResult,
    /// Campaign trailer, when the stream contains one.
    pub end: Option<CampaignEndEvent>,
    /// Run events in emission order.
    pub run_events: Vec<RunEvent>,
    /// Hot-spot profile, when the campaign ran with `--profile`.
    pub profile: Option<ProfileEvent>,
    /// Propagation aggregate, when the campaign ran with
    /// `--propagation`.
    pub propagation: Option<PropagationEvent>,
}

/// One random campaign reconstructed from its ledger checkpoints.
#[derive(Debug, Clone)]
pub struct ReplayedRandom {
    /// Campaign header as recorded.
    pub header: RandomCampaignEvent,
    /// Aggregation state of the last committed checkpoint, in the same
    /// shape the live engine reports — [`render_report`] on it is
    /// byte-identical to the live output for a complete ledger.
    pub stats: RandomStats,
    /// Campaign trailer, when the ledger contains one (absent after a
    /// kill: the campaign is resumable).
    pub end: Option<RandomEndEvent>,
}

/// Everything a trace replays to: the targeted campaigns and the random
/// campaigns that shared the stream.
#[derive(Debug, Clone, Default)]
pub struct ReplayedTrace {
    /// Targeted (breakpoint) campaigns, in stream order.
    pub campaigns: Vec<ReplayedCampaign>,
    /// Random (latent-error) campaigns, in stream order.
    pub random: Vec<ReplayedRandom>,
    /// Span events in emission order (present when the trace was
    /// recorded with `--chrome-trace`); the Perfetto exporter's input.
    pub spans: Vec<SpanEvent>,
}

fn scheme_of(label: &str) -> Result<EncodingScheme, String> {
    [EncodingScheme::Baseline, EncodingScheme::NewEncoding]
        .into_iter()
        .find(|s| s.to_string() == label)
        .ok_or_else(|| format!("unknown scheme label `{label}`"))
}

fn outcome_of(abbrev: &str) -> Result<OutcomeClass, String> {
    OutcomeClass::ALL
        .into_iter()
        .find(|o| o.abbrev() == abbrev)
        .ok_or_else(|| format!("unknown outcome `{abbrev}`"))
}

fn outcome_char(o: OutcomeClass) -> char {
    match o {
        OutcomeClass::NotActivated => 'N',
        OutcomeClass::NotManifested => 'M',
        OutcomeClass::SystemDetection => 'S',
        OutcomeClass::FailSilenceViolation => 'F',
        OutcomeClass::Breakin => 'B',
    }
}

/// A placeholder golden run for replayed results: traces record only
/// whether the golden run denied the client, which is all the renderers
/// consult.
fn stub_golden(denied: bool) -> GoldenRun {
    GoldenRun {
        stop: Stop::Exited(0),
        client: if denied {
            ClientStatus::Denied
        } else {
            ClientStatus::Granted
        },
        trace: Trace::default(),
        icount: 0,
    }
}

fn stats_of(header: &RandomCampaignEvent) -> RandomStats {
    RandomStats {
        app: header.app.clone(),
        scheme: header.scheme.clone(),
        mode: header.mode.clone(),
        client: header.client.clone(),
        seed: header.seed,
        batch: header.batch as usize,
        target_ci: header.target_ci,
        result: RandomCampaignResult::default(),
        hists: OutcomeHists::default(),
    }
}

/// Group a parsed event stream into campaigns.
///
/// # Errors
/// A message when a run event appears outside a campaign, references a
/// client the header does not name, carries an unknown label, or when
/// random-campaign checkpoints are non-contiguous or contradict their
/// trailer.
pub fn parse_trace(events: &[TraceEvent]) -> Result<ReplayedTrace, String> {
    let mut campaigns: Vec<ReplayedCampaign> = Vec::new();
    let mut random: Vec<ReplayedRandom> = Vec::new();
    let mut spans: Vec<SpanEvent> = Vec::new();
    let mut open = false;
    let mut random_open = false;
    for (i, ev) in events.iter().enumerate() {
        let at = || format!("event {}", i + 1);
        match ev {
            TraceEvent::Campaign(hdr) => {
                if hdr.clients.len() != hdr.golden_denied.len() {
                    return Err(format!(
                        "{}: campaign header names {} clients but {} golden verdicts",
                        at(),
                        hdr.clients.len(),
                        hdr.golden_denied.len()
                    ));
                }
                let clients = hdr
                    .clients
                    .iter()
                    .zip(&hdr.golden_denied)
                    .map(|(name, &denied)| ClientCampaign {
                        client: name.clone(),
                        golden_denied: denied,
                        golden: stub_golden(denied),
                        counts: OutcomeCounts::default(),
                        brkfsv_by_location: LocationCounts::default(),
                        crash_latencies: Vec::new(),
                        trace_crash_latencies: Vec::new(),
                        transient_deviations: 0,
                        propagation: None,
                        records: Vec::new(),
                    })
                    .collect();
                campaigns.push(ReplayedCampaign {
                    header: hdr.clone(),
                    result: CampaignResult {
                        app: hdr.app.clone(),
                        scheme: scheme_of(&hdr.scheme).map_err(|e| format!("{}: {e}", at()))?,
                        instructions: hdr.instructions,
                        cond_branches: hdr.cond_branches,
                        runs_per_client: hdr.runs_per_client,
                        clients,
                    },
                    end: None,
                    run_events: Vec::new(),
                    profile: None,
                    propagation: None,
                });
                open = true;
            }
            TraceEvent::Run(run) => {
                if !open {
                    return Err(format!("{}: run event outside a campaign", at()));
                }
                let campaign = campaigns.last_mut().expect("open implies a campaign");
                let outcome = outcome_of(&run.outcome).map_err(|e| format!("{}: {e}", at()))?;
                let location = *ErrorLocation::ALL
                    .get(run.location as usize)
                    .ok_or_else(|| {
                        format!("{}: location index {} out of range", at(), run.location)
                    })?;
                let cc =
                    campaign.result.clients.get_mut(run.client).ok_or_else(|| {
                        format!("{}: client index {} out of range", at(), run.client)
                    })?;
                cc.counts.add(outcome);
                if matches!(
                    outcome,
                    OutcomeClass::Breakin | OutcomeClass::FailSilenceViolation
                ) {
                    cc.brkfsv_by_location.add(location);
                }
                if let Some(lat) = run.crash_latency {
                    cc.crash_latencies.push(lat);
                }
                if let Some(lat) = run.trace_latency {
                    cc.trace_crash_latencies.push(lat);
                }
                if run.transient_deviation {
                    cc.transient_deviations += 1;
                }
                cc.records.push(RunRecord {
                    addr: run.addr,
                    byte_index: run.byte_index,
                    bit: run.bit,
                    outcome_abbrev: outcome_char(outcome),
                    location_index: run.location,
                    crash_latency: run.crash_latency,
                    transient_deviation: run.transient_deviation,
                });
                campaign.run_events.push(run.clone());
            }
            TraceEvent::CampaignEnd(end) => {
                if !open {
                    return Err(format!("{}: campaign_end without a campaign", at()));
                }
                campaigns.last_mut().expect("open implies a campaign").end = Some(*end);
                open = false;
            }
            TraceEvent::RandomCampaign(hdr) => {
                random.push(ReplayedRandom {
                    header: hdr.clone(),
                    stats: stats_of(hdr),
                    end: None,
                });
                random_open = true;
            }
            TraceEvent::RandomBatch(b) => {
                if !random_open {
                    return Err(format!("{}: random_batch outside a random campaign", at()));
                }
                let r = random.last_mut().expect("random_open implies a campaign");
                let committed = r.stats.result.runs as u64;
                if b.start != committed || b.end <= b.start {
                    return Err(format!(
                        "{}: non-contiguous checkpoint: batch covers [{}, {}) but {} runs are committed",
                        at(),
                        b.start,
                        b.end,
                        committed
                    ));
                }
                let total = b.no_effect + b.sd + b.fsv + b.brk;
                if total != b.end {
                    return Err(format!(
                        "{}: checkpoint tallies sum to {total} but claim {} runs",
                        at(),
                        b.end
                    ));
                }
                r.stats.result = RandomCampaignResult {
                    runs: b.end as usize,
                    no_effect: b.no_effect as usize,
                    sd: b.sd as usize,
                    fsv: b.fsv as usize,
                    brk: b.brk as usize,
                };
                r.stats.hists = b.hists.clone();
            }
            TraceEvent::RandomEnd(end) => {
                if !random_open {
                    return Err(format!("{}: random_end without a random campaign", at()));
                }
                let r = random.last_mut().expect("random_open implies a campaign");
                let c = &r.stats.result;
                let committed = (
                    c.runs as u64,
                    c.no_effect as u64,
                    c.sd as u64,
                    c.fsv as u64,
                    c.brk as u64,
                );
                let claimed = (end.runs, end.no_effect, end.sd, end.fsv, end.brk);
                if committed != claimed {
                    return Err(format!(
                        "{}: trailer tallies {claimed:?} contradict the committed checkpoints {committed:?}",
                        at()
                    ));
                }
                r.end = Some(end.clone());
                random_open = false;
            }
            TraceEvent::Span(s) => spans.push(s.clone()),
            // Cache consult/store events annotate the stream; the
            // replayed tables are built from the run events alone.
            TraceEvent::Cache(_) => {}
            TraceEvent::Profile(p) => {
                if !open {
                    return Err(format!("{}: profile event outside a campaign", at()));
                }
                campaigns
                    .last_mut()
                    .expect("open implies a campaign")
                    .profile = Some((**p).clone());
            }
            TraceEvent::Propagation(p) => {
                if !open {
                    return Err(format!("{}: propagation event outside a campaign", at()));
                }
                campaigns
                    .last_mut()
                    .expect("open implies a campaign")
                    .propagation = Some(p.clone());
            }
        }
    }
    Ok(ReplayedTrace {
        campaigns,
        random,
        spans,
    })
}

/// Read and group a JSONL trace file.
///
/// # Errors
/// A message for unreadable files, malformed lines or an inconsistent
/// event stream.
pub fn read_trace(path: impl AsRef<Path>) -> Result<ReplayedTrace, String> {
    parse_trace(&read_jsonl_path(path)?)
}

fn is_complete(c: &ReplayedCampaign) -> bool {
    c.run_events.len() == c.result.runs_per_client * c.result.clients.len()
}

/// Render the summary for a replayed trace: the Table 1 layout per
/// consecutive same-scheme group of campaigns (byte-identical to the
/// live `fisec table1` output when the trace is complete), then a
/// per-campaign detail block with engine aggregates, the phase
/// breakdown and replay-cost histograms, then the random-campaign
/// report per ledger (byte-identical to the live `fisec random` report
/// for a complete ledger).
pub fn render_stats(trace: &ReplayedTrace) -> String {
    let campaigns = &trace.campaigns;
    let mut out = String::new();
    let mut i = 0;
    while i < campaigns.len() {
        let scheme = campaigns[i].result.scheme;
        let mut j = i;
        while j < campaigns.len() && campaigns[j].result.scheme == scheme {
            j += 1;
        }
        let refs: Vec<&CampaignResult> = campaigns[i..j].iter().map(|c| &c.result).collect();
        out.push_str(&render_table1(&refs));
        out.push('\n');
        i = j;
    }

    for c in campaigns {
        out.push_str(&format!(
            "== {} [{}] — {} engine ==\n",
            c.header.app, c.header.scheme, c.header.mode
        ));
        out.push_str(&format!(
            "{} instructions ({} conditional branches), {} runs x {} clients\n",
            c.header.instructions,
            c.header.cond_branches,
            c.header.runs_per_client,
            c.header.clients.len()
        ));
        if !is_complete(c) {
            out.push_str(&format!(
                "TRUNCATED trace: {} of {} run events present\n",
                c.run_events.len(),
                c.result.runs_per_client * c.result.clients.len()
            ));
        }
        if let Some(end) = c.end {
            out.push_str(&format!(
                "runs {}  na-prefilter {}  fresh boots {}  restores {}\n",
                end.runs, end.na_prefilter_runs, end.fresh_boots, end.restores
            ));
            // Cache-synthesized groups are *memoized* results folded
            // from the store — a different animal from the NA
            // pre-filter's *derived* groups, so they get their own
            // line. Omitted entirely for cache-off campaigns to keep
            // existing traces and golden fixtures byte-stable.
            if end.cache_hit_groups + end.cache_miss_groups + end.cache_stale_groups > 0 {
                out.push_str(&format!(
                    "cache: hit groups {} ({} memoized runs)  miss {}  stale {}\n",
                    end.cache_hit_groups,
                    end.cache_synth_runs,
                    end.cache_miss_groups,
                    end.cache_stale_groups
                ));
            }
            let phases = PhaseTimes {
                micros: [
                    end.boot_micros,
                    end.snapshot_micros,
                    end.replay_micros,
                    end.classify_micros,
                    end.reassemble_micros,
                ],
            };
            out.push_str(&render_phase_table(&phases, end.wall_micros));
        }
        // Propagation aggregate, for campaigns that ran the taint
        // tracer. Omitted entirely otherwise to keep existing traces
        // and golden fixtures byte-stable.
        if let Some(p) = &c.propagation {
            out.push_str(&format!(
                "propagation: seeded {}  reached decision {}  compare-first {}  \
                 deaths {}  frozen {}\n",
                p.seeded, p.reached_decision, p.compare_first, p.deaths, p.frozen
            ));
            if p.fsv_seeded > 0 {
                out.push_str(&format!(
                    "propagation FSV: {}/{} reached a tainted decision ({:.1}%), \
                     {} compare-before-store\n",
                    p.fsv_reached_decision,
                    p.fsv_seeded,
                    100.0 * p.fsv_reached_decision as f64 / p.fsv_seeded as f64,
                    p.fsv_compare_first
                ));
            }
        }
        // Rebuild per-run cost histograms from the executed events (the
        // pre-filter's and the cache's synthesized runs would skew them
        // toward zero).
        let mut micros = LogHistogram::default();
        let mut icount = LogHistogram::default();
        for run in c
            .run_events
            .iter()
            .filter(|r| !r.na_prefilter && !r.cache_hit)
        {
            micros.record(run.micros);
            icount.record(run.icount);
        }
        for (name, h) in [(metric::REPLAY_MICROS, &micros), (metric::ICOUNT, &icount)] {
            if h.count > 0 {
                let (p50, p95, p99) = h.percentiles();
                out.push_str(&format!(
                    "{name:<24} n={:<9} mean={:<11.1} p50={:<9.1} p95={:<9.1} p99={:<11.1} max={}\n",
                    h.count,
                    h.mean(),
                    p50,
                    p95,
                    p99,
                    h.max
                ));
            }
        }
        out.push('\n');
    }

    // Aggregate engine view across every campaign that carries a
    // trailer — the single phase table `--progress` prints live at the
    // end of a multi-campaign invocation (e.g. table5), so an offline
    // trace replays to the same bottom line.
    let ends: Vec<&CampaignEndEvent> = campaigns.iter().filter_map(|c| c.end.as_ref()).collect();
    if ends.len() > 1 {
        out.push_str(&format!(
            "== all {} campaigns — engine aggregate ==\n",
            ends.len()
        ));
        let sum = |f: fn(&CampaignEndEvent) -> u64| ends.iter().map(|e| f(e)).sum::<u64>();
        out.push_str(&format!(
            "runs {}  na-prefilter {}  fresh boots {}  restores {}\n",
            sum(|e| e.runs),
            sum(|e| e.na_prefilter_runs),
            sum(|e| e.fresh_boots),
            sum(|e| e.restores)
        ));
        if sum(|e| e.cache_hit_groups + e.cache_miss_groups + e.cache_stale_groups) > 0 {
            out.push_str(&format!(
                "cache: hit groups {} ({} memoized runs)  miss {}  stale {}\n",
                sum(|e| e.cache_hit_groups),
                sum(|e| e.cache_synth_runs),
                sum(|e| e.cache_miss_groups),
                sum(|e| e.cache_stale_groups)
            ));
        }
        let phases = PhaseTimes {
            micros: [
                sum(|e| e.boot_micros),
                sum(|e| e.snapshot_micros),
                sum(|e| e.replay_micros),
                sum(|e| e.classify_micros),
                sum(|e| e.reassemble_micros),
            ],
        };
        out.push_str(&render_phase_table(&phases, sum(|e| e.wall_micros)));
        out.push('\n');
    }

    for r in &trace.random {
        out.push_str(&render_report(&r.stats));
        match &r.end {
            Some(end) => {
                let secs = end.wall_micros as f64 / 1e6;
                let rate = if secs > 0.0 {
                    r.stats.result.runs as f64 / secs
                } else {
                    0.0
                };
                out.push_str(&format!("wall {secs:.1}s ({rate:.0} runs/s)\n"));
            }
            None => {
                out.push_str(&format!(
                    "RESUMABLE ledger: {} of {} runs committed, no trailer \
                     (fisec random --resume <ledger> continues it)\n",
                    r.stats.result.runs, r.header.runs
                ));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ev(client: usize, outcome: &str, bit: u8) -> TraceEvent {
        TraceEvent::Run(RunEvent {
            client,
            addr: 0x0804_8000,
            byte_index: 0,
            bit,
            outcome: outcome.to_string(),
            location: 0,
            worker: 0,
            snapshot_replay: true,
            na_prefilter: false,
            cache_hit: false,
            icount: 1000,
            micros: 10,
            crash_latency: if outcome == "SD" { Some(7) } else { None },
            transient_deviation: false,
            divergence_depth: None,
            trace_latency: if outcome == "SD" { Some(7) } else { None },
            taint_decision: None,
            taint_width: None,
            taint_compare_first: None,
        })
    }

    fn header(runs_per_client: usize) -> TraceEvent {
        TraceEvent::Campaign(CampaignEvent {
            app: "ftpd".to_string(),
            scheme: "baseline x86".to_string(),
            mode: "snapshot".to_string(),
            instructions: 1,
            cond_branches: 1,
            runs_per_client,
            clients: vec!["Client1".to_string()],
            golden_denied: vec![true],
        })
    }

    #[test]
    fn rebuilds_tallies_from_events() {
        let events = vec![
            header(3),
            run_ev(0, "NA", 0),
            run_ev(0, "SD", 1),
            run_ev(0, "BRK", 2),
            TraceEvent::CampaignEnd(CampaignEndEvent {
                runs: 3,
                ..CampaignEndEvent::default()
            }),
        ];
        let replay = parse_trace(&events).unwrap();
        assert_eq!(replay.campaigns.len(), 1);
        let c = &replay.campaigns[0];
        assert!(is_complete(c));
        assert_eq!(c.result.clients[0].counts.na, 1);
        assert_eq!(c.result.clients[0].counts.sd, 1);
        assert_eq!(c.result.clients[0].counts.brk, 1);
        assert_eq!(c.result.clients[0].crash_latencies, vec![7]);
        assert_eq!(c.result.clients[0].records.len(), 3);
        assert_eq!(c.end.unwrap().runs, 3);
        let s = render_stats(&replay);
        assert!(s.contains("FTPD Client1"), "{s}");
        assert!(s.contains("snapshot engine"), "{s}");
    }

    #[test]
    fn multi_campaign_trace_renders_the_progress_aggregate() {
        let end = |runs, boot| {
            TraceEvent::CampaignEnd(CampaignEndEvent {
                runs,
                boot_micros: boot,
                wall_micros: boot * 2,
                ..CampaignEndEvent::default()
            })
        };
        let events = vec![
            header(1),
            run_ev(0, "NA", 0),
            end(1, 100_000),
            header(1),
            run_ev(0, "SD", 1),
            end(1, 300_000),
        ];
        let s = render_stats(&parse_trace(&events).unwrap());
        assert!(
            s.contains("== all 2 campaigns — engine aggregate =="),
            "{s}"
        );
        // Counter and phase sums across the two trailers.
        assert!(s.contains("runs 2"), "{s}");
        assert!(
            s.lines()
                .any(|l| l.contains("boot") && l.contains("0.400s")),
            "{s}"
        );
        // A single-campaign trace keeps the per-campaign table only.
        let single = render_stats(&parse_trace(&events[..3]).unwrap());
        assert!(!single.contains("aggregate"), "{single}");
        // The replayed latencies carry the trace-derived cross-check
        // column along (run_ev gives SD runs trace_latency == 7).
        let replay = parse_trace(&events).unwrap();
        assert_eq!(
            replay.campaigns[1].result.clients[0].trace_crash_latencies,
            vec![7]
        );
    }

    #[test]
    fn rejects_orphan_and_malformed_events() {
        assert!(parse_trace(&[run_ev(0, "NA", 0)]).is_err());
        assert!(parse_trace(&[TraceEvent::CampaignEnd(CampaignEndEvent::default())]).is_err());
        assert!(parse_trace(&[header(1), run_ev(5, "NA", 0)]).is_err());
        assert!(parse_trace(&[header(1), run_ev(0, "XX", 0)]).is_err());
    }

    #[test]
    fn truncated_trace_is_flagged_not_fatal() {
        let replay = parse_trace(&[header(3), run_ev(0, "NA", 0)]).unwrap();
        assert!(!is_complete(&replay.campaigns[0]));
        assert!(replay.campaigns[0].end.is_none());
        let s = render_stats(&replay);
        assert!(s.contains("TRUNCATED"), "{s}");
    }

    fn random_header(runs: u64) -> TraceEvent {
        TraceEvent::RandomCampaign(RandomCampaignEvent {
            app: "ftpd".to_string(),
            scheme: "baseline x86".to_string(),
            mode: "snapshot".to_string(),
            client: "Client1".to_string(),
            seed: 7,
            runs,
            batch: 2,
            text_len: 512,
            target_ci: None,
        })
    }

    fn random_batch(start: u64, end: u64, sd: u64, brk: u64) -> TraceEvent {
        TraceEvent::RandomBatch(Box::new(fisec_telemetry::RandomBatchEvent {
            start,
            end,
            no_effect: end - sd - brk,
            sd,
            fsv: 0,
            brk,
            hists: OutcomeHists::default(),
        }))
    }

    #[test]
    fn random_ledger_replays_to_the_campaign_report() {
        let end = TraceEvent::RandomEnd(RandomEndEvent {
            runs: 4,
            no_effect: 2,
            sd: 1,
            fsv: 0,
            brk: 1,
            wall_micros: 2_000_000,
            violation_rate: 0.25,
            wilson_low: 0.0,
            wilson_high: 0.7,
            cp_low: 0.0,
            cp_high: 0.8,
        });
        let events = vec![
            random_header(4),
            random_batch(0, 2, 1, 0),
            random_batch(2, 4, 1, 1),
            end,
        ];
        let replay = parse_trace(&events).unwrap();
        assert!(replay.campaigns.is_empty());
        assert_eq!(replay.random.len(), 1);
        let r = &replay.random[0];
        assert_eq!(r.stats.result.runs, 4);
        assert_eq!(r.stats.result.brk, 1);
        assert!(r.end.is_some());
        let s = render_stats(&replay);
        assert!(s.contains("== random injection: ftpd"), "{s}");
        assert!(s.contains("Wilson 95%"), "{s}");
        assert!(s.contains("wall 2.0s (2 runs/s)"), "{s}");
        assert!(!s.contains("RESUMABLE"), "{s}");
    }

    #[test]
    fn truncated_random_ledger_is_resumable_not_fatal() {
        let replay = parse_trace(&[random_header(10), random_batch(0, 2, 0, 0)]).unwrap();
        let r = &replay.random[0];
        assert!(r.end.is_none());
        assert_eq!(r.stats.result.runs, 2);
        let s = render_stats(&replay);
        assert!(s.contains("RESUMABLE ledger: 2 of 10 runs"), "{s}");
    }

    #[test]
    fn random_ledger_integrity_is_validated() {
        // Checkpoint before any header.
        assert!(parse_trace(&[random_batch(0, 2, 0, 0)]).is_err());
        // Trailer before any header.
        let end = TraceEvent::RandomEnd(RandomEndEvent {
            runs: 2,
            no_effect: 2,
            sd: 0,
            fsv: 0,
            brk: 0,
            wall_micros: 0,
            violation_rate: 0.0,
            wilson_low: 0.0,
            wilson_high: 0.0,
            cp_low: 0.0,
            cp_high: 0.0,
        });
        assert!(parse_trace(std::slice::from_ref(&end)).is_err());
        // A gap in the checkpoint stream.
        let e = parse_trace(&[random_header(10), random_batch(2, 4, 0, 0)]).unwrap_err();
        assert!(e.contains("non-contiguous"), "{e}");
        // Tallies that do not sum to the claimed run count.
        let bad = TraceEvent::RandomBatch(Box::new(fisec_telemetry::RandomBatchEvent {
            start: 0,
            end: 5,
            no_effect: 1,
            sd: 0,
            fsv: 0,
            brk: 0,
            hists: OutcomeHists::default(),
        }));
        let e = parse_trace(&[random_header(10), bad]).unwrap_err();
        assert!(e.contains("sum to 1"), "{e}");
        // A trailer contradicting the committed checkpoints.
        let e = parse_trace(&[random_header(10), random_batch(0, 4, 0, 0), end]).unwrap_err();
        assert!(e.contains("contradict"), "{e}");
    }
}
