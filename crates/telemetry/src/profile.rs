//! Phase profiler: attributes campaign wall-clock to the engine's five
//! phases and renders the breakdown table that every perf PR starts
//! from.
//!
//! Workers accumulate per-phase microseconds into their own
//! [`PhaseTimes`] (inside a [`crate::MetricsShard`]); the shards merge
//! at join. Because workers overlap, *attributed* time is CPU time and
//! can exceed wall-clock — [`render_phase_table`] prints both.

use serde::{Deserialize, Serialize};

/// Where campaign wall-clock goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Booting a process from `_start` to the breakpoint (or to its
    /// natural stop): golden runs, group boots, from-scratch prefixes.
    Boot,
    /// Capturing process checkpoints.
    Snapshot,
    /// Executing the post-flip suffix of an injection run.
    Replay,
    /// Classifying a finished run against the golden run.
    Classify,
    /// Tallying outcomes and reassembling results in target order.
    Reassemble,
}

impl Phase {
    /// All phases, in rendering order.
    pub const ALL: [Phase; 5] = [
        Phase::Boot,
        Phase::Snapshot,
        Phase::Replay,
        Phase::Classify,
        Phase::Reassemble,
    ];

    /// Lower-case label used in tables and events.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Boot => "boot",
            Phase::Snapshot => "snapshot",
            Phase::Replay => "replay",
            Phase::Classify => "classify",
            Phase::Reassemble => "reassemble",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Microseconds attributed to each phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTimes {
    /// Per-phase totals, indexed in [`Phase::ALL`] order.
    pub micros: [u64; 5],
}

impl PhaseTimes {
    /// Attribute `micros` to `phase`.
    pub fn add(&mut self, phase: Phase, micros: u64) {
        self.micros[phase.index()] += micros;
    }

    /// Microseconds attributed to `phase`.
    pub fn get(&self, phase: Phase) -> u64 {
        self.micros[phase.index()]
    }

    /// Total attributed microseconds.
    pub fn total(&self) -> u64 {
        self.micros.iter().sum()
    }

    /// Fold another accumulation into this one (shard merge).
    pub fn merge(&mut self, other: &PhaseTimes) {
        for (a, b) in self.micros.iter_mut().zip(&other.micros) {
            *a += b;
        }
    }
}

fn secs(micros: u64) -> f64 {
    micros as f64 / 1e6
}

/// Render the phase breakdown. `wall_micros` is the campaign's
/// wall-clock; attributed time is summed across workers, so the two are
/// reported side by side rather than forced to add up.
pub fn render_phase_table(p: &PhaseTimes, wall_micros: u64) -> String {
    let total = p.total().max(1);
    let mut out = String::from("phase         time      share\n");
    for ph in Phase::ALL {
        let us = p.get(ph);
        out.push_str(&format!(
            "{:<11} {:>8.3}s  {:>6.1}%\n",
            ph.name(),
            secs(us),
            us as f64 * 100.0 / total as f64
        ));
    }
    out.push_str(&format!(
        "attributed  {:>8.3}s   (wall {:.3}s; workers overlap, so attributed time can exceed wall-clock)\n",
        secs(p.total()),
        secs(wall_micros)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_and_merge() {
        let mut a = PhaseTimes::default();
        a.add(Phase::Boot, 100);
        a.add(Phase::Replay, 300);
        let mut b = PhaseTimes::default();
        b.add(Phase::Replay, 200);
        b.add(Phase::Classify, 50);
        a.merge(&b);
        assert_eq!(a.get(Phase::Boot), 100);
        assert_eq!(a.get(Phase::Replay), 500);
        assert_eq!(a.get(Phase::Classify), 50);
        assert_eq!(a.total(), 650);
    }

    #[test]
    fn render_lists_every_phase() {
        let mut p = PhaseTimes::default();
        p.add(Phase::Replay, 750_000);
        p.add(Phase::Boot, 250_000);
        let s = render_phase_table(&p, 600_000);
        for ph in Phase::ALL {
            assert!(s.contains(ph.name()), "missing {}", ph.name());
        }
        assert!(s.contains("75.0%"), "{s}");
        assert!(s.contains("wall 0.600s"), "{s}");
    }

    #[test]
    fn render_survives_empty_profile() {
        let s = render_phase_table(&PhaseTimes::default(), 0);
        assert!(s.contains("attributed"));
    }
}
