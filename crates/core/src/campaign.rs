//! Selective exhaustive injection campaigns (paper §4/§5).

use crate::counts::{LocationCounts, OutcomeCounts};
use fisec_apps::AppSpec;
use fisec_encoding::EncodingScheme;
use fisec_inject::{
    enumerate_targets, golden_run, golden_run_with_coverage, run_injection, run_injection_group,
    GoldenRun, InjectionRun, InjectionTarget, OutcomeClass,
};
use fisec_os::Stop;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How the engine executes the per-target experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Checkpoint-based: boot each (client, instruction-address) pair to
    /// the breakpoint once, snapshot, and replay only the post-flip
    /// suffix for every byte×bit of that instruction. Targets at
    /// addresses the golden run never executes are classified NA from
    /// the golden coverage set without spawning a run. Produces results
    /// bit-identical to [`ExecutionMode::FromScratch`] (enforced by the
    /// differential tests) at a fraction of the wall-clock.
    #[default]
    Snapshot,
    /// Reference oracle: every experiment boots the server from scratch,
    /// exactly the paper's §4 procedure.
    FromScratch,
}

/// Campaign configuration.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Restrict to conditional branches only (`true` drops the MISC
    /// control-transfer instructions from the target set).
    pub cond_branches_only: bool,
    /// Encoding under test.
    pub scheme: EncodingScheme,
    /// Worker threads (1 = sequential).
    pub threads: usize,
    /// Checkpoint-based fast path (default) or from-scratch oracle.
    pub mode: ExecutionMode,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            cond_branches_only: false,
            scheme: EncodingScheme::Baseline,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            mode: ExecutionMode::default(),
        }
    }
}

/// One injection run's record (kept for breakdowns and Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Target instruction address.
    pub addr: u32,
    /// Byte within the instruction.
    pub byte_index: u8,
    /// Bit within the byte.
    pub bit: u8,
    /// Classified outcome.
    pub outcome_abbrev: char,
    /// Location class abbreviation index (Table 2 order).
    pub location_index: u8,
    /// Crash latency in instructions, when the run crashed.
    pub crash_latency: Option<u64>,
    /// Crash runs whose pre-crash traffic deviated from golden.
    pub transient_deviation: bool,
}

/// Per-client campaign result (one column of Tables 1/3/5).
#[derive(Debug, Clone)]
pub struct ClientCampaign {
    /// Client name ("Client1"...).
    pub client: String,
    /// Whether the golden run denies this client.
    pub golden_denied: bool,
    /// Golden run.
    pub golden: GoldenRun,
    /// Outcome tallies.
    pub counts: OutcomeCounts,
    /// Location tallies over the BRK∪FSV runs (Table 3).
    pub brkfsv_by_location: LocationCounts,
    /// Crash latencies (instructions between activation and crash).
    pub crash_latencies: Vec<u64>,
    /// Crash runs with pre-crash traffic deviation (transient window).
    pub transient_deviations: usize,
    /// Full per-run records.
    pub records: Vec<RunRecord>,
}

/// Campaign result for one application under one encoding.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Application name ("ftpd"/"sshd").
    pub app: String,
    /// Encoding under test.
    pub scheme: EncodingScheme,
    /// Number of targeted instructions.
    pub instructions: usize,
    /// Conditional branches among them.
    pub cond_branches: usize,
    /// Runs per client (= target bits).
    pub runs_per_client: usize,
    /// Per-client results in paper order.
    pub clients: Vec<ClientCampaign>,
}

impl CampaignResult {
    /// Sum of BRK over all clients.
    pub fn total_brk(&self) -> usize {
        self.clients.iter().map(|c| c.counts.brk).sum()
    }

    /// Sum of FSV over all clients.
    pub fn total_fsv(&self) -> usize {
        self.clients.iter().map(|c| c.counts.fsv).sum()
    }
}

/// Run the full selective-exhaustive campaign for `app`.
///
/// # Panics
/// Panics if the image cannot be loaded (a programming error: the same
/// image already ran its golden sessions).
pub fn run_campaign(app: &AppSpec, cfg: &CampaignConfig) -> CampaignResult {
    let set = enumerate_targets(&app.image, &app.auth_funcs, cfg.cond_branches_only);
    let mut clients = Vec::with_capacity(app.clients.len());
    for spec in &app.clients {
        let golden = golden_run(&app.image, spec).expect("image loads");
        let records = run_targets(app, spec, &golden, &set.targets, cfg);
        let mut cc = ClientCampaign {
            client: spec.name.clone(),
            golden_denied: spec.golden_denied,
            golden,
            counts: OutcomeCounts::default(),
            brkfsv_by_location: LocationCounts::default(),
            crash_latencies: Vec::new(),
            transient_deviations: 0,
            records: Vec::new(),
        };
        for (target, run) in set.targets.iter().zip(&records) {
            cc.counts.add(run.outcome);
            if matches!(
                run.outcome,
                OutcomeClass::Breakin | OutcomeClass::FailSilenceViolation
            ) {
                cc.brkfsv_by_location.add(target.location);
            }
            if let Some(lat) = run.crash_latency {
                cc.crash_latencies.push(lat);
            }
            if run.transient_deviation {
                cc.transient_deviations += 1;
            }
            cc.records.push(RunRecord {
                addr: target.addr,
                byte_index: target.byte_index,
                bit: target.bit,
                outcome_abbrev: match run.outcome {
                    OutcomeClass::NotActivated => 'N',
                    OutcomeClass::NotManifested => 'M',
                    OutcomeClass::SystemDetection => 'S',
                    OutcomeClass::FailSilenceViolation => 'F',
                    OutcomeClass::Breakin => 'B',
                },
                location_index: fisec_inject::ErrorLocation::ALL
                    .iter()
                    .position(|l| *l == target.location)
                    .expect("every ErrorLocation variant appears in ErrorLocation::ALL")
                    as u8,
                crash_latency: run.crash_latency,
                transient_deviation: run.transient_deviation,
            });
        }
        clients.push(cc);
    }
    CampaignResult {
        app: app.name.to_string(),
        scheme: cfg.scheme,
        instructions: set.instructions,
        cond_branches: set.cond_branches,
        runs_per_client: set.targets.len(),
        clients,
    }
}

/// Execute all targets for one client, dispatching on the configured
/// [`ExecutionMode`], optionally sharded over threads. Results are in
/// target order regardless of mode or thread count.
fn run_targets(
    app: &AppSpec,
    spec: &fisec_apps::ClientSpec,
    golden: &GoldenRun,
    targets: &[InjectionTarget],
    cfg: &CampaignConfig,
) -> Vec<InjectionRun> {
    match cfg.mode {
        ExecutionMode::FromScratch => run_targets_from_scratch(app, spec, golden, targets, cfg),
        ExecutionMode::Snapshot => run_targets_snapshot(app, spec, golden, targets, cfg),
    }
}

/// The reference oracle: one full boot per experiment (paper §4).
fn run_targets_from_scratch(
    app: &AppSpec,
    spec: &fisec_apps::ClientSpec,
    golden: &GoldenRun,
    targets: &[InjectionTarget],
    cfg: &CampaignConfig,
) -> Vec<InjectionRun> {
    let threads = cfg.threads.max(1);
    if threads == 1 || targets.len() < 64 {
        return targets
            .iter()
            .map(|t| run_injection(&app.image, spec, golden, t, cfg.scheme).expect("image loads"))
            .collect();
    }
    let chunk = targets.len().div_ceil(threads);
    let mut out: Vec<Vec<InjectionRun>> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for shard in targets.chunks(chunk) {
            handles.push(s.spawn(move || {
                shard
                    .iter()
                    .map(|t| {
                        run_injection(&app.image, spec, golden, t, cfg.scheme).expect("image loads")
                    })
                    .collect::<Vec<_>>()
            }));
        }
        for h in handles {
            out.push(h.join().expect("worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// The checkpointed fast path.
///
/// Targets are grouped by instruction address (enumeration emits them
/// address-major, so groups are contiguous slices). Groups at addresses
/// the golden run never executes are synthesized as NA wholesale — the
/// injected run's pre-activation execution is identical to golden, so
/// its breakpoint can never be hit and it must stop exactly as golden
/// did. The remaining groups each boot once to the breakpoint and
/// replay per-bit suffixes from a snapshot; a shared work queue feeds
/// groups to the worker threads (groups vary wildly in cost, so static
/// chunking would straggle).
fn run_targets_snapshot(
    app: &AppSpec,
    spec: &fisec_apps::ClientSpec,
    golden: &GoldenRun,
    targets: &[InjectionTarget],
    cfg: &CampaignConfig,
) -> Vec<InjectionRun> {
    // Contiguous same-address slices, with each group's offset into
    // `targets` so results can be reassembled in target order.
    let mut groups: Vec<(usize, &[InjectionTarget])> = Vec::new();
    let mut start = 0;
    for i in 1..=targets.len() {
        if i == targets.len() || targets[i].addr != targets[start].addr {
            groups.push((start, &targets[start..i]));
            start = i;
        }
    }

    // The NA pre-filter is sound only when the golden run's stop proves
    // the replayed prefix cannot reach the breakpoint: an Exited or
    // Deadlock golden run stops at the same point under the (larger)
    // injection budget, while a Budget golden would keep running and a
    // fetch-faulted golden stops *before* its final address enters the
    // coverage set. Outside the safe cases every group runs for real.
    let coverage = if matches!(golden.stop, Stop::Exited(_) | Stop::Deadlock) {
        let (gold2, cov) = golden_run_with_coverage(&app.image, spec).expect("image loads");
        debug_assert_eq!(gold2.icount, golden.icount);
        Some(cov)
    } else {
        None
    };
    let synth_na = |n: usize| -> Vec<InjectionRun> {
        let na = InjectionRun {
            outcome: OutcomeClass::NotActivated,
            activated: false,
            stop: golden.stop.clone(),
            client: golden.client,
            crash_latency: None,
            transient_deviation: false,
            divergence: None,
        };
        vec![na; n]
    };

    let mut slots: Vec<Option<Vec<InjectionRun>>> = vec![None; groups.len()];
    let live: Vec<usize> = groups
        .iter()
        .enumerate()
        .filter_map(|(gi, (_, group))| match &coverage {
            Some(cov) if !cov.contains(&group[0].addr) => {
                slots[gi] = Some(synth_na(group.len()));
                None
            }
            _ => Some(gi),
        })
        .collect();

    let threads = cfg.threads.max(1).min(live.len().max(1));
    if threads <= 1 {
        for &gi in &live {
            let (_, group) = groups[gi];
            slots[gi] = Some(
                run_injection_group(&app.image, spec, golden, group, cfg.scheme)
                    .expect("image loads"),
            );
        }
    } else {
        let next = AtomicUsize::new(0);
        let slots_mx = Mutex::new(&mut slots);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&gi) = live.get(i) else { break };
                    let (_, group) = groups[gi];
                    let runs = run_injection_group(&app.image, spec, golden, group, cfg.scheme)
                        .expect("image loads");
                    slots_mx.lock().expect("no worker panicked")[gi] = Some(runs);
                });
            }
        });
    }

    let mut out = Vec::with_capacity(targets.len());
    for done in slots {
        out.extend(done.expect("every group ran or was synthesized"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisec_apps::AppSpec;

    /// A cut-down campaign over a few targets to keep test time sane;
    /// the full campaigns run in the bench harness.
    #[test]
    fn mini_campaign_classifies_and_tallies() {
        let app = AppSpec::ftpd();
        let set = enumerate_targets(&app.image, &["pass"], true);
        // Take the first 3 instructions' worth of opcode bits only.
        let targets: Vec<_> = set
            .targets
            .iter()
            .filter(|t| t.byte_index == 0)
            .take(24)
            .copied()
            .collect();
        let spec = &app.clients[0]; // Client1 (attack)
        let golden = golden_run(&app.image, spec).unwrap();
        let cfg = CampaignConfig::default();
        let runs = run_targets(&app, spec, &golden, &targets, &cfg);
        assert_eq!(runs.len(), 24);
        let mut counts = OutcomeCounts::default();
        for r in &runs {
            counts.add(r.outcome);
        }
        assert_eq!(counts.total(), 24);
        // Opcode-bit flips on a hot path must manifest somehow.
        assert!(counts.activated() > 0);
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let app = AppSpec::ftpd();
        let set = enumerate_targets(&app.image, &["pass"], true);
        let targets: Vec<_> = set.targets.iter().take(80).copied().collect();
        let spec = &app.clients[0];
        let golden = golden_run(&app.image, spec).unwrap();
        let seq_cfg = CampaignConfig {
            threads: 1,
            ..CampaignConfig::default()
        };
        let par_cfg = CampaignConfig {
            threads: 4,
            ..CampaignConfig::default()
        };
        let a = run_targets(&app, spec, &golden, &targets, &seq_cfg);
        let b = run_targets(&app, spec, &golden, &targets, &par_cfg);
        let oa: Vec<_> = a.iter().map(|r| r.outcome).collect();
        let ob: Vec<_> = b.iter().map(|r| r.outcome).collect();
        assert_eq!(oa, ob);
    }
}
