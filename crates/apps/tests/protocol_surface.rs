//! Protocol-surface tests: drive the servers through the full command
//! repertoire with raw scripted drivers and check every reply path.

use fisec_apps::{build_ftpd, build_sshd, clients::LineBuf};
use fisec_net::{ClientDriver, ClientStatus};
use fisec_os::{Process, Stop};

/// A raw client that sends a fixed command script, one line per server
/// reply burst, and records everything the server said.
#[derive(Clone)]
struct Script {
    steps: Vec<&'static str>,
    next: usize,
    lines: LineBuf,
    saw: Vec<String>,
}

impl Script {
    fn new(steps: Vec<&'static str>) -> Box<Script> {
        Box::new(Script {
            steps,
            next: 0,
            lines: LineBuf::new(),
            saw: Vec::new(),
        })
    }
}

impl ClientDriver for Script {
    fn on_server_data(&mut self, data: &[u8], out: &mut dyn FnMut(Vec<u8>)) {
        self.lines.push(data);
        while let Some(l) = self.lines.pop_line() {
            self.saw.push(String::from_utf8_lossy(&l).into_owned());
            // Reply only to complete status lines (3-digit + space), so
            // multi-line payloads don't trigger extra sends.
            let is_status = l.len() >= 4 && l[..3].iter().all(u8::is_ascii_digit) && l[3] == b' ';
            if is_status && self.next < self.steps.len() {
                out(format!("{}\r\n", self.steps[self.next]).into_bytes());
                self.next += 1;
            }
        }
    }

    fn status(&self) -> ClientStatus {
        ClientStatus::InProgress
    }
}

fn drive_ftpd(steps: Vec<&'static str>) -> (Stop, Vec<String>) {
    let img = build_ftpd().unwrap();
    let mut p = Process::load(&img, Script::new(steps)).unwrap();
    let stop = p.run();
    let to_client: Vec<u8> = p
        .trace()
        .messages()
        .iter()
        .filter(|m| m.dir == fisec_net::Dir::ToClient)
        .flat_map(|m| m.bytes.clone())
        .collect();
    let lines = String::from_utf8_lossy(&to_client)
        .lines()
        .map(str::to_string)
        .collect();
    (stop, lines)
}

fn assert_has(lines: &[String], needle: &str) {
    assert!(
        lines.iter().any(|l| l.contains(needle)),
        "missing `{needle}` in {lines:#?}"
    );
}

#[test]
fn full_session_with_list_cwd_pwd() {
    let (stop, lines) = drive_ftpd(vec![
        "USER alice",
        "PASS wonderland",
        "PWD",
        "LIST",
        "CWD pub",
        "PWD",
        "LIST",
        "CWD ..",
        "RETR secret.txt",
        "QUIT",
    ]);
    assert_eq!(stop, Stop::Exited(0));
    assert_has(&lines, "230 User logged in");
    assert_has(&lines, "257 \"/\" is the current directory");
    assert_has(&lines, "secret.txt"); // listed for a real user
    assert_has(&lines, "250 CWD command successful");
    assert_has(&lines, "257 \"/pub\" is the current directory");
    assert_has(&lines, "README");
    assert_has(&lines, "TOP-SECRET");
    assert_has(&lines, "221 Goodbye");
}

#[test]
fn anonymous_listing_hides_secret() {
    let (stop, lines) = drive_ftpd(vec![
        "USER anonymous",
        "PASS me@example.com",
        "LIST",
        "QUIT",
    ]);
    assert_eq!(stop, Stop::Exited(0));
    assert_has(&lines, "welcome.txt");
    assert!(
        !lines.iter().any(|l| l.contains("secret.txt")),
        "guests must not see secret.txt: {lines:#?}"
    );
}

#[test]
fn commands_require_login() {
    let (stop, lines) = drive_ftpd(vec!["LIST", "CWD pub", "PWD", "RETR x", "QUIT"]);
    assert_eq!(stop, Stop::Exited(0));
    let denied = lines
        .iter()
        .filter(|l| l.contains("530 Please login"))
        .count();
    assert_eq!(denied, 4, "{lines:#?}");
}

#[test]
fn unknown_command_and_noop_type_syst() {
    let (stop, lines) = drive_ftpd(vec!["FROB", "NOOP", "TYPE A", "SYST", "QUIT"]);
    assert_eq!(stop, Stop::Exited(0));
    assert_has(&lines, "500 command not understood");
    assert_has(&lines, "200 NOOP command successful");
    assert_has(&lines, "200 Type set to A");
    assert_has(&lines, "215 UNIX Type: L8");
}

#[test]
fn bad_directory_rejected() {
    let (_, lines) = drive_ftpd(vec!["USER alice", "PASS wonderland", "CWD /etc", "QUIT"]);
    assert_has(&lines, "550 No such directory");
}

#[test]
fn deny_list_and_disabled_accounts() {
    let (_, lines) = drive_ftpd(vec!["USER root", "QUIT"]);
    assert_has(&lines, "532 User access denied");
    let (_, lines) = drive_ftpd(vec!["USER daemon", "QUIT"]);
    assert_has(&lines, "532 User access denied");
    let (_, lines) = drive_ftpd(vec!["USER carol", "QUIT"]);
    assert_has(&lines, "530 User account is disabled");
}

#[test]
fn invalid_user_names_rejected() {
    let (_, lines) = drive_ftpd(vec!["USER bad;name", "QUIT"]);
    assert_has(&lines, "501 USER: invalid characters");
    let (_, lines) = drive_ftpd(vec![
        "USER aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
        "QUIT",
    ]);
    assert_has(&lines, "501 USER: name too long");
    let (_, lines) = drive_ftpd(vec!["USER", "QUIT"]);
    assert_has(&lines, "501 USER: missing user name");
}

#[test]
fn guest_email_validation() {
    // Too short / no @ / two @ / spaces are rejected.
    for bad in ["a@b", "plainaddress", "a@@b.com", "has space@x.com"] {
        let img = build_ftpd().unwrap();
        let steps: Vec<String> = vec![
            "USER anonymous".into(),
            format!("PASS {bad}"),
            "QUIT".into(),
        ];
        #[derive(Clone)]
        struct Owned {
            steps: Vec<String>,
            next: usize,
            lines: LineBuf,
            denied: bool,
        }
        impl ClientDriver for Owned {
            fn on_server_data(&mut self, data: &[u8], out: &mut dyn FnMut(Vec<u8>)) {
                self.lines.push(data);
                while let Some(l) = self.lines.pop_line() {
                    if l.starts_with(b"530 Login incorrect") {
                        self.denied = true;
                    }
                    let is_status =
                        l.len() >= 4 && l[..3].iter().all(u8::is_ascii_digit) && l[3] == b' ';
                    if is_status && self.next < self.steps.len() {
                        out(format!("{}\r\n", self.steps[self.next]).into_bytes());
                        self.next += 1;
                    }
                }
            }
            fn status(&self) -> ClientStatus {
                ClientStatus::InProgress
            }
        }
        let mut p = Process::load(
            &img,
            Box::new(Owned {
                steps,
                next: 0,
                lines: LineBuf::new(),
                denied: false,
            }),
        )
        .unwrap();
        let _ = p.run();
        let to_client: Vec<u8> = p
            .trace()
            .messages()
            .iter()
            .filter(|m| m.dir == fisec_net::Dir::ToClient)
            .flat_map(|m| m.bytes.clone())
            .collect();
        assert!(
            String::from_utf8_lossy(&to_client).contains("530 Login incorrect"),
            "email `{bad}` should be rejected"
        );
    }
}

#[test]
fn three_failed_logins_close_the_connection() {
    let (stop, lines) = drive_ftpd(vec![
        "USER alice",
        "PASS no1",
        "USER alice",
        "PASS no2",
        "USER alice",
        "PASS no3",
    ]);
    assert_eq!(stop, Stop::Exited(1));
    assert_has(&lines, "421 Too many login failures");
}

// ── sshd surface ─────────────────────────────────────────────────────

#[test]
fn sshd_rejects_non_ssh_version() {
    let img = build_sshd().unwrap();
    #[derive(Clone)]
    struct BadVersion {
        sent: bool,
    }
    impl ClientDriver for BadVersion {
        fn on_server_data(&mut self, _d: &[u8], out: &mut dyn FnMut(Vec<u8>)) {
            if !self.sent {
                self.sent = true;
                out(b"HTTP/1.0 GET /\r\n".to_vec());
            }
        }
        fn status(&self) -> ClientStatus {
            ClientStatus::InProgress
        }
    }
    let mut p = Process::load(&img, Box::new(BadVersion { sent: false })).unwrap();
    let stop = p.run();
    assert_eq!(stop, Stop::Exited(1));
    let out: Vec<u8> = p
        .trace()
        .messages()
        .iter()
        .filter(|m| m.dir == fisec_net::Dir::ToClient)
        .flat_map(|m| m.bytes.clone())
        .collect();
    assert!(String::from_utf8_lossy(&out).contains("PROTOCOL-MISMATCH"));
}

#[test]
fn sshd_protocol_error_on_garbage_method() {
    let img = build_sshd().unwrap();
    #[derive(Clone)]
    struct Garbage {
        stage: usize,
        lines: LineBuf,
    }
    impl ClientDriver for Garbage {
        fn on_server_data(&mut self, data: &[u8], out: &mut dyn FnMut(Vec<u8>)) {
            self.lines.push(data);
            while let Some(l) = self.lines.pop_line() {
                let s = String::from_utf8_lossy(&l).into_owned();
                match (self.stage, s.as_str()) {
                    (0, v) if v.starts_with("SSH-") => {
                        out(b"SSH-1.5-x\r\n".to_vec());
                        self.stage = 1;
                    }
                    (1, "OK") => {
                        out(b"AUTH-USER alice\n".to_vec());
                        self.stage = 2;
                    }
                    (2, "OK-USER") => {
                        out(b"FROBNICATE now\n".to_vec());
                        self.stage = 3;
                    }
                    _ => {}
                }
            }
        }
        fn status(&self) -> ClientStatus {
            ClientStatus::InProgress
        }
    }
    let mut p = Process::load(
        &img,
        Box::new(Garbage {
            stage: 0,
            lines: LineBuf::new(),
        }),
    )
    .unwrap();
    let stop = p.run();
    assert_eq!(stop, Stop::Exited(1));
    let out: Vec<u8> = p
        .trace()
        .messages()
        .iter()
        .filter(|m| m.dir == fisec_net::Dir::ToClient)
        .flat_map(|m| m.bytes.clone())
        .collect();
    assert!(String::from_utf8_lossy(&out).contains("PROTOCOL-ERROR"));
}

#[test]
fn sshd_three_password_failures_disconnect() {
    let img = build_sshd().unwrap();
    #[derive(Clone)]
    struct Persistent {
        stage: usize,
        tries: usize,
        lines: LineBuf,
        saw_toomany: bool,
    }
    impl ClientDriver for Persistent {
        fn on_server_data(&mut self, data: &[u8], out: &mut dyn FnMut(Vec<u8>)) {
            self.lines.push(data);
            while let Some(l) = self.lines.pop_line() {
                let s = String::from_utf8_lossy(&l).into_owned();
                match (self.stage, s.as_str()) {
                    (0, v) if v.starts_with("SSH-") => {
                        out(b"SSH-1.5-x\r\n".to_vec());
                        self.stage = 1;
                    }
                    (1, "OK") => {
                        out(b"AUTH-USER alice\n".to_vec());
                        self.stage = 2;
                    }
                    (2, "OK-USER") | (2, "FAILURE") => {
                        self.tries += 1;
                        out(format!("AUTH-PASSWORD wrong{}\n", self.tries).into_bytes());
                    }
                    (2, "TOOMANY") => {
                        self.saw_toomany = true;
                        self.stage = 3;
                    }
                    _ => {}
                }
            }
        }
        fn status(&self) -> ClientStatus {
            ClientStatus::InProgress
        }
    }
    let mut p = Process::load(
        &img,
        Box::new(Persistent {
            stage: 0,
            tries: 0,
            lines: LineBuf::new(),
            saw_toomany: false,
        }),
    )
    .unwrap();
    let stop = p.run();
    assert_eq!(stop, Stop::Exited(1));
    let out: Vec<u8> = p
        .trace()
        .messages()
        .iter()
        .filter(|m| m.dir == fisec_net::Dir::ToClient)
        .flat_map(|m| m.bytes.clone())
        .collect();
    assert!(String::from_utf8_lossy(&out).contains("TOOMANY"));
}

#[test]
fn sshd_session_loop_handles_unknown_requests() {
    let img = build_sshd().unwrap();
    #[derive(Clone)]
    struct LoggedIn {
        stage: usize,
        lines: LineBuf,
    }
    impl ClientDriver for LoggedIn {
        fn on_server_data(&mut self, data: &[u8], out: &mut dyn FnMut(Vec<u8>)) {
            self.lines.push(data);
            while let Some(l) = self.lines.pop_line() {
                let s = String::from_utf8_lossy(&l).into_owned();
                match (self.stage, s.as_str()) {
                    (0, v) if v.starts_with("SSH-") => {
                        out(b"SSH-1.5-x\r\n".to_vec());
                        self.stage = 1;
                    }
                    (1, "OK") => {
                        out(b"AUTH-USER alice\n".to_vec());
                        self.stage = 2;
                    }
                    (2, "OK-USER") => {
                        out(b"AUTH-PASSWORD wonderland\n".to_vec());
                        self.stage = 3;
                    }
                    (3, "SUCCESS") => {
                        out(b"PORT-FORWARD 8080\n".to_vec()); // unknown request
                        self.stage = 4;
                    }
                    (4, "UNKNOWN-REQUEST") => {
                        out(b"SHELL\n".to_vec());
                        self.stage = 5;
                    }
                    (5, s2) if s2.starts_with("SHELL-GRANTED") => {
                        out(b"DISCONNECT\n".to_vec());
                        self.stage = 6;
                    }
                    _ => {}
                }
            }
        }
        fn status(&self) -> ClientStatus {
            ClientStatus::InProgress
        }
    }
    let mut p = Process::load(
        &img,
        Box::new(LoggedIn {
            stage: 0,
            lines: LineBuf::new(),
        }),
    )
    .unwrap();
    let stop = p.run();
    assert_eq!(stop, Stop::Exited(0));
    let out: Vec<u8> = p
        .trace()
        .messages()
        .iter()
        .filter(|m| m.dir == fisec_net::Dir::ToClient)
        .flat_map(|m| m.bytes.clone())
        .collect();
    let s = String::from_utf8_lossy(&out).into_owned();
    assert!(s.contains("UNKNOWN-REQUEST"));
    assert!(s.contains("SHELL-GRANTED"));
    assert!(s.contains("BYE"));
}
