//! Tier-2 trace engine tests: superblocks linked across taken branches
//! must stay bit-identical with the per-step reference, side-exit
//! precisely on mispredicted guards, decline dispatch around
//! breakpoints, and die under the executable-write journal exactly like
//! tier-1 blocks — on pokes, restores and self-modifying stores.

use fisec_x86::{Machine, Memory, Perms, Reg32, Region, RunOutcome};

const TEXT: u32 = 0x1000;

fn machine(text: Vec<u8>) -> Machine {
    let mut mem = Memory::new();
    mem.map(Region::with_data("text", TEXT, text, Perms::RX))
        .unwrap();
    mem.map(Region::zeroed("data", 0x2000, 0x1000, Perms::RW))
        .unwrap();
    mem.map(Region::zeroed("stack", 0x8000, 0x1000, Perms::RW))
        .unwrap();
    let mut m = Machine::new(mem);
    m.cpu.eip = TEXT;
    m.cpu.regs[Reg32::Esp as usize] = 0x9000;
    m
}

/// A hot machine: trace promotion on the first re-dispatch.
fn hot_machine(text: Vec<u8>) -> Machine {
    let mut m = machine(text);
    m.set_trace_threshold(1);
    m
}

// A loop whose body spans two blocks via a taken branch, so the trace
// engine has an edge to link across. 21 iterations: enough to promote,
// record and replay a superblock, with the loop exit landing *inside* a
// replay (not on its final block) so the guard mispredict is exercised.
//   0x1000  mov ecx, 21
//   0x1005  inc eax          <- L1
//   0x1006  jmp 0x1009
//   0x1008  nop              (never executed)
//   0x1009  dec ecx          <- L2
//   0x100A  jnz L1
//   0x100C  jmp $
fn two_block_loop() -> Vec<u8> {
    vec![
        0xB9, 21, 0, 0, 0, 0x40, 0xEB, 0x01, 0x90, 0x49, 0x75, 0xF9, 0xEB, 0xFE,
    ]
}

/// Run `text` under tier 2 (hot threshold) and the per-step reference,
/// assert identical outcome, icount and architectural state, and return
/// the tier-2 machine for stats inspection.
fn assert_trace_agrees_with_step(text: Vec<u8>, budget: u64) -> Machine {
    let mut hot = hot_machine(text.clone());
    let mut stp = machine(text);
    stp.set_block_engine(false);
    let a = hot.run_until_event(budget);
    let b = stp.run_until_event(budget);
    assert_eq!(a, b, "outcomes diverged");
    assert_eq!(hot.icount, stp.icount, "icount diverged");
    assert_eq!(hot.cpu, stp.cpu, "architectural state diverged");
    hot
}

#[test]
fn superblocks_form_and_stay_bit_identical() {
    let m = assert_trace_agrees_with_step(two_block_loop(), 1000);
    let s = m.trace_stats();
    assert!(s.built >= 1, "hot loop must promote a trace: {s:?}");
    assert!(s.hits >= 1, "promoted trace must be re-dispatched: {s:?}");
}

#[test]
fn mispredicted_guard_side_exits_precisely() {
    // The loop's final iteration falls through `jnz L1`: a trace replay
    // linked on the taken edge must side-exit at the guard, not execute
    // the stale successor.
    let m = assert_trace_agrees_with_step(two_block_loop(), 1000);
    let s = m.trace_stats();
    assert!(
        s.side_exits >= 1,
        "loop exit lands inside a trace replay: {s:?}"
    );
    assert_eq!(m.cpu.regs[Reg32::Eax as usize], 21, "every inc retired");
    assert_eq!(m.cpu.regs[Reg32::Ecx as usize], 0);
}

#[test]
fn breakpoint_inside_linked_successor_pauses_exactly() {
    // Prime the trace cache over the whole loop, then rewind and arm a
    // breakpoint at L2 — the entry of a *successor* block inside the
    // superblock, not the trace head. Dispatch must decline the trace
    // and stop exactly there.
    let mut m = hot_machine(two_block_loop());
    assert_eq!(m.run_until_event(1000), RunOutcome::Budget);
    assert!(m.trace_stats().built >= 1);
    m.cpu.eip = TEXT;
    m.cpu.regs = [0; 8];
    m.cpu.regs[Reg32::Esp as usize] = 0x9000;
    m.add_breakpoint(TEXT + 9);
    assert_eq!(m.run_until_event(1000), RunOutcome::Breakpoint(TEXT + 9));
    let mut reference = machine(two_block_loop());
    reference.set_block_engine(false);
    reference.add_breakpoint(TEXT + 9);
    assert_eq!(
        reference.run_until_event(1000),
        RunOutcome::Breakpoint(TEXT + 9)
    );
    assert_eq!(m.cpu, reference.cpu, "must stop with identical state");
}

#[test]
fn restore_invalidates_a_superblock_whose_tail_was_poked() {
    let mut m = hot_machine(two_block_loop());
    let snap = m.snapshot();
    assert_eq!(m.run_until_event(1000), RunOutcome::Budget);
    let before = m.trace_stats();
    assert!(before.built >= 1 && before.hits >= 1, "{before:?}");

    // Injection-shaped cycle: poke the `dec ecx` at L2 — a *tail* block
    // of the superblock, not its entry — then rewind. The restore's
    // write journal must drop every trace covering the poked byte.
    m.mem.poke8(TEXT + 9, 0x48).unwrap(); // dec ecx -> dec eax
    m.restore(&snap);
    let after = m.trace_stats();
    assert!(
        after.invalidated > before.invalidated,
        "poked superblock must die on restore: {before:?} -> {after:?}"
    );

    // The rewound machine replays the pristine program bit-identically.
    assert_eq!(m.run_until_event(1000), RunOutcome::Budget);
    assert_eq!(m.cpu.regs[Reg32::Eax as usize], 21);
    assert_eq!(m.cpu.regs[Reg32::Ecx as usize], 0);
}

#[test]
fn self_modifying_store_under_a_live_trace_agrees_with_stepwise() {
    // A loop that patches its own body once ecx reaches 2 — after the
    // trace over the unpatched body is hot:
    //   0x1000  mov ecx, 6
    //   0x1005  inc eax                    <- L1 (patched to nop later)
    //   0x1006  cmp ecx, 2
    //   0x1009  jne 0x1012
    //   0x100B  mov byte [0x1005], 0x90    ; inc eax -> nop
    //   0x1012  dec ecx                    <- L2
    //   0x1013  jnz L1
    //   0x1015  jmp $
    let text = vec![
        0xB9, 6, 0, 0, 0,    // mov ecx, 6
        0x40, // inc eax
        0x83, 0xF9, 0x02, // cmp ecx, 2
        0x75, 0x07, // jne +7
        0xC6, 0x05, 0x05, 0x10, 0x00, 0x00, 0x90, // mov byte [0x1005], 0x90
        0x49, // dec ecx
        0x75, 0xF0, // jnz -16
        0xEB, 0xFE, // jmp $
    ];
    let mut mem = Memory::new();
    mem.map(Region::with_data("text", TEXT, text.clone(), Perms::RWX))
        .unwrap();
    let mut hot = Machine::new(mem.clone());
    hot.cpu.eip = TEXT;
    hot.set_trace_threshold(1);
    let mut stp = Machine::new(mem);
    stp.cpu.eip = TEXT;
    stp.set_block_engine(false);
    assert_eq!(hot.run_until_event(200), stp.run_until_event(200));
    assert_eq!(hot.icount, stp.icount);
    assert_eq!(hot.cpu, stp.cpu);
    // Five incs retire before the patch lands, the sixth iteration runs
    // the nop: the write was observed mid-campaign, not deferred.
    assert_eq!(hot.cpu.regs[Reg32::Eax as usize], 5);
    let s = hot.trace_stats();
    assert!(s.built >= 1, "the unpatched loop got hot: {s:?}");
    assert!(
        s.invalidated >= 1,
        "the store must kill the live trace: {s:?}"
    );
}

#[test]
fn disabling_the_trace_cache_caps_the_engine_at_tier1() {
    let mut m = hot_machine(two_block_loop());
    m.set_trace_cache(false);
    assert!(!m.trace_cache());
    assert_eq!(m.run_until_event(1000), RunOutcome::Budget);
    let s = m.trace_stats();
    assert_eq!((s.built, s.hits), (0, 0), "tier 2 must stay cold: {s:?}");
    assert!(m.block_stats().hits > 0, "tier 1 still serves the loop");
    let mut reference = machine(two_block_loop());
    reference.set_block_engine(false);
    assert_eq!(reference.run_until_event(1000), RunOutcome::Budget);
    assert_eq!(m.cpu, reference.cpu);
}

#[test]
fn traces_span_syscalls_and_resume_after_them() {
    // A loop with an `int 0x80` in the body: the trace must deliver the
    // syscall outcome precisely, and the recording survives to link the
    // blocks around it.
    //   0x1000  mov ecx, 8
    //   0x1005  mov eax, 4       <- L1
    //   0x100A  int 0x80
    //   0x100C  dec ecx
    //   0x100D  jnz L1
    //   0x100F  jmp $
    let text = vec![
        0xB9, 8, 0, 0, 0, 0xB8, 4, 0, 0, 0, 0xCD, 0x80, 0x49, 0x75, 0xF6, 0xEB, 0xFE,
    ];
    let mut hot = hot_machine(text.clone());
    let mut stp = machine(text);
    stp.set_block_engine(false);
    // Drive both machines through every syscall stop.
    let mut stops = 0;
    loop {
        let a = hot.run_until_event(1000);
        let b = stp.run_until_event(1000);
        assert_eq!(a, b, "stop {stops} diverged");
        assert_eq!(hot.cpu, stp.cpu, "stop {stops} state diverged");
        match a {
            RunOutcome::Syscall(n) => {
                assert_eq!(n, 0x80);
                stops += 1;
            }
            RunOutcome::Budget => break,
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    assert_eq!(stops, 8, "every int 0x80 surfaced");
    assert_eq!(hot.icount, stp.icount);
}
