//! Counters and log₂-scale histograms, sharded per worker.
//!
//! The injection hot path must never contend a lock, so workers record
//! into a private [`MetricsShard`] and fold it into the shared
//! [`MetricsRegistry`] exactly once, when they finish. The registry's
//! mutex is therefore taken O(workers) times per campaign, not O(runs).

use crate::hotspot::ProfileData;
use crate::profile::{Phase, PhaseTimes};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Canonical metric names used by the campaign engine.
pub mod metric {
    /// Counter: total injection runs executed or synthesized.
    pub const RUNS: &str = "runs";
    /// Counter: checkpoint groups executed.
    pub const GROUPS: &str = "groups";
    /// Counter: runs classified NA by the golden-coverage pre-filter.
    pub const NA_PREFILTER_RUNS: &str = "na_prefilter_runs";
    /// Counter: fresh process boots (golden, group or from-scratch).
    pub const FRESH_BOOTS: &str = "fresh_boots";
    /// Counter: checkpoint restores.
    pub const RESTORES: &str = "restores";
    /// Counter: checkpoint groups folded in from the incremental
    /// campaign cache without executing.
    pub const CACHE_HIT_GROUPS: &str = "cache_hit_groups";
    /// Counter: groups executed because the cache had no usable entry.
    pub const CACHE_MISS_GROUPS: &str = "cache_miss_groups";
    /// Counter: the subset of misses where a cached entry existed but
    /// was invalidated by a key/footprint change.
    pub const CACHE_STALE_GROUPS: &str = "cache_stale_groups";
    /// Counter: runs synthesized from cache hits (also counted in
    /// [`RUNS`]).
    pub const CACHE_SYNTH_RUNS: &str = "cache_synth_runs";
    /// Counter: fresh group results written back to the cache store.
    pub const CACHE_STORES: &str = "cache_stores";
    /// Histogram: host microseconds per run replay.
    pub const REPLAY_MICROS: &str = "replay_micros_per_run";
    /// Histogram: guest instructions retired per run.
    pub const ICOUNT: &str = "icount_per_run";
    /// Histogram: targets per checkpoint group.
    pub const GROUP_SIZE: &str = "group_size";
    /// Histogram: microseconds a worker waited to obtain its next group.
    pub const QUEUE_WAIT: &str = "queue_wait_micros";
    /// Histogram: checkpoint restores per group.
    pub const RESTORES_PER_GROUP: &str = "restores_per_group";
    /// Histogram: instructions from activation to the first divergent
    /// control-flow edge, for runs classified NM (recorder campaigns).
    pub const DIVERGENCE_DEPTH_NM: &str = "divergence_depth_nm";
    /// Histogram: divergence depth of runs classified SD.
    pub const DIVERGENCE_DEPTH_SD: &str = "divergence_depth_sd";
    /// Histogram: divergence depth of runs classified FSV.
    pub const DIVERGENCE_DEPTH_FSV: &str = "divergence_depth_fsv";
    /// Histogram: divergence depth of runs classified BRK.
    pub const DIVERGENCE_DEPTH_BRK: &str = "divergence_depth_brk";
    /// Histogram: instructions from the taint seed to the first tainted
    /// compare or branch, for runs classified NM (propagation
    /// campaigns).
    pub const TAINT_TO_BRANCH_NM: &str = "taint_to_branch_nm";
    /// Histogram: taint-to-branch latency of runs classified SD.
    pub const TAINT_TO_BRANCH_SD: &str = "taint_to_branch_sd";
    /// Histogram: taint-to-branch latency of runs classified FSV.
    pub const TAINT_TO_BRANCH_FSV: &str = "taint_to_branch_fsv";
    /// Histogram: taint-to-branch latency of runs classified BRK.
    pub const TAINT_TO_BRANCH_BRK: &str = "taint_to_branch_brk";
    /// Histogram: peak tainted width in bytes of runs classified NM.
    pub const TAINT_WIDTH_NM: &str = "taint_width_nm";
    /// Histogram: peak tainted width of runs classified SD.
    pub const TAINT_WIDTH_SD: &str = "taint_width_sd";
    /// Histogram: peak tainted width of runs classified FSV.
    pub const TAINT_WIDTH_FSV: &str = "taint_width_fsv";
    /// Histogram: peak tainted width of runs classified BRK.
    pub const TAINT_WIDTH_BRK: &str = "taint_width_brk";
    /// Counter: runs whose injected instruction retired under the taint
    /// tracer (taint was seeded).
    pub const TAINT_SEEDED_RUNS: &str = "taint_seeded_runs";
    /// Counter: seeded runs whose corruption reached a tainted compare
    /// or branch decision.
    pub const TAINT_DECISION_RUNS: &str = "taint_decision_runs";
    /// Counter: seeded runs where a tainted compare preceded any
    /// tainted store.
    pub const TAINT_CMP_FIRST_RUNS: &str = "taint_cmp_first_runs";
    /// Counter: seeded runs whose taint died before the run stopped.
    pub const TAINT_DEATH_RUNS: &str = "taint_death_runs";
    /// Counter: seeded runs frozen by the observation horizon.
    pub const TAINT_FROZEN_RUNS: &str = "taint_frozen_runs";
}

/// Number of log₂ buckets; bucket `i` covers `(2^(i-1), 2^i]`, with 0
/// and 1 in bucket 0 and everything above `2^62` folded into the last.
pub const HIST_BUCKETS: usize = 64;

/// A fixed-size log₂ histogram of `u64` samples. Recording is two adds
/// and a bucket increment — cheap enough for the per-run path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Bucket frequencies.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

/// Bucket index for a sample: smallest `x` with `v <= 2^x`.
fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        return 0;
    }
    let x = 64 - (v - 1).leading_zeros() as usize;
    x.min(HIST_BUCKETS - 1)
}

impl LogHistogram {
    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.sum += v;
        self.min = if self.count == 0 { v } else { self.min.min(v) };
        self.max = self.max.max(v);
        self.count += 1;
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.count += other.count;
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0..=1.0`), clamped to the observed max; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return (1u64 << i).min(self.max);
            }
        }
        self.max
    }

    /// Interpolated `q`-quantile estimate (`0.0..=1.0`); 0 when empty.
    ///
    /// Log₂ buckets only bound a quantile, so the estimate interpolates
    /// *geometrically* within the bucket holding the rank: the rank's
    /// position maps to `lo·(hi/lo)^frac`, which lands on the bucket's
    /// geometric midpoint `2^(i-1/2)` at `frac = 1/2`. The result is
    /// clamped to the observed `[min, max]`, so a single-sample
    /// histogram reports the sample itself.
    pub fn quantile_est(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let below = seen as f64;
            seen += n;
            if seen as f64 >= rank {
                let frac = (rank - below) / n as f64;
                let hi = (1u64 << i) as f64;
                let lo = if i == 0 { 0.5 } else { hi / 2.0 };
                let est = lo * (hi / lo).powf(frac);
                return est.clamp(self.min as f64, self.max as f64);
            }
        }
        self.max as f64
    }

    /// The standard p50/p95/p99 summary triple (interpolated).
    pub fn percentiles(&self) -> (f64, f64, f64) {
        (
            self.quantile_est(0.50),
            self.quantile_est(0.95),
            self.quantile_est(0.99),
        )
    }
}

/// Per-outcome log₂ histograms of guest instructions retired per run,
/// as folded by the random-injection tier (streaming aggregation: one
/// `record` per run, never per-run state). The four slots follow the
/// random campaign's tally classes — runs indistinguishable from golden
/// land in `no_effect` whether they were classified NA or NM.
///
/// Serializable so ledger checkpoints can carry the exact aggregation
/// state: a resumed campaign restores these and keeps folding, ending
/// bit-identical to an uninterrupted run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeHists {
    /// Runs indistinguishable from golden (NA/NM).
    pub no_effect: LogHistogram,
    /// Crashes (system detection).
    pub sd: LogHistogram,
    /// Fail-silence violations.
    pub fsv: LogHistogram,
    /// Security break-ins.
    pub brk: LogHistogram,
}

impl OutcomeHists {
    /// Fold another set of histograms into this one (order-independent,
    /// so sharded workers merge to the same state as a sequential run).
    pub fn merge(&mut self, other: &OutcomeHists) {
        self.no_effect.merge(&other.no_effect);
        self.sd.merge(&other.sd);
        self.fsv.merge(&other.fsv);
        self.brk.merge(&other.brk);
    }

    /// Total samples across the four classes.
    pub fn total(&self) -> u64 {
        self.no_effect.count + self.sd.count + self.fsv.count + self.brk.count
    }
}

/// A worker-private accumulation of counters, histograms and phase
/// timings. No interior locking: exactly one thread writes a shard.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsShard {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, LogHistogram>,
    phases: PhaseTimes,
    profile: ProfileData,
}

impl MetricsShard {
    /// New empty shard.
    pub fn new() -> MetricsShard {
        MetricsShard::default()
    }

    /// Add `by` to the counter `name`.
    pub fn inc(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Record `v` into the histogram `name`.
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.histograms.entry(name).or_default().record(v);
    }

    /// Attribute `micros` to `phase`.
    pub fn phase_add(&mut self, phase: Phase, micros: u64) {
        self.phases.add(phase, micros);
    }

    /// Current value of a counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram, if anything was observed under `name`.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// The phase timings accumulated in this shard.
    pub fn phases(&self) -> &PhaseTimes {
        &self.phases
    }

    /// The hot-spot profile accumulated in this shard (empty when the
    /// profiler was off).
    pub fn profile(&self) -> &ProfileData {
        &self.profile
    }

    /// Fold a worker's hot-spot profile into this shard.
    pub fn profile_merge(&mut self, p: &ProfileData) {
        self.profile.merge(p);
    }

    /// Fold another shard into this one.
    pub fn merge(&mut self, other: &MetricsShard) {
        for (name, v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge(h);
        }
        self.phases.merge(&other.phases);
        self.profile.merge(&other.profile);
    }

    /// Render counters and histogram summaries as an aligned table,
    /// with interpolated p50/p95/p99 per histogram.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("{name:<24} {v:>12}\n"));
        }
        for (name, h) in &self.histograms {
            let (p50, p95, p99) = h.percentiles();
            out.push_str(&format!(
                "{name:<24} n={:<9} mean={:<11.1} p50={:<9.1} p95={:<9.1} p99={:<11.1} max={}\n",
                h.count,
                h.mean(),
                p50,
                p95,
                p99,
                h.max
            ));
        }
        out
    }
}

/// The shared sink worker shards merge into at join time.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    merged: Mutex<MetricsShard>,
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Fold a finished worker's shard into the registry. Called once
    /// per worker per campaign — never on the per-run path.
    ///
    /// # Panics
    /// If another thread panicked while merging (poisoned lock).
    pub fn absorb(&self, shard: &MetricsShard) {
        self.merged.lock().expect("no merger panicked").merge(shard);
    }

    /// A copy of everything merged so far.
    ///
    /// # Panics
    /// If another thread panicked while merging (poisoned lock).
    pub fn snapshot(&self) -> MetricsShard {
        self.merged.lock().expect("no merger panicked").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_statistics() {
        let mut h = LogHistogram::default();
        for v in [1, 2, 50, 99, 100, 20_000] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 20_000);
        assert_eq!(h.sum, 20_252);
        assert!((h.mean() - 20_252.0 / 6.0).abs() < 1e-9);
        // p50 falls in the bucket holding the 3rd sample (50 -> 2^6).
        assert_eq!(h.quantile(0.5), 64);
        assert_eq!(h.quantile(1.0), 20_000);
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn histogram_merge_matches_sequential() {
        let mut a = LogHistogram::default();
        let mut b = LogHistogram::default();
        let mut all = LogHistogram::default();
        for (i, v) in [3u64, 7, 900, 12, 0, 44_000].iter().enumerate() {
            if i % 2 == 0 { &mut a } else { &mut b }.record(*v);
            all.record(*v);
        }
        let mut merged = LogHistogram::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged, all);
        // Merging an empty histogram is a no-op.
        merged.merge(&LogHistogram::default());
        assert_eq!(merged, all);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = LogHistogram::default();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile_est(0.5), 0.0);
    }

    #[test]
    fn interpolated_quantiles_land_inside_the_bucket() {
        let mut h = LogHistogram::default();
        for v in [1u64, 2, 50, 99, 100, 20_000] {
            h.record(v);
        }
        // The p50 rank (3rd of 6) falls in bucket 6, values (32, 64];
        // the geometric interpolation must stay inside those bounds
        // while the bucket-bound quantile reports the upper edge.
        let p50 = h.quantile_est(0.5);
        assert!(p50 > 32.0 && p50 <= 64.0, "{p50}");
        assert_eq!(h.quantile(0.5), 64);
        // Estimates are clamped to the observed extrema.
        assert!(h.quantile_est(0.0) >= 1.0);
        assert!(h.quantile_est(1.0) <= 20_000.0);
        let (p50t, p95, p99) = h.percentiles();
        assert_eq!(p50t, p50);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
    }

    #[test]
    fn single_sample_estimate_is_the_sample() {
        let mut h = LogHistogram::default();
        h.record(57);
        // Clamping to [min, max] pins every quantile to the only value.
        assert_eq!(h.quantile_est(0.5), 57.0);
        assert_eq!(h.quantile_est(0.99), 57.0);
    }

    #[test]
    fn shard_roundtrip_and_merge() {
        let mut a = MetricsShard::new();
        a.inc(metric::RUNS, 10);
        a.observe(metric::GROUP_SIZE, 48);
        a.phase_add(Phase::Replay, 500);
        let mut b = MetricsShard::new();
        b.inc(metric::RUNS, 5);
        b.inc(metric::GROUPS, 1);
        b.observe(metric::GROUP_SIZE, 16);
        a.merge(&b);
        assert_eq!(a.counter(metric::RUNS), 15);
        assert_eq!(a.counter(metric::GROUPS), 1);
        assert_eq!(a.counter("never"), 0);
        assert_eq!(a.histogram(metric::GROUP_SIZE).unwrap().count, 2);
        assert!(a.histogram("never").is_none());
        assert_eq!(a.phases().get(Phase::Replay), 500);
    }

    #[test]
    fn registry_absorbs_from_threads() {
        let reg = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut shard = MetricsShard::new();
                    for i in 0..100 {
                        shard.inc(metric::RUNS, 1);
                        shard.observe(metric::REPLAY_MICROS, i);
                    }
                    reg.absorb(&shard);
                });
            }
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counter(metric::RUNS), 400);
        assert_eq!(snap.histogram(metric::REPLAY_MICROS).unwrap().count, 400);
    }

    #[test]
    fn render_mentions_every_metric() {
        let mut shard = MetricsShard::new();
        shard.inc(metric::RUNS, 7);
        shard.observe(metric::ICOUNT, 1000);
        let s = shard.render();
        assert!(s.contains("runs"), "{s}");
        assert!(s.contains("icount_per_run"), "{s}");
        assert!(s.contains("n=1"), "{s}");
    }
}
