//! # fisec-cc — a mini-C compiler targeting the fisec IA-32 substrate
//!
//! The study's target applications (the ftpd- and sshd-like servers in
//! `fisec-apps`) are written in a small C dialect and compiled to machine
//! code by this crate, so that injected single-bit errors hit *real
//! compiled instruction patterns* — `cmp`/`test` + `Jcc` decision points,
//! cdecl frames, `strcmp` loops — rather than hand-waved pseudo-code.
//!
//! Pipeline: [`parser::parse`] → [`codegen::compile_program`] →
//! [`fisec_asm::Assembler::assemble`]. [`build_image`] bundles the pieces:
//! it prepends the mini libc, appends the `_start` stub, and assembles at
//! the canonical bases.
//!
//! ## Language
//!
//! `int` (32-bit signed), `char` (8-bit signed), pointers, fixed arrays,
//! globals (with int/string initializers), `if`/`else`, `while`, `for`,
//! `break`/`continue`/`return`, the full C operator set minus `?:` and
//! comma, function calls (cdecl), string/char literals, postfix `++`/`--`,
//! and the `__syscall0..3` intrinsics that lower to `int 0x80`.
//!
//! ```
//! let img = fisec_cc::build_image(&["int main() { return 41 + 1; }"]).unwrap();
//! assert!(img.func("main").is_some());
//! assert!(img.func("_start").is_some());
//! ```

pub mod ast;
pub mod codegen;
pub mod lexer;
pub mod libc;
pub mod parser;

pub use codegen::{compile_program, CompileError};
pub use libc::MINI_LIBC;
pub use parser::{parse, ParseError};

use fisec_asm::{Assembler, Image};
use fisec_x86::{Inst, Op, Operand, Reg32};
use std::fmt;

/// Canonical text segment base (mirrors Linux i386 `0x08048000`).
pub const TEXT_BASE: u32 = 0x0804_8000;
/// Canonical data segment base.
pub const DATA_BASE: u32 = 0x0810_0000;

/// Errors from [`build_image`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Source failed to parse.
    Parse(ParseError),
    /// Source failed to compile.
    Compile(CompileError),
    /// Assembly/linking failed.
    Asm(fisec_asm::AsmError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Parse(e) => write!(f, "{e}"),
            BuildError::Compile(e) => write!(f, "{e}"),
            BuildError::Asm(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<ParseError> for BuildError {
    fn from(e: ParseError) -> Self {
        BuildError::Parse(e)
    }
}

impl From<CompileError> for BuildError {
    fn from(e: CompileError) -> Self {
        BuildError::Compile(e)
    }
}

impl From<fisec_asm::AsmError> for BuildError {
    fn from(e: fisec_asm::AsmError) -> Self {
        BuildError::Asm(e)
    }
}

/// Emit the `_start` stub: call `main`, then `exit(eax)`.
pub fn emit_start(asm: &mut Assembler) {
    asm.begin_func("_start");
    asm.call("main");
    asm.emit(
        Inst::new(Op::Mov)
            .dst(Operand::Reg(Reg32::Ebx))
            .src(Operand::Reg(Reg32::Eax)),
    );
    asm.emit(
        Inst::new(Op::Mov)
            .dst(Operand::Reg(Reg32::Eax))
            .src(Operand::Imm(1)),
    );
    asm.emit(Inst::new(Op::Int(0x80)));
    asm.end_func();
}

/// Compile the given mini-C sources together with the mini libc and a
/// `_start` stub into a loadable [`Image`] at the canonical bases.
///
/// # Errors
/// [`BuildError`] wrapping the failing stage.
pub fn build_image(sources: &[&str]) -> Result<Image, BuildError> {
    build_image_at(sources, TEXT_BASE, DATA_BASE)
}

/// [`build_image`] with explicit segment bases.
///
/// # Errors
/// [`BuildError`] wrapping the failing stage.
pub fn build_image_at(
    sources: &[&str],
    text_base: u32,
    data_base: u32,
) -> Result<Image, BuildError> {
    let mut all = String::from(MINI_LIBC);
    for s in sources {
        all.push('\n');
        all.push_str(s);
    }
    let prog = parse(&all)?;
    let mut asm = Assembler::new();
    emit_start(&mut asm);
    compile_program(&prog, &mut asm)?;
    Ok(asm.assemble(text_base, data_base)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_image_includes_libc_and_start() {
        let img = build_image(&["int main() { return strlen(\"four\"); }"]).unwrap();
        assert!(img.func("_start").is_some());
        assert!(img.func("strcmp").is_some());
        assert!(img.func("main").is_some());
        assert_eq!(img.func("_start").unwrap().start, TEXT_BASE);
    }

    #[test]
    fn build_errors_surface() {
        assert!(matches!(
            build_image(&["int main() { return }"]),
            Err(BuildError::Parse(_))
        ));
        assert!(matches!(
            build_image(&["int main() { return missing_var; }"]),
            Err(BuildError::Compile(_))
        ));
        // Calling an undefined function is a link-time (assembler) error.
        assert!(matches!(
            build_image(&["int main() { return nosuchfn(); }"]),
            Err(BuildError::Asm(_))
        ));
    }

    #[test]
    fn duplicate_function_rejected() {
        // `strlen` already exists in the libc.
        assert!(matches!(
            build_image(&["int strlen(char *s) { return 0; } int main() { return 0; }"]),
            Err(BuildError::Asm(fisec_asm::AsmError::DuplicateSymbol(_)))
        ));
    }
}
