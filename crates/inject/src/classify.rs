//! Outcome classification (paper §5.1) against the golden run.

use fisec_net::{ClientStatus, Dir, Trace};
use fisec_os::Stop;
use std::fmt;

/// The paper's five outcome categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OutcomeClass {
    /// NA — the corrupted instruction was never executed.
    NotActivated,
    /// NM — executed, but no observable impact.
    NotManifested,
    /// SD — the server crashed (system detection).
    SystemDetection,
    /// FSV — fail-silence violation: traffic/behaviour deviates, the
    /// client hangs, or access is wrongfully denied.
    FailSilenceViolation,
    /// BRK — security break-in: access granted that the golden run denies.
    Breakin,
}

impl OutcomeClass {
    /// All five classes in the paper's Table 1 row order.
    pub const ALL: [OutcomeClass; 5] = [
        OutcomeClass::NotActivated,
        OutcomeClass::NotManifested,
        OutcomeClass::SystemDetection,
        OutcomeClass::FailSilenceViolation,
        OutcomeClass::Breakin,
    ];

    /// The paper's abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            OutcomeClass::NotActivated => "NA",
            OutcomeClass::NotManifested => "NM",
            OutcomeClass::SystemDetection => "SD",
            OutcomeClass::FailSilenceViolation => "FSV",
            OutcomeClass::Breakin => "BRK",
        }
    }
}

impl fmt::Display for OutcomeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// The recorded golden (error-free) run for one client pattern.
///
/// `PartialEq`/`Eq` compare every field so the engine differential
/// tests can pin block-mode and step-mode golden runs against each
/// other.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenRun {
    /// How the golden server stopped (normally `Exited(0)`).
    pub stop: Stop,
    /// The client's golden verdict.
    pub client: ClientStatus,
    /// Golden traffic.
    pub trace: Trace,
    /// Golden instruction count.
    pub icount: u64,
}

/// Result of one injection experiment.
///
/// `PartialEq`/`Eq` compare every field; the differential tests lean on
/// this to prove the checkpointed engine bit-identical to from-scratch
/// replays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionRun {
    /// Classified outcome.
    pub outcome: OutcomeClass,
    /// Whether the corrupted instruction executed.
    pub activated: bool,
    /// How the server stopped.
    pub stop: Stop,
    /// The client's final verdict.
    pub client: ClientStatus,
    /// For crashes: instructions between error activation and the crash
    /// (Figure 4's metric; excludes kernel work by construction).
    pub crash_latency: Option<u64>,
    /// For crashes: did the traffic deviate from golden before the crash?
    /// (The paper's *transient window of vulnerability* evidence.)
    pub transient_deviation: bool,
    /// Human-readable description of the first trace divergence.
    pub divergence: Option<String>,
}

/// Is `t` a truncated prefix of `golden`? The final server→client message
/// of a crashed run may be cut short, so the last compared message only
/// needs to be a byte-prefix.
pub(crate) fn trace_is_prefix(t: &Trace, golden: &Trace) -> bool {
    let a = t.messages();
    let b = golden.messages();
    if a.len() > b.len() {
        return false;
    }
    for (i, m) in a.iter().enumerate() {
        let g = &b[i];
        if m.dir != g.dir {
            return false;
        }
        if i + 1 == a.len() {
            if !g.bytes.starts_with(&m.bytes) {
                return false;
            }
        } else if m.bytes != g.bytes {
            return false;
        }
    }
    true
}

/// Classify an activated run against the golden run.
///
/// Priority (categories are exclusive): BRK > SD > FSV > NM. A granted
/// session that should have been denied is a break-in even if the server
/// crashes afterwards; otherwise any crash is SD (with the pre-crash
/// deviation recorded separately); otherwise behavioural deviation or a
/// hang is FSV; otherwise NM.
pub fn classify_run(
    golden: &GoldenRun,
    stop: Stop,
    client: ClientStatus,
    trace: Trace,
    crash_latency: Option<u64>,
) -> InjectionRun {
    let golden_denied = golden.client != ClientStatus::Granted;
    let divergence = golden
        .trace
        .first_divergence(&trace)
        .map(|(i, d)| format!("message {i}: {d}"));

    let outcome = if golden_denied && client == ClientStatus::Granted {
        OutcomeClass::Breakin
    } else if stop.is_crash() {
        OutcomeClass::SystemDetection
    } else if stop.is_hang() {
        OutcomeClass::FailSilenceViolation
    } else {
        // Ran to an exit: compare behaviour.
        let same_traffic = divergence.is_none();
        let same_verdict = client == golden.client;
        let same_exit = stop == golden.stop;
        if same_traffic && same_verdict && same_exit {
            OutcomeClass::NotManifested
        } else {
            OutcomeClass::FailSilenceViolation
        }
    };

    let transient_deviation = stop.is_crash() && !trace_is_prefix(&trace, &golden.trace);

    InjectionRun {
        outcome,
        activated: true,
        stop,
        client,
        crash_latency,
        transient_deviation,
        divergence,
    }
}

/// Helper for building traces in tests and examples.
pub fn trace_from(parts: &[(Dir, &str)]) -> Trace {
    Trace::normalized(
        parts
            .iter()
            .map(|(d, s)| fisec_net::Message {
                dir: *d,
                bytes: s.as_bytes().to_vec(),
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisec_x86::Fault;

    fn golden_denied() -> GoldenRun {
        GoldenRun {
            stop: Stop::Exited(0),
            client: ClientStatus::Denied,
            trace: trace_from(&[
                (Dir::ToClient, "220 ready\r\n"),
                (Dir::ToServer, "USER alice\r\n"),
                (Dir::ToClient, "331 Password required.\r\n"),
                (Dir::ToServer, "PASS wrong\r\n"),
                (Dir::ToClient, "530 Login incorrect.\r\n"),
            ]),
            icount: 10_000,
        }
    }

    #[test]
    fn identical_run_is_nm() {
        let g = golden_denied();
        let r = classify_run(
            &g,
            Stop::Exited(0),
            ClientStatus::Denied,
            g.trace.clone(),
            None,
        );
        assert_eq!(r.outcome, OutcomeClass::NotManifested);
        assert!(r.divergence.is_none());
    }

    #[test]
    fn granted_when_denied_is_brk() {
        let g = golden_denied();
        let r = classify_run(
            &g,
            Stop::Exited(0),
            ClientStatus::Granted,
            g.trace.clone(),
            None,
        );
        assert_eq!(r.outcome, OutcomeClass::Breakin);
    }

    #[test]
    fn brk_takes_priority_over_crash() {
        // Access granted, then the server died: the window was open.
        let g = golden_denied();
        let r = classify_run(
            &g,
            Stop::Crashed(Fault::InvalidOpcode(0x1000)),
            ClientStatus::Granted,
            g.trace.clone(),
            Some(123),
        );
        assert_eq!(r.outcome, OutcomeClass::Breakin);
        assert_eq!(r.crash_latency, Some(123));
    }

    #[test]
    fn crash_is_sd_with_latency() {
        let g = golden_denied();
        let r = classify_run(
            &g,
            Stop::Crashed(Fault::MemAccess {
                addr: 0,
                write: true,
            }),
            ClientStatus::InProgress,
            trace_from(&[(Dir::ToClient, "220 ready\r\n")]),
            Some(57),
        );
        assert_eq!(r.outcome, OutcomeClass::SystemDetection);
        assert_eq!(r.crash_latency, Some(57));
        assert!(!r.transient_deviation); // clean prefix
    }

    #[test]
    fn crash_with_deviant_traffic_flags_transient_window() {
        let g = golden_denied();
        let r = classify_run(
            &g,
            Stop::Crashed(Fault::InvalidOpcode(0)),
            ClientStatus::Confused,
            trace_from(&[(Dir::ToClient, "999 garbage\r\n")]),
            Some(20_000),
        );
        assert_eq!(r.outcome, OutcomeClass::SystemDetection);
        assert!(r.transient_deviation);
    }

    #[test]
    fn hang_is_fsv() {
        let g = golden_denied();
        for stop in [Stop::Budget, Stop::Deadlock] {
            let r = classify_run(&g, stop, ClientStatus::InProgress, g.trace.clone(), None);
            assert_eq!(r.outcome, OutcomeClass::FailSilenceViolation);
        }
    }

    #[test]
    fn deviant_traffic_without_crash_is_fsv() {
        let g = golden_denied();
        let mut msgs = vec![
            (Dir::ToClient, "220 ready\r\n"),
            (Dir::ToServer, "USER alice\r\n"),
            (Dir::ToClient, "500 command not understood.\r\n"),
        ];
        let r = classify_run(
            &g,
            Stop::Exited(0),
            ClientStatus::Confused,
            trace_from(&msgs),
            None,
        );
        assert_eq!(r.outcome, OutcomeClass::FailSilenceViolation);
        assert!(r.divergence.unwrap().contains("message 2"));
        msgs.pop();
        // Truncated-but-matching traffic with same verdict/exit is still
        // FSV because the trace differs (missing messages).
        let r = classify_run(
            &g,
            Stop::Exited(0),
            ClientStatus::Denied,
            trace_from(&msgs),
            None,
        );
        assert_eq!(r.outcome, OutcomeClass::FailSilenceViolation);
    }

    #[test]
    fn wrongful_deny_for_legit_client_is_fsv_not_brk() {
        let mut g = golden_denied();
        g.client = ClientStatus::Granted; // golden grants (Client2-style)
        let r = classify_run(
            &g,
            Stop::Exited(0),
            ClientStatus::Denied,
            trace_from(&[(Dir::ToClient, "530 Login incorrect.\r\n")]),
            None,
        );
        assert_eq!(r.outcome, OutcomeClass::FailSilenceViolation);
    }

    #[test]
    fn granted_matching_golden_grant_is_nm() {
        let mut g = golden_denied();
        g.client = ClientStatus::Granted;
        let r = classify_run(
            &g,
            Stop::Exited(0),
            ClientStatus::Granted,
            g.trace.clone(),
            None,
        );
        assert_eq!(r.outcome, OutcomeClass::NotManifested);
    }

    #[test]
    fn prefix_logic() {
        let g = golden_denied().trace;
        let p = trace_from(&[
            (Dir::ToClient, "220 ready\r\n"),
            (Dir::ToServer, "USER alice\r\n"),
            (Dir::ToClient, "331 Pass"),
        ]);
        assert!(trace_is_prefix(&p, &g));
        let bad = trace_from(&[(Dir::ToClient, "221 bye\r\n")]);
        assert!(!trace_is_prefix(&bad, &g));
        let too_long = trace_from(&[
            (Dir::ToClient, "220 ready\r\n"),
            (Dir::ToServer, "USER alice\r\n"),
            (Dir::ToClient, "331 Password required.\r\n"),
            (Dir::ToServer, "PASS wrong\r\n"),
            (Dir::ToClient, "530 Login incorrect.\r\n"),
            (Dir::ToServer, "extra\r\n"),
        ]);
        assert!(!trace_is_prefix(&too_long, &g));
        // Wrong direction.
        let wrong_dir = trace_from(&[(Dir::ToServer, "220 ready\r\n")]);
        assert!(!trace_is_prefix(&wrong_dir, &g));
    }

    #[test]
    fn budget_exhaustion_is_fsv_hang() {
        // A run that spins until the instruction budget runs out is a
        // hang-class fail-silence violation even when the traffic so far
        // matches golden perfectly.
        let g = golden_denied();
        let r = classify_run(
            &g,
            Stop::Budget,
            ClientStatus::InProgress,
            g.trace.clone(),
            None,
        );
        assert_eq!(r.outcome, OutcomeClass::FailSilenceViolation);
        assert!(r.stop.is_hang());
        assert_eq!(r.crash_latency, None);
        assert!(!r.transient_deviation);
    }

    #[test]
    fn breakpoint_stop_is_fsv_not_nm() {
        // A stray breakpoint stop (e.g. the corrupted program jumping
        // back onto a still-armed breakpoint address) is neither a clean
        // exit nor a crash/hang: it must not classify as NotManifested
        // even with golden-identical traffic and verdict.
        let g = golden_denied();
        let r = classify_run(
            &g,
            Stop::Breakpoint(0x1000),
            g.client,
            g.trace.clone(),
            None,
        );
        assert_eq!(r.outcome, OutcomeClass::FailSilenceViolation);
    }

    #[test]
    fn empty_client_trace_against_golden() {
        // A run that dies before any traffic: empty trace is a valid
        // prefix (no transient deviation), but a non-crash empty-trace
        // run diverges from golden ("extra message" on golden's side).
        let g = golden_denied();
        let empty = Trace::default();
        assert!(trace_is_prefix(&empty, &g.trace));
        let r = classify_run(
            &g,
            Stop::Crashed(Fault::InvalidOpcode(0x2000)),
            ClientStatus::InProgress,
            empty.clone(),
            Some(1),
        );
        assert_eq!(r.outcome, OutcomeClass::SystemDetection);
        assert!(!r.transient_deviation);
        let r = classify_run(&g, Stop::Exited(0), ClientStatus::InProgress, empty, None);
        assert_eq!(r.outcome, OutcomeClass::FailSilenceViolation);
        assert!(r.divergence.unwrap().contains("extra message"));
    }

    #[test]
    fn empty_golden_trace_is_handled() {
        // Degenerate golden (server said nothing): identical empty run
        // is NM; any traffic at all is divergence.
        let g = GoldenRun {
            stop: Stop::Exited(0),
            client: ClientStatus::Denied,
            trace: Trace::default(),
            icount: 100,
        };
        let r = classify_run(
            &g,
            Stop::Exited(0),
            ClientStatus::Denied,
            Trace::default(),
            None,
        );
        assert_eq!(r.outcome, OutcomeClass::NotManifested);
        let r = classify_run(
            &g,
            Stop::Exited(0),
            ClientStatus::Denied,
            trace_from(&[(Dir::ToClient, "garbage")]),
            None,
        );
        assert_eq!(r.outcome, OutcomeClass::FailSilenceViolation);
        assert!(r.divergence.unwrap().contains("missing message"));
    }

    #[test]
    fn outcome_abbrevs() {
        assert_eq!(OutcomeClass::NotActivated.abbrev(), "NA");
        assert_eq!(OutcomeClass::Breakin.abbrev(), "BRK");
        assert_eq!(OutcomeClass::ALL.len(), 5);
        assert_eq!(format!("{}", OutcomeClass::SystemDetection), "SD");
    }
}
