//! Lexer for the mini-C dialect.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Integer literal.
    Num(i32),
    /// String literal (escapes already processed, no NUL terminator).
    Str(Vec<u8>),
    /// Character literal.
    CharLit(u8),
    /// Identifier or keyword (keywords are matched by the parser).
    Ident(String),
    /// Punctuation / operator, e.g. `"=="`, `"{"`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Num(n) => write!(f, "{n}"),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::CharLit(c) => write!(f, "'{}'", *c as char),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Lexing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Explanation.
    pub msg: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

const PUNCTS: &[&str] = &[
    // Longest first so maximal munch works.
    "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--", "+=", "-=", "*=",
    "/=", "%=", "&=", "|=", "^=", "->", "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|",
    "^", "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
];

/// Tokenize mini-C source.
///
/// # Errors
/// [`LexError`] on malformed literals, unterminated comments/strings, or
/// characters outside the language.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, LexError> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let err = |msg: &str, line: u32| LexError {
        msg: msg.to_string(),
        line,
    };
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = line;
                i += 2;
                loop {
                    if i + 1 >= b.len() {
                        return Err(err("unterminated block comment", start));
                    }
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    if b[i] == b'*' && b[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                let mut val: i64;
                if c == b'0' && i + 1 < b.len() && (b[i + 1] | 0x20) == b'x' {
                    i += 2;
                    let hs = i;
                    while i < b.len() && b[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    if i == hs {
                        return Err(err("empty hex literal", line));
                    }
                    val = i64::from_str_radix(&src[hs..i], 16)
                        .map_err(|_| err("hex literal out of range", line))?;
                } else {
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    val = src[start..i]
                        .parse::<i64>()
                        .map_err(|_| err("integer literal out of range", line))?;
                }
                if val > u32::MAX as i64 {
                    return Err(err("integer literal out of range", line));
                }
                if val > i32::MAX as i64 {
                    val -= 1 << 32; // wrap like C unsigned-to-signed
                }
                toks.push(SpannedTok {
                    tok: Tok::Num(val as i32),
                    line,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push(SpannedTok {
                    tok: Tok::Ident(src[start..i].to_string()),
                    line,
                });
            }
            b'"' => {
                i += 1;
                let mut s = Vec::new();
                loop {
                    if i >= b.len() {
                        return Err(err("unterminated string literal", line));
                    }
                    match b[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            i += 1;
                            if i >= b.len() {
                                return Err(err("bad escape", line));
                            }
                            s.push(unescape(b[i]).ok_or_else(|| err("bad escape", line))?);
                            i += 1;
                        }
                        b'\n' => return Err(err("newline in string literal", line)),
                        ch => {
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                toks.push(SpannedTok {
                    tok: Tok::Str(s),
                    line,
                });
            }
            b'\'' => {
                i += 1;
                if i >= b.len() {
                    return Err(err("unterminated char literal", line));
                }
                let v = if b[i] == b'\\' {
                    i += 1;
                    if i >= b.len() {
                        return Err(err("bad escape", line));
                    }
                    unescape(b[i]).ok_or_else(|| err("bad escape", line))?
                } else {
                    b[i]
                };
                i += 1;
                if i >= b.len() || b[i] != b'\'' {
                    return Err(err("unterminated char literal", line));
                }
                i += 1;
                toks.push(SpannedTok {
                    tok: Tok::CharLit(v),
                    line,
                });
            }
            _ => {
                let rest = &src[i..];
                let p = PUNCTS.iter().find(|p| rest.starts_with(**p));
                match p {
                    Some(p) => {
                        toks.push(SpannedTok {
                            tok: Tok::Punct(p),
                            line,
                        });
                        i += p.len();
                    }
                    None => {
                        return Err(err(&format!("unexpected character `{}`", c as char), line))
                    }
                }
            }
        }
    }
    toks.push(SpannedTok {
        tok: Tok::Eof,
        line,
    });
    Ok(toks)
}

fn unescape(c: u8) -> Option<u8> {
    Some(match c {
        b'n' => b'\n',
        b'r' => b'\r',
        b't' => b'\t',
        b'0' => 0,
        b'\\' => b'\\',
        b'"' => b'"',
        b'\'' => b'\'',
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(
            toks("0 42 0x10 0xFF"),
            vec![
                Tok::Num(0),
                Tok::Num(42),
                Tok::Num(16),
                Tok::Num(255),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_large_hex_wraps_to_signed() {
        assert_eq!(toks("0xFFFFFFFF")[0], Tok::Num(-1));
        assert!(lex("0x100000000").is_err());
    }

    #[test]
    fn lex_idents_and_puncts() {
        assert_eq!(
            toks("if (a == b) { a++; }"),
            vec![
                Tok::Ident("if".into()),
                Tok::Punct("("),
                Tok::Ident("a".into()),
                Tok::Punct("=="),
                Tok::Ident("b".into()),
                Tok::Punct(")"),
                Tok::Punct("{"),
                Tok::Ident("a".into()),
                Tok::Punct("++"),
                Tok::Punct(";"),
                Tok::Punct("}"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_strings_with_escapes() {
        assert_eq!(
            toks(r#""hi\n\t\"x\"\0""#)[0],
            Tok::Str(b"hi\n\t\"x\"\0".to_vec())
        );
    }

    #[test]
    fn lex_char_literals() {
        assert_eq!(
            toks("'a' '\\n' '\\0'")[..3],
            [Tok::CharLit(b'a'), Tok::CharLit(b'\n'), Tok::CharLit(0)]
        );
    }

    #[test]
    fn lex_comments() {
        assert_eq!(
            toks("a // line\nb /* block\nmulti */ c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_line_numbers() {
        let ts = lex("a\nb\n\nc").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 4);
    }

    #[test]
    fn lex_errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* open").is_err());
        assert!(lex("'x").is_err());
        assert!(lex("$").is_err());
        assert!(lex("\"bad \\q escape\"").is_err());
    }

    #[test]
    fn maximal_munch() {
        assert_eq!(
            toks("a<<=b <= < <<"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<<="),
                Tok::Ident("b".into()),
                Tok::Punct("<="),
                Tok::Punct("<"),
                Tok::Punct("<<"),
                Tok::Eof
            ]
        );
    }
}
