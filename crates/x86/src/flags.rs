//! EFLAGS computation helpers.
//!
//! The interpreter keeps the live EFLAGS value in `Cpu::eflags`; these
//! functions compute the status-flag updates for arithmetic and logic
//! results the way IA-32 defines them. Correct flag semantics matter for
//! this study: the entire phenomenon under investigation is "a flipped
//! conditional branch reads the same flags but takes the other path".

use crate::eflags::{AF, CF, OF, PF, SF, ZF};
use crate::inst::OpSize;

/// Parity flag: set if the low byte of the result has even parity.
pub fn parity(result: u32) -> bool {
    (result as u8).count_ones().is_multiple_of(2)
}

/// Replace the given `mask` of bits in `flags` with `new_bits`.
pub fn set_bits(flags: &mut u32, mask: u32, new_bits: u32) {
    *flags = (*flags & !mask) | (new_bits & mask);
}

/// Set ZF/SF/PF from a result of the given size.
pub fn zsp(flags: &mut u32, result: u32, size: OpSize) {
    let r = result & size.mask();
    let mut bits = 0;
    if r == 0 {
        bits |= ZF;
    }
    if r & size.sign_bit() != 0 {
        bits |= SF;
    }
    if parity(r) {
        bits |= PF;
    }
    set_bits(flags, ZF | SF | PF, bits);
}

/// Flags for `add` (also `inc` when `update_cf` is false).
pub fn add(flags: &mut u32, a: u32, b: u32, size: OpSize, update_cf: bool) -> u32 {
    let mask = size.mask();
    let (a, b) = (a & mask, b & mask);
    let r = a.wrapping_add(b) & mask;
    zsp(flags, r, size);
    let carry = (a as u64 + b as u64) > mask as u64;
    let sign = size.sign_bit();
    let overflow = ((a ^ r) & (b ^ r) & sign) != 0;
    let aux = ((a ^ b ^ r) & 0x10) != 0;
    let mut bits = 0;
    if carry {
        bits |= CF;
    }
    if overflow {
        bits |= OF;
    }
    if aux {
        bits |= AF;
    }
    let m = if update_cf { CF | OF | AF } else { OF | AF };
    set_bits(flags, m, bits);
    r
}

/// Flags for `adc`.
pub fn adc(flags: &mut u32, a: u32, b: u32, carry_in: bool, size: OpSize) -> u32 {
    let mask = size.mask();
    let (a, b) = (a & mask, b & mask);
    let cin = carry_in as u32;
    let r = a.wrapping_add(b).wrapping_add(cin) & mask;
    zsp(flags, r, size);
    let carry = (a as u64 + b as u64 + cin as u64) > mask as u64;
    let sign = size.sign_bit();
    let overflow = ((a ^ r) & (b ^ r) & sign) != 0;
    let aux = ((a ^ b ^ r) & 0x10) != 0;
    let mut bits = 0;
    if carry {
        bits |= CF;
    }
    if overflow {
        bits |= OF;
    }
    if aux {
        bits |= AF;
    }
    set_bits(flags, CF | OF | AF, bits);
    r
}

/// Flags for `sub`/`cmp` (also `dec` when `update_cf` is false).
pub fn sub(flags: &mut u32, a: u32, b: u32, size: OpSize, update_cf: bool) -> u32 {
    let mask = size.mask();
    let (a, b) = (a & mask, b & mask);
    let r = a.wrapping_sub(b) & mask;
    zsp(flags, r, size);
    let borrow = a < b;
    let sign = size.sign_bit();
    let overflow = ((a ^ b) & (a ^ r) & sign) != 0;
    let aux = ((a ^ b ^ r) & 0x10) != 0;
    let mut bits = 0;
    if borrow {
        bits |= CF;
    }
    if overflow {
        bits |= OF;
    }
    if aux {
        bits |= AF;
    }
    let m = if update_cf { CF | OF | AF } else { OF | AF };
    set_bits(flags, m, bits);
    r
}

/// Flags for `sbb`.
pub fn sbb(flags: &mut u32, a: u32, b: u32, borrow_in: bool, size: OpSize) -> u32 {
    let mask = size.mask();
    let (a, b) = (a & mask, b & mask);
    let bin = borrow_in as u32;
    let r = a.wrapping_sub(b).wrapping_sub(bin) & mask;
    zsp(flags, r, size);
    let borrow = (a as u64) < (b as u64 + bin as u64);
    let sign = size.sign_bit();
    let overflow = ((a ^ b) & (a ^ r) & sign) != 0;
    let aux = ((a ^ b ^ r) & 0x10) != 0;
    let mut bits = 0;
    if borrow {
        bits |= CF;
    }
    if overflow {
        bits |= OF;
    }
    if aux {
        bits |= AF;
    }
    set_bits(flags, CF | OF | AF, bits);
    r
}

/// Flags for `and`/`or`/`xor`/`test`: CF=OF=0, ZSP from result.
pub fn logic(flags: &mut u32, result: u32, size: OpSize) -> u32 {
    let r = result & size.mask();
    zsp(flags, r, size);
    set_bits(flags, CF | OF | AF, 0);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eflags;

    #[test]
    fn zero_result_sets_zf() {
        let mut f = 0;
        let r = sub(&mut f, 5, 5, OpSize::Dword, true);
        assert_eq!(r, 0);
        assert_ne!(f & ZF, 0);
        assert_eq!(f & SF, 0);
        assert_eq!(f & CF, 0);
    }

    #[test]
    fn borrow_sets_cf() {
        let mut f = 0;
        let r = sub(&mut f, 3, 5, OpSize::Dword, true);
        assert_eq!(r, (-2i32) as u32);
        assert_ne!(f & CF, 0);
        assert_ne!(f & SF, 0);
        assert_eq!(f & ZF, 0);
    }

    #[test]
    fn signed_overflow_add() {
        let mut f = 0;
        add(&mut f, 0x7FFF_FFFF, 1, OpSize::Dword, true);
        assert_ne!(f & OF, 0);
        assert_ne!(f & SF, 0);
        assert_eq!(f & CF, 0);
    }

    #[test]
    fn unsigned_carry_add() {
        let mut f = 0;
        let r = add(&mut f, 0xFFFF_FFFF, 1, OpSize::Dword, true);
        assert_eq!(r, 0);
        assert_ne!(f & CF, 0);
        assert_ne!(f & ZF, 0);
        assert_eq!(f & OF, 0);
    }

    #[test]
    fn byte_size_masks_result() {
        let mut f = 0;
        let r = add(&mut f, 0xFF, 1, OpSize::Byte, true);
        assert_eq!(r, 0);
        assert_ne!(f & CF, 0);
        assert_ne!(f & ZF, 0);
    }

    #[test]
    fn parity_is_low_byte_even_ones() {
        assert!(parity(0b11)); // two ones
        assert!(!parity(0b1)); // one one
        assert!(parity(0)); // zero ones
        assert!(parity(0x1_00)); // high bits ignored
    }

    #[test]
    fn logic_clears_cf_of() {
        let mut f = CF | OF;
        logic(&mut f, 0xFF, OpSize::Byte);
        assert_eq!(f & (CF | OF), 0);
        assert_ne!(f & SF, 0);
    }

    #[test]
    fn inc_preserves_cf() {
        let mut f = CF;
        add(&mut f, 0xFFFF_FFFF, 1, OpSize::Dword, false);
        assert_ne!(f & CF, 0); // CF untouched by inc
        assert_ne!(f & ZF, 0);
    }

    #[test]
    fn adc_chains_carry() {
        let mut f = 0;
        let r = adc(&mut f, 0xFFFF_FFFF, 0, true, OpSize::Dword);
        assert_eq!(r, 0);
        assert_ne!(f & CF, 0);
        let carry = (f & CF) != 0;
        let r2 = adc(&mut f, 1, 2, carry, OpSize::Dword);
        assert_eq!(r2, 4);
    }

    #[test]
    fn sbb_chains_borrow() {
        let mut f = 0;
        let r = sbb(&mut f, 0, 0, true, OpSize::Dword);
        assert_eq!(r, 0xFFFF_FFFF);
        assert_ne!(f & CF, 0);
    }

    #[test]
    fn aux_flag_nibble_carry() {
        let mut f = 0;
        add(&mut f, 0x0F, 0x01, OpSize::Byte, true);
        assert_ne!(f & eflags::AF, 0);
        add(&mut f, 0x07, 0x01, OpSize::Byte, true);
        assert_eq!(f & eflags::AF, 0);
    }
}
