//! Differential tests for the streaming random-injection tier.
//!
//! The claims under test are exactly the guarantees the engine
//! advertises: sharding is free (N worker shards produce the same
//! campaign as one, bit for bit, in both execution engines), the draw
//! stream is partition-invariant (any split of the index range yields
//! the same multiset of (offset, bit) pairs), and a campaign killed
//! mid-run resumes from its ledger to tallies identical to an
//! uninterrupted run — which `fisec stats` then reproduces from the
//! ledger alone, confidence intervals included.

use fisec_apps::AppSpec;
use fisec_core::random::{
    self, read_ledger, render_report, resume_random_streaming, run_random_streaming,
    truncate_torn_tail, RandomConfig,
};
use fisec_core::{trace, ExecutionMode};
use fisec_telemetry::{JsonlSink, Telemetry};
use std::path::PathBuf;
use std::sync::Arc;

const RUNS: usize = 160;
const SEED: u64 = 0xD5A1_2001;

fn cfg(mode: ExecutionMode, threads: usize) -> RandomConfig {
    RandomConfig {
        runs: RUNS,
        seed: SEED,
        mode,
        threads,
        batch: 40,
        ..RandomConfig::default()
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fisec-random-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// N shards and 1 shard must fold to the same campaign, bit for bit,
/// and the snapshot engine must agree with booting every run from
/// scratch.
#[test]
fn sharded_campaign_is_bit_identical_to_unsharded_in_both_modes() {
    let app = AppSpec::ftpd();
    let baseline = run_random_streaming(
        &app,
        &cfg(ExecutionMode::Snapshot, 1),
        &Telemetry::disabled(),
    )
    .unwrap();
    assert_eq!(baseline.result.runs, RUNS);
    for mode in [ExecutionMode::Snapshot, ExecutionMode::FromScratch] {
        for threads in [1, 2, 8] {
            let sharded =
                run_random_streaming(&app, &cfg(mode, threads), &Telemetry::disabled()).unwrap();
            // Tallies and histograms are the experiment; the mode label
            // is the only field allowed to differ across engines.
            assert_eq!(
                sharded.result, baseline.result,
                "{mode:?} x{threads} tallies diverged from unsharded snapshot campaign"
            );
            assert_eq!(
                sharded.hists, baseline.hists,
                "{mode:?} x{threads} icount histograms diverged"
            );
        }
    }
}

/// The draw stream is a pure function of (seed, index, text_len):
/// partitioning the index range into shards of any geometry yields
/// exactly the full sequence. This is the property that makes the
/// sharded campaign's determinism trivial rather than lucky.
#[test]
fn draw_stream_is_partition_invariant() {
    for (seed, text_len) in [(0u64, 13usize), (SEED, 4096), (u64::MAX, 1)] {
        let full: Vec<(usize, u8)> = (0..512).map(|i| random::draw(seed, i, text_len)).collect();
        for shards in [1u64, 3, 7, 64] {
            let mut stitched = vec![(0usize, 0u8); 512];
            for s in 0..shards {
                let mut i = s;
                while i < 512 {
                    stitched[i as usize] = random::draw(seed, i, text_len);
                    i += shards;
                }
            }
            assert_eq!(stitched, full, "seed {seed} len {text_len} x{shards}");
        }
        assert!(full.iter().all(|&(off, bit)| off < text_len && bit < 8));
    }
}

/// Kill/resume: truncate the ledger to its first committed batch (a
/// crash between checkpoints), resume, and demand the final tallies —
/// and the rendered report with its confidence intervals — equal an
/// uninterrupted run's.
#[test]
fn killed_campaign_resumes_to_identical_tallies() {
    let app = AppSpec::ftpd();
    let cfg = cfg(ExecutionMode::Snapshot, 2);
    let uninterrupted = run_random_streaming(&app, &cfg, &Telemetry::disabled()).unwrap();

    let path = tmp("killed.jsonl");
    let tel = Telemetry::new(Arc::new(JsonlSink::create(&path).unwrap()), false);
    run_random_streaming(&app, &cfg, &tel).unwrap();
    tel.sink.flush();

    // Simulate the kill: keep the header, the first committed batch,
    // and a torn half-written line.
    let full = std::fs::read_to_string(&path).unwrap();
    let mut lines = full.lines();
    let truncated = format!(
        "{}\n{}\n{{\"type\":\"random_ba",
        lines.next().unwrap(),
        lines.next().unwrap()
    );
    std::fs::write(&path, truncated).unwrap();

    let ledger = read_ledger(&path).unwrap();
    assert!(!ledger.finished);
    assert_eq!(ledger.committed, cfg.batch as u64);
    truncate_torn_tail(&path, &ledger).unwrap();
    let tel = Telemetry::new(Arc::new(JsonlSink::append(&path).unwrap()), false);
    let resumed = resume_random_streaming(&app, &cfg, &ledger, &tel).unwrap();
    tel.sink.flush();

    assert_eq!(
        resumed, uninterrupted,
        "resumed campaign must be bit-identical to an uninterrupted one"
    );
    assert_eq!(render_report(&resumed), render_report(&uninterrupted));

    // The stitched ledger replays to the same finished campaign.
    let replay = trace::read_trace(&path).unwrap();
    assert_eq!(replay.random.len(), 1);
    assert_eq!(replay.random[0].stats, uninterrupted);
    std::fs::remove_file(&path).ok();
}

/// A resumed campaign must refuse a ledger recorded under different
/// campaign parameters — silently continuing a different draw stream
/// would corrupt the tallies.
#[test]
fn resume_rejects_a_mismatched_ledger() {
    let app = AppSpec::ftpd();
    let cfg = cfg(ExecutionMode::Snapshot, 1);
    let path = tmp("mismatch.jsonl");
    let tel = Telemetry::new(Arc::new(JsonlSink::create(&path).unwrap()), false);
    run_random_streaming(&app, &cfg, &tel).unwrap();
    tel.sink.flush();

    let ledger = read_ledger(&path).unwrap();
    let other = RandomConfig {
        seed: cfg.seed + 1,
        ..cfg
    };
    let err = resume_random_streaming(&app, &other, &ledger, &Telemetry::disabled()).unwrap_err();
    assert!(err.contains("does not match"), "{err}");
    std::fs::remove_file(&path).ok();
}

/// `fisec stats` round-trip: the report rebuilt from the ledger alone
/// must match the live one byte for byte — tallies, violation rate,
/// Wilson and Clopper-Pearson intervals, histograms.
#[test]
fn stats_replay_rebuilds_the_live_report_byte_for_byte() {
    let app = AppSpec::ftpd();
    let cfg = cfg(ExecutionMode::Snapshot, 4);
    let path = tmp("roundtrip.jsonl");
    let tel = Telemetry::new(Arc::new(JsonlSink::create(&path).unwrap()), false);
    let live = run_random_streaming(&app, &cfg, &tel).unwrap();
    tel.sink.flush();

    let replay = trace::read_trace(&path).unwrap();
    assert_eq!(replay.random.len(), 1);
    let replayed = &replay.random[0];
    assert_eq!(replayed.stats, live);
    assert_eq!(render_report(&replayed.stats), render_report(&live));
    assert_eq!(
        replayed.stats.json_summary(),
        live.json_summary(),
        "intervals must survive the ledger round-trip"
    );
    assert!(replayed.end.is_some(), "finished ledger carries a trailer");
    std::fs::remove_file(&path).ok();
}

/// `--target-ci` stops at a deterministic batch boundary regardless of
/// worker count: the stop decision is made by the in-order committer,
/// never by a racing shard.
#[test]
fn target_ci_stop_point_is_thread_count_invariant() {
    let app = AppSpec::ftpd();
    let make = |threads| RandomConfig {
        runs: 600,
        seed: SEED,
        threads,
        batch: 50,
        target_ci: Some(0.05),
        ..RandomConfig::default()
    };
    let one = run_random_streaming(&app, &make(1), &Telemetry::disabled()).unwrap();
    assert!(one.result.runs < 600, "0.05 must stop the campaign early");
    assert!(
        one.result.runs.is_multiple_of(50),
        "stops on a batch boundary"
    );
    assert!(one.wilson95().width() < 0.05);
    for threads in [2, 8] {
        let many = run_random_streaming(&app, &make(threads), &Telemetry::disabled()).unwrap();
        assert_eq!(many, one, "x{threads} stopped at a different point");
    }
}
