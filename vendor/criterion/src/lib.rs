//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion 0.5 API the bench harness
//! uses: `Criterion::{bench_function, benchmark_group, sample_size}`,
//! groups with `throughput`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is plain
//! wall-clock: per sample, the closure runs once and the median/min/max
//! over samples are reported. Like upstream, running the bench binary
//! without `--bench` (as `cargo test` does) executes nothing so test
//! runs stay fast; `cargo bench` passes `--bench` and runs everything.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work performed per iteration, for derived rates in reports.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        run_bench(name, self.sample_size, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.name, name),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Close the group (upstream API shape; nothing to flush here).
    pub fn finish(self) {}
}

/// Timing handle passed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Time one execution of `f` (one sample = one call).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        let out = f();
        self.elapsed = Some(start.elapsed());
        drop(black_box(out));
    }
}

fn run_bench(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Warm-up run (not recorded).
    let mut b = Bencher::default();
    f(&mut b);
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher::default();
        f(&mut b);
        times.push(b.elapsed.unwrap_or_default());
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    let min = times[0];
    let max = times[times.len() - 1];
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!(
            "  {:.1} MiB/s",
            n as f64 / median.as_secs_f64() / (1024.0 * 1024.0)
        ),
        Throughput::Elements(n) => {
            format!("  {:.2} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
        }
    });
    println!(
        "{name:<40} time: [{min:>10.2?} {median:>10.2?} {max:>10.2?}]{}",
        rate.unwrap_or_default()
    );
}

/// Collect benchmark functions into a named group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes --bench; `cargo test` runs bench
            // binaries without it, expecting a fast no-op (upstream
            // criterion behaves the same way).
            if !::std::env::args().any(|a| a == "--bench") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(1024));
        g.sample_size(2);
        g.bench_function("counted", |b| {
            calls += 1;
            b.iter(|| black_box(calls))
        });
        g.finish();
        // Warm-up + 2 samples.
        assert_eq!(calls, 3);
    }
}
