//! A total decoder for the IA-32 subset.
//!
//! `decode` never fails: undefined, privileged-in-user-mode and truncated
//! byte sequences decode to [`Op::Invalid`] instructions that fault when
//! executed. This totality matters because the fault injector produces
//! arbitrary bytes and the study's outcome distribution depends on what a
//! real processor would do with them.
//!
//! Documented simplifications (see DESIGN.md §6):
//!
//! * segment-override prefixes are decoded and ignored (flat memory);
//! * the 0x67 address-size prefix on an instruction with a memory operand
//!   decodes as a privileged-class invalid instruction (16-bit addressing is
//!   not modelled; the resulting fault class, SIGSEGV-like, matches what a
//!   wild 16-bit effective address would almost always produce);
//! * x87 opcodes decode with their correct length and execute as integer
//!   no-ops.

use crate::inst::{
    Cond, Inst, InvalidKind, MemOperand, Op, OpSize, Operand, Reg16, Reg32, Reg8, RepKind, StrOp,
};

/// Byte cursor over the fetch window.
struct Cur<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(bytes: &'a [u8]) -> Cur<'a> {
        Cur { bytes, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, InvalidKind> {
        if self.pos >= 15 {
            return Err(InvalidKind::TooLong);
        }
        let b = *self.bytes.get(self.pos).ok_or(InvalidKind::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, InvalidKind> {
        let lo = self.u8()? as u16;
        let hi = self.u8()? as u16;
        Ok(lo | (hi << 8))
    }

    fn u32(&mut self) -> Result<u32, InvalidKind> {
        let mut v = 0u32;
        for i in 0..4 {
            v |= (self.u8()? as u32) << (8 * i);
        }
        Ok(v)
    }

    fn i8(&mut self) -> Result<i8, InvalidKind> {
        Ok(self.u8()? as i8)
    }

    fn i32(&mut self) -> Result<i32, InvalidKind> {
        Ok(self.u32()? as i32)
    }
}

/// Prefixes gathered before the opcode.
#[derive(Default, Clone, Copy)]
struct Prefixes {
    opsize: bool,
    addrsize: bool,
    lock: bool,
    rep: Option<RepKind>,
    seg: bool,
}

/// Immediate width selector for the current operand size.
fn imm_for(c: &mut Cur, osz: OpSize) -> Result<i64, InvalidKind> {
    Ok(match osz {
        OpSize::Byte => c.i8()? as i64,
        OpSize::Word => c.u16()? as i16 as i64,
        OpSize::Dword => c.i32()? as i64,
    })
}

/// Wrap a register number as an operand of the given size.
fn reg_op(n: u8, osz: OpSize) -> Operand {
    match osz {
        OpSize::Byte => Operand::Reg8(Reg8::from_num(n)),
        OpSize::Word => Operand::Reg16(Reg16::from_num(n)),
        OpSize::Dword => Operand::Reg(Reg32::from_num(n)),
    }
}

/// Decoded ModRM: the `reg` field and the r/m operand.
struct ModRm {
    reg: u8,
    rm: Operand,
}

/// Decode a ModRM byte (and SIB/displacement) with 32-bit addressing.
fn modrm(c: &mut Cur, osz: OpSize, pfx: &Prefixes) -> Result<ModRm, InvalidKind> {
    let b = c.u8()?;
    let md = b >> 6;
    let reg = (b >> 3) & 7;
    let rm = b & 7;
    if md == 3 {
        return Ok(ModRm {
            reg,
            rm: reg_op(rm, osz),
        });
    }
    // Memory operand. 16-bit addressing is not modelled.
    if pfx.addrsize {
        return Err(InvalidKind::Privileged);
    }
    let mut mem = MemOperand::default();
    let rm_final = rm;
    if rm_final == 4 {
        // SIB byte.
        let sib = c.u8()?;
        let scale = 1u8 << (sib >> 6);
        let index = (sib >> 3) & 7;
        let base = sib & 7;
        if index != 4 {
            mem.index = Some((Reg32::from_num(index), scale));
        }
        if base == 5 && md == 0 {
            mem.disp = c.i32()?;
        } else {
            mem.base = Some(Reg32::from_num(base));
        }
    } else if rm_final == 5 && md == 0 {
        mem.disp = c.i32()?;
    } else {
        mem.base = Some(Reg32::from_num(rm_final));
    }
    match md {
        1 => mem.disp = mem.disp.wrapping_add(c.i8()? as i32),
        2 => mem.disp = mem.disp.wrapping_add(c.i32()?),
        _ => {}
    }
    Ok(ModRm {
        reg,
        rm: Operand::Mem(mem),
    })
}

const GRP1: [Op; 8] = [
    Op::Add,
    Op::Or,
    Op::Adc,
    Op::Sbb,
    Op::And,
    Op::Sub,
    Op::Xor,
    Op::Cmp,
];

const GRP2: [Op; 8] = [
    Op::Rol,
    Op::Ror,
    Op::Rcl,
    Op::Rcr,
    Op::Shl,
    Op::Shr,
    Op::Shl, // /6 is an alias of SAL/SHL
    Op::Sar,
];

/// Decode one instruction from `bytes` (the fetch window). The returned
/// instruction's `len` is the number of bytes consumed; for invalid
/// encodings `len` covers the bytes examined (at least 1 when any byte was
/// available).
pub fn decode(bytes: &[u8]) -> Inst {
    let mut c = Cur::new(bytes);
    let mut pfx = Prefixes::default();
    match decode_inner(&mut c, &mut pfx) {
        Ok(mut i) => {
            i.len = c.pos.max(1) as u8;
            if pfx.lock && !lockable(&i) {
                return invalid(InvalidKind::Undefined, c.pos);
            }
            i
        }
        Err(kind) => invalid(kind, c.pos),
    }
}

fn invalid(kind: InvalidKind, pos: usize) -> Inst {
    Inst::new(Op::Invalid(kind)).len(pos.max(1) as u8)
}

fn lockable(i: &Inst) -> bool {
    let mem_dst = matches!(i.dst, Some(Operand::Mem(_)));
    mem_dst
        && matches!(
            i.op,
            Op::Add
                | Op::Or
                | Op::Adc
                | Op::Sbb
                | Op::And
                | Op::Sub
                | Op::Xor
                | Op::Not
                | Op::Neg
                | Op::Inc
                | Op::Dec
                | Op::Xchg
                | Op::Xadd
                | Op::Cmpxchg
                | Op::Bts
                | Op::Btr
                | Op::Btc
        )
}

fn decode_inner(c: &mut Cur, pfx: &mut Prefixes) -> Result<Inst, InvalidKind> {
    // Prefix loop.
    let opcode = loop {
        let b = c.u8()?;
        match b {
            0x66 => pfx.opsize = true,
            0x67 => pfx.addrsize = true,
            0xF0 => pfx.lock = true,
            0xF2 => pfx.rep = Some(RepKind::RepNe),
            0xF3 => pfx.rep = Some(RepKind::RepE),
            0x26 | 0x2E | 0x36 | 0x3E | 0x64 | 0x65 => pfx.seg = true,
            _ => break b,
        }
    };
    let osz = if pfx.opsize {
        OpSize::Word
    } else {
        OpSize::Dword
    };

    match opcode {
        // ── ALU block ────────────────────────────────────────────────
        0x00..=0x05
        | 0x08..=0x0D
        | 0x10..=0x15
        | 0x18..=0x1D
        | 0x20..=0x25
        | 0x28..=0x2D
        | 0x30..=0x35
        | 0x38..=0x3D => {
            let op = GRP1[(opcode >> 3) as usize];
            match opcode & 7 {
                0 => {
                    let m = modrm(c, OpSize::Byte, pfx)?;
                    Ok(Inst::new(op)
                        .dst(m.rm)
                        .src(reg_op(m.reg, OpSize::Byte))
                        .size(OpSize::Byte))
                }
                1 => {
                    let m = modrm(c, osz, pfx)?;
                    Ok(Inst::new(op).dst(m.rm).src(reg_op(m.reg, osz)).size(osz))
                }
                2 => {
                    let m = modrm(c, OpSize::Byte, pfx)?;
                    Ok(Inst::new(op)
                        .dst(reg_op(m.reg, OpSize::Byte))
                        .src(m.rm)
                        .size(OpSize::Byte))
                }
                3 => {
                    let m = modrm(c, osz, pfx)?;
                    Ok(Inst::new(op).dst(reg_op(m.reg, osz)).src(m.rm).size(osz))
                }
                4 => {
                    let imm = c.i8()? as i64;
                    Ok(Inst::new(op)
                        .dst(Operand::Reg8(Reg8::Al))
                        .src(Operand::Imm(imm))
                        .size(OpSize::Byte))
                }
                5 => {
                    let imm = imm_for(c, osz)?;
                    Ok(Inst::new(op)
                        .dst(reg_op(0, osz))
                        .src(Operand::Imm(imm))
                        .size(osz))
                }
                _ => unreachable!(),
            }
        }

        // ── segment pushes / pops ────────────────────────────────────
        // Pushing a segment register pushes the (fixed) Linux user
        // selector; popping one would reload a segment and can fault on an
        // arbitrary stack value, so it is privileged-class here.
        0x06 | 0x0E | 0x16 | 0x1E => Ok(Inst::new(Op::Push).dst(Operand::Imm(0x2B)).size(osz)),
        0x07 | 0x17 | 0x1F => Err(InvalidKind::Privileged),

        0x0F => decode_0f(c, pfx, osz),

        0x27 => Ok(Inst::new(Op::Daa).size(OpSize::Byte)),
        0x2F => Ok(Inst::new(Op::Das).size(OpSize::Byte)),
        0x37 => Ok(Inst::new(Op::Aaa).size(OpSize::Byte)),
        0x3F => Ok(Inst::new(Op::Aas).size(OpSize::Byte)),

        // ── inc/dec/push/pop reg ─────────────────────────────────────
        0x40..=0x47 => Ok(Inst::new(Op::Inc).dst(reg_op(opcode & 7, osz)).size(osz)),
        0x48..=0x4F => Ok(Inst::new(Op::Dec).dst(reg_op(opcode & 7, osz)).size(osz)),
        0x50..=0x57 => Ok(Inst::new(Op::Push).dst(reg_op(opcode & 7, osz)).size(osz)),
        0x58..=0x5F => Ok(Inst::new(Op::Pop).dst(reg_op(opcode & 7, osz)).size(osz)),

        0x60 => Ok(Inst::new(Op::Pusha)),
        0x61 => Ok(Inst::new(Op::Popa)),
        0x62 => {
            let m = modrm(c, osz, pfx)?;
            if !matches!(m.rm, Operand::Mem(_)) {
                return Err(InvalidKind::Undefined);
            }
            Ok(Inst::new(Op::Bound)
                .dst(reg_op(m.reg, osz))
                .src(m.rm)
                .size(osz))
        }
        0x63 => {
            let m = modrm(c, OpSize::Word, pfx)?;
            Ok(Inst::new(Op::Arpl)
                .dst(m.rm)
                .src(reg_op(m.reg, OpSize::Word))
                .size(OpSize::Word))
        }

        0x68 => {
            let imm = imm_for(c, osz)?;
            Ok(Inst::new(Op::Push).dst(Operand::Imm(imm)).size(osz))
        }
        0x69 => {
            let m = modrm(c, osz, pfx)?;
            let imm = imm_for(c, osz)?;
            Ok(Inst {
                op: Op::Imul3,
                dst: Some(reg_op(m.reg, osz)),
                src: Some(m.rm),
                src2: Some(Operand::Imm(imm)),
                size: osz,
                size2: osz,
                rep: None,
                len: 0,
            })
        }
        0x6A => {
            let imm = c.i8()? as i64;
            Ok(Inst::new(Op::Push).dst(Operand::Imm(imm)).size(osz))
        }
        0x6B => {
            let m = modrm(c, osz, pfx)?;
            let imm = c.i8()? as i64;
            Ok(Inst {
                op: Op::Imul3,
                dst: Some(reg_op(m.reg, osz)),
                src: Some(m.rm),
                src2: Some(Operand::Imm(imm)),
                size: osz,
                size2: osz,
                rep: None,
                len: 0,
            })
        }
        0x6C..=0x6F => Err(InvalidKind::Privileged), // ins/outs: I/O ports

        // ── conditional branches, rel8 ───────────────────────────────
        0x70..=0x7F => {
            let d = c.i8()? as i32;
            Ok(Inst::new(Op::Jcc(Cond::from_nibble(opcode & 0xF))).dst(Operand::Rel(d)))
        }

        // ── group 1 immediates ───────────────────────────────────────
        0x80 | 0x82 => {
            let m = modrm(c, OpSize::Byte, pfx)?;
            let imm = c.i8()? as i64;
            Ok(Inst::new(GRP1[m.reg as usize])
                .dst(m.rm)
                .src(Operand::Imm(imm))
                .size(OpSize::Byte))
        }
        0x81 => {
            let m = modrm(c, osz, pfx)?;
            let imm = imm_for(c, osz)?;
            Ok(Inst::new(GRP1[m.reg as usize])
                .dst(m.rm)
                .src(Operand::Imm(imm))
                .size(osz))
        }
        0x83 => {
            let m = modrm(c, osz, pfx)?;
            let imm = c.i8()? as i64;
            Ok(Inst::new(GRP1[m.reg as usize])
                .dst(m.rm)
                .src(Operand::Imm(imm))
                .size(osz))
        }

        0x84 => {
            let m = modrm(c, OpSize::Byte, pfx)?;
            Ok(Inst::new(Op::Test)
                .dst(m.rm)
                .src(reg_op(m.reg, OpSize::Byte))
                .size(OpSize::Byte))
        }
        0x85 => {
            let m = modrm(c, osz, pfx)?;
            Ok(Inst::new(Op::Test)
                .dst(m.rm)
                .src(reg_op(m.reg, osz))
                .size(osz))
        }
        0x86 => {
            let m = modrm(c, OpSize::Byte, pfx)?;
            Ok(Inst::new(Op::Xchg)
                .dst(m.rm)
                .src(reg_op(m.reg, OpSize::Byte))
                .size(OpSize::Byte))
        }
        0x87 => {
            let m = modrm(c, osz, pfx)?;
            Ok(Inst::new(Op::Xchg)
                .dst(m.rm)
                .src(reg_op(m.reg, osz))
                .size(osz))
        }

        // ── mov ──────────────────────────────────────────────────────
        0x88 => {
            let m = modrm(c, OpSize::Byte, pfx)?;
            Ok(Inst::new(Op::Mov)
                .dst(m.rm)
                .src(reg_op(m.reg, OpSize::Byte))
                .size(OpSize::Byte))
        }
        0x89 => {
            let m = modrm(c, osz, pfx)?;
            Ok(Inst::new(Op::Mov)
                .dst(m.rm)
                .src(reg_op(m.reg, osz))
                .size(osz))
        }
        0x8A => {
            let m = modrm(c, OpSize::Byte, pfx)?;
            Ok(Inst::new(Op::Mov)
                .dst(reg_op(m.reg, OpSize::Byte))
                .src(m.rm)
                .size(OpSize::Byte))
        }
        0x8B => {
            let m = modrm(c, osz, pfx)?;
            Ok(Inst::new(Op::Mov)
                .dst(reg_op(m.reg, osz))
                .src(m.rm)
                .size(osz))
        }
        0x8C => {
            // mov r/m16, sreg — stores the fixed user selector.
            let m = modrm(c, OpSize::Word, pfx)?;
            if m.reg > 5 {
                return Err(InvalidKind::Undefined);
            }
            Ok(Inst::new(Op::Mov)
                .dst(m.rm)
                .src(Operand::Imm(0x2B))
                .size(OpSize::Word))
        }
        0x8D => {
            let m = modrm(c, osz, pfx)?;
            if !matches!(m.rm, Operand::Mem(_)) {
                return Err(InvalidKind::Undefined);
            }
            Ok(Inst::new(Op::Lea)
                .dst(reg_op(m.reg, OpSize::Dword))
                .src(m.rm))
        }
        0x8E => Err(InvalidKind::Privileged), // mov sreg, r/m
        0x8F => {
            let m = modrm(c, osz, pfx)?;
            if m.reg != 0 {
                return Err(InvalidKind::Undefined);
            }
            Ok(Inst::new(Op::Pop).dst(m.rm).size(osz))
        }

        0x90 => Ok(Inst::new(Op::Nop)),
        0x91..=0x97 => Ok(Inst::new(Op::Xchg)
            .dst(reg_op(0, osz))
            .src(reg_op(opcode & 7, osz))
            .size(osz)),

        0x98 => Ok(Inst::new(Op::Cwde).size(osz)),
        0x99 => Ok(Inst::new(Op::Cdq).size(osz)),
        0x9A => Err(InvalidKind::Privileged), // call far
        0x9B => Ok(Inst::new(Op::Fwait)),
        0x9C => Ok(Inst::new(Op::Pushf)),
        0x9D => Ok(Inst::new(Op::Popf)),
        0x9E => Ok(Inst::new(Op::Sahf)),
        0x9F => Ok(Inst::new(Op::Lahf)),

        // ── moffs forms ──────────────────────────────────────────────
        0xA0 => {
            let a = c.u32()?;
            Ok(Inst::new(Op::Mov)
                .dst(Operand::Reg8(Reg8::Al))
                .src(Operand::Mem(MemOperand::abs(a)))
                .size(OpSize::Byte))
        }
        0xA1 => {
            let a = c.u32()?;
            Ok(Inst::new(Op::Mov)
                .dst(reg_op(0, osz))
                .src(Operand::Mem(MemOperand::abs(a)))
                .size(osz))
        }
        0xA2 => {
            let a = c.u32()?;
            Ok(Inst::new(Op::Mov)
                .dst(Operand::Mem(MemOperand::abs(a)))
                .src(Operand::Reg8(Reg8::Al))
                .size(OpSize::Byte))
        }
        0xA3 => {
            let a = c.u32()?;
            Ok(Inst::new(Op::Mov)
                .dst(Operand::Mem(MemOperand::abs(a)))
                .src(reg_op(0, osz))
                .size(osz))
        }

        // ── string ops ───────────────────────────────────────────────
        0xA4 => Ok(str_inst(StrOp::Movs, OpSize::Byte, pfx)),
        0xA5 => Ok(str_inst(StrOp::Movs, osz, pfx)),
        0xA6 => Ok(str_inst(StrOp::Cmps, OpSize::Byte, pfx)),
        0xA7 => Ok(str_inst(StrOp::Cmps, osz, pfx)),
        0xA8 => {
            let imm = c.i8()? as i64;
            Ok(Inst::new(Op::Test)
                .dst(Operand::Reg8(Reg8::Al))
                .src(Operand::Imm(imm))
                .size(OpSize::Byte))
        }
        0xA9 => {
            let imm = imm_for(c, osz)?;
            Ok(Inst::new(Op::Test)
                .dst(reg_op(0, osz))
                .src(Operand::Imm(imm))
                .size(osz))
        }
        0xAA => Ok(str_inst(StrOp::Stos, OpSize::Byte, pfx)),
        0xAB => Ok(str_inst(StrOp::Stos, osz, pfx)),
        0xAC => Ok(str_inst(StrOp::Lods, OpSize::Byte, pfx)),
        0xAD => Ok(str_inst(StrOp::Lods, osz, pfx)),
        0xAE => Ok(str_inst(StrOp::Scas, OpSize::Byte, pfx)),
        0xAF => Ok(str_inst(StrOp::Scas, osz, pfx)),

        // ── mov reg, imm ─────────────────────────────────────────────
        0xB0..=0xB7 => {
            let imm = c.u8()? as i64;
            Ok(Inst::new(Op::Mov)
                .dst(Operand::Reg8(Reg8::from_num(opcode & 7)))
                .src(Operand::Imm(imm))
                .size(OpSize::Byte))
        }
        0xB8..=0xBF => {
            let imm = imm_for(c, osz)?;
            Ok(Inst::new(Op::Mov)
                .dst(reg_op(opcode & 7, osz))
                .src(Operand::Imm(imm))
                .size(osz))
        }

        // ── shifts ───────────────────────────────────────────────────
        0xC0 => {
            let m = modrm(c, OpSize::Byte, pfx)?;
            let imm = c.u8()? as i64;
            Ok(Inst::new(GRP2[m.reg as usize])
                .dst(m.rm)
                .src(Operand::Imm(imm))
                .size(OpSize::Byte))
        }
        0xC1 => {
            let m = modrm(c, osz, pfx)?;
            let imm = c.u8()? as i64;
            Ok(Inst::new(GRP2[m.reg as usize])
                .dst(m.rm)
                .src(Operand::Imm(imm))
                .size(osz))
        }
        0xD0 => {
            let m = modrm(c, OpSize::Byte, pfx)?;
            Ok(Inst::new(GRP2[m.reg as usize])
                .dst(m.rm)
                .src(Operand::Imm(1))
                .size(OpSize::Byte))
        }
        0xD1 => {
            let m = modrm(c, osz, pfx)?;
            Ok(Inst::new(GRP2[m.reg as usize])
                .dst(m.rm)
                .src(Operand::Imm(1))
                .size(osz))
        }
        0xD2 => {
            let m = modrm(c, OpSize::Byte, pfx)?;
            Ok(Inst::new(GRP2[m.reg as usize])
                .dst(m.rm)
                .src(Operand::Reg8(Reg8::Cl))
                .size(OpSize::Byte))
        }
        0xD3 => {
            let m = modrm(c, osz, pfx)?;
            Ok(Inst::new(GRP2[m.reg as usize])
                .dst(m.rm)
                .src(Operand::Reg8(Reg8::Cl))
                .size(osz))
        }

        0xC2 => {
            let imm = c.u16()?;
            Ok(Inst::new(Op::Ret(imm)))
        }
        0xC3 => Ok(Inst::new(Op::Ret(0))),
        0xC4 | 0xC5 => Err(InvalidKind::Privileged), // les/lds
        0xC6 => {
            let m = modrm(c, OpSize::Byte, pfx)?;
            if m.reg != 0 {
                return Err(InvalidKind::Undefined);
            }
            let imm = c.u8()? as i64;
            Ok(Inst::new(Op::Mov)
                .dst(m.rm)
                .src(Operand::Imm(imm))
                .size(OpSize::Byte))
        }
        0xC7 => {
            let m = modrm(c, osz, pfx)?;
            if m.reg != 0 {
                return Err(InvalidKind::Undefined);
            }
            let imm = imm_for(c, osz)?;
            Ok(Inst::new(Op::Mov)
                .dst(m.rm)
                .src(Operand::Imm(imm))
                .size(osz))
        }
        0xC8 => {
            let frame = c.u16()?;
            let nest = c.u8()?;
            Ok(Inst::new(Op::Enter(frame, nest)))
        }
        0xC9 => Ok(Inst::new(Op::Leave)),
        0xCA | 0xCB | 0xCF => Err(InvalidKind::Privileged), // retf/iret
        0xCC => Ok(Inst::new(Op::Int3)),
        0xCD => {
            let n = c.u8()?;
            Ok(Inst::new(Op::Int(n)))
        }
        0xCE => Ok(Inst::new(Op::Into)),

        0xD4 => {
            let n = c.u8()?;
            Ok(Inst::new(Op::Aam(n)).size(OpSize::Byte))
        }
        0xD5 => {
            let n = c.u8()?;
            Ok(Inst::new(Op::Aad(n)).size(OpSize::Byte))
        }
        0xD6 => Ok(Inst::new(Op::Salc).size(OpSize::Byte)),
        0xD7 => Ok(Inst::new(Op::Xlat).size(OpSize::Byte)),

        // ── x87: decode length via ModRM, execute as no-op ───────────
        0xD8..=0xDF => {
            let _ = modrm(c, OpSize::Dword, pfx)?;
            Ok(Inst::new(Op::Fpu))
        }

        // ── loops ────────────────────────────────────────────────────
        0xE0 => {
            let d = c.i8()? as i32;
            Ok(Inst::new(Op::Loopne).dst(Operand::Rel(d)))
        }
        0xE1 => {
            let d = c.i8()? as i32;
            Ok(Inst::new(Op::Loope).dst(Operand::Rel(d)))
        }
        0xE2 => {
            let d = c.i8()? as i32;
            Ok(Inst::new(Op::Loop).dst(Operand::Rel(d)))
        }
        0xE3 => {
            let d = c.i8()? as i32;
            Ok(Inst::new(Op::Jecxz).dst(Operand::Rel(d)))
        }

        0xE4..=0xE7 | 0xEC..=0xEF => Err(InvalidKind::Privileged), // in/out

        0xE8 => {
            let d = match osz {
                OpSize::Word => c.u16()? as i16 as i32,
                _ => c.i32()?,
            };
            Ok(Inst::new(Op::Call).dst(Operand::Rel(d)).size(osz))
        }
        0xE9 => {
            let d = match osz {
                OpSize::Word => c.u16()? as i16 as i32,
                _ => c.i32()?,
            };
            Ok(Inst::new(Op::Jmp).dst(Operand::Rel(d)).size(osz))
        }
        0xEA => Err(InvalidKind::Privileged), // jmp far
        0xEB => {
            let d = c.i8()? as i32;
            Ok(Inst::new(Op::Jmp).dst(Operand::Rel(d)))
        }

        0xF1 => Ok(Inst::new(Op::Int(1))),
        0xF4 => Err(InvalidKind::Privileged), // hlt
        0xF5 => Ok(Inst::new(Op::Cmc)),

        // ── group 3 ──────────────────────────────────────────────────
        0xF6 => {
            let m = modrm(c, OpSize::Byte, pfx)?;
            grp3(c, m, OpSize::Byte)
        }
        0xF7 => {
            let m = modrm(c, osz, pfx)?;
            grp3(c, m, osz)
        }

        0xF8 => Ok(Inst::new(Op::Clc)),
        0xF9 => Ok(Inst::new(Op::Stc)),
        0xFA | 0xFB => Err(InvalidKind::Privileged), // cli/sti
        0xFC => Ok(Inst::new(Op::Cld)),
        0xFD => Ok(Inst::new(Op::Std)),

        0xFE => {
            let m = modrm(c, OpSize::Byte, pfx)?;
            match m.reg {
                0 => Ok(Inst::new(Op::Inc).dst(m.rm).size(OpSize::Byte)),
                1 => Ok(Inst::new(Op::Dec).dst(m.rm).size(OpSize::Byte)),
                _ => Err(InvalidKind::Undefined),
            }
        }
        0xFF => {
            let m = modrm(c, osz, pfx)?;
            match m.reg {
                0 => Ok(Inst::new(Op::Inc).dst(m.rm).size(osz)),
                1 => Ok(Inst::new(Op::Dec).dst(m.rm).size(osz)),
                2 => Ok(Inst::new(Op::CallInd).dst(m.rm).size(osz)),
                3 | 5 => Err(InvalidKind::Privileged), // far forms
                4 => Ok(Inst::new(Op::JmpInd).dst(m.rm).size(osz)),
                6 => Ok(Inst::new(Op::Push).dst(m.rm).size(osz)),
                _ => Err(InvalidKind::Undefined),
            }
        }

        // 0x66/0x67/F0/F2/F3/seg handled as prefixes above; anything that
        // falls through here is undefined in our map.
        _ => Err(InvalidKind::Undefined),
    }
}

fn str_inst(op: StrOp, size: OpSize, pfx: &Prefixes) -> Inst {
    let mut i = Inst::new(Op::Str(op)).size(size);
    i.rep = pfx.rep;
    i
}

fn grp3(c: &mut Cur, m: ModRm, osz: OpSize) -> Result<Inst, InvalidKind> {
    match m.reg {
        0 | 1 => {
            let imm = imm_for(c, osz)?;
            Ok(Inst::new(Op::Test)
                .dst(m.rm)
                .src(Operand::Imm(imm))
                .size(osz))
        }
        2 => Ok(Inst::new(Op::Not).dst(m.rm).size(osz)),
        3 => Ok(Inst::new(Op::Neg).dst(m.rm).size(osz)),
        4 => Ok(Inst::new(Op::Mul).dst(m.rm).size(osz)),
        5 => Ok(Inst::new(Op::Imul1).dst(m.rm).size(osz)),
        6 => Ok(Inst::new(Op::Div).dst(m.rm).size(osz)),
        7 => Ok(Inst::new(Op::Idiv).dst(m.rm).size(osz)),
        _ => unreachable!(),
    }
}

/// Two-byte (0x0F-escaped) opcodes.
fn decode_0f(c: &mut Cur, pfx: &Prefixes, osz: OpSize) -> Result<Inst, InvalidKind> {
    let op2 = c.u8()?;
    match op2 {
        // Conditional branches rel32 (rel16 under the operand-size prefix;
        // the paper's footnote excludes 16-bit offsets from its campaigns
        // but the decoder still has to handle bytes that flip into them).
        0x80..=0x8F => {
            let d = match osz {
                OpSize::Word => c.u16()? as i16 as i32,
                _ => c.i32()?,
            };
            Ok(Inst::new(Op::Jcc(Cond::from_nibble(op2 & 0xF)))
                .dst(Operand::Rel(d))
                .size(osz))
        }
        0x90..=0x9F => {
            let m = modrm(c, OpSize::Byte, pfx)?;
            Ok(Inst::new(Op::Setcc(Cond::from_nibble(op2 & 0xF)))
                .dst(m.rm)
                .size(OpSize::Byte))
        }
        0x18..=0x1F => {
            // Hint-nop / prefetch space: decode ModRM, execute as nop.
            let _ = modrm(c, osz, pfx)?;
            Ok(Inst::new(Op::Nop))
        }
        0x31 => Ok(Inst::new(Op::Rdtsc)),
        0xA0 | 0xA8 => Ok(Inst::new(Op::Push).dst(Operand::Imm(0x33)).size(osz)),
        0xA1 | 0xA9 => Err(InvalidKind::Privileged), // pop fs/gs
        0xA2 => Ok(Inst::new(Op::Cpuid)),
        0xA3 | 0xAB | 0xB3 | 0xBB => {
            let m = modrm(c, osz, pfx)?;
            let op = match op2 {
                0xA3 => Op::Bt,
                0xAB => Op::Bts,
                0xB3 => Op::Btr,
                _ => Op::Btc,
            };
            Ok(Inst::new(op).dst(m.rm).src(reg_op(m.reg, osz)).size(osz))
        }
        0xBA => {
            let m = modrm(c, osz, pfx)?;
            let imm = c.u8()? as i64;
            let op = match m.reg {
                4 => Op::Bt,
                5 => Op::Bts,
                6 => Op::Btr,
                7 => Op::Btc,
                _ => return Err(InvalidKind::Undefined),
            };
            Ok(Inst::new(op).dst(m.rm).src(Operand::Imm(imm)).size(osz))
        }
        0xA4 | 0xAC => {
            let m = modrm(c, osz, pfx)?;
            let imm = c.u8()? as i64;
            let op = if op2 == 0xA4 { Op::Shld } else { Op::Shrd };
            Ok(Inst {
                op,
                dst: Some(m.rm),
                src: Some(reg_op(m.reg, osz)),
                src2: Some(Operand::Imm(imm)),
                size: osz,
                size2: osz,
                rep: None,
                len: 0,
            })
        }
        0xA5 | 0xAD => {
            let m = modrm(c, osz, pfx)?;
            let op = if op2 == 0xA5 { Op::Shld } else { Op::Shrd };
            Ok(Inst {
                op,
                dst: Some(m.rm),
                src: Some(reg_op(m.reg, osz)),
                src2: Some(Operand::Reg8(Reg8::Cl)),
                size: osz,
                size2: osz,
                rep: None,
                len: 0,
            })
        }
        0xAF => {
            let m = modrm(c, osz, pfx)?;
            Ok(Inst::new(Op::Imul2)
                .dst(reg_op(m.reg, osz))
                .src(m.rm)
                .size(osz))
        }
        0xB0 => {
            let m = modrm(c, OpSize::Byte, pfx)?;
            Ok(Inst::new(Op::Cmpxchg)
                .dst(m.rm)
                .src(reg_op(m.reg, OpSize::Byte))
                .size(OpSize::Byte))
        }
        0xB1 => {
            let m = modrm(c, osz, pfx)?;
            Ok(Inst::new(Op::Cmpxchg)
                .dst(m.rm)
                .src(reg_op(m.reg, osz))
                .size(osz))
        }
        0xB6 => {
            let m = modrm(c, OpSize::Byte, pfx)?;
            let mut i = Inst::new(Op::Movzx)
                .dst(reg_op(m.reg, osz))
                .src(m.rm)
                .size(osz);
            i.size2 = OpSize::Byte;
            Ok(i)
        }
        0xB7 => {
            let m = modrm(c, OpSize::Word, pfx)?;
            let mut i = Inst::new(Op::Movzx)
                .dst(reg_op(m.reg, OpSize::Dword))
                .src(m.rm)
                .size(OpSize::Dword);
            i.size2 = OpSize::Word;
            Ok(i)
        }
        0xBE => {
            let m = modrm(c, OpSize::Byte, pfx)?;
            let mut i = Inst::new(Op::Movsx)
                .dst(reg_op(m.reg, osz))
                .src(m.rm)
                .size(osz);
            i.size2 = OpSize::Byte;
            Ok(i)
        }
        0xBF => {
            let m = modrm(c, OpSize::Word, pfx)?;
            let mut i = Inst::new(Op::Movsx)
                .dst(reg_op(m.reg, OpSize::Dword))
                .src(m.rm)
                .size(OpSize::Dword);
            i.size2 = OpSize::Word;
            Ok(i)
        }
        0xC0 => {
            let m = modrm(c, OpSize::Byte, pfx)?;
            Ok(Inst::new(Op::Xadd)
                .dst(m.rm)
                .src(reg_op(m.reg, OpSize::Byte))
                .size(OpSize::Byte))
        }
        0xC1 => {
            let m = modrm(c, osz, pfx)?;
            Ok(Inst::new(Op::Xadd)
                .dst(m.rm)
                .src(reg_op(m.reg, osz))
                .size(osz))
        }
        0xC8..=0xCF => Ok(Inst::new(Op::Bswap).dst(Operand::Reg(Reg32::from_num(op2 & 7)))),
        // System instructions (lgdt, mov cr, invlpg, wrmsr, ...) and
        // anything else in the 0x0F space we do not model.
        0x00..=0x09 | 0x20..=0x23 | 0x30 | 0x32..=0x33 => Err(InvalidKind::Privileged),
        _ => Err(InvalidKind::Undefined),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(bytes: &[u8]) -> Inst {
        decode(bytes)
    }

    #[test]
    fn decode_mov_reg_imm32() {
        let i = d(&[0xB8, 0x78, 0x56, 0x34, 0x12]);
        assert_eq!(i.op, Op::Mov);
        assert_eq!(i.dst, Some(Operand::Reg(Reg32::Eax)));
        assert_eq!(i.src, Some(Operand::Imm(0x12345678)));
        assert_eq!(i.len, 5);
    }

    #[test]
    fn decode_jcc_rel8() {
        let i = d(&[0x74, 0x06]);
        assert_eq!(i.op, Op::Jcc(Cond::E));
        assert_eq!(i.dst, Some(Operand::Rel(6)));
        assert_eq!(i.len, 2);
        let i = d(&[0x75, 0xFE]); // jne .-2
        assert_eq!(i.op, Op::Jcc(Cond::Ne));
        assert_eq!(i.dst, Some(Operand::Rel(-2)));
    }

    #[test]
    fn decode_jcc_rel32() {
        let i = d(&[0x0F, 0x84, 0x10, 0x00, 0x00, 0x00]);
        assert_eq!(i.op, Op::Jcc(Cond::E));
        assert_eq!(i.dst, Some(Operand::Rel(0x10)));
        assert_eq!(i.len, 6);
    }

    #[test]
    fn decode_modrm_reg_reg() {
        // 89 D8: mov eax, ebx  (mov r/m32, r32 with mod=11, reg=ebx, rm=eax)
        let i = d(&[0x89, 0xD8]);
        assert_eq!(i.op, Op::Mov);
        assert_eq!(i.dst, Some(Operand::Reg(Reg32::Eax)));
        assert_eq!(i.src, Some(Operand::Reg(Reg32::Ebx)));
    }

    #[test]
    fn decode_modrm_disp8() {
        // 8B 45 FC: mov eax, [ebp-4]
        let i = d(&[0x8B, 0x45, 0xFC]);
        assert_eq!(i.op, Op::Mov);
        assert_eq!(i.dst, Some(Operand::Reg(Reg32::Eax)));
        assert_eq!(
            i.src,
            Some(Operand::Mem(MemOperand::base_disp(Reg32::Ebp, -4)))
        );
        assert_eq!(i.len, 3);
    }

    #[test]
    fn decode_modrm_sib() {
        // 8B 04 9D 78 56 34 12 : mov eax, [ebx*4 + 0x12345678]
        let i = d(&[0x8B, 0x04, 0x9D, 0x78, 0x56, 0x34, 0x12]);
        assert_eq!(
            i.src,
            Some(Operand::Mem(MemOperand {
                base: None,
                index: Some((Reg32::Ebx, 4)),
                disp: 0x12345678,
            }))
        );
        assert_eq!(i.len, 7);
    }

    #[test]
    fn decode_sib_base_and_index() {
        // 8B 44 88 04: mov eax, [eax + ecx*4 + 4]
        let i = d(&[0x8B, 0x44, 0x88, 0x04]);
        assert_eq!(
            i.src,
            Some(Operand::Mem(MemOperand {
                base: Some(Reg32::Eax),
                index: Some((Reg32::Ecx, 4)),
                disp: 4,
            }))
        );
    }

    #[test]
    fn decode_disp32_direct() {
        // A1: mov eax, moffs32
        let i = d(&[0xA1, 0x00, 0x20, 0x00, 0x00]);
        assert_eq!(i.src, Some(Operand::Mem(MemOperand::abs(0x2000))));
        // 8B 0D disp32: mov ecx, [disp32]
        let i = d(&[0x8B, 0x0D, 0x00, 0x20, 0x00, 0x00]);
        assert_eq!(i.dst, Some(Operand::Reg(Reg32::Ecx)));
        assert_eq!(i.src, Some(Operand::Mem(MemOperand::abs(0x2000))));
    }

    #[test]
    fn decode_push_pop() {
        assert_eq!(d(&[0x50]).op, Op::Push);
        assert_eq!(d(&[0x50]).dst, Some(Operand::Reg(Reg32::Eax)));
        assert_eq!(d(&[0x51]).dst, Some(Operand::Reg(Reg32::Ecx)));
        assert_eq!(d(&[0x58]).op, Op::Pop);
        let i = d(&[0x68, 0x00, 0x20, 0x00, 0x00]); // push 0x2000
        assert_eq!(i.op, Op::Push);
        assert_eq!(i.dst, Some(Operand::Imm(0x2000)));
        let i = d(&[0x6A, 0xFF]); // push -1
        assert_eq!(i.dst, Some(Operand::Imm(-1)));
    }

    #[test]
    fn decode_alu_group1() {
        // 83 C4 08: add esp, 8
        let i = d(&[0x83, 0xC4, 0x08]);
        assert_eq!(i.op, Op::Add);
        assert_eq!(i.dst, Some(Operand::Reg(Reg32::Esp)));
        assert_eq!(i.src, Some(Operand::Imm(8)));
        // 81 /7: cmp
        let i = d(&[0x81, 0xF9, 0x00, 0x01, 0x00, 0x00]); // cmp ecx, 0x100
        assert_eq!(i.op, Op::Cmp);
        assert_eq!(i.src, Some(Operand::Imm(0x100)));
    }

    #[test]
    fn decode_test_and_call() {
        // 85 C0: test eax, eax
        let i = d(&[0x85, 0xC0]);
        assert_eq!(i.op, Op::Test);
        assert_eq!(i.dst, Some(Operand::Reg(Reg32::Eax)));
        assert_eq!(i.src, Some(Operand::Reg(Reg32::Eax)));
        // E8 rel32
        let i = d(&[0xE8, 0xFB, 0xFF, 0xFF, 0xFF]);
        assert_eq!(i.op, Op::Call);
        assert_eq!(i.dst, Some(Operand::Rel(-5)));
    }

    #[test]
    fn decode_single_bit_flip_of_je_is_jne() {
        let je = [0x74u8, 0x06];
        let jne = [je[0] ^ 0x01, je[1]];
        assert_eq!(d(&je).op, Op::Jcc(Cond::E));
        assert_eq!(d(&jne).op, Op::Jcc(Cond::Ne));
    }

    #[test]
    fn decode_flip_of_push_eax_is_push_ecx() {
        // The paper's Example 1: push %eax (0x50) -> push %ecx (0x51).
        assert_eq!(d(&[0x50]).dst, Some(Operand::Reg(Reg32::Eax)));
        assert_eq!(d(&[0x51]).dst, Some(Operand::Reg(Reg32::Ecx)));
    }

    #[test]
    fn totality_no_panic_on_all_single_bytes() {
        for b in 0u16..=255 {
            let i = d(&[b as u8]);
            assert!(i.len >= 1);
        }
    }

    #[test]
    fn totality_no_panic_on_all_two_byte_0f() {
        for b in 0u16..=255 {
            let i = d(&[0x0F, b as u8, 0, 0, 0, 0, 0, 0]);
            assert!(i.len >= 1);
        }
    }

    #[test]
    fn truncated_sequences_are_invalid() {
        let i = d(&[0xB8, 0x01]); // mov eax, imm32 cut short
        assert_eq!(i.op, Op::Invalid(InvalidKind::Truncated));
        let i = d(&[0x0F]);
        assert_eq!(i.op, Op::Invalid(InvalidKind::Truncated));
        let i = d(&[]);
        assert_eq!(i.op, Op::Invalid(InvalidKind::Truncated));
        assert_eq!(i.len, 1);
    }

    #[test]
    fn too_many_prefixes_is_invalid() {
        let bytes = [0x66u8; 15];
        let i = d(&bytes);
        assert_eq!(i.op, Op::Invalid(InvalidKind::TooLong));
    }

    #[test]
    fn privileged_decode_as_privileged() {
        for b in [0xF4u8, 0xFA, 0xFB, 0xEA, 0x9A, 0xE4, 0xEC, 0x8E, 0xCF] {
            let i = d(&[b, 0, 0, 0, 0, 0, 0]);
            assert_eq!(
                i.op,
                Op::Invalid(InvalidKind::Privileged),
                "byte {b:#x} should be privileged-class"
            );
        }
    }

    #[test]
    fn grp3_and_grp5() {
        // F7 D8: neg eax
        let i = d(&[0xF7, 0xD8]);
        assert_eq!(i.op, Op::Neg);
        // F7 /0 test imm32
        let i = d(&[0xF7, 0xC0, 1, 0, 0, 0]);
        assert_eq!(i.op, Op::Test);
        assert_eq!(i.src, Some(Operand::Imm(1)));
        // FF D0: call eax
        let i = d(&[0xFF, 0xD0]);
        assert_eq!(i.op, Op::CallInd);
        // FF E0: jmp eax
        let i = d(&[0xFF, 0xE0]);
        assert_eq!(i.op, Op::JmpInd);
        // FF 75 08: push [ebp+8]
        let i = d(&[0xFF, 0x75, 0x08]);
        assert_eq!(i.op, Op::Push);
        // FF /7 undefined
        let i = d(&[0xFF, 0xF8]);
        assert_eq!(i.op, Op::Invalid(InvalidKind::Undefined));
    }

    #[test]
    fn string_ops_and_rep() {
        let i = d(&[0xF3, 0xA4]); // rep movsb
        assert_eq!(i.op, Op::Str(StrOp::Movs));
        assert_eq!(i.rep, Some(RepKind::RepE));
        assert_eq!(i.size, OpSize::Byte);
        let i = d(&[0xF2, 0xAE]); // repne scasb
        assert_eq!(i.rep, Some(RepKind::RepNe));
        let i = d(&[0xA5]); // movsd
        assert_eq!(i.size, OpSize::Dword);
        assert_eq!(i.rep, None);
    }

    #[test]
    fn setcc_and_movzx() {
        // 0F 94 C0: sete al
        let i = d(&[0x0F, 0x94, 0xC0]);
        assert_eq!(i.op, Op::Setcc(Cond::E));
        assert_eq!(i.dst, Some(Operand::Reg8(Reg8::Al)));
        // 0F B6 C0: movzx eax, al
        let i = d(&[0x0F, 0xB6, 0xC0]);
        assert_eq!(i.op, Op::Movzx);
        assert_eq!(i.size2, OpSize::Byte);
    }

    #[test]
    fn leave_ret_int() {
        assert_eq!(d(&[0xC9]).op, Op::Leave);
        assert_eq!(d(&[0xC3]).op, Op::Ret(0));
        assert_eq!(d(&[0xC2, 0x08, 0x00]).op, Op::Ret(8));
        assert_eq!(d(&[0xCD, 0x80]).op, Op::Int(0x80));
        assert_eq!(d(&[0xCC]).op, Op::Int3);
    }

    #[test]
    fn lea_requires_memory() {
        let i = d(&[0x8D, 0xC0]); // lea eax, eax — undefined
        assert_eq!(i.op, Op::Invalid(InvalidKind::Undefined));
        let i = d(&[0x8D, 0x44, 0x88, 0x04]); // lea eax, [eax+ecx*4+4]
        assert_eq!(i.op, Op::Lea);
    }

    #[test]
    fn fpu_opcodes_are_sized_nops() {
        // D9 45 F8: fld dword [ebp-8] — 3 bytes
        let i = d(&[0xD9, 0x45, 0xF8]);
        assert_eq!(i.op, Op::Fpu);
        assert_eq!(i.len, 3);
        // DE C1: faddp — 2 bytes
        let i = d(&[0xDE, 0xC1]);
        assert_eq!(i.len, 2);
    }

    #[test]
    fn lock_on_non_lockable_is_undefined() {
        let i = d(&[0xF0, 0x89, 0xD8]); // lock mov eax, ebx
        assert_eq!(i.op, Op::Invalid(InvalidKind::Undefined));
        let i = d(&[0xF0, 0x01, 0x03]); // lock add [ebx], eax
        assert_eq!(i.op, Op::Add);
    }

    #[test]
    fn opsize_prefix_effects() {
        // 66 B8 34 12: mov ax, 0x1234
        let i = d(&[0x66, 0xB8, 0x34, 0x12]);
        assert_eq!(i.op, Op::Mov);
        assert_eq!(i.dst, Some(Operand::Reg16(Reg16::Ax)));
        assert_eq!(i.src, Some(Operand::Imm(0x1234)));
        assert_eq!(i.len, 4);
        // 66 0F 84 xx xx: jcc rel16 — 5 bytes
        let i = d(&[0x66, 0x0F, 0x84, 0x02, 0x00]);
        assert_eq!(i.op, Op::Jcc(Cond::E));
        assert_eq!(i.len, 5);
        assert_eq!(i.size, OpSize::Word);
    }

    #[test]
    fn addrsize_prefix_with_memory_faults() {
        let i = d(&[0x67, 0x8B, 0x45, 0xFC, 0x00]);
        assert_eq!(i.op, Op::Invalid(InvalidKind::Privileged));
        // Register forms are fine.
        let i = d(&[0x67, 0x89, 0xD8]);
        assert_eq!(i.op, Op::Mov);
    }

    #[test]
    fn seg_override_is_ignored() {
        let i = d(&[0x65, 0x8B, 0x45, 0xFC]); // gs: mov eax,[ebp-4]
        assert_eq!(i.op, Op::Mov);
        assert_eq!(i.len, 4);
    }

    #[test]
    fn bswap_and_bit_ops() {
        let i = d(&[0x0F, 0xC8]);
        assert_eq!(i.op, Op::Bswap);
        assert_eq!(i.dst, Some(Operand::Reg(Reg32::Eax)));
        let i = d(&[0x0F, 0xA3, 0xC8]); // bt eax, ecx
        assert_eq!(i.op, Op::Bt);
        let i = d(&[0x0F, 0xBA, 0xE0, 0x05]); // bt eax, 5
        assert_eq!(i.op, Op::Bt);
        assert_eq!(i.src, Some(Operand::Imm(5)));
    }

    #[test]
    fn imul_forms() {
        let i = d(&[0x0F, 0xAF, 0xC3]); // imul eax, ebx
        assert_eq!(i.op, Op::Imul2);
        let i = d(&[0x6B, 0xC0, 0x0A]); // imul eax, eax, 10
        assert_eq!(i.op, Op::Imul3);
        assert_eq!(i.src2, Some(Operand::Imm(10)));
        let i = d(&[0x69, 0xC0, 0x00, 0x01, 0x00, 0x00]); // imul eax, eax, 256
        assert_eq!(i.src2, Some(Operand::Imm(256)));
        let i = d(&[0xF7, 0xEB]); // imul ebx (one-op)
        assert_eq!(i.op, Op::Imul1);
    }

    #[test]
    fn xchg_nop_aliases() {
        assert_eq!(d(&[0x90]).op, Op::Nop);
        let i = d(&[0x91]); // xchg eax, ecx
        assert_eq!(i.op, Op::Xchg);
        assert_eq!(i.src, Some(Operand::Reg(Reg32::Ecx)));
    }

    #[test]
    fn len_accounting_includes_prefixes() {
        let i = d(&[0x66, 0x90]);
        assert_eq!(i.len, 2);
        let i = d(&[0x2E, 0x74, 0x05]); // cs: je
        assert_eq!(i.len, 3);
        assert_eq!(i.op, Op::Jcc(Cond::E));
    }

    #[test]
    fn enter_and_loops() {
        let i = d(&[0xC8, 0x10, 0x00, 0x00]);
        assert_eq!(i.op, Op::Enter(0x10, 0));
        assert_eq!(i.len, 4);
        assert_eq!(d(&[0xE2, 0xFE]).op, Op::Loop);
        assert_eq!(d(&[0xE3, 0x02]).op, Op::Jecxz);
        assert_eq!(d(&[0xE0, 0x00]).op, Op::Loopne);
        assert_eq!(d(&[0xE1, 0x00]).op, Op::Loope);
    }
}
