//! Reproduce the paper's §3.4 Example 3: a single-bit error in
//! `packet_read()`'s buffer setup opens the door to a stack-overflow
//! attack that hands control of EIP to the remote client.
//!
//! `packet_read` compiles exactly like the paper's Figure 3 — the 8 KiB
//! buffer length is pushed as `push $0x2000` and the buffer address as
//! `lea -0x2000(%ebp), %eax; push %eax` — and `read(0, buf, 8192)` is
//! bounds-correct. We flip **one bit** (bit 12 of the `lea`
//! displacement), which silently moves the buffer 4 KiB up the stack, to
//! `ebp-0x1000`. The very same `read` now writes the client's bytes over
//! `packet_read`'s saved return address: a persistent attacker who sends
//! a long version string with chosen bytes at offset 0x1004 takes EIP.
//!
//! ```text
//! cargo run --release --example stack_smash
//! ```

use fisec_apps::build_sshd;
use fisec_net::{ClientDriver, ClientStatus};
use fisec_os::{run_session, Stop};
use fisec_x86::{Fault, MemOperand, Op, Operand};

/// Where the attacker's EIP lands relative to the relocated buffer:
/// buffer at `ebp-0x1000`, saved return address at `ebp+4`.
const RET_OFFSET: usize = 0x1000 + 4;
/// The EIP value the attacker chooses (ASCII "ABCD" little-endian).
const MARKER: u32 = 0x4443_4241;

/// A persistent attacker: answers the banner with a 4 KiB+ version
/// string carrying the marker at the return-address offset.
#[derive(Clone)]
struct Attacker {
    sent: bool,
}

impl ClientDriver for Attacker {
    fn on_server_data(&mut self, _data: &[u8], out: &mut dyn FnMut(Vec<u8>)) {
        if !self.sent {
            self.sent = true;
            let mut payload = b"SSH-1.5-attacker-".to_vec();
            payload.resize(RET_OFFSET, b'A'); // padding, no newline
            payload.extend_from_slice(&MARKER.to_le_bytes());
            // The overflow also runs over packet_read's arguments at
            // ebp+8 (the out pointer) and ebp+12 (outmax). A careful
            // attacker keeps the function alive until its `ret`: point
            // `out` at scratch stack space and make `outmax` tiny.
            payload.extend_from_slice(&0xBFFF_F000u32.to_le_bytes());
            payload.extend_from_slice(&2u32.to_le_bytes());
            payload.extend_from_slice(b"\r\n");
            out(payload);
        }
    }

    fn status(&self) -> ClientStatus {
        ClientStatus::InProgress
    }
}

fn main() {
    let image = build_sshd().expect("sshd builds");
    let f = image
        .func("packet_read")
        .expect("packet_read exists")
        .clone();

    // Confirm the Figure 3 shape: push $0x2000 followed by the buffer lea.
    let insts = image.decode_func(&f);
    assert!(
        insts
            .iter()
            .any(|(_, i)| i.op == Op::Push && i.dst == Some(Operand::Imm(0x2000))),
        "packet_read must push the 8192 length immediate"
    );
    let (lea_addr, lea) = insts
        .iter()
        .find(|(_, i)| {
            i.op == Op::Lea
                && i.src
                    == Some(Operand::Mem(MemOperand::base_disp(
                        fisec_x86::Reg32::Ebp,
                        -0x2000,
                    )))
        })
        .expect("packet_read has the buffer lea");
    println!("victim instruction: {lea} at {lea_addr:#x} (the Figure 3 buffer)");

    // The attack against the *correct* binary fails: read() is bounded
    // by the real buffer, the copy into the caller is bounded by outmax.
    let golden = run_session(&image, Box::new(Attacker { sent: false }), 5_000_000).expect("load");
    println!(
        "correct binary under attack: server {} (no hijack; the long version string is truncated safely)",
        golden.stop
    );
    assert!(!matches!(golden.stop, Stop::Crashed(Fault::FetchFault(a)) if a == MARKER));

    // Flip bit 12 of the lea displacement: -0x2000 -> -0x1000.
    let off = (*lea_addr - image.text_base) as usize;
    let disp_lo = off + (lea.len as usize - 4);
    let mut corrupted = image.clone();
    corrupted.text[disp_lo + 1] ^= 0x10;
    let new_inst = fisec_x86::decode(&corrupted.text[off..off + lea.len as usize]);
    println!("after a single-bit flip: {new_inst} — buffer silently moved 4 KiB up");

    let smashed =
        run_session(&corrupted, Box::new(Attacker { sent: false }), 5_000_000).expect("load");
    let Stop::Crashed(Fault::FetchFault(eip)) = smashed.stop else {
        panic!("expected a wild fetch, got {:?}", smashed.stop);
    };
    println!("corrupted binary under attack: wild jump to EIP = {eip:#010x}");
    assert_eq!(eip, MARKER, "EIP must be the attacker's chosen bytes");
    println!(
        "\n=> EIP {:#010x} is exactly the 4 bytes the client placed at offset {:#x}\n\
         of its version string: the paper's 'opportunity for stack overflow\n\
         attacks, i.e., hijack the server process'.",
        MARKER, RET_OFFSET
    );
}
