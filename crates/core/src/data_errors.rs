//! Extension experiment (the paper's §7 future work: "exploring error
//! propagation and its impact on system security"): single-bit errors in
//! the **data segment** rather than the text segment.
//!
//! Data errors hit the account database, the stored password hashes, the
//! session state and — most interestingly — configuration flags like the
//! sshd mechanism switches. The campaign enumerates every bit of every
//! named data symbol, injects it as a latent error (present from process
//! start, like a stuck memory cell), runs the attack client, and
//! classifies the outcome with the same golden-run comparison as the
//! text campaigns.

use crate::counts::OutcomeCounts;
use fisec_apps::AppSpec;
use fisec_inject::{classify_run, golden_run, OutcomeClass};
use fisec_os::run_session;
use serde::{Deserialize, Serialize};

/// Per-symbol tallies of a data-segment campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymbolOutcome {
    /// Data symbol name.
    pub symbol: String,
    /// Bits injected (= 8 × symbol length).
    pub bits: usize,
    /// Outcome tallies (NA means "indistinguishable from golden" here:
    /// with latent errors there is no activation breakpoint).
    pub counts: OutcomeCounts,
}

/// Result of the data-segment campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataCampaignResult {
    /// Application name.
    pub app: String,
    /// Client used (the attack pattern).
    pub client: String,
    /// Per-symbol breakdown, ordered by break-in count (then FSV).
    pub symbols: Vec<SymbolOutcome>,
}

impl DataCampaignResult {
    /// Total runs.
    pub fn runs(&self) -> usize {
        self.symbols.iter().map(|s| s.bits).sum()
    }

    /// Total break-ins.
    pub fn total_brk(&self) -> usize {
        self.symbols.iter().map(|s| s.counts.brk).sum()
    }

    /// Symbols whose corruption can break authentication.
    pub fn vulnerable_symbols(&self) -> Vec<&str> {
        self.symbols
            .iter()
            .filter(|s| s.counts.brk > 0)
            .map(|s| s.symbol.as_str())
            .collect()
    }
}

/// Exhaustively inject every bit of every named data symbol (skipping
/// symbols longer than `max_symbol_len` bytes to keep buffers like the
/// audit scratch space from dominating the run count).
pub fn run_data_campaign(app: &AppSpec, max_symbol_len: u32) -> DataCampaignResult {
    let spec = &app.clients[0];
    let golden = golden_run(&app.image, spec).expect("image loads");
    let budget = (golden.icount * 8).max(400_000);
    let mut symbols = Vec::new();
    for sym in &app.image.symbols.data {
        if sym.len == 0 || sym.len > max_symbol_len {
            continue;
        }
        let mut counts = OutcomeCounts::default();
        let base = (sym.addr - app.image.data_base) as usize;
        for byte in 0..sym.len as usize {
            for bit in 0..8u8 {
                let mut corrupted = app.image.clone();
                corrupted.data[base + byte] ^= 1 << bit;
                let r = run_session(&corrupted, spec.make(), budget).expect("image loads");
                let run = classify_run(&golden, r.stop, r.client, r.trace, None);
                // Latent data errors have no activation marker; fold
                // "identical to golden" into NA for reporting.
                if run.outcome == OutcomeClass::NotManifested {
                    counts.add(OutcomeClass::NotActivated);
                } else {
                    counts.add(run.outcome);
                }
            }
        }
        symbols.push(SymbolOutcome {
            symbol: sym.name.clone(),
            bits: sym.len as usize * 8,
            counts,
        });
    }
    symbols.sort_by_key(|s| {
        (
            std::cmp::Reverse(s.counts.brk),
            std::cmp::Reverse(s.counts.fsv),
        )
    });
    DataCampaignResult {
        app: app.name.to_string(),
        client: spec.name.clone(),
        symbols,
    }
}

/// Render the campaign as a table (symbols with any manifestation).
pub fn render(r: &DataCampaignResult) -> String {
    let mut out = format!(
        "data-segment single-bit errors, {} {} attacking\n\
         {:<20} {:>6} {:>8} {:>6} {:>6} {:>6}\n",
        r.app, r.client, "symbol", "bits", "silent", "SD", "FSV", "BRK"
    );
    for s in &r.symbols {
        if s.counts.activated() == 0 {
            continue;
        }
        out.push_str(&format!(
            "{:<20} {:>6} {:>8} {:>6} {:>6} {:>6}\n",
            s.symbol, s.bits, s.counts.na, s.counts.sd, s.counts.fsv, s.counts.brk
        ));
    }
    out.push_str(&format!(
        "total: {} runs, {} break-ins (vulnerable symbols: {})\n",
        r.runs(),
        r.total_brk(),
        r.vulnerable_symbols().join(", ")
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisec_apps::AppSpec;

    /// Focused campaign over the sshd config flags: flipping the low bit
    /// of a zeroed mechanism switch re-enables dead code, and corrupting
    /// stored account state must never help the attacker log in.
    #[test]
    fn sshd_config_flags_are_data_attack_surface() {
        let mut app = AppSpec::sshd();
        app.clients.truncate(1);
        // Keep it quick: only small symbols (flags, small strings).
        let r = run_data_campaign(&app, 12);
        assert!(r.runs() > 0);
        // Outcome partition sanity.
        for s in &r.symbols {
            assert_eq!(s.counts.total(), s.bits);
        }
        // The stored expected-hash and account names may cause FSV
        // (wrongful denials of *other* runs) but not break-ins for a
        // wrong-password attacker; a break-in could only come from state
        // that bypasses the comparison. Whatever happens, BRK must be
        // rare and the report must render.
        let rendered = render(&r);
        assert!(rendered.contains("total:"));
    }

    #[test]
    fn ftpd_data_errors_classify_cleanly() {
        let mut app = AppSpec::ftpd();
        app.clients.truncate(1);
        let r = run_data_campaign(&app, 8);
        assert!(r.runs() >= 8 * 8);
        let again = run_data_campaign(&app, 8);
        assert_eq!(r, again, "data campaign must be deterministic");
    }
}
