//! Architectural semantics tests for the less-common instructions that
//! single-bit corruption routinely produces from ordinary code (the
//! `0x60`–`0x6F` block neighbours, BCD adjusts, rotates, string ops with
//! DF set, bit-test memory forms, ...). Faithful semantics here shape the
//! NM-vs-FSV boundary of the study.

use fisec_x86::eflags::{AF, CF, DF, OF, SF, ZF};
use fisec_x86::{Fault, Machine, Memory, Perms, Reg32, Reg8, Region, StepEvent};

fn machine(text: Vec<u8>) -> Machine {
    let mut mem = Memory::new();
    mem.map(Region::with_data("text", 0x1000, text, Perms::RX))
        .unwrap();
    mem.map(Region::zeroed("data", 0x2000, 0x1000, Perms::RW))
        .unwrap();
    mem.map(Region::zeroed("stack", 0x8000, 0x1000, Perms::RW))
        .unwrap();
    let mut m = Machine::new(mem);
    m.cpu.eip = 0x1000;
    m.cpu.regs[Reg32::Esp as usize] = 0x9000;
    m
}

fn steps(m: &mut Machine, n: usize) {
    for _ in 0..n {
        assert_eq!(m.step(), StepEvent::Executed, "eip={:#x}", m.cpu.eip);
    }
}

#[test]
fn daa_adjusts_packed_bcd() {
    // 0x19 + 0x28 = 0x41 binary, daa -> 0x47 BCD.
    let mut m = machine(vec![0xB0, 0x19, 0x04, 0x28, 0x27]);
    steps(&mut m, 3);
    assert_eq!(m.cpu.get8(Reg8::Al), 0x47);
    assert_eq!(m.cpu.eflags & CF, 0);
}

#[test]
fn daa_carries_past_99() {
    // 0x91 + 0x12 = 0xA3 -> daa -> 0x03 with CF.
    let mut m = machine(vec![0xB0, 0x91, 0x04, 0x12, 0x27]);
    steps(&mut m, 3);
    assert_eq!(m.cpu.get8(Reg8::Al), 0x03);
    assert_ne!(m.cpu.eflags & CF, 0);
}

#[test]
fn das_subtracts_bcd() {
    // 0x47 - 0x19: sub -> 0x2E; das -> 0x28.
    let mut m = machine(vec![0xB0, 0x47, 0x2C, 0x19, 0x2F]);
    steps(&mut m, 3);
    assert_eq!(m.cpu.get8(Reg8::Al), 0x28);
}

#[test]
fn aaa_adjusts_unpacked() {
    // 9 + 8 = 0x11; aaa -> AL=7, AH+=1, CF/AF set.
    let mut m = machine(vec![0xB8, 0x09, 0x00, 0x00, 0x00, 0x04, 0x08, 0x37]);
    steps(&mut m, 3);
    assert_eq!(m.cpu.get8(Reg8::Al), 0x07);
    assert_eq!(m.cpu.get8(Reg8::Ah), 0x01);
    assert_ne!(m.cpu.eflags & CF, 0);
    assert_ne!(m.cpu.eflags & AF, 0);
}

#[test]
fn aam_divides_and_aad_recombines() {
    // AL=123: aam -> AH=12, AL=3; aad -> AL=123, AH=0.
    let mut m = machine(vec![0xB0, 123, 0xD4, 0x0A, 0xD5, 0x0A]);
    steps(&mut m, 2);
    assert_eq!(m.cpu.get8(Reg8::Ah), 12);
    assert_eq!(m.cpu.get8(Reg8::Al), 3);
    steps(&mut m, 1);
    assert_eq!(m.cpu.get8(Reg8::Al), 123);
    assert_eq!(m.cpu.get8(Reg8::Ah), 0);
}

#[test]
fn aam_zero_is_divide_error() {
    let mut m = machine(vec![0xD4, 0x00]);
    let StepEvent::Fault(f) = m.step() else {
        panic!()
    };
    assert_eq!(f, Fault::DivideError(0x1000));
}

#[test]
fn string_ops_respect_direction_flag() {
    // std; lea esi/edi; mov ecx,3; rep movsb moving *down*.
    let mut m = machine(vec![0xFD, 0xF3, 0xA4]);
    m.mem.write_bytes(0x2000, b"abc").unwrap();
    m.cpu.regs[Reg32::Esi as usize] = 0x2002; // 'c'
    m.cpu.regs[Reg32::Edi as usize] = 0x2012;
    m.cpu.regs[Reg32::Ecx as usize] = 3;
    steps(&mut m, 2);
    assert_ne!(m.cpu.eflags & DF, 0);
    // Copied c,b,a downwards: 0x2010..0x2012 = "abc" again (reversed walk).
    assert_eq!(m.mem.read_bytes(0x2010, 3).unwrap(), b"abc");
    assert_eq!(m.cpu.regs[Reg32::Esi as usize], 0x2002u32.wrapping_sub(3));
}

#[test]
fn scasb_repne_finds_byte() {
    // Classic strlen idiom: repne scasb hunting for NUL.
    let mut m = machine(vec![0xF2, 0xAE]);
    m.mem.write_bytes(0x2000, b"hello\0").unwrap();
    m.cpu.regs[Reg32::Eax as usize] = 0; // AL = 0
    m.cpu.regs[Reg32::Edi as usize] = 0x2000;
    m.cpu.regs[Reg32::Ecx as usize] = 0xFFFF_FFFF;
    steps(&mut m, 1);
    // EDI one past the NUL, so strlen = 0xFFFFFFFF - ECX - 2... check via edi.
    assert_eq!(m.cpu.regs[Reg32::Edi as usize], 0x2006);
    assert_ne!(m.cpu.eflags & ZF, 0);
}

#[test]
fn rcl_rotates_through_carry() {
    // stc; mov al, 0b1000_0000; rcl al, 1 -> al = 0b0000_0001, CF=1.
    let mut m = machine(vec![0xF9, 0xB0, 0x80, 0xD0, 0xD0]);
    steps(&mut m, 3);
    assert_eq!(m.cpu.get8(Reg8::Al), 0x01);
    assert_ne!(m.cpu.eflags & CF, 0);
}

#[test]
fn rcr_rotates_back() {
    // stc; mov al, 1; rcr al, 1 -> al = 0b1000_0000, CF=1.
    let mut m = machine(vec![0xF9, 0xB0, 0x01, 0xD0, 0xD8]);
    steps(&mut m, 3);
    assert_eq!(m.cpu.get8(Reg8::Al), 0x80);
    assert_ne!(m.cpu.eflags & CF, 0);
}

#[test]
fn rol_ror_set_carry_from_rotated_bit() {
    // mov eax, 0x80000001; rol eax,1 -> 3, CF=1.
    let mut m = machine(vec![0xB8, 0x01, 0x00, 0x00, 0x80, 0xD1, 0xC0]);
    steps(&mut m, 2);
    assert_eq!(m.cpu.regs[0], 3);
    assert_ne!(m.cpu.eflags & CF, 0);
    // ror back: eax = 0x80000001, CF = msb = 1.
    let mut m = machine(vec![0xB8, 0x03, 0x00, 0x00, 0x00, 0xD1, 0xC8]);
    steps(&mut m, 2);
    assert_eq!(m.cpu.regs[0], 0x8000_0001);
}

#[test]
fn bt_memory_form_addresses_adjacent_dwords() {
    // bt [0x2000], eax with eax=35 tests bit 3 of dword at 0x2004.
    let mut m = machine(vec![0x0F, 0xA3, 0x05, 0x00, 0x20, 0x00, 0x00]);
    m.mem.write32(0x2004, 0b1000).unwrap();
    m.cpu.regs[0] = 35;
    steps(&mut m, 1);
    assert_ne!(m.cpu.eflags & CF, 0);
}

#[test]
fn bts_sets_and_reports() {
    // bts eax, 4 twice: first CF=0, then CF=1.
    let mut m = machine(vec![0x0F, 0xBA, 0xE8, 0x04, 0x0F, 0xBA, 0xE8, 0x04]);
    steps(&mut m, 1);
    assert_eq!(m.cpu.eflags & CF, 0);
    assert_eq!(m.cpu.regs[0], 0x10);
    steps(&mut m, 1);
    assert_ne!(m.cpu.eflags & CF, 0);
    assert_eq!(m.cpu.regs[0], 0x10);
}

#[test]
fn xadd_exchanges_and_adds() {
    // eax=5, ebx=7: xadd eax, ebx -> eax=12, ebx=5.
    let mut m = machine(vec![0x0F, 0xC1, 0xD8]);
    m.cpu.regs[0] = 5;
    m.cpu.regs[3] = 7;
    steps(&mut m, 1);
    assert_eq!(m.cpu.regs[0], 12);
    assert_eq!(m.cpu.regs[3], 5);
}

#[test]
fn cmpxchg_success_and_failure() {
    // eax=5, ebx=5, ecx=9: cmpxchg ebx, ecx -> ZF, ebx=9.
    let mut m = machine(vec![0x0F, 0xB1, 0xCB]);
    m.cpu.regs[0] = 5;
    m.cpu.regs[3] = 5;
    m.cpu.regs[1] = 9;
    steps(&mut m, 1);
    assert_ne!(m.cpu.eflags & ZF, 0);
    assert_eq!(m.cpu.regs[3], 9);
    // Mismatch: eax loads the destination.
    let mut m = machine(vec![0x0F, 0xB1, 0xCB]);
    m.cpu.regs[0] = 4;
    m.cpu.regs[3] = 5;
    m.cpu.regs[1] = 9;
    steps(&mut m, 1);
    assert_eq!(m.cpu.eflags & ZF, 0);
    assert_eq!(m.cpu.regs[0], 5);
    assert_eq!(m.cpu.regs[3], 5);
}

#[test]
fn bswap_reverses_bytes() {
    let mut m = machine(vec![0x0F, 0xC8]);
    m.cpu.regs[0] = 0x1234_5678;
    steps(&mut m, 1);
    assert_eq!(m.cpu.regs[0], 0x7856_3412);
}

#[test]
fn shld_shifts_in_from_source() {
    // eax=0xF0000000, ebx=0xA0000000: shld eax, ebx, 4 -> 0x0000000A.
    let mut m = machine(vec![0x0F, 0xA4, 0xD8, 0x04]);
    m.cpu.regs[0] = 0xF000_0000;
    m.cpu.regs[3] = 0xA000_0000;
    steps(&mut m, 1);
    assert_eq!(m.cpu.regs[0], 0x0000_000A);
}

#[test]
fn xlat_translates_through_table() {
    let mut m = machine(vec![0xD7]);
    m.mem.write_bytes(0x2000, &[0u8, 10, 20, 30, 40]).unwrap();
    m.cpu.regs[Reg32::Ebx as usize] = 0x2000;
    m.cpu.set8(Reg8::Al, 3);
    steps(&mut m, 1);
    assert_eq!(m.cpu.get8(Reg8::Al), 30);
}

#[test]
fn bound_passes_inside_and_traps_outside() {
    // bounds pair at 0x2000: [5, 10]; eax=7 passes.
    let mut m = machine(vec![0x62, 0x05, 0x00, 0x20, 0x00, 0x00]);
    m.mem.write32(0x2000, 5).unwrap();
    m.mem.write32(0x2004, 10).unwrap();
    m.cpu.regs[0] = 7;
    steps(&mut m, 1);
    // eax=12 traps.
    let mut m = machine(vec![0x62, 0x05, 0x00, 0x20, 0x00, 0x00]);
    m.mem.write32(0x2000, 5).unwrap();
    m.mem.write32(0x2004, 10).unwrap();
    m.cpu.regs[0] = 12;
    let StepEvent::Fault(f) = m.step() else {
        panic!()
    };
    assert_eq!(f, Fault::Trap(0x1000));
}

#[test]
fn sahf_lahf_round_trip() {
    // stc; lahf; clc; sahf restores CF.
    let mut m = machine(vec![0xF9, 0x9F, 0xF8, 0x9E]);
    steps(&mut m, 4);
    assert_ne!(m.cpu.eflags & CF, 0);
}

#[test]
fn popf_masks_to_settable_bits() {
    // push 0xFFFFFFFF; popf: only status+DF stick, reserved bit 1 set.
    let mut m = machine(vec![0x6A, 0xFF, 0x9D]);
    steps(&mut m, 2);
    let flags = m.cpu.eflags;
    assert_ne!(flags & (CF | ZF | SF | OF | DF), 0);
    assert_eq!(flags & !(fisec_x86::eflags::STATUS_MASK | DF | 0b10), 0);
}

#[test]
fn into_traps_only_on_overflow() {
    // mov eax, 0x7fffffff; inc eax (OF set); into -> trap.
    let mut m = machine(vec![0xB8, 0xFF, 0xFF, 0xFF, 0x7F, 0x40, 0xCE]);
    steps(&mut m, 2);
    let StepEvent::Fault(f) = m.step() else {
        panic!()
    };
    assert_eq!(f, Fault::Trap(0x1006));
    // Without overflow: no-op.
    let mut m = machine(vec![0x31, 0xC0, 0xCE, 0x90]);
    steps(&mut m, 3);
}

#[test]
fn salc_materializes_carry() {
    let mut m = machine(vec![0xF9, 0xD6, 0xF8, 0xD6]);
    steps(&mut m, 2);
    assert_eq!(m.cpu.get8(Reg8::Al), 0xFF);
    steps(&mut m, 2);
    assert_eq!(m.cpu.get8(Reg8::Al), 0x00);
}

#[test]
fn cpuid_and_rdtsc_are_deterministic() {
    let mut m = machine(vec![0x31, 0xC0, 0x0F, 0xA2, 0x0F, 0x31]);
    steps(&mut m, 2);
    assert_eq!(m.cpu.regs[0], 1); // max leaf
    steps(&mut m, 1);
    assert_eq!(m.cpu.regs[0], 3); // rdtsc reads the deterministic icount
    let mut m2 = machine(vec![0x31, 0xC0, 0x0F, 0xA2, 0x0F, 0x31]);
    steps(&mut m2, 3);
    assert_eq!(m2.cpu.regs[0], m.cpu.regs[0]);
}

#[test]
fn enter_builds_frame_like_push_mov_sub() {
    // enter 0x20, 0 == push ebp; mov ebp, esp; sub esp, 0x20.
    let mut m = machine(vec![0xC8, 0x20, 0x00, 0x00]);
    m.cpu.regs[Reg32::Ebp as usize] = 0xAAAA;
    let esp0 = m.cpu.regs[Reg32::Esp as usize];
    steps(&mut m, 1);
    assert_eq!(m.cpu.regs[Reg32::Ebp as usize], esp0 - 4);
    assert_eq!(m.cpu.regs[Reg32::Esp as usize], esp0 - 4 - 0x20);
    assert_eq!(m.mem.read32(esp0 - 4).unwrap(), 0xAAAA);
}

#[test]
fn fpu_opcodes_execute_as_integer_noops() {
    // fld/faddp sequences leave integer state untouched.
    let mut m = machine(vec![0xD9, 0x05, 0x00, 0x20, 0x00, 0x00, 0xDE, 0xC1, 0x40]);
    let regs0 = m.cpu.regs;
    steps(&mut m, 3);
    assert_eq!(m.cpu.regs[0], regs0[0] + 1); // only the inc changed eax
}

#[test]
fn eip_trace_ring_buffer() {
    let mut m = machine(vec![0x40, 0x40, 0x40, 0x40, 0x40]);
    m.enable_eip_trace(3);
    steps(&mut m, 5);
    assert_eq!(m.eip_trace(), vec![0x1002, 0x1003, 0x1004]);
    // Re-arming clears.
    m.enable_eip_trace(8);
    assert!(m.eip_trace().is_empty());
}

#[test]
fn self_modifying_code_through_rwx_invalidates_icache() {
    // A program that patches its own upcoming instruction: the icache
    // must see the new bytes (exec_gen bump via write to rwx region).
    let mut mem = Memory::new();
    // mov byte [0x1008], 0x41 ; nop ; <0x1008>: inc eax (will become inc ecx)
    let text = vec![
        0xC6, 0x05, 0x08, 0x10, 0x00, 0x00, 0x41, // mov byte [0x1008], 0x41
        0x90, // nop
        0x40, // inc eax -> patched to inc ecx (0x41)
    ];
    mem.map(Region::with_data("rwx", 0x1000, text, Perms::RWX))
        .unwrap();
    let mut m = Machine::new(mem);
    m.cpu.eip = 0x1000;
    // Warm the cache by... just run; the write happens before first fetch
    // of 0x1008, but exercise anyway.
    steps(&mut m, 3);
    assert_eq!(m.cpu.regs[Reg32::Ecx as usize], 1);
    assert_eq!(m.cpu.regs[Reg32::Eax as usize], 0);
}
