//! The ftpd-like target application (wu-ftpd-2.6.0 analogue).
//!
//! The server is written in mini-C and compiled by `fisec-cc`; its
//! authentication lives in two functions named `user` and `pass`, exactly
//! the functions the paper injected. `pass` reproduces the structure of
//! the paper's Figure 1: hash the guess, `strcmp` against the stored
//! hash, `rval == 0` grants access.

use crate::clients::LineBuf;
use fisec_asm::Image;
use fisec_cc::{build_image, BuildError};
use fisec_net::{ClientDriver, ClientStatus};

/// The functions the paper injects for ftpd.
pub const FTPD_AUTH_FUNCS: [&str; 2] = ["user", "pass"];

/// Marker string in the protected file; a client that sees it has read
/// the protected resource.
pub const SECRET_MARKER: &str = "TOP-SECRET";

/// mini-C source of the server.
pub const FTPD_SRC: &str = r#"
/* fisec ftpd: a wu-ftpd-2.6.0-like control-connection server. */

char banner[] = "220 fisec FTP server (Version wu-2.6.0-sim) ready.\r\n";

/* account database (plaintext is consulted only to derive the stored
   hash, standing in for the /etc/passwd crypt field) */
char acct0_name[] = "alice";
char acct0_pass[] = "wonderland";
char acct1_name[] = "bob";
char acct1_pass[] = "builder";
char deny0_name[] = "root";

char acct2_name[] = "carol";
char acct2_pass[] = "disabledpw";
char deny1_name[] = "daemon";
char deny2_name[] = "bin";

char secret_file[] = "TOP-SECRET payload: the merger closes friday.\n";
char public_file[] = "welcome to the fisec ftp archive.\n";

/* config flags: optional authentication features, off in this install
   (real wu-ftpd carries large amounts of conditionally-enabled code) */
int enable_skey;
int enable_krb;
int guest_limit = 10;

/* session state */
int state_user_given;
int state_logged_in;
int state_anonymous;
int state_attempts;
int guest_count;
char cur_user[64];
char expected_hash[24];
char skey_challenge[64];
char audit_buf[128];

int read_line(char *buf, int max) {
    int n;
    int i;
    char c[4];
    i = 0;
    while (i < max) {
        n = read(0, c, 1);
        if (n <= 0) {
            return -1;
        }
        if (c[0] == '\n') {
            break;
        }
        if (c[0] != '\r') {
            buf[i] = c[0];
            i++;
        }
    }
    buf[i] = 0;
    return i;
}

void reply(char *msg) {
    write_str(1, msg);
}

char *lookup_password(char *name) {
    if (strcmp(name, acct0_name) == 0) {
        return acct0_pass;
    }
    if (strcmp(name, acct1_name) == 0) {
        return acct1_pass;
    }
    if (strcmp(name, acct2_name) == 0) {
        return acct2_pass;
    }
    return 0;
}

int account_disabled(char *name) {
    /* carol's account is administratively disabled */
    if (strcmp(name, acct2_name) == 0) {
        return 1;
    }
    return 0;
}

int user_denied(char *name) {
    if (strcmp(name, deny0_name) == 0) {
        return 1;
    }
    if (strcmp(name, deny1_name) == 0) {
        return 1;
    }
    if (strcmp(name, deny2_name) == 0) {
        return 1;
    }
    return 0;
}

int valid_name_chars(char *name) {
    int i;
    char c;
    i = 0;
    while (name[i]) {
        c = name[i];
        if (c >= 'a' && c <= 'z') {
            i++;
            continue;
        }
        if (c >= 'A' && c <= 'Z') {
            i++;
            continue;
        }
        if (c >= '0' && c <= '9') {
            i++;
            continue;
        }
        if (c == '_' || c == '-' || c == '.') {
            i++;
            continue;
        }
        return 0;
    }
    return 1;
}

/* a plausible email: at least 6 characters, exactly one '@', a '.',
   and no spaces */
int valid_email(char *addr) {
    int has_at;
    int has_dot;
    int bad_char;
    int glen;
    int i;
    has_at = 0;
    has_dot = 0;
    bad_char = 0;
    glen = 0;
    i = 0;
    while (addr[i]) {
        if (addr[i] == '@') {
            has_at = has_at + 1;
        }
        if (addr[i] == '.') {
            has_dot = 1;
        }
        if (addr[i] == ' ') {
            bad_char = 1;
        }
        glen++;
        i++;
    }
    if (glen >= 6 && has_at == 1 && has_dot && bad_char == 0) {
        return 1;
    }
    return 0;
}

/* user(): first half of authentication — the paper's injection target. */
void user(char *name) {
    char *pw;
    int nlen;
    int i;
    state_logged_in = 0;
    state_user_given = 0;
    state_anonymous = 0;
    nlen = strlen(name);
    if (nlen == 0) {
        reply("501 USER: missing user name.\r\n");
        return;
    }
    if (nlen > 40) {
        reply("501 USER: name too long.\r\n");
        return;
    }
    if (valid_name_chars(name) == 0) {
        reply("501 USER: invalid characters in user name.\r\n");
        return;
    }
    if (strcmp(name, "anonymous") == 0 || strcmp(name, "ftp") == 0) {
        /* guest handling: count guests, apply the configured limit and
           prime the audit line (wu-ftpd logs every guest login) */
        if (guest_count >= guest_limit) {
            reply("530 Too many anonymous users, try again later.\r\n");
            return;
        }
        guest_count++;
        state_anonymous = 1;
        state_user_given = 1;
        strcpy(cur_user, "anonymous");
        strcpy(audit_buf, "ANONYMOUS FTP LOGIN FROM client, ");
        strcat(audit_buf, name);
        reply("331 Guest login ok, send your email address as password.\r\n");
        return;
    }
    if (user_denied(name)) {
        reply("532 User access denied.\r\n");
        return;
    }
    if (account_disabled(name)) {
        reply("530 User account is disabled.\r\n");
        return;
    }
    strncpy_safe(cur_user, name, 41);
    pw = lookup_password(name);
    if (pw) {
        crypt_hash(pw, expected_hash);
    } else {
        /* unknown users get an unmatchable stored hash; the reply does
           not reveal whether the account exists (wu-ftpd behaviour) */
        expected_hash[0] = '*';
        expected_hash[1] = 0;
    }
    if (enable_skey) {
        /* S/Key challenge construction — compiled in, disabled in this
           configuration (mirrors wu-ftpd's optional OPIE support) */
        strcpy(skey_challenge, "331 s/key ");
        i = 0;
        while (i < 4) {
            skey_challenge[10 + i] = '0' + (nlen + i) % 10;
            i++;
        }
        skey_challenge[14] = ' ';
        skey_challenge[15] = 0;
        strcat(skey_challenge, name);
        strcat(skey_challenge, "\r\n");
        state_user_given = 1;
        reply(skey_challenge);
        return;
    }
    state_user_given = 1;
    reply("331 Password required.\r\n");
}

/* pass(): second half — mirrors the paper's Figure 1 exactly:
   hash the guess, strcmp with the stored hash, rval == 0 grants. */
void pass(char *guess) {
    char xpasswd[24];
    int rval;
    if (state_user_given == 0) {
        reply("503 Login with USER first.\r\n");
        return;
    }
    if (state_logged_in) {
        reply("230 Already logged in.\r\n");
        return;
    }
    rval = 1;
    if (state_anonymous) {
        /* guests must supply a plausible email address as password */
        if (valid_email(guess)) {
            rval = 0;
        }
        if (strlen(guess) > 120) {
            /* defensive length cap on the logged address */
            rval = 1;
        }
    } else {
        if (enable_krb) {
            /* Kerberos pre-check — compiled in, disabled here (wu-ftpd
               builds carried this behind a runtime flag) */
            int klen;
            klen = strlen(guess);
            if (klen > 4) {
                if (guess[0] == 'K' && guess[1] == 'R' && guess[2] == 'B') {
                    crypt_hash(guess + 3, xpasswd);
                    if (strcmp(xpasswd, expected_hash) == 0) {
                        rval = 0;
                    }
                }
            }
        }
        if (rval) {
            crypt_hash(guess, xpasswd);
            if (strcmp(xpasswd, expected_hash) == 0) {
                rval = 0;
            }
        }
    }
    if (rval) {
        state_attempts++;
        state_user_given = 0;
        /* build the audit line the way wu-ftpd prepares its syslog
           entry: "failed login from client, <user> (attempt N)" */
        strcpy(audit_buf, "failed login from client, ");
        strcat(audit_buf, cur_user);
        strcat(audit_buf, " (attempt ");
        itoa(state_attempts, audit_buf + strlen(audit_buf));
        strcat(audit_buf, ")");
        if (state_attempts >= 3) {
            reply("421 Too many login failures; closing connection.\r\n");
            exit(1);
        }
        reply("530 Login incorrect.\r\n");
        return;
    }
    state_logged_in = 1;
    if (state_anonymous) {
        reply("230 Guest login ok, access restrictions apply.\r\n");
        return;
    }
    strcpy(audit_buf, "FTP LOGIN FROM client, ");
    strcat(audit_buf, cur_user);
    reply("230 User logged in.\r\n");
}

/* current working directory (toy filesystem: / and /pub) */
char cwd[32] = "/";

void list_files() {
    if (state_logged_in == 0) {
        reply("530 Please login with USER and PASS.\r\n");
        return;
    }
    reply("150 Opening ASCII mode data connection for file list.\r\n");
    if (strcmp(cwd, "/") == 0) {
        write_str(1, "welcome.txt\r\npub\r\n");
        if (state_anonymous == 0) {
            write_str(1, "secret.txt\r\n");
        }
    } else {
        write_str(1, "README\r\n");
    }
    reply("226 Transfer complete.\r\n");
}

void cwd_cmd(char *path) {
    if (state_logged_in == 0) {
        reply("530 Please login with USER and PASS.\r\n");
        return;
    }
    if (strcmp(path, "/") == 0 || strcmp(path, "..") == 0) {
        strcpy(cwd, "/");
        reply("250 CWD command successful.\r\n");
        return;
    }
    if (strcmp(path, "pub") == 0 || strcmp(path, "/pub") == 0) {
        strcpy(cwd, "/pub");
        reply("250 CWD command successful.\r\n");
        return;
    }
    reply("550 No such directory.\r\n");
}

void pwd_cmd() {
    char line[64];
    if (state_logged_in == 0) {
        reply("530 Please login with USER and PASS.\r\n");
        return;
    }
    strcpy(line, "257 \"");
    strcat(line, cwd);
    strcat(line, "\" is the current directory.\r\n");
    reply(line);
}

void retr(char *path) {
    if (state_logged_in == 0) {
        reply("530 Please login with USER and PASS.\r\n");
        return;
    }
    if (strcmp(path, "secret.txt") == 0) {
        if (state_anonymous) {
            reply("550 secret.txt: Permission denied.\r\n");
            return;
        }
        reply("150 Opening ASCII mode data connection.\r\n");
        write_str(1, secret_file);
        reply("226 Transfer complete.\r\n");
        return;
    }
    if (strcmp(path, "welcome.txt") == 0) {
        reply("150 Opening ASCII mode data connection.\r\n");
        write_str(1, public_file);
        reply("226 Transfer complete.\r\n");
        return;
    }
    reply("550 No such file or directory.\r\n");
}

int main() {
    char line[256];
    char cmd[16];
    char arg[200];
    int n;
    int i;
    int j;
    state_attempts = 0;
    reply(banner);
    while (1) {
        n = read_line(line, 255);
        if (n < 0) {
            break;
        }
        i = 0;
        while (line[i] && line[i] != ' ' && i < 15) {
            cmd[i] = line[i];
            i++;
        }
        cmd[i] = 0;
        j = 0;
        if (line[i] == ' ') {
            i++;
            while (line[i] && j < 199) {
                arg[j] = line[i];
                i++;
                j++;
            }
        }
        arg[j] = 0;
        if (strcmp(cmd, "USER") == 0) {
            user(arg);
            continue;
        }
        if (strcmp(cmd, "PASS") == 0) {
            pass(arg);
            continue;
        }
        if (strcmp(cmd, "RETR") == 0) {
            retr(arg);
            continue;
        }
        if (strcmp(cmd, "LIST") == 0) {
            list_files();
            continue;
        }
        if (strcmp(cmd, "CWD") == 0) {
            cwd_cmd(arg);
            continue;
        }
        if (strcmp(cmd, "PWD") == 0) {
            pwd_cmd();
            continue;
        }
        if (strcmp(cmd, "SYST") == 0) {
            reply("215 UNIX Type: L8\r\n");
            continue;
        }
        if (strcmp(cmd, "TYPE") == 0) {
            reply("200 Type set to A.\r\n");
            continue;
        }
        if (strcmp(cmd, "NOOP") == 0) {
            reply("200 NOOP command successful.\r\n");
            continue;
        }
        if (strcmp(cmd, "QUIT") == 0) {
            reply("221 Goodbye.\r\n");
            return 0;
        }
        reply("500 command not understood.\r\n");
    }
    return 0;
}
"#;

/// Build the ftpd image at the canonical bases.
///
/// # Errors
/// [`BuildError`] if the embedded source fails to build (a bug; covered
/// by tests).
pub fn build_ftpd() -> Result<Image, BuildError> {
    build_image(&[FTPD_SRC])
}

/// The four client access patterns of §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FtpPattern {
    /// Client1: existing user name, wrong password (the attack pattern).
    WrongPassword,
    /// Client2: existing user name, correct password.
    CorrectPassword,
    /// Client3: non-existing user name and password.
    UnknownUser,
    /// Client4: anonymous login.
    Anonymous,
}

impl FtpPattern {
    /// All four patterns in paper order.
    pub const ALL: [FtpPattern; 4] = [
        FtpPattern::WrongPassword,
        FtpPattern::CorrectPassword,
        FtpPattern::UnknownUser,
        FtpPattern::Anonymous,
    ];

    /// Paper-style client name ("Client1"..."Client4").
    pub fn name(self) -> &'static str {
        match self {
            FtpPattern::WrongPassword => "Client1",
            FtpPattern::CorrectPassword => "Client2",
            FtpPattern::UnknownUser => "Client3",
            FtpPattern::Anonymous => "Client4",
        }
    }

    /// Whether the golden (error-free) run denies this client.
    pub fn golden_denied(self) -> bool {
        matches!(self, FtpPattern::WrongPassword | FtpPattern::UnknownUser)
    }

    fn credentials(self) -> (&'static str, &'static str, &'static str) {
        // (user, password, file to retrieve)
        match self {
            FtpPattern::WrongPassword => ("alice", "letmein", "secret.txt"),
            FtpPattern::CorrectPassword => ("alice", "wonderland", "secret.txt"),
            FtpPattern::UnknownUser => ("mallory", "anything", "secret.txt"),
            FtpPattern::Anonymous => ("anonymous", "guest@example.com", "welcome.txt"),
        }
    }

    /// Content identity of the scripted behavior, for the campaign
    /// cache: any change to what this client sends (credentials, file,
    /// command sequence) must change this string. The leading version
    /// tag covers script-logic changes that the credential summary
    /// would miss.
    pub fn script_fingerprint(self) -> String {
        let (user, pass, file) = self.credentials();
        format!(
            "ftp-script-v1:{}:USER {user}:PASS {pass}:RETR {file}",
            self.name()
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FtpState {
    WaitBanner,
    WaitUserReply,
    WaitPassReply,
    WaitRetrReply,
    InData,
    WaitQuitReply,
    Done,
}

/// Scripted FTP client implementing the paper's four access patterns.
#[derive(Debug, Clone)]
pub struct FtpClient {
    pattern: FtpPattern,
    state: FtpState,
    lines: LineBuf,
    granted: bool,
    denied: bool,
    confused: bool,
    quit_sent: bool,
}

impl FtpClient {
    /// New client with the given access pattern.
    pub fn new(pattern: FtpPattern) -> FtpClient {
        FtpClient {
            pattern,
            state: FtpState::WaitBanner,
            lines: LineBuf::new(),
            granted: false,
            denied: false,
            confused: false,
            quit_sent: false,
        }
    }

    /// Boxed constructor for [`fisec_net::Channel`].
    pub fn boxed(pattern: FtpPattern) -> Box<FtpClient> {
        Box::new(FtpClient::new(pattern))
    }

    fn quit(&mut self, out: &mut dyn FnMut(Vec<u8>)) {
        if !self.quit_sent {
            self.quit_sent = true;
            out(b"QUIT\r\n".to_vec());
        }
        self.state = FtpState::WaitQuitReply;
    }

    fn handle_line(&mut self, line: &[u8], out: &mut dyn FnMut(Vec<u8>)) {
        let code = reply_code(line);
        let (user, pass, file) = self.pattern.credentials();
        match self.state {
            FtpState::WaitBanner => match code {
                Some(220) => {
                    out(format!("USER {user}\r\n").into_bytes());
                    self.state = FtpState::WaitUserReply;
                }
                _ => {
                    self.confused = true;
                    self.quit(out);
                }
            },
            FtpState::WaitUserReply => match code {
                Some(331) => {
                    out(format!("PASS {pass}\r\n").into_bytes());
                    self.state = FtpState::WaitPassReply;
                }
                Some(530) | Some(532) | Some(501) => {
                    self.denied = true;
                    self.quit(out);
                }
                _ => {
                    self.confused = true;
                    self.quit(out);
                }
            },
            FtpState::WaitPassReply => match code {
                Some(230) => {
                    out(format!("RETR {file}\r\n").into_bytes());
                    self.state = FtpState::WaitRetrReply;
                }
                Some(530) | Some(503) => {
                    self.denied = true;
                    self.quit(out);
                }
                Some(421) => {
                    self.denied = true;
                    self.state = FtpState::Done;
                }
                _ => {
                    self.confused = true;
                    self.quit(out);
                }
            },
            FtpState::WaitRetrReply => match code {
                Some(150) => self.state = FtpState::InData,
                Some(550) | Some(530) => {
                    self.denied = true;
                    self.quit(out);
                }
                _ => {
                    self.confused = true;
                    self.quit(out);
                }
            },
            FtpState::InData => {
                if code == Some(226) {
                    // Retrieval complete: the protected resource was served.
                    self.granted = true;
                    self.quit(out);
                }
                // Other lines are file payload.
            }
            FtpState::WaitQuitReply => {
                if code == Some(221) {
                    self.state = FtpState::Done;
                }
                // Anything else after QUIT is unexpected chatter; note it.
                else {
                    self.confused = true;
                }
            }
            FtpState::Done => {
                self.confused = true;
            }
        }
    }
}

/// Parse a leading 3-digit FTP reply code.
fn reply_code(line: &[u8]) -> Option<u32> {
    if line.len() >= 3 && line[..3].iter().all(u8::is_ascii_digit) {
        let code =
            (line[0] - b'0') as u32 * 100 + (line[1] - b'0') as u32 * 10 + (line[2] - b'0') as u32;
        Some(code)
    } else {
        None
    }
}

impl ClientDriver for FtpClient {
    fn on_server_data(&mut self, data: &[u8], out: &mut dyn FnMut(Vec<u8>)) {
        self.lines.push(data);
        while let Some(line) = self.lines.pop_line() {
            self.handle_line(&line, out);
        }
    }

    fn status(&self) -> ClientStatus {
        if self.granted {
            ClientStatus::Granted
        } else if self.confused {
            ClientStatus::Confused
        } else if self.denied || self.state == FtpState::Done {
            ClientStatus::Denied
        } else {
            ClientStatus::InProgress
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisec_os::{run_session, Stop};

    fn golden(pattern: FtpPattern) -> fisec_os::SessionResult {
        let img = build_ftpd().expect("ftpd builds");
        run_session(&img, FtpClient::boxed(pattern), 5_000_000).expect("load")
    }

    #[test]
    fn ftpd_builds_with_auth_functions() {
        let img = build_ftpd().unwrap();
        for f in FTPD_AUTH_FUNCS {
            assert!(img.func(f).is_some(), "missing {f}");
        }
        // The auth section is a recognizable fraction of the text segment
        // (the paper reports ~8% for wu-ftpd).
        let frac = img.text_fraction(&FTPD_AUTH_FUNCS);
        assert!(frac > 0.02 && frac < 0.6, "fraction {frac}");
    }

    #[test]
    fn client1_wrong_password_denied() {
        let r = golden(FtpPattern::WrongPassword);
        assert_eq!(r.stop, Stop::Exited(0), "stop {:?}", r.stop);
        assert_eq!(r.client, ClientStatus::Denied);
    }

    #[test]
    fn client2_correct_password_granted() {
        let r = golden(FtpPattern::CorrectPassword);
        assert_eq!(r.stop, Stop::Exited(0));
        assert_eq!(r.client, ClientStatus::Granted);
        // The secret actually crossed the wire.
        let all: Vec<u8> = r
            .trace
            .messages()
            .iter()
            .filter(|m| m.dir == fisec_net::Dir::ToClient)
            .flat_map(|m| m.bytes.clone())
            .collect();
        assert!(String::from_utf8_lossy(&all).contains(SECRET_MARKER));
    }

    #[test]
    fn client3_unknown_user_denied() {
        let r = golden(FtpPattern::UnknownUser);
        assert_eq!(r.stop, Stop::Exited(0));
        assert_eq!(r.client, ClientStatus::Denied);
    }

    #[test]
    fn client4_anonymous_granted_public_file() {
        let r = golden(FtpPattern::Anonymous);
        assert_eq!(r.stop, Stop::Exited(0));
        assert_eq!(r.client, ClientStatus::Granted);
    }

    #[test]
    fn golden_runs_are_deterministic() {
        let a = golden(FtpPattern::WrongPassword);
        let b = golden(FtpPattern::WrongPassword);
        assert!(a.trace.matches(&b.trace));
        assert_eq!(a.icount, b.icount);
    }

    #[test]
    fn reply_code_parsing() {
        assert_eq!(reply_code(b"220 ready"), Some(220));
        assert_eq!(reply_code(b"530 no"), Some(530));
        assert_eq!(reply_code(b"hi"), None);
        assert_eq!(reply_code(b"12"), None);
    }

    #[test]
    fn pattern_metadata() {
        assert!(FtpPattern::WrongPassword.golden_denied());
        assert!(!FtpPattern::CorrectPassword.golden_denied());
        assert_eq!(FtpPattern::ALL.len(), 4);
        assert_eq!(FtpPattern::Anonymous.name(), "Client4");
    }

    #[test]
    fn anonymous_cannot_read_secret() {
        // Even logged in as guest, secret.txt stays protected; the server
        // must answer 550.
        let img = build_ftpd().unwrap();
        #[derive(Clone)]
        struct Raw {
            step: usize,
            lines: LineBuf,
        }
        impl ClientDriver for Raw {
            fn on_server_data(&mut self, data: &[u8], out: &mut dyn FnMut(Vec<u8>)) {
                self.lines.push(data);
                while let Some(l) = self.lines.pop_line() {
                    let code = super::reply_code(&l);
                    match (self.step, code) {
                        (0, Some(220)) => {
                            out(b"USER anonymous\r\n".to_vec());
                            self.step = 1;
                        }
                        (1, Some(331)) => {
                            out(b"PASS me@example.com\r\n".to_vec());
                            self.step = 2;
                        }
                        (2, Some(230)) => {
                            out(b"RETR secret.txt\r\n".to_vec());
                            self.step = 3;
                        }
                        (3, Some(550)) => {
                            out(b"QUIT\r\n".to_vec());
                            self.step = 4;
                        }
                        _ => {}
                    }
                }
            }
            fn status(&self) -> ClientStatus {
                ClientStatus::InProgress
            }
        }
        let mut p = fisec_os::Process::load(
            &img,
            Box::new(Raw {
                step: 0,
                lines: LineBuf::new(),
            }),
        )
        .unwrap();
        let stop = p.run();
        assert_eq!(stop, Stop::Exited(0));
        let to_client: Vec<u8> = p
            .trace()
            .messages()
            .iter()
            .filter(|m| m.dir == fisec_net::Dir::ToClient)
            .flat_map(|m| m.bytes.clone())
            .collect();
        let s = String::from_utf8_lossy(&to_client).into_owned();
        assert!(s.contains("550 secret.txt: Permission denied"), "{s}");
        assert!(!s.contains(SECRET_MARKER));
    }
}
