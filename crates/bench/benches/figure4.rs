//! Regenerates the paper's **Figure 4** (number of instructions between
//! error activation and crash, FTP Client1, log2 bins) and benchmarks
//! histogram construction.

use criterion::{criterion_group, criterion_main, Criterion};
use fisec_apps::AppSpec;
use fisec_core::{figure4, run_campaign, CampaignConfig};

fn bench(c: &mut Criterion) {
    let ftpd = AppSpec::ftpd();
    let cfg = CampaignConfig::default();
    let result = run_campaign(&ftpd, &cfg);
    let client1 = &result.clients[0];

    println!("\n== Figure 4: Instructions between Error and Crash (FTP Client1) ==");
    let hist = figure4::histogram(&client1.crash_latencies);
    println!("{}", figure4::render(&hist));
    println!(
        "transient vulnerability window: {} of {} crashes deviated from the\n\
         golden traffic before crashing; {:.1}% of crashes took more than 100\n\
         instructions (the paper reports 8.5%)",
        client1.transient_deviations,
        client1.crash_latencies.len(),
        (1.0 - hist.within_100) * 100.0
    );

    let latencies = client1.crash_latencies.clone();
    c.bench_function("figure4/histogram", |b| {
        b.iter(|| figure4::histogram(std::hint::black_box(&latencies)))
    });
    c.bench_function("figure4/bin_index", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for l in 1..2000u64 {
                acc += figure4::bin_index(std::hint::black_box(l));
            }
            acc
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);
