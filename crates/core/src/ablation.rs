//! Ablation studies for the design claims the paper argues from its data.
//!
//! * **Entry points** (§5.3): "applications with multiple points of entry
//!   have a higher probability of being compromised than those with a
//!   single point of entry." We run the identical sshd binary twice —
//!   once with none/rhosts/RSA/password all enabled, once with password
//!   only (switches zeroed in the data segment) — and compare break-in
//!   rates over the *same* injection target set.
//! * **Sampling** (§4): the paper chose *selective exhaustive* injection
//!   over random sampling. The sampling study quantifies what random
//!   subsets of the exhaustive set would have estimated for the BRK
//!   rate, showing why exhaustive injection was needed for a 1%-scale
//!   phenomenon.

use crate::campaign::{run_campaign, CampaignConfig, CampaignResult};
use fisec_apps::AppSpec;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Result of the entry-points ablation.
#[derive(Debug, Clone)]
pub struct EntryPointsResult {
    /// Campaign with all mechanisms enabled.
    pub multi: CampaignResult,
    /// Campaign with password-only authentication.
    pub single: CampaignResult,
}

impl EntryPointsResult {
    /// Break-ins for the attack client under the multi-mechanism config.
    pub fn multi_brk(&self) -> usize {
        self.multi.clients[0].counts.brk
    }

    /// Break-ins for the attack client under password-only config.
    pub fn single_brk(&self) -> usize {
        self.single.clients[0].counts.brk
    }
}

/// Run the entry-points ablation (attack client only, to keep it fast).
pub fn entry_points_study(cfg: &CampaignConfig) -> EntryPointsResult {
    let mut multi_app = AppSpec::sshd();
    multi_app.clients.truncate(1);
    let mut single_app = AppSpec::sshd_single_entry();
    single_app.clients.truncate(1);
    EntryPointsResult {
        multi: run_campaign(&multi_app, cfg),
        single: run_campaign(&single_app, cfg),
    }
}

/// Render the entry-points comparison.
pub fn render_entry_points(r: &EntryPointsResult) -> String {
    let mc = &r.multi.clients[0];
    let sc = &r.single.clients[0];
    let pct = |c: &crate::campaign::ClientCampaign, n: usize| {
        let act = c.counts.activated();
        if act == 0 {
            0.0
        } else {
            n as f64 * 100.0 / act as f64
        }
    };
    format!(
        "configuration          BRK   (% of activated)   FSV\n\
         multi-entry (4 ways) {:>5}   {:>8.2}%          {:>4}\n\
         password-only        {:>5}   {:>8.2}%          {:>4}\n",
        mc.counts.brk,
        pct(mc, mc.counts.brk),
        mc.counts.fsv,
        sc.counts.brk,
        pct(sc, sc.counts.brk),
        sc.counts.fsv,
    )
}

/// One row of the sampling study: estimate quality at a sample size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplingRow {
    /// Runs sampled from the exhaustive set.
    pub sample_size: usize,
    /// Mean estimated BRK-rate (% of activated) over the resamples.
    pub mean_estimate: f64,
    /// Fraction of resamples that saw *zero* break-ins (and would have
    /// concluded the vulnerability does not exist).
    pub missed_entirely: f64,
}

/// Quantify random-sampling estimates of the BRK rate against the
/// exhaustive ground truth, using the per-run records of a completed
/// campaign (no re-execution).
pub fn sampling_study(
    result: &CampaignResult,
    client_index: usize,
    sample_sizes: &[usize],
    resamples: usize,
    seed: u64,
) -> (f64, Vec<SamplingRow>) {
    let c = &result.clients[client_index];
    let records = &c.records;
    let activated_total = c.counts.activated().max(1);
    let truth = c.counts.brk as f64 * 100.0 / activated_total as f64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    for &k in sample_sizes {
        let k = k.min(records.len());
        let mut estimates = Vec::with_capacity(resamples);
        let mut missed = 0usize;
        for _ in 0..resamples {
            let sample: Vec<_> = records.choose_multiple(&mut rng, k).collect();
            let act = sample
                .iter()
                .filter(|r| r.outcome_abbrev != 'N')
                .count()
                .max(1);
            let brk = sample.iter().filter(|r| r.outcome_abbrev == 'B').count();
            if brk == 0 {
                missed += 1;
            }
            estimates.push(brk as f64 * 100.0 / act as f64);
        }
        rows.push(SamplingRow {
            sample_size: k,
            mean_estimate: estimates.iter().sum::<f64>() / estimates.len().max(1) as f64,
            missed_entirely: missed as f64 / resamples.max(1) as f64,
        });
    }
    (truth, rows)
}

/// Render the sampling study.
pub fn render_sampling(truth: f64, rows: &[SamplingRow]) -> String {
    let mut out = format!(
        "exhaustive ground truth: BRK = {truth:.2}% of activated errors\n\
         sample size   mean estimate   P(missed entirely)\n"
    );
    for r in rows {
        out.push_str(&format!(
            "{:>11}   {:>12.2}%   {:>18.2}\n",
            r.sample_size, r.mean_estimate, r.missed_entirely
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::RunRecord;
    use crate::counts::{LocationCounts, OutcomeCounts};
    use fisec_encoding::EncodingScheme;
    use fisec_inject::GoldenRun;
    use fisec_net::{ClientStatus, Trace};
    use fisec_os::Stop;

    fn synthetic_result(brk: usize, total: usize) -> CampaignResult {
        let mut records = Vec::new();
        for i in 0..total {
            records.push(RunRecord {
                addr: i as u32,
                byte_index: 0,
                bit: 0,
                outcome_abbrev: if i < brk { 'B' } else { 'S' },
                location_index: 0,
                crash_latency: None,
                transient_deviation: false,
            });
        }
        CampaignResult {
            app: "synthetic".into(),
            scheme: EncodingScheme::Baseline,
            instructions: 1,
            cond_branches: 1,
            runs_per_client: total,
            clients: vec![crate::campaign::ClientCampaign {
                client: "Client1".into(),
                golden_denied: true,
                golden: GoldenRun {
                    stop: Stop::Exited(0),
                    client: ClientStatus::Denied,
                    trace: Trace::default(),
                    icount: 1,
                },
                counts: OutcomeCounts {
                    na: 0,
                    nm: 0,
                    sd: total - brk,
                    fsv: 0,
                    brk,
                },
                brkfsv_by_location: LocationCounts::default(),
                crash_latencies: vec![],
                trace_crash_latencies: vec![],
                transient_deviations: 0,
                records,
                propagation: None,
            }],
        }
    }

    #[test]
    fn sampling_estimates_converge_to_truth() {
        let r = synthetic_result(10, 1000); // 1% BRK
        let (truth, rows) = sampling_study(&r, 0, &[10, 100, 1000], 200, 42);
        assert!((truth - 1.0).abs() < 1e-9);
        // Small samples frequently miss the phenomenon entirely.
        assert!(rows[0].missed_entirely > 0.5, "{rows:?}");
        // The full-set "sample" never misses and matches the truth.
        let last = rows.last().unwrap();
        assert_eq!(last.missed_entirely, 0.0);
        assert!((last.mean_estimate - truth).abs() < 1e-9);
    }

    #[test]
    fn sampling_is_reproducible() {
        let r = synthetic_result(5, 500);
        let a = sampling_study(&r, 0, &[50], 100, 7);
        let b = sampling_study(&r, 0, &[50], 100, 7);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn render_sampling_has_rows() {
        let r = synthetic_result(5, 500);
        let (truth, rows) = sampling_study(&r, 0, &[10, 50], 50, 1);
        let s = render_sampling(truth, &rows);
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains("ground truth"));
    }
}
