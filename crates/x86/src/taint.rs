//! Taint-style propagation tracer: the shadow engine behind
//! `fisec propagate`.
//!
//! The study's central question is not *whether* a flipped bit crashes
//! the server but *how* the corruption travels from the injected
//! instruction to a failed security check. This module models that
//! travel with a byte-granular shadow state:
//!
//! * one 4-bit byte mask per 32-bit register,
//! * one bit for the arithmetic flags (EFLAGS is tracked as a unit —
//!   the study's injected errors corrupt whole compare results, not
//!   individual status bits),
//! * a bounded sparse set of tainted memory byte addresses.
//!
//! The tracer is pure observation: it never reads or writes
//! architectural state beyond the pre-execution register file the
//! dispatch loop hands it, so outcomes, icounts, coverage and traces
//! are bit-identical with it on or off (the differential tests pin
//! this). It follows the flight recorder's lifecycle — per-run, enabled
//! by the injector after the flip is planted, dropped by
//! [`crate::Machine::restore`].
//!
//! Taint is *born* only at the seed address (the injected instruction:
//! executing it writes corrupted data into its destination) and *dies*
//! when every tainted location has been overwritten with clean values.
//! Both transitions, plus the firsts the paper cares about (first
//! tainted write, flag, compare, branch, syscall argument), are emitted
//! into a bounded [`PropagationLog`].

use crate::inst::{Inst, MemOperand, Op, OpSize, Operand, Reg8, StrOp};
use crate::Cpu;
use std::collections::HashSet;

/// Hard cap on tainted memory bytes tracked exactly. Beyond it the set
/// saturates: existing taint is kept, new taint is dropped and the log
/// is flagged, so a runaway `rep movs` cannot balloon the shadow.
const MEM_TAINT_CAP: usize = 1 << 16;

/// Per-observation cap on string-op iterations shadowed byte-exactly.
const STR_ITER_CAP: u32 = 4096;

/// Default cap on hooked (live-taint) instructions before the tracer
/// freezes. Freezing only stops *observation*; execution continues
/// bit-identically.
pub const DEFAULT_TAINT_HORIZON: u64 = 200_000;

/// Cap on retained [`PropEvent`]s; later events are counted, not kept.
const EVENT_CAP: usize = 256;

/// What happened at a propagation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropKind {
    /// The injected instruction executed; its destination is now tainted.
    Seed,
    /// Tainted data (or a tainted address) reached a memory write.
    Write {
        /// First written byte address.
        addr: u32,
        /// Bytes written.
        len: u32,
    },
    /// Tainted data reached the arithmetic flags.
    Flag,
    /// A compare (`cmp`/`test`/`scas`/`cmps`/`bound`/`cmpxchg`) consumed
    /// tainted data — the security-critical moment of arXiv 1803.08359.
    Compare,
    /// A control transfer depended on tainted data: a conditional branch
    /// or `setcc` over tainted flags, a `loop`/`jecxz` over a tainted
    /// ECX, or an indirect jump/call/return through a tainted target.
    Branch,
    /// `int 0x80` executed with a tainted argument register.
    SyscallArg {
        /// Syscall number (pre-execution EAX).
        nr: u32,
    },
    /// Every tainted location was overwritten clean; the shadow is empty.
    Death,
    /// The observation horizon was reached; tracing stopped here.
    Frozen,
}

/// One corruption event: where, when, and how wide the taint was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropEvent {
    /// Retired-instruction count at the event.
    pub icount: u64,
    /// Address of the observed instruction.
    pub addr: u32,
    /// Event kind.
    pub kind: PropKind,
    /// Shadow width (tainted bytes + flags bit) right after the event.
    pub width: u32,
}

/// The bounded corruption timeline a traced run produces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PropagationLog {
    /// Up to [`EVENT_CAP`] events in retirement order.
    pub events: Vec<PropEvent>,
    /// Events beyond the cap (counted, not kept).
    pub dropped: u64,
    /// Icount at which the seed instruction first executed.
    pub seed_icount: Option<u64>,
    /// Icount of the first tainted memory write.
    pub first_write: Option<u64>,
    /// Icount of the first tainted flags result.
    pub first_flag: Option<u64>,
    /// Icount of the first tainted compare.
    pub first_compare: Option<u64>,
    /// Icount of the first taint-dependent control transfer.
    pub first_branch: Option<u64>,
    /// Icount of the first syscall with a tainted argument register.
    pub first_syscall_arg: Option<u64>,
    /// Icount at which the shadow became empty again, if it did.
    pub death: Option<u64>,
    /// Widest the shadow ever got.
    pub peak_width: u32,
    /// Shadow width when the log was taken.
    pub final_width: u32,
    /// Live-taint instructions observed.
    pub hooked: u64,
    /// True when the observation horizon cut the trace short.
    pub frozen: bool,
    /// True when the tainted-memory set hit [`MEM_TAINT_CAP`].
    pub saturated: bool,
}

impl PropagationLog {
    /// Earliest icount at which tainted data reached a compare or a
    /// control decision — the "reached a security check" moment the
    /// campaign aggregation reports.
    pub fn first_decision(&self) -> Option<u64> {
        match (self.first_compare, self.first_branch) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// True when nothing was ever tainted (clean golden run, or a seed
    /// that never executed).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.peak_width == 0 && self.seed_icount.is_none()
    }
}

/// The shadow state proper: which bytes of the architectural state hold
/// corrupted data right now.
#[derive(Debug, Clone, Default)]
pub struct TaintState {
    /// Bit `b` set = byte `b` of register `r` is tainted (`b < 4`).
    reg_masks: [u8; 8],
    /// The arithmetic flags hold a corrupted result.
    flags: bool,
    /// Tainted memory byte addresses, capped at [`MEM_TAINT_CAP`].
    mem: HashSet<u32>,
    /// The memory set overflowed and is now a known under-approximation.
    saturated: bool,
}

impl TaintState {
    /// Tainted bytes + flags bit.
    pub fn width(&self) -> u32 {
        let regs: u32 = self.reg_masks.iter().map(|m| m.count_ones()).sum();
        regs + u32::from(self.flags) + self.mem.len() as u32
    }

    /// True when nothing is tainted.
    pub fn is_empty(&self) -> bool {
        !self.flags && self.mem.is_empty() && self.reg_masks.iter().all(|&m| m == 0)
    }

    fn reg_range_tainted(&self, r: usize, lo: u8, hi: u8) -> bool {
        let mask = ((1u16 << hi) - (1 << lo)) as u8;
        self.reg_masks[r] & mask != 0
    }

    fn set_reg_range(&mut self, r: usize, lo: u8, hi: u8, tainted: bool) {
        let mask = ((1u16 << hi) - (1 << lo)) as u8;
        if tainted {
            self.reg_masks[r] |= mask;
        } else {
            self.reg_masks[r] &= !mask;
        }
    }

    fn mem_range_tainted(&self, addr: u32, len: u32) -> bool {
        (0..len).any(|i| self.mem.contains(&addr.wrapping_add(i)))
    }

    fn set_mem_range(&mut self, addr: u32, len: u32, tainted: bool) {
        for i in 0..len {
            let a = addr.wrapping_add(i);
            if tainted {
                if self.mem.len() < MEM_TAINT_CAP {
                    self.mem.insert(a);
                } else if !self.mem.contains(&a) {
                    self.saturated = true;
                }
            } else {
                self.mem.remove(&a);
            }
        }
    }
}

/// The tracer: shadow state plus the log under construction. One per
/// run, owned by [`crate::Machine`].
#[derive(Debug, Clone)]
pub struct TaintTracer {
    state: TaintState,
    /// Address of the injected instruction; `None` selects observe-all
    /// mode (every instruction runs the transfer function, nothing is
    /// ever seeded — the clean-run property test uses it).
    seed: Option<u32>,
    horizon: u64,
    hooked: u64,
    frozen: bool,
    /// Cached `!state.is_empty()` so the per-instruction bail is a load.
    live: bool,
    log: PropagationLog,
}

impl TaintTracer {
    /// New tracer. `seed` is the injected instruction's address;
    /// `None` selects observe-all mode. `horizon` caps the live-taint
    /// instructions observed before the tracer freezes.
    pub fn new(seed: Option<u32>, horizon: u64) -> TaintTracer {
        TaintTracer {
            state: TaintState::default(),
            seed,
            horizon: horizon.max(1),
            hooked: 0,
            frozen: false,
            live: false,
            log: PropagationLog::default(),
        }
    }

    /// Whether this tracer observes every instruction (seedless mode).
    pub fn observe_all(&self) -> bool {
        self.seed.is_none()
    }

    /// Does the tracer need the instrumented path for a code range?
    /// Taint can only be born at the seed address and only propagate
    /// while the shadow is non-empty, so everything else may take the
    /// fast path / a tier-2 trace untouched.
    #[inline]
    pub fn wants_range(&self, lo: u32, hi: u64) -> bool {
        if self.frozen {
            return false;
        }
        if self.live {
            return true;
        }
        match self.seed {
            Some(s) => (s as u64) >= (lo as u64) && (s as u64) < hi,
            None => true,
        }
    }

    /// Current shadow width.
    pub fn width(&self) -> u32 {
        self.state.width()
    }

    /// Read-only view of the shadow state.
    pub fn state(&self) -> &TaintState {
        &self.state
    }

    /// Seal and take the log.
    pub fn into_log(mut self) -> PropagationLog {
        self.log.final_width = self.state.width();
        self.log.saturated = self.state.saturated;
        self.log.hooked = self.hooked;
        self.log.frozen = self.frozen;
        self.log
    }

    fn push_event(&mut self, icount: u64, addr: u32, kind: PropKind) {
        let width = self.state.width();
        if self.log.events.len() < EVENT_CAP {
            self.log.events.push(PropEvent {
                icount,
                addr,
                kind,
                width,
            });
        } else {
            self.log.dropped += 1;
        }
        self.log.peak_width = self.log.peak_width.max(width);
    }

    /// Observe one instruction *before* it executes: `cpu` is the
    /// pre-execution register file, so effective addresses and string
    /// counts are exactly the ones the instruction is about to use.
    #[inline]
    pub fn observe(&mut self, cpu: &Cpu, inst: &Inst, addr: u32, icount: u64) {
        if self.frozen {
            return;
        }
        let seeding = self.seed == Some(addr);
        if !self.live && !seeding && self.seed.is_some() {
            return;
        }
        self.hooked += 1;
        if self.hooked > self.horizon {
            self.frozen = true;
            self.push_event(icount, addr, PropKind::Frozen);
            return;
        }
        let was_live = self.live;
        self.transfer(cpu, inst, addr, icount, seeding);
        self.live = !self.state.is_empty();
        self.log.peak_width = self.log.peak_width.max(self.state.width());
        if seeding && self.log.seed_icount.is_none() {
            self.log.seed_icount = Some(icount);
        }
        if was_live && !self.live && !seeding {
            if self.log.death.is_none() {
                self.log.death = Some(icount);
            }
            self.push_event(icount, addr, PropKind::Death);
        }
    }

    fn note_write(&mut self, icount: u64, addr: u32, wa: u32, len: u32) {
        if self.log.first_write.is_none() {
            self.log.first_write = Some(icount);
        }
        self.push_event(icount, addr, PropKind::Write { addr: wa, len });
    }

    fn note_flag(&mut self, icount: u64, addr: u32) {
        if self.log.first_flag.is_none() {
            self.log.first_flag = Some(icount);
            self.push_event(icount, addr, PropKind::Flag);
        }
    }

    fn note_compare(&mut self, icount: u64, addr: u32) {
        if self.log.first_compare.is_none() {
            self.log.first_compare = Some(icount);
        }
        self.push_event(icount, addr, PropKind::Compare);
    }

    fn note_branch(&mut self, icount: u64, addr: u32) {
        if self.log.first_branch.is_none() {
            self.log.first_branch = Some(icount);
        }
        self.push_event(icount, addr, PropKind::Branch);
    }

    fn note_syscall(&mut self, icount: u64, addr: u32, nr: u32) {
        if self.log.first_syscall_arg.is_none() {
            self.log.first_syscall_arg = Some(icount);
        }
        self.push_event(icount, addr, PropKind::SyscallArg { nr });
    }

    /// Taint of an operand read at `size`, including address-register
    /// taint for memory operands (a corrupted pointer yields corrupted
    /// data, wherever it points).
    fn src_taint(&self, cpu: &Cpu, op: &Operand, size: OpSize) -> bool {
        match op {
            Operand::Reg(r) => self.state.reg_range_tainted(*r as usize, 0, 4),
            Operand::Reg16(r) => self.state.reg_range_tainted(*r as usize, 0, 2),
            Operand::Reg8(r) => {
                let n = *r as usize;
                let (reg, byte) = if n < 4 { (n, 0) } else { (n - 4, 1) };
                self.state.reg_range_tainted(reg, byte, byte + 1)
            }
            Operand::Imm(_) | Operand::Rel(_) => false,
            Operand::Mem(m) => {
                self.mem_operand_addr_taint(m)
                    || self.state.mem_range_tainted(ea(cpu, m), size.bytes())
            }
        }
    }

    /// Taint of the registers forming a memory operand's address.
    fn mem_operand_addr_taint(&self, m: &MemOperand) -> bool {
        let base = m
            .base
            .is_some_and(|b| self.state.reg_range_tainted(b as usize, 0, 4));
        let index = m
            .index
            .is_some_and(|(i, _)| self.state.reg_range_tainted(i as usize, 0, 4));
        base || index
    }

    /// Write taint into a destination operand, emitting a write event
    /// for tainted memory stores.
    fn write_dst(
        &mut self,
        cpu: &Cpu,
        op: &Operand,
        size: OpSize,
        tainted: bool,
        addr: u32,
        icount: u64,
    ) {
        match op {
            Operand::Reg(r) => self.state.set_reg_range(*r as usize, 0, 4, tainted),
            Operand::Reg16(r) => self.state.set_reg_range(*r as usize, 0, 2, tainted),
            Operand::Reg8(r) => {
                let n = *r as usize;
                let (reg, byte) = if n < 4 { (n, 0) } else { (n - 4, 1) };
                self.state.set_reg_range(reg, byte, byte + 1, tainted);
            }
            Operand::Mem(m) => {
                let wa = ea(cpu, m);
                let t = tainted || self.mem_operand_addr_taint(m);
                self.state.set_mem_range(wa, size.bytes(), t);
                if t {
                    self.note_write(icount, addr, wa, size.bytes());
                }
            }
            _ => {}
        }
    }

    /// Mark the flags result of an instruction, emitting the first-flag
    /// event on the clean→tainted transition.
    fn write_flags(&mut self, tainted: bool, addr: u32, icount: u64) {
        self.state.flags = tainted;
        if tainted {
            self.note_flag(icount, addr);
        }
    }

    fn reg_tainted(&self, r: usize) -> bool {
        self.state.reg_range_tainted(r, 0, 4)
    }

    fn set_reg(&mut self, r: usize, tainted: bool) {
        self.state.set_reg_range(r, 0, 4, tainted);
    }

    /// Shadow the push of one dword: the four bytes below pre-exec ESP.
    fn push_taint(&mut self, esp: u32, slot: u32, tainted: bool, addr: u32, icount: u64) {
        let wa = esp.wrapping_sub(4 * (slot + 1));
        let t = tainted || self.reg_tainted(4);
        self.state.set_mem_range(wa, 4, t);
        if t {
            self.note_write(icount, addr, wa, 4);
        }
    }

    /// Taint of the dword `slot` dwords above pre-exec ESP.
    fn pop_taint(&self, esp: u32, slot: u32) -> bool {
        self.reg_tainted(4) || self.state.mem_range_tainted(esp.wrapping_add(4 * slot), 4)
    }

    /// The transfer function: map the instruction's data flow onto the
    /// shadow. `force` (seed mode) taints every destination regardless
    /// of source taint — the injected instruction's output *is* the
    /// corruption, whatever its inputs. All-clean sources clear their
    /// destination (taint death by overwrite).
    #[allow(clippy::too_many_lines)]
    fn transfer(&mut self, cpu: &Cpu, inst: &Inst, addr: u32, icount: u64, force: bool) {
        let size = inst.size;
        let esp = cpu.regs[4];
        if force {
            self.push_event(icount, addr, PropKind::Seed);
        }
        // Taint of a source operand at the instruction's width.
        macro_rules! st {
            ($op:expr) => {
                self.src_taint(cpu, &$op, size)
            };
        }
        match inst.op {
            Op::Nop | Op::Fpu | Op::Fwait | Op::Invalid(_) | Op::Int3 => {}
            Op::Mov => {
                let t = force || st!(inst.src.unwrap());
                self.write_dst(cpu, &inst.dst.unwrap(), size, t, addr, icount);
            }
            Op::Movzx | Op::Movsx => {
                let t = force || self.src_taint(cpu, &inst.src.unwrap(), inst.size2);
                self.write_dst(cpu, &inst.dst.unwrap(), size, t, addr, icount);
            }
            Op::Lea => {
                let t = force
                    || matches!(inst.src, Some(Operand::Mem(m)) if self.mem_operand_addr_taint(&m));
                self.write_dst(cpu, &inst.dst.unwrap(), OpSize::Dword, t, addr, icount);
            }
            Op::Xchg => {
                let td = force || st!(inst.dst.unwrap());
                let ts = force || st!(inst.src.unwrap());
                self.write_dst(cpu, &inst.dst.unwrap(), size, ts, addr, icount);
                self.write_dst(cpu, &inst.src.unwrap(), size, td, addr, icount);
            }
            Op::Add | Op::Or | Op::Adc | Op::Sbb | Op::And | Op::Sub | Op::Xor => {
                let carry = matches!(inst.op, Op::Adc | Op::Sbb) && self.state.flags;
                let mut t = force || st!(inst.dst.unwrap()) || st!(inst.src.unwrap()) || carry;
                // `xor r, r` / `sub r, r` are architectural zeroing
                // idioms: the result is constant whatever the input.
                if matches!(inst.op, Op::Xor | Op::Sub) && inst.dst == inst.src && !force {
                    t = false;
                }
                self.write_dst(cpu, &inst.dst.unwrap(), size, t, addr, icount);
                self.write_flags(t, addr, icount);
            }
            Op::Cmp | Op::Test => {
                let t = force || st!(inst.dst.unwrap()) || st!(inst.src.unwrap());
                self.write_flags(t, addr, icount);
                if t {
                    self.note_compare(icount, addr);
                }
            }
            Op::Inc | Op::Dec | Op::Neg | Op::Not => {
                let t = force || st!(inst.dst.unwrap());
                self.write_dst(cpu, &inst.dst.unwrap(), size, t, addr, icount);
                if inst.op != Op::Not {
                    self.write_flags(t, addr, icount);
                }
            }
            Op::Mul | Op::Imul1 => {
                let t = force || st!(inst.dst.unwrap()) || self.reg_tainted(0);
                self.set_reg(0, t);
                self.set_reg(2, t);
                self.write_flags(t, addr, icount);
            }
            Op::Imul2 => {
                let t = force || st!(inst.dst.unwrap()) || st!(inst.src.unwrap());
                self.write_dst(cpu, &inst.dst.unwrap(), size, t, addr, icount);
                self.write_flags(t, addr, icount);
            }
            Op::Imul3 => {
                let t = force || st!(inst.src.unwrap());
                self.write_dst(cpu, &inst.dst.unwrap(), size, t, addr, icount);
                self.write_flags(t, addr, icount);
            }
            Op::Div | Op::Idiv => {
                let t =
                    force || st!(inst.dst.unwrap()) || self.reg_tainted(0) || self.reg_tainted(2);
                self.set_reg(0, t);
                self.set_reg(2, t);
                self.write_flags(t, addr, icount);
            }
            Op::Shl | Op::Shr | Op::Sar | Op::Rol | Op::Ror | Op::Rcl | Op::Rcr => {
                let carry = matches!(inst.op, Op::Rcl | Op::Rcr) && self.state.flags;
                let t = force
                    || st!(inst.dst.unwrap())
                    || self.src_taint(cpu, &inst.src.unwrap(), OpSize::Byte)
                    || carry;
                self.write_dst(cpu, &inst.dst.unwrap(), size, t, addr, icount);
                self.write_flags(t, addr, icount);
            }
            Op::Shld | Op::Shrd => {
                let t = force
                    || st!(inst.dst.unwrap())
                    || st!(inst.src.unwrap())
                    || self.src_taint(cpu, &inst.src2.unwrap(), OpSize::Byte);
                self.write_dst(cpu, &inst.dst.unwrap(), size, t, addr, icount);
                self.write_flags(t, addr, icount);
            }
            Op::Bt | Op::Bts | Op::Btr | Op::Btc => {
                let t = force || st!(inst.dst.unwrap()) || st!(inst.src.unwrap());
                if inst.op != Op::Bt {
                    self.write_dst(cpu, &inst.dst.unwrap(), size, t, addr, icount);
                }
                self.write_flags(t, addr, icount);
            }
            Op::Xadd => {
                let td = force || st!(inst.dst.unwrap());
                let ts = force || st!(inst.src.unwrap());
                self.write_dst(cpu, &inst.src.unwrap(), size, td, addr, icount);
                self.write_dst(cpu, &inst.dst.unwrap(), size, td || ts, addr, icount);
                self.write_flags(td || ts, addr, icount);
            }
            Op::Cmpxchg => {
                let td = force || st!(inst.dst.unwrap());
                let ts = force || st!(inst.src.unwrap());
                let ta = self.reg_tainted(0) || force;
                // Either arm may have executed: union both outcomes.
                self.write_dst(cpu, &inst.dst.unwrap(), size, td || ts, addr, icount);
                self.set_reg(0, ta || td);
                self.write_flags(ta || td, addr, icount);
                if ta || td {
                    self.note_compare(icount, addr);
                }
            }
            Op::Bswap => {
                if let Some(Operand::Reg(r)) = inst.dst {
                    let n = r as usize;
                    let m = self.state.reg_masks[n] & 0xF;
                    let rev = ((m & 1) << 3) | ((m & 2) << 1) | ((m & 4) >> 1) | ((m & 8) >> 3);
                    self.state.reg_masks[n] = if force { 0xF } else { rev };
                }
            }
            Op::Arpl => self.write_flags(force, addr, icount),
            Op::Push => {
                let t = force || st!(inst.dst.unwrap());
                self.push_taint(esp, 0, t, addr, icount);
            }
            Op::Pop => {
                let t = force || self.pop_taint(esp, 0);
                self.write_dst(cpu, &inst.dst.unwrap(), size, t, addr, icount);
            }
            Op::Pusha => {
                for n in 0..8u32 {
                    let t = force || self.reg_tainted(n as usize);
                    self.push_taint(esp, n, t, addr, icount);
                }
            }
            Op::Popa => {
                for n in 0..8u32 {
                    // Pop order is EDI first; register 4 is discarded.
                    let reg = 7 - n as usize;
                    if reg != 4 {
                        let t = force || self.pop_taint(esp, n);
                        self.set_reg(reg, t);
                    }
                }
            }
            Op::Pushf => {
                self.push_taint(esp, 0, force || self.state.flags, addr, icount);
            }
            Op::Popf => {
                let t = force || self.pop_taint(esp, 0);
                self.write_flags(t, addr, icount);
            }
            Op::Sahf => {
                let ah = self.state.reg_range_tainted(0, 1, 2);
                // OF survives SAHF, so existing flags taint cannot clear.
                self.write_flags(force || ah || self.state.flags, addr, icount);
            }
            Op::Lahf => {
                let t = force || self.state.flags;
                self.state.set_reg_range(0, 1, 2, t);
            }
            Op::Salc => {
                let t = force || self.state.flags;
                self.state.set_reg_range(0, 0, 1, t);
            }
            Op::Cwde => {
                let t = force || self.state.reg_range_tainted(0, 0, 2);
                self.set_reg(0, t);
            }
            Op::Cdq => {
                let t = force || self.reg_tainted(0);
                self.set_reg(2, t);
            }
            Op::Clc | Op::Stc | Op::Cmc | Op::Cld | Op::Std => {
                // Single-bit flag writes; the rest of EFLAGS keeps its
                // taint, so the one-bit shadow can only stay or be set.
                if force {
                    self.write_flags(true, addr, icount);
                }
            }
            Op::Xlat => {
                let a = cpu.regs[3].wrapping_add(u32::from(cpu.get8(Reg8::Al)));
                let t = force
                    || self.reg_tainted(3)
                    || self.state.reg_range_tainted(0, 0, 1)
                    || self.state.mem_range_tainted(a, 1);
                self.state.set_reg_range(0, 0, 1, t);
            }
            Op::Aaa | Op::Aas | Op::Daa | Op::Das => {
                let t = force || self.state.reg_range_tainted(0, 0, 2) || self.state.flags;
                self.state.set_reg_range(0, 0, 2, t);
                self.write_flags(t, addr, icount);
            }
            Op::Aam(_) | Op::Aad(_) => {
                let t = force || self.state.reg_range_tainted(0, 0, 2);
                self.state.set_reg_range(0, 0, 2, t);
                self.write_flags(t, addr, icount);
            }
            Op::Cpuid => {
                // Constant outputs: a clean overwrite of EAX..EDX.
                for r in 0..4 {
                    self.set_reg(r, force);
                }
            }
            Op::Rdtsc => {
                self.set_reg(0, force);
                self.set_reg(2, force);
            }
            Op::Bound => {
                let t = force || st!(inst.dst.unwrap()) || st!(inst.src.unwrap());
                if t {
                    self.note_compare(icount, addr);
                }
            }
            Op::Str(s) => self.transfer_string(cpu, inst, s, addr, icount, force),
            Op::Setcc(_) => {
                let t = force || self.state.flags;
                self.write_dst(cpu, &inst.dst.unwrap(), OpSize::Byte, t, addr, icount);
                if t {
                    self.note_branch(icount, addr);
                }
            }
            Op::Jcc(_) => {
                if force || self.state.flags {
                    self.note_branch(icount, addr);
                }
            }
            Op::Loop | Op::Loope | Op::Loopne => {
                let zf = matches!(inst.op, Op::Loope | Op::Loopne) && self.state.flags;
                if force || self.reg_tainted(1) || zf {
                    self.note_branch(icount, addr);
                }
            }
            Op::Jecxz => {
                if force || self.reg_tainted(1) {
                    self.note_branch(icount, addr);
                }
            }
            Op::Jmp | Op::Call => {
                if force {
                    self.note_branch(icount, addr);
                }
                if inst.op == Op::Call {
                    // The pushed return address is a clean constant.
                    self.push_taint(esp, 0, force, addr, icount);
                }
            }
            Op::JmpInd | Op::CallInd => {
                let t = force || self.src_taint(cpu, &inst.dst.unwrap(), OpSize::Dword);
                if t {
                    self.note_branch(icount, addr);
                }
                if inst.op == Op::CallInd {
                    self.push_taint(esp, 0, force, addr, icount);
                }
            }
            Op::Ret(_) => {
                if force || self.pop_taint(esp, 0) {
                    self.note_branch(icount, addr);
                }
            }
            Op::Leave => {
                // esp <- ebp; pop ebp.
                let ebp = cpu.regs[5];
                let t_esp = force || self.reg_tainted(5);
                let t_ebp = force || self.reg_tainted(5) || self.state.mem_range_tainted(ebp, 4);
                self.set_reg(4, t_esp);
                self.set_reg(5, t_ebp);
            }
            Op::Enter(_, _) => {
                let t = force || self.reg_tainted(5);
                self.push_taint(esp, 0, t, addr, icount);
                // Nesting levels re-push frame pointers; conservatively
                // the new EBP/ESP carry the old EBP/ESP taint.
                self.set_reg(5, force || self.reg_tainted(4));
            }
            Op::Int(n) => {
                if n == 0x80 {
                    let arg = (0..8).filter(|&r| r != 4).any(|r| self.reg_tainted(r));
                    if force || arg {
                        self.note_syscall(icount, addr, cpu.regs[0]);
                    }
                }
            }
            Op::Into => {
                if force || self.state.flags {
                    self.note_branch(icount, addr);
                }
            }
        }
    }

    /// Shadow a string operation. The interpreter retires the whole
    /// `rep` loop as one instruction, so the transfer walks the same
    /// iteration space from the pre-execution registers, byte-exactly
    /// up to [`STR_ITER_CAP`] iterations (then saturates).
    fn transfer_string(
        &mut self,
        cpu: &Cpu,
        inst: &Inst,
        s: StrOp,
        addr: u32,
        icount: u64,
        force: bool,
    ) {
        let size = inst.size;
        let step = size.bytes();
        let iters = if inst.rep.is_some() { cpu.regs[1] } else { 1 };
        if inst.rep.is_some() && iters == 0 {
            return;
        }
        let capped = iters.min(STR_ITER_CAP);
        if capped < iters {
            self.state.saturated = true;
        }
        let down = cpu.eflags & crate::eflags::DF != 0;
        let delta = if down { 0u32.wrapping_sub(step) } else { step };
        let (esi0, edi0) = (cpu.regs[6], cpu.regs[7]);
        let idx_taint = self.reg_tainted(6) || self.reg_tainted(7);
        let mut any_write = false;
        let mut first_wa = edi0;
        let mut cmp_taint = false;
        for i in 0..capped {
            let esi = esi0.wrapping_add(delta.wrapping_mul(i));
            let edi = edi0.wrapping_add(delta.wrapping_mul(i));
            match s {
                StrOp::Movs => {
                    let t = force
                        || idx_taint
                        || self.reg_tainted(6)
                        || self.state.mem_range_tainted(esi, step);
                    self.state.set_mem_range(edi, step, t);
                    if t && !any_write {
                        any_write = true;
                        first_wa = edi;
                    }
                }
                StrOp::Stos => {
                    let t = force || self.reg_tainted(7) || self.reg_tainted(0);
                    self.state.set_mem_range(edi, step, t);
                    if t && !any_write {
                        any_write = true;
                        first_wa = edi;
                    }
                }
                StrOp::Lods => {
                    let t = force || self.reg_tainted(6) || self.state.mem_range_tainted(esi, step);
                    self.state.set_reg_range(0, 0, step.min(4) as u8, t);
                }
                StrOp::Scas => {
                    cmp_taint |= force
                        || self.reg_tainted(0)
                        || self.reg_tainted(7)
                        || self.state.mem_range_tainted(edi, step);
                }
                StrOp::Cmps => {
                    cmp_taint |= force
                        || idx_taint
                        || self.state.mem_range_tainted(esi, step)
                        || self.state.mem_range_tainted(edi, step);
                }
            }
        }
        if any_write {
            self.note_write(icount, addr, first_wa, step.wrapping_mul(capped));
        }
        if matches!(s, StrOp::Scas | StrOp::Cmps) {
            self.write_flags(cmp_taint, addr, icount);
            if cmp_taint {
                self.note_compare(icount, addr);
            }
        }
    }
}

/// Effective address of a memory operand over a given register file —
/// the same computation as [`crate::Machine::ea`], duplicated here so
/// the tracer can resolve addresses from the *pre-execution* CPU it was
/// handed without borrowing the machine.
fn ea(cpu: &Cpu, m: &MemOperand) -> u32 {
    let mut a = m.disp as u32;
    if let Some(b) = m.base {
        a = a.wrapping_add(cpu.regs[b as usize]);
    }
    if let Some((i, s)) = m.index {
        a = a.wrapping_add(cpu.regs[i as usize].wrapping_mul(u32::from(s)));
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Reg32;

    fn mov_ri(r: Reg32, v: i64) -> Inst {
        Inst::new(Op::Mov)
            .dst(Operand::Reg(r))
            .src(Operand::Imm(v))
            .len(5)
    }

    #[test]
    fn seed_then_clean_overwrite_dies() {
        let cpu = Cpu::new();
        let mut t = TaintTracer::new(Some(0x1000), 1000);
        // mov eax, 5 at the seed: EAX tainted.
        t.observe(&cpu, &mov_ri(Reg32::Eax, 5), 0x1000, 1);
        assert_eq!(t.width(), 4);
        // mov ebx, eax: spreads.
        let spread = Inst::new(Op::Mov)
            .dst(Operand::Reg(Reg32::Ebx))
            .src(Operand::Reg(Reg32::Eax));
        t.observe(&cpu, &spread, 0x1005, 2);
        assert_eq!(t.width(), 8);
        // Clean immediates overwrite both: death.
        t.observe(&cpu, &mov_ri(Reg32::Eax, 0), 0x1007, 3);
        t.observe(&cpu, &mov_ri(Reg32::Ebx, 0), 0x100C, 4);
        let log = t.into_log();
        assert_eq!(log.seed_icount, Some(1));
        assert_eq!(log.death, Some(4));
        assert_eq!(log.peak_width, 8);
        assert_eq!(log.final_width, 0);
    }

    #[test]
    fn tainted_compare_and_branch_are_logged() {
        let cpu = Cpu::new();
        let mut t = TaintTracer::new(Some(0x2000), 1000);
        t.observe(&cpu, &mov_ri(Reg32::Eax, 5), 0x2000, 10);
        let cmp = Inst::new(Op::Cmp)
            .dst(Operand::Reg(Reg32::Eax))
            .src(Operand::Imm(0));
        t.observe(&cpu, &cmp, 0x2005, 11);
        let jcc = Inst::new(Op::Jcc(crate::inst::Cond::E)).dst(Operand::Rel(4));
        t.observe(&cpu, &jcc, 0x2008, 12);
        let log = t.into_log();
        assert_eq!(log.first_compare, Some(11));
        assert_eq!(log.first_flag, Some(11));
        assert_eq!(log.first_branch, Some(12));
        assert_eq!(log.first_decision(), Some(11));
    }

    #[test]
    fn zeroing_idiom_clears_taint() {
        let cpu = Cpu::new();
        let mut t = TaintTracer::new(Some(0x3000), 1000);
        t.observe(&cpu, &mov_ri(Reg32::Eax, 5), 0x3000, 1);
        let xor = Inst::new(Op::Xor)
            .dst(Operand::Reg(Reg32::Eax))
            .src(Operand::Reg(Reg32::Eax));
        t.observe(&cpu, &xor, 0x3005, 2);
        let log = t.into_log();
        assert_eq!(log.death, Some(2));
        assert_eq!(log.final_width, 0);
    }

    #[test]
    fn observe_all_never_taints_clean_flow() {
        let mut cpu = Cpu::new();
        cpu.regs[4] = 0x9000;
        let mut t = TaintTracer::new(None, 10_000);
        assert!(t.observe_all());
        let insts = [
            mov_ri(Reg32::Eax, 7),
            Inst::new(Op::Add)
                .dst(Operand::Reg(Reg32::Eax))
                .src(Operand::Imm(1)),
            Inst::new(Op::Push).dst(Operand::Reg(Reg32::Eax)),
            Inst::new(Op::Cmp)
                .dst(Operand::Reg(Reg32::Eax))
                .src(Operand::Imm(8)),
        ];
        for (i, inst) in insts.iter().enumerate() {
            t.observe(&cpu, inst, 0x1000 + i as u32, i as u64 + 1);
        }
        assert_eq!(t.width(), 0);
        let log = t.into_log();
        assert!(log.is_empty(), "{log:?}");
    }

    #[test]
    fn horizon_freezes_the_tracer() {
        let cpu = Cpu::new();
        let mut t = TaintTracer::new(Some(0x1000), 3);
        t.observe(&cpu, &mov_ri(Reg32::Eax, 5), 0x1000, 1);
        let inc = Inst::new(Op::Inc).dst(Operand::Reg(Reg32::Eax));
        t.observe(&cpu, &inc, 0x1005, 2);
        t.observe(&cpu, &inc, 0x1006, 3);
        t.observe(&cpu, &inc, 0x1007, 4); // over horizon: freezes
        assert!(!t.wants_range(0, u64::MAX));
        let log = t.into_log();
        assert!(log.frozen);
        assert!(matches!(log.events.last().unwrap().kind, PropKind::Frozen));
    }

    #[test]
    fn wants_range_is_seed_and_liveness_gated() {
        let t = TaintTracer::new(Some(0x1234), 100);
        assert!(t.wants_range(0x1230, 0x1240));
        assert!(t.wants_range(0x1234, 0x1235));
        assert!(!t.wants_range(0x1235, 0x2000));
        assert!(!t.wants_range(0x1000, 0x1234));
        let all = TaintTracer::new(None, 100);
        assert!(all.wants_range(0, 1));
    }

    #[test]
    fn string_copy_moves_taint_between_buffers() {
        let mut cpu = Cpu::new();
        cpu.regs[6] = 0x2000; // esi
        cpu.regs[7] = 0x3000; // edi
        cpu.regs[1] = 4; // ecx
        let mut t = TaintTracer::new(Some(0x100), 1000);
        // Seed: mov [0x2001], al — one tainted byte in the source buffer.
        let seed = Inst::new(Op::Mov)
            .dst(Operand::Mem(MemOperand::abs(0x2001)))
            .src(Operand::Reg8(Reg8::Al))
            .size(OpSize::Byte);
        t.observe(&cpu, &seed, 0x100, 1);
        assert_eq!(t.width(), 1);
        // rep movsb copies 4 bytes: the tainted byte lands at 0x3001.
        let movs = {
            let mut i = Inst::new(Op::Str(StrOp::Movs)).size(OpSize::Byte);
            i.rep = Some(crate::inst::RepKind::RepE);
            i
        };
        t.observe(&cpu, &movs, 0x105, 2);
        assert!(t.state().mem_range_tainted(0x3001, 1));
        assert!(!t.state().mem_range_tainted(0x3000, 1));
        assert!(!t.state().mem_range_tainted(0x3002, 2));
        let log = t.into_log();
        assert!(log.first_write.is_some());
    }

    #[test]
    fn tainted_syscall_argument_is_flagged() {
        let mut cpu = Cpu::new();
        cpu.regs[0] = 4; // write(2)
        let mut t = TaintTracer::new(Some(0x500), 1000);
        t.observe(&cpu, &mov_ri(Reg32::Ebx, 1), 0x500, 1);
        let int80 = Inst::new(Op::Int(0x80));
        t.observe(&cpu, &int80, 0x505, 2);
        let log = t.into_log();
        assert_eq!(log.first_syscall_arg, Some(2));
        assert!(log
            .events
            .iter()
            .any(|e| e.kind == PropKind::SyscallArg { nr: 4 }));
    }
}
