//! Property tests for the IA-32 substrate: decoder totality,
//! encode/decode round-trip, and interpreter robustness on byte soup.

use fisec_x86::{
    decode, encode, Cond, Inst, Machine, MemOperand, Memory, Op, OpSize, Operand, Perms, Reg32,
    Reg8, Region,
};
use proptest::prelude::*;

proptest! {
    /// The decoder is total: any byte window decodes without panicking
    /// and always consumes between 1 and 15 bytes.
    #[test]
    fn decoder_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..16)) {
        let i = decode(&bytes);
        prop_assert!(i.len >= 1);
        prop_assert!(i.len <= 15);
        if !bytes.is_empty() {
            prop_assert!(usize::from(i.len) <= bytes.len().max(1));
        }
    }

    /// Single-bit corruption of valid instructions still decodes (the
    /// precise scenario of the study).
    #[test]
    fn decoder_total_under_bit_flips(
        byte_index in 0usize..6,
        bit in 0u8..8,
        seed in any::<u16>(),
    ) {
        // A valid instruction stream to corrupt.
        let mut bytes = vec![
            0x55, 0x89, 0xE5, 0x83, 0xEC, 0x10, // prologue
            0xB8, 0x2A, 0x00, 0x00, 0x00, // mov eax, 42
            0x74, 0x05, // je +5
            0xC9, 0xC3, // leave; ret
        ];
        let pos = (seed as usize) % (bytes.len() - 6);
        bytes[pos + byte_index % 6] ^= 1 << bit;
        let mut p = 0;
        while p < bytes.len() {
            let i = decode(&bytes[p..]);
            prop_assert!(i.len >= 1);
            p += i.len as usize;
        }
    }

    /// The machine never panics executing arbitrary bytes: every step
    /// either executes, syscalls, or faults.
    #[test]
    fn machine_survives_byte_soup(text in proptest::collection::vec(any::<u8>(), 32..256)) {
        let mut mem = Memory::new();
        mem.map(Region::with_data("text", 0x1000, text, Perms::RX)).unwrap();
        mem.map(Region::zeroed("stack", 0x8000, 0x2000, Perms::RW)).unwrap();
        let mut m = Machine::new(mem);
        m.cpu.eip = 0x1000;
        m.cpu.regs[Reg32::Esp as usize] = 0x9FF0;
        let _ = m.run_until_event(2000);
        prop_assert!(m.icount <= 2000);
    }

    /// The block-dispatch engine is observably identical to the per-step
    /// reference interpreter on arbitrary byte soup: same outcome, same
    /// precise icount, same architectural state, same coverage set and
    /// trace ring. This is the property the campaign's bit-identical
    /// results rest on.
    #[test]
    fn block_engine_matches_stepwise(
        text in proptest::collection::vec(any::<u8>(), 32..256),
        budget in 1u64..2000,
    ) {
        let build = |text: &[u8]| {
            let mut mem = Memory::new();
            mem.map(Region::with_data("text", 0x1000, text.to_vec(), Perms::RX)).unwrap();
            mem.map(Region::zeroed("stack", 0x8000, 0x2000, Perms::RW)).unwrap();
            let mut m = Machine::new(mem);
            m.cpu.eip = 0x1000;
            m.cpu.regs[Reg32::Esp as usize] = 0x9FF0;
            m.enable_coverage();
            m.enable_eip_trace(8);
            m
        };
        let mut blk = build(&text);
        let mut stp = build(&text);
        stp.set_block_engine(false);
        let a = blk.run_until_event(budget);
        let b = stp.run_until_event(budget);
        prop_assert_eq!(a, b);
        prop_assert_eq!(blk.icount, stp.icount);
        prop_assert_eq!(&blk.cpu, &stp.cpu);
        prop_assert_eq!(blk.coverage(), stp.coverage());
        prop_assert_eq!(blk.eip_trace(), stp.eip_trace());
    }

    /// The tier-2 trace engine (hot promotion threshold, superblocks
    /// linked across the loop's taken branches) retires bit-identically
    /// to the per-step reference on generated counted loops whose
    /// bodies draw from the lowered µop set (inc/dec/alu-imm, imul,
    /// cdq). Arbitrary budgets land side-exits at every offset.
    #[test]
    fn trace_engine_matches_stepwise_on_generated_loops(
        iters in 1u32..40,
        body_a in proptest::collection::vec((0u8..10, any::<u8>()), 0..8),
        body_b in proptest::collection::vec((0u8..10, any::<u8>()), 0..8),
        budget in 1u64..3000,
    ) {
        let emit = |text: &mut Vec<u8>, body: &[(u8, u8)]| {
            for &(op, imm) in body {
                match op {
                    0 => text.push(0x40),                      // inc eax
                    1 => text.push(0x43),                      // inc ebx
                    2 => text.push(0x4A),                      // dec edx
                    3 => text.extend([0x83, 0xC0, imm]),       // add eax, imm8
                    4 => text.extend([0x83, 0xF3, imm]),       // xor ebx, imm8
                    5 => text.extend([0x83, 0xF8, imm]),       // cmp eax, imm8
                    6 => text.push(0x90),                      // nop
                    7 => text.extend([0x0F, 0xAF, 0xC3]),      // imul eax, ebx
                    8 => text.push(0x99),                      // cdq
                    _ => text.extend([0x6B, 0xC3, imm]),       // imul eax, ebx, imm8
                }
            }
        };
        // mov ecx, iters; L1: bodyA; jmp L2; nop; L2: bodyB; dec ecx;
        // jnz L1; jmp $ — two blocks per iteration, linked by a taken
        // jmp, closed by a taken jnz.
        let mut text = vec![0xB9];
        text.extend(iters.to_le_bytes());
        let l1 = text.len();
        emit(&mut text, &body_a);
        text.extend([0xEB, 0x01, 0x90]);
        emit(&mut text, &body_b);
        text.push(0x49); // dec ecx
        let disp = -((text.len() + 2 - l1) as i8 as i32) as u8;
        text.extend([0x75, disp, 0xEB, 0xFE]);

        let build = |text: &[u8]| {
            let mut mem = Memory::new();
            mem.map(Region::with_data("text", 0x1000, text.to_vec(), Perms::RX)).unwrap();
            mem.map(Region::zeroed("stack", 0x8000, 0x2000, Perms::RW)).unwrap();
            let mut m = Machine::new(mem);
            m.cpu.eip = 0x1000;
            m.cpu.regs[Reg32::Esp as usize] = 0x9FF0;
            m
        };
        let mut hot = build(&text);
        hot.set_trace_threshold(1);
        let mut stp = build(&text);
        stp.set_block_engine(false);
        let a = hot.run_until_event(budget);
        let b = stp.run_until_event(budget);
        prop_assert_eq!(a, b);
        prop_assert_eq!(hot.icount, stp.icount);
        prop_assert_eq!(&hot.cpu, &stp.cpu);
        if iters >= 16 && budget >= 2000 {
            let s = hot.trace_stats();
            prop_assert!(s.built >= 1, "hot loop never promoted: {:?}", s);
        }
    }

    /// A clean (non-injected) run never births taint: with the tracer
    /// in observe-all mode over arbitrary byte soup, the shadow state
    /// is still empty at the end, no propagation event fires, and the
    /// tracer is invisible to the architectural result.
    #[test]
    fn clean_runs_keep_the_shadow_state_empty(
        text in proptest::collection::vec(any::<u8>(), 32..256),
        budget in 1u64..2000,
    ) {
        let build = |text: &[u8]| {
            let mut mem = Memory::new();
            mem.map(Region::with_data("text", 0x1000, text.to_vec(), Perms::RX)).unwrap();
            mem.map(Region::zeroed("stack", 0x8000, 0x2000, Perms::RW)).unwrap();
            let mut m = Machine::new(mem);
            m.cpu.eip = 0x1000;
            m.cpu.regs[Reg32::Esp as usize] = 0x9FF0;
            m
        };
        let mut traced = build(&text);
        traced.enable_taint(None, u64::MAX);
        let mut plain = build(&text);
        let a = traced.run_until_event(budget);
        let b = plain.run_until_event(budget);
        prop_assert_eq!(a, b);
        prop_assert_eq!(traced.icount, plain.icount);
        prop_assert_eq!(traced.taint_width(), Some(0), "taint born without a flip");
        let log = traced.take_propagation_log().expect("tracer was armed");
        prop_assert_eq!(log.seed_icount, None);
        prop_assert!(log.events.is_empty(), "events on a clean run: {:?}", log.events);
        prop_assert_eq!(log.peak_width, 0);
        prop_assert_eq!(&traced.cpu, &plain.cpu);
    }

    /// Flag state stays within the architectural mask after arbitrary
    /// execution (reserved bit 1 set, no stray bits).
    #[test]
    fn eflags_stay_architectural(text in proptest::collection::vec(any::<u8>(), 16..128)) {
        let mut mem = Memory::new();
        mem.map(Region::with_data("text", 0x1000, text, Perms::RX)).unwrap();
        mem.map(Region::zeroed("stack", 0x8000, 0x1000, Perms::RW)).unwrap();
        let mut m = Machine::new(mem);
        m.cpu.eip = 0x1000;
        m.cpu.regs[Reg32::Esp as usize] = 0x8FF0;
        let _ = m.run_until_event(500);
        let allowed = fisec_x86::eflags::STATUS_MASK
            | fisec_x86::eflags::DF
            | fisec_x86::eflags::RESERVED1;
        prop_assert_eq!(m.cpu.eflags & !allowed, 0, "eflags {:#x}", m.cpu.eflags);
    }
}

/// Strategy over the encodable instruction space.
fn arb_reg() -> impl Strategy<Value = Reg32> {
    (0u8..8).prop_map(Reg32::from_num)
}

fn arb_reg8() -> impl Strategy<Value = Reg8> {
    (0u8..8).prop_map(Reg8::from_num)
}

fn arb_mem() -> impl Strategy<Value = MemOperand> {
    (
        proptest::option::of(arb_reg()),
        proptest::option::of((
            arb_reg().prop_filter("esp is not an index", |r| *r != Reg32::Esp),
            prop_oneof![Just(1u8), Just(2), Just(4), Just(8)],
        )),
        any::<i32>(),
    )
        .prop_map(|(base, index, disp)| MemOperand { base, index, disp })
}

fn arb_alu_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Add),
        Just(Op::Or),
        Just(Op::Adc),
        Just(Op::Sbb),
        Just(Op::And),
        Just(Op::Sub),
        Just(Op::Xor),
        Just(Op::Cmp),
    ]
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        // ALU reg, reg / reg, imm / reg, mem / mem, reg
        (arb_alu_op(), arb_reg(), arb_reg())
            .prop_map(|(op, d, s)| Inst::new(op).dst(Operand::Reg(d)).src(Operand::Reg(s))),
        (arb_alu_op(), arb_reg(), any::<i32>()).prop_map(|(op, d, v)| Inst::new(op)
            .dst(Operand::Reg(d))
            .src(Operand::Imm(v as i64))),
        (arb_alu_op(), arb_reg(), arb_mem())
            .prop_map(|(op, d, m)| Inst::new(op).dst(Operand::Reg(d)).src(Operand::Mem(m))),
        (arb_alu_op(), arb_mem(), arb_reg())
            .prop_map(|(op, m, s)| Inst::new(op).dst(Operand::Mem(m)).src(Operand::Reg(s))),
        // mov forms
        (arb_reg(), any::<i32>()).prop_map(|(d, v)| Inst::new(Op::Mov)
            .dst(Operand::Reg(d))
            .src(Operand::Imm(v as i64))),
        (arb_reg(), arb_mem())
            .prop_map(|(d, m)| Inst::new(Op::Mov).dst(Operand::Reg(d)).src(Operand::Mem(m))),
        (arb_mem(), arb_reg())
            .prop_map(|(m, s)| Inst::new(Op::Mov).dst(Operand::Mem(m)).src(Operand::Reg(s))),
        (arb_reg8(), any::<u8>()).prop_map(|(d, v)| {
            Inst::new(Op::Mov)
                .dst(Operand::Reg8(d))
                .src(Operand::Imm(v as i64))
                .size(OpSize::Byte)
        }),
        // lea
        (arb_reg(), arb_mem())
            .prop_map(|(d, m)| Inst::new(Op::Lea).dst(Operand::Reg(d)).src(Operand::Mem(m))),
        // stack
        arb_reg().prop_map(|r| Inst::new(Op::Push).dst(Operand::Reg(r))),
        any::<i32>().prop_map(|v| Inst::new(Op::Push).dst(Operand::Imm(v as i64))),
        arb_reg().prop_map(|r| Inst::new(Op::Pop).dst(Operand::Reg(r))),
        // branches
        (0u8..16, any::<i32>())
            .prop_map(|(c, d)| Inst::new(Op::Jcc(Cond::from_nibble(c))).dst(Operand::Rel(d))),
        any::<i32>().prop_map(|d| Inst::new(Op::Jmp).dst(Operand::Rel(d))),
        any::<i32>().prop_map(|d| Inst::new(Op::Call).dst(Operand::Rel(d))),
        // unary / misc
        arb_reg().prop_map(|r| Inst::new(Op::Inc).dst(Operand::Reg(r))),
        arb_reg().prop_map(|r| Inst::new(Op::Dec).dst(Operand::Reg(r))),
        arb_reg().prop_map(|r| Inst::new(Op::Neg).dst(Operand::Reg(r))),
        arb_reg().prop_map(|r| Inst::new(Op::Not).dst(Operand::Reg(r))),
        (arb_reg(), 1u8..32).prop_map(|(r, n)| Inst::new(Op::Shl)
            .dst(Operand::Reg(r))
            .src(Operand::Imm(n as i64))),
        (arb_reg(), 1u8..32).prop_map(|(r, n)| Inst::new(Op::Sar)
            .dst(Operand::Reg(r))
            .src(Operand::Imm(n as i64))),
        Just(Inst::new(Op::Ret(0))),
        Just(Inst::new(Op::Leave)),
        Just(Inst::new(Op::Nop)),
        Just(Inst::new(Op::Cdq)),
        Just(Inst::new(Op::Int(0x80))),
        (0u8..16).prop_map(|c| {
            Inst::new(Op::Setcc(Cond::from_nibble(c)))
                .dst(Operand::Reg8(Reg8::Al))
                .size(OpSize::Byte)
        }),
    ]
}

proptest! {
    /// `decode(encode(i)) == i` over the encodable space (up to `len`,
    /// which only the decoder knows).
    #[test]
    fn encode_decode_roundtrip(inst in arb_inst()) {
        let bytes = encode(&inst).expect("generated instructions are encodable");
        prop_assert!(bytes.len() <= 15);
        let mut expect = inst;
        expect.len = bytes.len() as u8;
        let got = decode(&bytes);
        prop_assert_eq!(got, expect, "bytes {:02x?}", bytes);
    }

    /// Encoded instructions decode to the same length (no trailing-byte
    /// ambiguity), even when followed by junk.
    #[test]
    fn encoding_is_prefix_free_of_junk(inst in arb_inst(), junk in any::<[u8; 4]>()) {
        let mut bytes = encode(&inst).expect("encodable");
        let n = bytes.len();
        bytes.extend_from_slice(&junk);
        let got = decode(&bytes);
        prop_assert_eq!(got.len as usize, n);
    }
}
