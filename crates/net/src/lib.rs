//! # fisec-net — in-memory client/server channel with recorded traces
//!
//! The study classifies each injection run by comparing the run's
//! client↔server interaction against an error-free *golden* run: identical
//! traffic and verdict → **NM**; divergent traffic, wrongful denial or a
//! hang → **FSV**; access granted that the golden run denies → **BRK**.
//! This crate provides the pieces that make those comparisons possible:
//!
//! * [`Channel`] — a synchronous duplex byte pipe between the simulated
//!   server process and a scripted client, recording every transfer;
//! * [`ClientDriver`] — the scripted client state machine (the FTP/SSH
//!   clients of §5.2/§5.3 live in `fisec-apps` and implement this trait);
//! * [`Trace`] — the normalized message log with a diff utility.

use std::collections::VecDeque;
use std::fmt;

/// Transfer direction, from the server's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Server → client.
    ToClient,
    /// Client → server.
    ToServer,
}

/// One recorded transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Direction.
    pub dir: Dir,
    /// Raw bytes.
    pub bytes: Vec<u8>,
}

/// The client's running verdict about the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClientStatus {
    /// Session still in progress.
    InProgress,
    /// Access granted (logged in and received the protected resource).
    Granted,
    /// Access properly denied / session closed without the resource.
    Denied,
    /// The server sent something the protocol does not allow here.
    Confused,
}

/// A scripted client driving one connection.
///
/// Implementations are deterministic state machines: the fault injector
/// runs the same client against golden and faulty servers and compares
/// the traffic.
pub trait ClientDriver: CloneClient {
    /// Server delivered `data`; queue any replies through `out`.
    fn on_server_data(&mut self, data: &[u8], out: &mut dyn FnMut(Vec<u8>));

    /// Server wants to read but nothing is queued; speak-first protocols
    /// may produce data here. Producing nothing means the client is
    /// waiting too (the connection deadlocks — a hang).
    fn on_server_read_idle(&mut self, _out: &mut dyn FnMut(Vec<u8>)) {}

    /// Current verdict.
    fn status(&self) -> ClientStatus;
}

/// Object-safe cloning for boxed [`ClientDriver`]s, so [`Channel`] (and
/// with it a whole simulated process) can be checkpointed mid-session.
/// Blanket-implemented for every `Clone` client; implementors only need
/// `#[derive(Clone)]`.
pub trait CloneClient {
    /// Clone into a fresh box.
    fn clone_box(&self) -> Box<dyn ClientDriver>;
}

impl<T: ClientDriver + Clone + 'static> CloneClient for T {
    fn clone_box(&self) -> Box<dyn ClientDriver> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn ClientDriver> {
    fn clone(&self) -> Box<dyn ClientDriver> {
        self.clone_box()
    }
}

/// Result of a server-side read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Bytes for the server.
    Data(Vec<u8>),
    /// Neither side has anything to say: the connection is deadlocked.
    WouldBlock,
}

/// A synchronous duplex channel between the simulated server and a
/// [`ClientDriver`], recording a [`Trace`] of all traffic. Cloning
/// captures the client state machine, queued bytes and trace — the
/// channel half of a process checkpoint.
#[derive(Clone)]
pub struct Channel {
    client: Box<dyn ClientDriver>,
    to_server: VecDeque<u8>,
    trace: Vec<Message>,
}

impl fmt::Debug for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Channel")
            .field("queued", &self.to_server.len())
            .field("trace_len", &self.trace.len())
            .finish()
    }
}

impl Channel {
    /// Wrap a client.
    pub fn new(client: Box<dyn ClientDriver>) -> Channel {
        Channel {
            client,
            to_server: VecDeque::new(),
            trace: Vec::new(),
        }
    }

    /// Server writes `bytes` to the client.
    pub fn server_write(&mut self, bytes: &[u8]) {
        self.trace.push(Message {
            dir: Dir::ToClient,
            bytes: bytes.to_vec(),
        });
        let mut queued: Vec<Vec<u8>> = Vec::new();
        self.client.on_server_data(bytes, &mut |reply| {
            queued.push(reply);
        });
        for q in queued {
            self.queue_to_server(q);
        }
    }

    /// Server reads up to `max` bytes.
    pub fn server_read(&mut self, max: usize) -> ReadOutcome {
        if self.to_server.is_empty() {
            let mut queued: Vec<Vec<u8>> = Vec::new();
            self.client.on_server_read_idle(&mut |reply| {
                queued.push(reply);
            });
            for q in queued {
                self.queue_to_server(q);
            }
        }
        if self.to_server.is_empty() {
            return ReadOutcome::WouldBlock;
        }
        let n = max.min(self.to_server.len());
        let data: Vec<u8> = self.to_server.drain(..n).collect();
        ReadOutcome::Data(data)
    }

    fn queue_to_server(&mut self, bytes: Vec<u8>) {
        self.trace.push(Message {
            dir: Dir::ToServer,
            bytes: bytes.clone(),
        });
        self.to_server.extend(bytes);
    }

    /// The client's verdict.
    pub fn client_status(&self) -> ClientStatus {
        self.client.status()
    }

    /// Consume the channel, returning the normalized trace.
    pub fn into_trace(self) -> Trace {
        Trace::normalized(self.trace)
    }

    /// Normalized snapshot of the trace so far.
    pub fn trace_snapshot(&self) -> Trace {
        Trace::normalized(self.trace.clone())
    }
}

/// A normalized message trace: adjacent same-direction transfers merged,
/// so chunking differences (which depend on buffer sizes, not behaviour)
/// do not register as divergence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    messages: Vec<Message>,
}

impl Trace {
    /// Build from raw transfers, merging adjacent same-direction chunks.
    pub fn normalized(raw: Vec<Message>) -> Trace {
        let mut messages: Vec<Message> = Vec::new();
        for m in raw {
            if m.bytes.is_empty() {
                continue;
            }
            match messages.last_mut() {
                Some(last) if last.dir == m.dir => last.bytes.extend_from_slice(&m.bytes),
                _ => messages.push(m),
            }
        }
        Trace { messages }
    }

    /// Messages in order.
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// First divergence between two traces, if any: index plus a short
    /// human-readable description.
    pub fn first_divergence(&self, other: &Trace) -> Option<(usize, String)> {
        let n = self.messages.len().max(other.messages.len());
        for i in 0..n {
            match (self.messages.get(i), other.messages.get(i)) {
                (Some(a), Some(b)) if a == b => continue,
                (Some(a), Some(b)) => {
                    if a.dir != b.dir {
                        return Some((i, format!("direction {:?} vs {:?}", a.dir, b.dir)));
                    }
                    return Some((
                        i,
                        format!(
                            "payload {:?} vs {:?}",
                            String::from_utf8_lossy(&a.bytes),
                            String::from_utf8_lossy(&b.bytes)
                        ),
                    ));
                }
                (Some(_), None) => return Some((i, "extra message".to_string())),
                (None, Some(_)) => return Some((i, "missing message".to_string())),
                (None, None) => unreachable!(),
            }
        }
        None
    }

    /// True when both traces carry identical normalized traffic.
    pub fn matches(&self, other: &Trace) -> bool {
        self.first_divergence(other).is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo client: replies "ok\n" to every server message, grants after
    /// seeing "PASS".
    #[derive(Clone)]
    struct EchoClient {
        granted: bool,
    }

    impl ClientDriver for EchoClient {
        fn on_server_data(&mut self, data: &[u8], out: &mut dyn FnMut(Vec<u8>)) {
            if data.starts_with(b"PASS") {
                self.granted = true;
            }
            out(b"ok\n".to_vec());
        }

        fn status(&self) -> ClientStatus {
            if self.granted {
                ClientStatus::Granted
            } else {
                ClientStatus::InProgress
            }
        }
    }

    fn channel() -> Channel {
        Channel::new(Box::new(EchoClient { granted: false }))
    }

    #[test]
    fn write_then_read_round_trip() {
        let mut ch = channel();
        ch.server_write(b"hello\n");
        assert_eq!(ch.server_read(16), ReadOutcome::Data(b"ok\n".to_vec()));
        assert_eq!(ch.server_read(16), ReadOutcome::WouldBlock);
    }

    #[test]
    fn partial_reads_drain_queue() {
        let mut ch = channel();
        ch.server_write(b"x");
        assert_eq!(ch.server_read(1), ReadOutcome::Data(b"o".to_vec()));
        assert_eq!(ch.server_read(10), ReadOutcome::Data(b"k\n".to_vec()));
    }

    #[test]
    fn status_tracks_protocol() {
        let mut ch = channel();
        assert_eq!(ch.client_status(), ClientStatus::InProgress);
        ch.server_write(b"PASS granted");
        assert_eq!(ch.client_status(), ClientStatus::Granted);
    }

    #[test]
    fn trace_records_both_directions() {
        let mut ch = channel();
        ch.server_write(b"a");
        let _ = ch.server_read(16);
        ch.server_write(b"b");
        let t = ch.into_trace();
        // "a" out, "ok\n" queued, "b" out, "ok\n" queued again (the echo
        // client replies to every write).
        assert_eq!(t.messages().len(), 4);
        assert_eq!(t.messages()[0].dir, Dir::ToClient);
        assert_eq!(t.messages()[1].dir, Dir::ToServer);
        assert_eq!(t.messages()[2].bytes, b"b");
        assert_eq!(t.messages()[3].dir, Dir::ToServer);
    }

    #[test]
    fn normalization_merges_chunks() {
        let raw = vec![
            Message {
                dir: Dir::ToClient,
                bytes: b"he".to_vec(),
            },
            Message {
                dir: Dir::ToClient,
                bytes: b"llo".to_vec(),
            },
            Message {
                dir: Dir::ToServer,
                bytes: b"x".to_vec(),
            },
        ];
        let t = Trace::normalized(raw);
        assert_eq!(t.messages().len(), 2);
        assert_eq!(t.messages()[0].bytes, b"hello");
    }

    #[test]
    fn empty_messages_dropped() {
        let raw = vec![Message {
            dir: Dir::ToClient,
            bytes: vec![],
        }];
        assert!(Trace::normalized(raw).messages().is_empty());
    }

    #[test]
    fn divergence_detection() {
        let a = Trace::normalized(vec![Message {
            dir: Dir::ToClient,
            bytes: b"220 hi\n".to_vec(),
        }]);
        let b = Trace::normalized(vec![Message {
            dir: Dir::ToClient,
            bytes: b"550 no\n".to_vec(),
        }]);
        assert!(a.matches(&a.clone()));
        let (i, why) = a.first_divergence(&b).unwrap();
        assert_eq!(i, 0);
        assert!(why.contains("payload"));
        let c = Trace::normalized(vec![]);
        assert_eq!(a.first_divergence(&c).unwrap().1, "extra message");
        assert_eq!(c.first_divergence(&a).unwrap().1, "missing message");
    }

    #[test]
    fn direction_divergence_reported() {
        let a = Trace::normalized(vec![Message {
            dir: Dir::ToClient,
            bytes: b"x".to_vec(),
        }]);
        let b = Trace::normalized(vec![Message {
            dir: Dir::ToServer,
            bytes: b"x".to_vec(),
        }]);
        let (_, why) = a.first_divergence(&b).unwrap();
        assert!(why.contains("direction"));
    }

    /// Speak-first client for `on_server_read_idle`.
    #[derive(Clone)]
    struct SpeakFirst {
        spoken: bool,
    }

    impl ClientDriver for SpeakFirst {
        fn on_server_data(&mut self, _d: &[u8], _out: &mut dyn FnMut(Vec<u8>)) {}

        fn on_server_read_idle(&mut self, out: &mut dyn FnMut(Vec<u8>)) {
            if !self.spoken {
                self.spoken = true;
                out(b"HELLO\n".to_vec());
            }
        }

        fn status(&self) -> ClientStatus {
            ClientStatus::InProgress
        }
    }

    #[test]
    fn speak_first_client_feeds_idle_read() {
        let mut ch = Channel::new(Box::new(SpeakFirst { spoken: false }));
        assert_eq!(ch.server_read(64), ReadOutcome::Data(b"HELLO\n".to_vec()));
        assert_eq!(ch.server_read(64), ReadOutcome::WouldBlock);
    }
}
