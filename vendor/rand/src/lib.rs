//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates-io access, so the workspace
//! vendors the small slice of the rand 0.8 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! and [`seq::SliceRandom::choose_multiple`]. The generator is
//! xoshiro256** seeded via SplitMix64 — deterministic across platforms,
//! which is all the experiment layer requires (explicit seeds, exact
//! reproducibility). The stream differs from upstream `StdRng`
//! (ChaCha12), so seeded studies produce different — equally valid —
//! samples than they would with crates-io rand.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 seed expansion, as recommended by the xoshiro
            // authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded draw; the modulo bias over a
                // 128-bit numerator is negligible and determinism is
                // what matters here.
                let r = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling helpers (blanket-implemented for every core RNG).
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related sampling.
pub mod seq {
    use super::RngCore;

    /// Random selections out of slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// `amount` distinct elements, selected by a partial
        /// Fisher-Yates shuffle over the indices (order is the shuffle
        /// order, not slice order).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let n = self.len();
            let k = amount.min(n);
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let span = (n - i) as u128;
                let j = i + (((rng.next_u64() as u128).wrapping_mul(span)) >> 64) as usize;
                idx.swap(i, j);
            }
            idx[..k]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u8> = (0..32).map(|_| a.gen_range(0u8..255)).collect();
        let vb: Vec<u8> = (0..32).map(|_| b.gen_range(0u8..255)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10i32..20);
            assert!((10..20).contains(&v));
            let b = rng.gen_range(0u8..8);
            assert!(b < 8);
        }
    }

    #[test]
    fn choose_multiple_is_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(9);
        let xs: Vec<u32> = (0..50).collect();
        let picked: Vec<u32> = xs.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "duplicates in {picked:?}");
        // Asking for more than available clamps.
        assert_eq!(xs.choose_multiple(&mut rng, 100).count(), 50);
    }
}
