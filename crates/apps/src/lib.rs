//! # fisec-apps — the study's target applications and scripted clients
//!
//! Mini-C reimplementations of the paper's two targets:
//!
//! * [`ftpd`] — a wu-ftpd-2.6.0-like FTP control-connection server whose
//!   authentication is the `user()`/`pass()` pair (paper §3.2/§5.2);
//! * [`sshd`] — an ssh-1.2.30-like server whose authentication is
//!   `do_authentication()`/`auth_rhosts()`/`auth_password()`
//!   (paper §3.3/§5.3), including the Figure 3 `packet_read`.
//!
//! Each target ships with its scripted clients (FTP Clients 1–4, SSH
//! Clients 1–2) and an [`AppSpec`] bundling image, auth-function names and
//! client set for the experiment layer.

pub mod clients;
pub mod ftpd;
pub mod sshd;

pub use ftpd::{build_ftpd, FtpClient, FtpPattern, FTPD_AUTH_FUNCS, FTPD_SRC};
pub use sshd::{
    build_sshd, build_sshd_single_entry, SshClient, SshPattern, SSHD_AUTH_FUNCS, SSHD_SRC,
};

use fisec_asm::Image;
use fisec_net::ClientDriver;

/// A client access pattern: a name, a factory, and whether the golden run
/// denies it (attack patterns can produce BRK outcomes).
pub struct ClientSpec {
    /// Paper-style name ("Client1"...).
    pub name: String,
    /// Whether the error-free run denies this client.
    pub golden_denied: bool,
    /// Content identity of the scripted behavior (see
    /// `FtpPattern::script_fingerprint`): the campaign cache keys
    /// memoized results on it, so editing a client script invalidates
    /// its cached campaigns.
    pub fingerprint: String,
    factory: Box<dyn Fn() -> Box<dyn ClientDriver> + Send + Sync>,
}

impl std::fmt::Debug for ClientSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientSpec")
            .field("name", &self.name)
            .field("golden_denied", &self.golden_denied)
            .finish()
    }
}

impl ClientSpec {
    /// Build a fresh client instance.
    pub fn make(&self) -> Box<dyn ClientDriver> {
        (self.factory)()
    }
}

/// A target application bundled for the experiment layer.
#[derive(Debug)]
pub struct AppSpec {
    /// "ftpd" or "sshd".
    pub name: &'static str,
    /// Compiled image.
    pub image: Image,
    /// Names of the functions whose branch instructions get injected.
    pub auth_funcs: Vec<&'static str>,
    /// Scripted clients in paper order.
    pub clients: Vec<ClientSpec>,
}

impl AppSpec {
    /// The ftpd target with its four clients.
    ///
    /// # Panics
    /// Panics if the embedded server source fails to build (covered by
    /// tests; a build failure is a bug, not an input condition).
    pub fn ftpd() -> AppSpec {
        let image = build_ftpd().expect("embedded ftpd source builds");
        let clients = FtpPattern::ALL
            .iter()
            .map(|p| {
                let p = *p;
                ClientSpec {
                    name: p.name().to_string(),
                    golden_denied: p.golden_denied(),
                    fingerprint: p.script_fingerprint(),
                    factory: Box::new(move || FtpClient::boxed(p)),
                }
            })
            .collect();
        AppSpec {
            name: "ftpd",
            image,
            auth_funcs: FTPD_AUTH_FUNCS.to_vec(),
            clients,
        }
    }

    /// The sshd target with its two clients.
    ///
    /// # Panics
    /// Panics if the embedded server source fails to build.
    pub fn sshd() -> AppSpec {
        Self::sshd_with(build_sshd().expect("embedded sshd source builds"), "sshd")
    }

    /// The §5.3 ablation variant: identical sshd text with only password
    /// authentication enabled (single point of entry).
    ///
    /// # Panics
    /// Panics if the embedded server source fails to build.
    pub fn sshd_single_entry() -> AppSpec {
        Self::sshd_with(
            sshd::build_sshd_single_entry().expect("embedded sshd source builds"),
            "sshd-single-entry",
        )
    }

    fn sshd_with(image: Image, name: &'static str) -> AppSpec {
        let clients = SshPattern::ALL
            .iter()
            .map(|p| {
                let p = *p;
                ClientSpec {
                    name: p.name().to_string(),
                    golden_denied: p.golden_denied(),
                    fingerprint: p.script_fingerprint(),
                    factory: Box::new(move || SshClient::boxed(p)),
                }
            })
            .collect();
        AppSpec {
            name,
            image,
            auth_funcs: SSHD_AUTH_FUNCS.to_vec(),
            clients,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_specs_build() {
        let f = AppSpec::ftpd();
        assert_eq!(f.clients.len(), 4);
        assert_eq!(f.auth_funcs.len(), 2);
        assert!(f.clients[0].golden_denied); // Client1 attacks
        assert!(!f.clients[1].golden_denied);
        let s = AppSpec::sshd();
        assert_eq!(s.clients.len(), 2);
        assert_eq!(s.auth_funcs.len(), 3);
        assert!(s.clients[0].golden_denied);
    }

    #[test]
    fn client_fingerprints_are_distinct_and_nonempty() {
        let f = AppSpec::ftpd();
        let s = AppSpec::sshd();
        let mut all: Vec<&str> = f
            .clients
            .iter()
            .chain(&s.clients)
            .map(|c| c.fingerprint.as_str())
            .collect();
        assert!(all.iter().all(|fp| !fp.is_empty()));
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "two clients share a script fingerprint");
    }

    #[test]
    fn client_factories_produce_fresh_clients() {
        let f = AppSpec::ftpd();
        let c1 = f.clients[0].make();
        let c2 = f.clients[0].make();
        assert_eq!(c1.status(), fisec_net::ClientStatus::InProgress);
        assert_eq!(c2.status(), fisec_net::ClientStatus::InProgress);
    }
}
