//! Ranked hot-block rendering: the `fisec profile` table, shared with
//! the HTML report.
//!
//! The interpreter's [`fisec_telemetry::ProfileData`] says *where*
//! guest time went — per-block dispatch/retire tallies, the op shapes
//! that still fall back to the stepwise interpreter, and block-cache
//! traffic. This module turns it into the observatory's ranked table:
//! blocks ordered by retired instructions, annotated with the owning
//! function symbol and the disassembly of their first instruction, then
//! the residual slow-path breakdown and the cache bottom line.

use fisec_asm::Image;
use fisec_telemetry::{HotBlock, ProfileData};
use std::fmt::Write as _;

/// Rows shown in the ranked table when the caller has no preference.
pub const DEFAULT_TOP: usize = 20;

/// `func+0xoff` for a text address, or the raw hex outside any symbol.
fn sym(image: &Image, addr: u32) -> String {
    image
        .symbols
        .funcs
        .iter()
        .find(|f| (f.start..f.end).contains(&addr))
        .map_or_else(
            || format!("{addr:#010x}"),
            |f| format!("{}+{:#x}", f.name, addr - f.start),
        )
}

/// AT&T disassembly of the single instruction at `addr`.
fn disasm_at(image: &Image, addr: u32) -> String {
    let Some(off) = addr
        .checked_sub(image.text_base)
        .map(|o| o as usize)
        .filter(|&o| o < image.text.len())
    else {
        return "<outside text>".to_string();
    };
    let end = (off + 16).min(image.text.len());
    let inst = fisec_x86::decode(&image.text[off..end]);
    fisec_x86::fmt_att(&inst, addr)
}

/// Render the ranked hot-block table for one campaign profile.
///
/// Blocks are ordered by retired instructions (ties by address);
/// `image` adds the symbol and leading-instruction annotation when the
/// caller can name the binary the profile came from. Always followed by
/// the slow-path op-shape breakdown and the block-cache bottom line, so
/// the table answers both "where did guest time go" and "what still
/// escapes the block engine".
pub fn render_hot_blocks(data: &ProfileData, image: Option<&Image>, top: usize) -> String {
    let mut out = String::new();
    if data.is_empty() {
        out.push_str("profile is empty (campaign ran without --profile?)\n");
        return out;
    }
    let total = data.total_retired();
    let in_blocks: u64 = data.blocks.iter().map(|b| b.retired).sum();
    let _ = writeln!(
        out,
        "== hot blocks: {} blocks, {} instructions retired ({} in blocks, {} stepwise) ==",
        data.blocks.len(),
        total,
        in_blocks,
        data.stepwise_retired
    );

    let mut ranked: Vec<&HotBlock> = data.blocks.iter().collect();
    ranked.sort_by(|a, b| b.retired.cmp(&a.retired).then(a.addr.cmp(&b.addr)));
    if !ranked.is_empty() {
        let _ = writeln!(
            out,
            "{:>4}  {:<10}  {:<22} {:>10} {:>11} {:>7}  leading instruction",
            "rank", "addr", "symbol", "dispatches", "retired", "%total"
        );
    }
    for (i, b) in ranked.iter().take(top).enumerate() {
        let pct = if total == 0 {
            0.0
        } else {
            b.retired as f64 * 100.0 / total as f64
        };
        let (symbol, lead) = match image {
            Some(img) => (sym(img, b.addr), disasm_at(img, b.addr)),
            None => (format!("{:#010x}", b.addr), String::new()),
        };
        let _ = writeln!(
            out,
            "{:>4}  {:#010x}  {:<22} {:>10} {:>11} {:>6.1}%  {}",
            i + 1,
            b.addr,
            symbol,
            b.dispatches,
            b.retired,
            pct,
            lead
        );
    }
    if ranked.len() > top {
        let _ = writeln!(out, "      ... {} more blocks", ranked.len() - top);
    }

    let shapes = data.slow_by_shape();
    if shapes.is_empty() {
        out.push_str("slow path: never taken\n");
    } else {
        out.push_str("slow-path ops (executed stepwise, outside any cached block):\n");
        for (shape, count, sites) in &shapes {
            let _ = writeln!(out, "  {shape:<28} {count:>10} hits  {sites:>4} sites");
        }
    }

    let lookups = data.cache_hits + data.cache_built;
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        data.cache_hits as f64 * 100.0 / lookups as f64
    };
    let _ = writeln!(
        out,
        "block cache: {} built, {} hits ({hit_rate:.1}% hit rate), {} invalidated",
        data.cache_built, data.cache_hits, data.cache_invalidated
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisec_telemetry::SlowShape;

    fn sample() -> ProfileData {
        ProfileData {
            blocks: vec![
                HotBlock {
                    addr: 0x0804_8000,
                    dispatches: 10,
                    retired: 50,
                },
                HotBlock {
                    addr: 0x0804_9000,
                    dispatches: 100,
                    retired: 900,
                },
            ],
            slow: vec![SlowShape {
                addr: 0x0804_8100,
                shape: "div32 r/m32".to_string(),
                count: 7,
            }],
            stepwise_retired: 50,
            cache_built: 2,
            cache_hits: 108,
            cache_invalidated: 1,
        }
    }

    #[test]
    fn ranks_blocks_by_retired_and_reports_cache() {
        let s = render_hot_blocks(&sample(), None, 10);
        let first = s
            .lines()
            .find(|l| l.trim_start().starts_with("1 "))
            .unwrap();
        assert!(first.contains("0x08049000"), "{s}");
        assert!(s.contains("div32 r/m32"), "{s}");
        assert!(s.contains("7 hits"), "{s}");
        assert!(
            s.contains("2 built, 108 hits (98.2% hit rate), 1 invalidated"),
            "{s}"
        );
        assert!(
            s.contains("1000 instructions retired (950 in blocks, 50 stepwise)"),
            "{s}"
        );
    }

    #[test]
    fn truncates_past_top_and_handles_empty() {
        let s = render_hot_blocks(&sample(), None, 1);
        assert!(s.contains("... 1 more blocks"), "{s}");
        assert!(!s.contains("0x08048000"), "{s}");
        let s = render_hot_blocks(&ProfileData::default(), None, 5);
        assert!(s.contains("profile is empty"), "{s}");
    }

    #[test]
    fn annotates_with_symbols_and_disassembly_when_an_image_is_given() {
        let app = fisec_apps::AppSpec::ftpd();
        let f = app.image.symbols.funcs.first().unwrap();
        let data = ProfileData {
            blocks: vec![HotBlock {
                addr: f.start,
                dispatches: 1,
                retired: 4,
            }],
            ..ProfileData::default()
        };
        let s = render_hot_blocks(&data, Some(&app.image), 5);
        assert!(s.contains(&format!("{}+0x0", f.name)), "{s}");
        // The leading-instruction column is non-empty disassembly.
        let row = s
            .lines()
            .find(|l| l.trim_start().starts_with("1 "))
            .unwrap();
        assert!(row.trim_end().len() > row.find('%').unwrap() + 2, "{s}");
    }
}
