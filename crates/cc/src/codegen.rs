//! Code generation: mini-C AST → IA-32 via `fisec-asm`.
//!
//! The emitted code intentionally mirrors `gcc -O0` shapes, because the
//! study's results hinge on them:
//!
//! * conditions compile to `cmp`/`test` followed by a conditional branch
//!   (`if (strcmp(a,b) == 0)` becomes `call strcmp; test %eax,%eax; jne`,
//!   the exact sequence in the paper's Figure 1);
//! * locals live in an `ebp` frame, arguments are pushed right-to-left
//!   (cdecl), values travel through `%eax`;
//! * short-range branches use the 2-byte `Jcc rel8` forms, long-range ones
//!   the 6-byte `0x0F 8x rel32` forms (via the assembler's relaxation).

use crate::ast::{BinOp, Expr, Func, Global, GlobalInit, Program, Stmt, Type, UnOp};
use fisec_asm::{Assembler, DataRef, Label, SymRef, SymSlot};
use fisec_x86::{Cond, Inst, MemOperand, Op, OpSize, Operand, Reg32, Reg8};
use std::collections::HashMap;
use std::fmt;

/// Code generation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Explanation.
    pub msg: String,
    /// Enclosing function, when known.
    pub func: Option<String>,
}

impl CompileError {
    fn new(msg: impl Into<String>) -> CompileError {
        CompileError {
            msg: msg.into(),
            func: None,
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.func {
            Some(name) => write!(f, "compile error in `{name}`: {}", self.msg),
            None => write!(f, "compile error: {}", self.msg),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compile a parsed program into an assembler.
///
/// # Errors
/// [`CompileError`] for semantic errors (unknown variables, bad lvalues,
/// unsupported constructs).
pub fn compile_program(prog: &Program, asm: &mut Assembler) -> Result<(), CompileError> {
    // Globals first so function bodies can reference them.
    let mut globals = HashMap::new();
    for g in &prog.globals {
        let bytes = global_bytes(g)?;
        let align = match g.ty {
            Type::Char | Type::Array(_, _) => match g.ty {
                Type::Array(ref e, _) if **e == Type::Int => 4,
                Type::Char => 1,
                _ => 1,
            },
            _ => 4,
        };
        let r = asm.data(&g.name, bytes, align);
        globals.insert(g.name.clone(), (r, g.ty.clone()));
    }
    for f in &prog.funcs {
        let mut gen = FnGen::new(asm, &globals, f);
        gen.run().map_err(|mut e| {
            e.func = Some(f.name.clone());
            e
        })?;
    }
    Ok(())
}

fn global_bytes(g: &Global) -> Result<Vec<u8>, CompileError> {
    let size = g.ty.size() as usize;
    Ok(match &g.init {
        GlobalInit::Zero => vec![0; size],
        GlobalInit::Num(n) => match g.ty {
            Type::Int | Type::Ptr(_) => n.to_le_bytes().to_vec(),
            Type::Char => vec![*n as u8],
            _ => {
                return Err(CompileError::new(format!(
                    "integer initializer for non-scalar global `{}`",
                    g.name
                )))
            }
        },
        GlobalInit::Str(s) => {
            let Type::Array(ref elem, n) = g.ty else {
                return Err(CompileError::new(format!(
                    "string initializer for non-array global `{}`",
                    g.name
                )));
            };
            if **elem != Type::Char {
                return Err(CompileError::new("string initializer for non-char array"));
            }
            if s.len() + 1 > n as usize {
                return Err(CompileError::new(format!(
                    "string initializer too long for `{}`",
                    g.name
                )));
            }
            let mut v = s.clone();
            v.resize(n as usize, 0);
            v
        }
    })
}

const EAX: Operand = Operand::Reg(Reg32::Eax);
const ECX: Operand = Operand::Reg(Reg32::Ecx);
const EDX: Operand = Operand::Reg(Reg32::Edx);
const EBX: Operand = Operand::Reg(Reg32::Ebx);
const EBP: Operand = Operand::Reg(Reg32::Ebp);
const ESP: Operand = Operand::Reg(Reg32::Esp);

/// Per-function code generator.
struct FnGen<'a> {
    asm: &'a mut Assembler,
    globals: &'a HashMap<String, (DataRef, Type)>,
    func: &'a Func,
    scopes: Vec<HashMap<String, (i32, Type)>>,
    next_offset: u32,
    ret_label: Label,
    loop_stack: Vec<(Label, Label)>, // (continue target, break target)
}

impl<'a> FnGen<'a> {
    fn new(
        asm: &'a mut Assembler,
        globals: &'a HashMap<String, (DataRef, Type)>,
        func: &'a Func,
    ) -> FnGen<'a> {
        let ret_label = asm.new_label();
        FnGen {
            asm,
            globals,
            func,
            scopes: Vec::new(),
            next_offset: 0,
            ret_label,
            loop_stack: Vec::new(),
        }
    }

    fn run(&mut self) -> Result<(), CompileError> {
        let frame = frame_size(&self.func.body);
        self.asm.begin_func(&self.func.name);
        // Prologue.
        self.emit(Inst::new(Op::Push).dst(EBP));
        self.emit(Inst::new(Op::Mov).dst(EBP).src(ESP));
        if frame > 0 {
            self.emit(Inst::new(Op::Sub).dst(ESP).src(Operand::Imm(frame as i64)));
        }
        // Parameters: [ebp+8], [ebp+12], ...
        let mut scope = HashMap::new();
        for (i, (ty, name)) in self.func.params.iter().enumerate() {
            scope.insert(name.clone(), (8 + 4 * i as i32, ty.decay()));
        }
        self.scopes.push(scope);

        let body = self.func.body.clone();
        self.gen_stmts(&body)?;

        // Fall-off return yields 0 (mini-C keeps main simple).
        self.emit(Inst::new(Op::Mov).dst(EAX).src(Operand::Imm(0)));
        self.asm.bind(self.ret_label);
        self.emit(Inst::new(Op::Leave));
        self.emit(Inst::new(Op::Ret(0)));
        self.asm.end_func();
        self.scopes.pop();
        Ok(())
    }

    fn emit(&mut self, i: Inst) {
        self.asm.emit(i);
    }

    fn push_eax(&mut self) {
        self.emit(Inst::new(Op::Push).dst(EAX));
    }

    fn pop(&mut self, r: Operand) {
        self.emit(Inst::new(Op::Pop).dst(r));
    }

    fn mov_eax_imm(&mut self, v: i64) {
        self.emit(Inst::new(Op::Mov).dst(EAX).src(Operand::Imm(v)));
    }

    fn test_eax(&mut self) {
        self.emit(Inst::new(Op::Test).dst(EAX).src(EAX));
    }

    fn lookup(&self, name: &str) -> Option<(VarLoc, Type)> {
        for s in self.scopes.iter().rev() {
            if let Some((off, ty)) = s.get(name) {
                return Some((VarLoc::Local(*off), ty.clone()));
            }
        }
        self.globals
            .get(name)
            .map(|(r, ty)| (VarLoc::Global(*r), ty.clone()))
    }

    fn declare_local(&mut self, name: &str, ty: Type) -> i32 {
        let size = ty.size().max(1).div_ceil(4) * 4;
        self.next_offset += size;
        let off = -(self.next_offset as i32);
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), (off, ty));
        off
    }

    // ── statements ───────────────────────────────────────────────────

    fn gen_stmts(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        for s in stmts {
            self.gen_stmt(s)?;
        }
        Ok(())
    }

    fn gen_stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Expr(e) => {
                self.gen_expr(e)?;
            }
            Stmt::Decl { ty, name, init } => {
                if matches!(ty, Type::Array(_, _)) && init.is_some() {
                    return Err(CompileError::new("array locals cannot have initializers"));
                }
                let off = self.declare_local(name, ty.clone());
                if let Some(e) = init {
                    self.gen_expr(e)?;
                    self.store_to(VarLoc::Local(off), ty);
                }
            }
            Stmt::If { cond, then, els } => {
                let else_l = self.asm.new_label();
                self.gen_branch(cond, else_l, false)?;
                self.scoped(|g| g.gen_stmts(then))?;
                if els.is_empty() {
                    self.asm.bind(else_l);
                } else {
                    let end_l = self.asm.new_label();
                    self.asm.jmp(end_l);
                    self.asm.bind(else_l);
                    self.scoped(|g| g.gen_stmts(els))?;
                    self.asm.bind(end_l);
                }
            }
            Stmt::While { cond, body } => {
                let top = self.asm.new_label();
                let end = self.asm.new_label();
                self.asm.bind(top);
                self.gen_branch(cond, end, false)?;
                self.loop_stack.push((top, end));
                self.scoped(|g| g.gen_stmts(body))?;
                self.loop_stack.pop();
                self.asm.jmp(top);
                self.asm.bind(end);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.gen_stmt(i)?;
                }
                let top = self.asm.new_label();
                let cont = self.asm.new_label();
                let end = self.asm.new_label();
                self.asm.bind(top);
                if let Some(c) = cond {
                    self.gen_branch(c, end, false)?;
                }
                self.loop_stack.push((cont, end));
                self.scoped(|g| g.gen_stmts(body))?;
                self.loop_stack.pop();
                self.asm.bind(cont);
                if let Some(st) = step {
                    self.gen_expr(st)?;
                }
                self.asm.jmp(top);
                self.asm.bind(end);
                self.scopes.pop();
            }
            Stmt::Return(e) => {
                if let Some(e) = e {
                    self.gen_expr(e)?;
                }
                self.asm.jmp(self.ret_label);
            }
            Stmt::Break => {
                let (_, end) = *self
                    .loop_stack
                    .last()
                    .ok_or_else(|| CompileError::new("`break` outside loop"))?;
                self.asm.jmp(end);
            }
            Stmt::Continue => {
                let (cont, _) = *self
                    .loop_stack
                    .last()
                    .ok_or_else(|| CompileError::new("`continue` outside loop"))?;
                self.asm.jmp(cont);
            }
            Stmt::Block(stmts) => {
                self.scoped(|g| g.gen_stmts(stmts))?;
            }
        }
        Ok(())
    }

    fn scoped<F>(&mut self, f: F) -> Result<(), CompileError>
    where
        F: FnOnce(&mut Self) -> Result<(), CompileError>,
    {
        self.scopes.push(HashMap::new());
        let r = f(self);
        self.scopes.pop();
        r
    }

    // ── conditions ───────────────────────────────────────────────────

    /// Emit a branch to `target` taken when `e` is true (`when_true`) or
    /// false. Falls through otherwise. This is where the paper's
    /// `test/cmp + jcc` decision points come from.
    fn gen_branch(&mut self, e: &Expr, target: Label, when_true: bool) -> Result<(), CompileError> {
        match e {
            Expr::Un(UnOp::Not, inner) => self.gen_branch(inner, target, !when_true),
            Expr::Num(n) => {
                if (*n != 0) == when_true {
                    self.asm.jmp(target);
                }
                Ok(())
            }
            Expr::Bin(op, a, b) if op.is_comparison() => {
                // `x == 0` / `x != 0` get the idiomatic test %eax,%eax.
                if matches!(**b, Expr::Num(0)) && matches!(op, BinOp::Eq | BinOp::Ne) {
                    self.gen_expr(a)?;
                    self.test_eax();
                } else {
                    self.gen_expr(a)?;
                    self.push_eax();
                    self.gen_expr(b)?;
                    self.emit(Inst::new(Op::Mov).dst(ECX).src(EAX));
                    self.pop(EAX);
                    self.emit(Inst::new(Op::Cmp).dst(EAX).src(ECX));
                }
                let mut cond = comparison_cond(*op);
                if !when_true {
                    cond = invert(cond);
                }
                self.asm.jcc(cond, target);
                Ok(())
            }
            Expr::Bin(BinOp::And, a, b) => {
                if when_true {
                    let skip = self.asm.new_label();
                    self.gen_branch(a, skip, false)?;
                    self.gen_branch(b, target, true)?;
                    self.asm.bind(skip);
                } else {
                    self.gen_branch(a, target, false)?;
                    self.gen_branch(b, target, false)?;
                }
                Ok(())
            }
            Expr::Bin(BinOp::Or, a, b) => {
                if when_true {
                    self.gen_branch(a, target, true)?;
                    self.gen_branch(b, target, true)?;
                } else {
                    let skip = self.asm.new_label();
                    self.gen_branch(a, skip, true)?;
                    self.gen_branch(b, target, false)?;
                    self.asm.bind(skip);
                }
                Ok(())
            }
            _ => {
                self.gen_expr(e)?;
                self.test_eax();
                self.asm
                    .jcc(if when_true { Cond::Ne } else { Cond::E }, target);
                Ok(())
            }
        }
    }

    // ── expressions ──────────────────────────────────────────────────

    /// Generate code leaving the expression value in `%eax`; returns the
    /// static type of the value.
    fn gen_expr(&mut self, e: &Expr) -> Result<Type, CompileError> {
        match e {
            Expr::Num(n) => {
                self.mov_eax_imm(*n as i64);
                Ok(Type::Int)
            }
            Expr::CharLit(c) => {
                self.mov_eax_imm(*c as i64);
                Ok(Type::Char)
            }
            Expr::Str(s) => {
                let text = String::from_utf8_lossy(s).into_owned();
                let r = self.asm.cstr(&text);
                self.asm.emit_sym(
                    Inst::new(Op::Mov).dst(EAX).src(Operand::Imm(0)),
                    SymSlot::ImmSrc,
                    SymRef::data(r),
                );
                Ok(Type::Ptr(Box::new(Type::Char)))
            }
            Expr::Var(_) | Expr::Index(_, _) | Expr::Deref(_) => {
                let ty = self.gen_addr(e)?;
                Ok(self.load_from_addr_in_eax(&ty))
            }
            Expr::Addr(inner) => {
                let ty = self.gen_addr(inner)?;
                Ok(Type::Ptr(Box::new(ty)))
            }
            Expr::Un(op, inner) => {
                self.gen_expr(inner)?;
                match op {
                    UnOp::Neg => self.emit(Inst::new(Op::Neg).dst(EAX)),
                    UnOp::BitNot => self.emit(Inst::new(Op::Not).dst(EAX)),
                    UnOp::Not => {
                        self.test_eax();
                        self.set_eax_from_cond(Cond::E);
                    }
                }
                Ok(Type::Int)
            }
            Expr::Bin(BinOp::And | BinOp::Or, _, _) => {
                // Materialize a short-circuit condition as 0/1.
                let true_l = self.asm.new_label();
                let end_l = self.asm.new_label();
                self.gen_branch(e, true_l, true)?;
                self.mov_eax_imm(0);
                self.asm.jmp(end_l);
                self.asm.bind(true_l);
                self.mov_eax_imm(1);
                self.asm.bind(end_l);
                Ok(Type::Int)
            }
            Expr::Bin(op, a, b) if op.is_comparison() => {
                self.gen_expr(a)?;
                self.push_eax();
                self.gen_expr(b)?;
                self.emit(Inst::new(Op::Mov).dst(ECX).src(EAX));
                self.pop(EAX);
                self.emit(Inst::new(Op::Cmp).dst(EAX).src(ECX));
                self.set_eax_from_cond(comparison_cond(*op));
                Ok(Type::Int)
            }
            Expr::Bin(op, a, b) => {
                let ta = self.gen_expr(a)?;
                self.push_eax();
                let tb = self.gen_expr(b)?;
                self.emit(Inst::new(Op::Mov).dst(ECX).src(EAX));
                self.pop(EAX);
                self.gen_arith(*op, &ta, &tb)
            }
            Expr::Assign(lhs, rhs) => {
                let lty = self.gen_addr(lhs)?;
                self.push_eax();
                self.gen_expr(rhs)?;
                self.pop(ECX);
                // eax = value, ecx = address
                match lty {
                    Type::Char => self.emit(
                        Inst::new(Op::Mov)
                            .dst(Operand::Mem(MemOperand::base_disp(Reg32::Ecx, 0)))
                            .src(Operand::Reg8(Reg8::Al))
                            .size(OpSize::Byte),
                    ),
                    _ => self.emit(
                        Inst::new(Op::Mov)
                            .dst(Operand::Mem(MemOperand::base_disp(Reg32::Ecx, 0)))
                            .src(EAX),
                    ),
                }
                Ok(lty)
            }
            Expr::PostIncDec(lv, inc) => {
                let ty = self.gen_addr(lv)?;
                let step = match ty.pointee() {
                    Some(t) => t.size() as i64,
                    None => 1,
                };
                self.emit(Inst::new(Op::Mov).dst(ECX).src(EAX));
                let old = self.load_from_addr_in_eax(&ty);
                self.push_eax();
                let op = if *inc { Op::Add } else { Op::Sub };
                match ty {
                    Type::Char => self.emit(
                        Inst::new(op)
                            .dst(Operand::Mem(MemOperand::base_disp(Reg32::Ecx, 0)))
                            .src(Operand::Imm(step))
                            .size(OpSize::Byte),
                    ),
                    _ => self.emit(
                        Inst::new(op)
                            .dst(Operand::Mem(MemOperand::base_disp(Reg32::Ecx, 0)))
                            .src(Operand::Imm(step)),
                    ),
                }
                self.pop(EAX);
                Ok(old)
            }
            Expr::Call(name, args) => self.gen_call(name, args),
        }
    }

    fn gen_call(&mut self, name: &str, args: &[Expr]) -> Result<Type, CompileError> {
        if let Some(n) = name.strip_prefix("__syscall") {
            let argc: usize = n
                .parse()
                .map_err(|_| CompileError::new(format!("unknown intrinsic `{name}`")))?;
            if argc > 3 || args.len() != argc + 1 {
                return Err(CompileError::new(format!(
                    "`{name}` expects {} arguments",
                    argc + 1
                )));
            }
            for a in args {
                self.gen_expr(a)?;
                self.push_eax();
            }
            // Stack now: n, a1, a2, a3 (a3 on top).
            let regs = [EBX, ECX, EDX];
            for i in (0..argc).rev() {
                self.pop(regs[i]);
            }
            self.pop(EAX);
            self.emit(Inst::new(Op::Int(0x80)));
            return Ok(Type::Int);
        }
        for a in args.iter().rev() {
            // Constant and string-literal arguments push immediates
            // directly, as gcc does (`push $0x2000` in the paper's
            // Figure 3).
            match a {
                Expr::Num(n) => {
                    self.emit(Inst::new(Op::Push).dst(Operand::Imm(*n as i64)));
                }
                Expr::CharLit(c) => {
                    self.emit(Inst::new(Op::Push).dst(Operand::Imm(*c as i64)));
                }
                Expr::Str(s) => {
                    let text = String::from_utf8_lossy(s).into_owned();
                    let r = self.asm.cstr(&text);
                    self.asm.emit_sym(
                        Inst::new(Op::Push).dst(Operand::Imm(0)),
                        SymSlot::ImmDst,
                        SymRef::data(r),
                    );
                }
                _ => {
                    self.gen_expr(a)?;
                    self.push_eax();
                }
            }
        }
        self.asm.call(name);
        if !args.is_empty() {
            self.emit(
                Inst::new(Op::Add)
                    .dst(ESP)
                    .src(Operand::Imm(4 * args.len() as i64)),
            );
        }
        Ok(Type::Int)
    }

    fn gen_arith(&mut self, op: BinOp, ta: &Type, tb: &Type) -> Result<Type, CompileError> {
        // eax = lhs, ecx = rhs.
        let scale = |g: &mut Self, reg: Operand, size: u32| {
            if size > 1 {
                let mut i = Inst::new(Op::Imul3).dst(reg).src(reg);
                i.src2 = Some(Operand::Imm(size as i64));
                g.emit(i);
            }
        };
        match op {
            BinOp::Add => {
                let mut out = Type::Int;
                if let Some(p) = ta.pointee() {
                    scale(self, ECX, p.size());
                    out = ta.decay();
                } else if let Some(p) = tb.pointee() {
                    scale(self, EAX, p.size());
                    out = tb.decay();
                }
                self.emit(Inst::new(Op::Add).dst(EAX).src(ECX));
                Ok(out)
            }
            BinOp::Sub => {
                if let (Some(pa), Some(_)) = (ta.pointee(), tb.pointee()) {
                    self.emit(Inst::new(Op::Sub).dst(EAX).src(ECX));
                    let sz = pa.size();
                    if sz == 4 {
                        self.emit(Inst::new(Op::Sar).dst(EAX).src(Operand::Imm(2)));
                    } else if sz == 2 {
                        self.emit(Inst::new(Op::Sar).dst(EAX).src(Operand::Imm(1)));
                    }
                    return Ok(Type::Int);
                }
                if let Some(p) = ta.pointee() {
                    scale(self, ECX, p.size());
                    self.emit(Inst::new(Op::Sub).dst(EAX).src(ECX));
                    return Ok(ta.decay());
                }
                self.emit(Inst::new(Op::Sub).dst(EAX).src(ECX));
                Ok(Type::Int)
            }
            BinOp::Mul => {
                self.emit(Inst::new(Op::Imul2).dst(EAX).src(ECX));
                Ok(Type::Int)
            }
            BinOp::Div | BinOp::Rem => {
                self.emit(Inst::new(Op::Cdq));
                self.emit(Inst::new(Op::Idiv).dst(ECX));
                if op == BinOp::Rem {
                    self.emit(Inst::new(Op::Mov).dst(EAX).src(EDX));
                }
                Ok(Type::Int)
            }
            BinOp::Shl => {
                self.emit(Inst::new(Op::Shl).dst(EAX).src(Operand::Reg8(Reg8::Cl)));
                Ok(Type::Int)
            }
            BinOp::Shr => {
                // C ints are signed here: arithmetic shift.
                self.emit(Inst::new(Op::Sar).dst(EAX).src(Operand::Reg8(Reg8::Cl)));
                Ok(Type::Int)
            }
            BinOp::BitAnd => {
                self.emit(Inst::new(Op::And).dst(EAX).src(ECX));
                Ok(Type::Int)
            }
            BinOp::BitOr => {
                self.emit(Inst::new(Op::Or).dst(EAX).src(ECX));
                Ok(Type::Int)
            }
            BinOp::BitXor => {
                self.emit(Inst::new(Op::Xor).dst(EAX).src(ECX));
                Ok(Type::Int)
            }
            _ => Err(CompileError::new(format!("unexpected operator {op:?}"))),
        }
    }

    /// Generate the address of an lvalue into `%eax`; returns the lvalue's
    /// (non-decayed) type.
    fn gen_addr(&mut self, e: &Expr) -> Result<Type, CompileError> {
        match e {
            Expr::Var(name) => {
                let (loc, ty) = self
                    .lookup(name)
                    .ok_or_else(|| CompileError::new(format!("unknown variable `{name}`")))?;
                match loc {
                    VarLoc::Local(off) => self.emit(
                        Inst::new(Op::Lea)
                            .dst(EAX)
                            .src(Operand::Mem(MemOperand::base_disp(Reg32::Ebp, off))),
                    ),
                    VarLoc::Global(r) => self.asm.emit_sym(
                        Inst::new(Op::Mov).dst(EAX).src(Operand::Imm(0)),
                        SymSlot::ImmSrc,
                        SymRef::data(r),
                    ),
                }
                Ok(ty)
            }
            Expr::Deref(p) => {
                let ty = self.gen_expr(p)?;
                ty.pointee()
                    .cloned()
                    .ok_or_else(|| CompileError::new("dereference of non-pointer"))
            }
            Expr::Index(a, i) => {
                let ty = self.gen_expr(a)?;
                let elem = ty
                    .pointee()
                    .cloned()
                    .ok_or_else(|| CompileError::new("indexing a non-pointer"))?;
                self.push_eax();
                self.gen_expr(i)?;
                if elem.size() > 1 {
                    let mut m = Inst::new(Op::Imul3).dst(EAX).src(EAX);
                    m.src2 = Some(Operand::Imm(elem.size() as i64));
                    self.emit(m);
                }
                self.emit(Inst::new(Op::Mov).dst(ECX).src(EAX));
                self.pop(EAX);
                self.emit(Inst::new(Op::Add).dst(EAX).src(ECX));
                Ok(elem)
            }
            _ => Err(CompileError::new("expression is not an lvalue")),
        }
    }

    /// With an address in `%eax`, load the value of type `ty`; arrays decay
    /// (the address is the value). Returns the value type.
    fn load_from_addr_in_eax(&mut self, ty: &Type) -> Type {
        match ty {
            Type::Array(elem, _) => Type::Ptr(elem.clone()),
            Type::Char => {
                let mut i = Inst::new(Op::Movsx)
                    .dst(EAX)
                    .src(Operand::Mem(MemOperand::base_disp(Reg32::Eax, 0)));
                i.size2 = OpSize::Byte;
                self.emit(i);
                Type::Char
            }
            _ => {
                self.emit(
                    Inst::new(Op::Mov)
                        .dst(EAX)
                        .src(Operand::Mem(MemOperand::base_disp(Reg32::Eax, 0))),
                );
                ty.clone()
            }
        }
    }

    fn store_to(&mut self, loc: VarLoc, ty: &Type) {
        match loc {
            VarLoc::Local(off) => match ty {
                Type::Char => self.emit(
                    Inst::new(Op::Mov)
                        .dst(Operand::Mem(MemOperand::base_disp(Reg32::Ebp, off)))
                        .src(Operand::Reg8(Reg8::Al))
                        .size(OpSize::Byte),
                ),
                _ => self.emit(
                    Inst::new(Op::Mov)
                        .dst(Operand::Mem(MemOperand::base_disp(Reg32::Ebp, off)))
                        .src(EAX),
                ),
            },
            VarLoc::Global(r) => {
                let inst = match ty {
                    Type::Char => Inst::new(Op::Mov)
                        .dst(Operand::Mem(MemOperand::abs(0)))
                        .src(Operand::Reg8(Reg8::Al))
                        .size(OpSize::Byte),
                    _ => Inst::new(Op::Mov)
                        .dst(Operand::Mem(MemOperand::abs(0)))
                        .src(EAX),
                };
                self.asm.emit_sym(inst, SymSlot::MemDst, SymRef::data(r));
            }
        }
    }

    fn set_eax_from_cond(&mut self, c: Cond) {
        self.emit(
            Inst::new(Op::Setcc(c))
                .dst(Operand::Reg8(Reg8::Al))
                .size(OpSize::Byte),
        );
        let mut i = Inst::new(Op::Movzx).dst(EAX).src(Operand::Reg8(Reg8::Al));
        i.size2 = OpSize::Byte;
        self.emit(i);
    }
}

#[derive(Clone, Copy)]
enum VarLoc {
    Local(i32),
    Global(DataRef),
}

fn comparison_cond(op: BinOp) -> Cond {
    match op {
        BinOp::Eq => Cond::E,
        BinOp::Ne => Cond::Ne,
        BinOp::Lt => Cond::L,
        BinOp::Le => Cond::Le,
        BinOp::Gt => Cond::G,
        BinOp::Ge => Cond::Ge,
        _ => unreachable!("not a comparison"),
    }
}

/// The IA-32 condition-code negation: flip the low bit, exactly the
/// single-bit adjacency the paper exploits.
fn invert(c: Cond) -> Cond {
    Cond::from_nibble(c as u8 ^ 1)
}

/// Total bytes of locals declared anywhere in the body (no reuse across
/// blocks — matches unoptimized compiler output).
fn frame_size(stmts: &[Stmt]) -> u32 {
    let mut total = 0;
    for s in stmts {
        total += match s {
            Stmt::Decl { ty, .. } => ty.size().max(1).div_ceil(4) * 4,
            Stmt::If { then, els, .. } => frame_size(then) + frame_size(els),
            Stmt::While { body, .. } => frame_size(body),
            Stmt::For { init, body, .. } => {
                let i = match init.as_deref() {
                    Some(s) => frame_size(std::slice::from_ref(s)),
                    None => 0,
                };
                i + frame_size(body)
            }
            Stmt::Block(b) => frame_size(b),
            _ => 0,
        };
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn gen(src: &str) -> Result<fisec_asm::Image, CompileError> {
        let prog = parse(src).expect("parse");
        let mut asm = Assembler::new();
        compile_program(&prog, &mut asm).map(|()| asm.assemble(0x0804_8000, 0x0810_0000).unwrap())
    }

    #[test]
    fn minimal_main_compiles() {
        let img = gen("int main() { return 7; }").unwrap();
        assert!(img.func("main").is_some());
        // prologue present: push ebp; mov ebp, esp
        assert_eq!(&img.text[..3], &[0x55, 0x89, 0xE5]);
    }

    #[test]
    fn strcmp_eq_zero_emits_test_jcc() {
        let img = gen("int check(int x) { if (x == 0) { return 1; } return 2; }").unwrap();
        // Look for test eax,eax (85 C0) followed by jne (75).
        let t = &img.text;
        let found = t
            .windows(3)
            .any(|w| w[0] == 0x85 && w[1] == 0xC0 && w[2] == 0x75);
        assert!(found, "expected `test %eax,%eax; jne` in {t:02x?}");
    }

    #[test]
    fn unknown_variable_errors() {
        let e = gen("int main() { return nope; }").unwrap_err();
        assert!(e.msg.contains("unknown variable"));
        assert_eq!(e.func.as_deref(), Some("main"));
    }

    #[test]
    fn non_lvalue_assignment_errors() {
        assert!(gen("int main() { 1 = 2; return 0; }").is_err());
    }

    #[test]
    fn break_outside_loop_errors() {
        assert!(gen("int main() { break; }").is_err());
    }

    #[test]
    fn frame_size_accounts_arrays_and_blocks() {
        let prog = parse(
            "int f() { int a; char buf[10]; if (a) { int b; } while (a) { int c[2]; } return 0; }",
        )
        .unwrap();
        // a=4, buf=12 (rounded), b=4, c=8 => 28
        assert_eq!(frame_size(&prog.funcs[0].body), 28);
    }

    #[test]
    fn syscall_intrinsic_emits_int80() {
        let img = gen("int main() { return __syscall3(4, 1, 0, 0); }").unwrap();
        let t = &img.text;
        assert!(t.windows(2).any(|w| w == [0xCD, 0x80]));
    }

    #[test]
    fn bad_intrinsic_arity_errors() {
        assert!(gen("int main() { return __syscall3(1); }").is_err());
        assert!(gen("int main() { return __syscall9(1,2,3,4,5,6,7,8,9,0); }").is_err());
    }

    #[test]
    fn global_initializers() {
        let img =
            gen("int x = 258; char c = 'A'; char s[8] = \"hi\"; int main() { return x; }").unwrap();
        let xs = img.data_symbol("x").unwrap();
        assert_eq!(xs.len, 4);
        assert_eq!(
            &img.data[(xs.addr - img.data_base) as usize..][..4],
            &[2, 1, 0, 0]
        );
        let ss = img.data_symbol("s").unwrap();
        assert_eq!(ss.len, 8);
        assert_eq!(
            &img.data[(ss.addr - img.data_base) as usize..][..8],
            b"hi\0\0\0\0\0\0"
        );
    }

    #[test]
    fn string_too_long_errors() {
        assert!(gen("char s[2] = \"toolong\"; int main() { return 0; }").is_err());
    }

    #[test]
    fn conditional_branches_present_in_loops() {
        let img = gen(
            "int main() { int i; int s; s = 0; for (i = 0; i < 10; i++) s = s + i; return s; }",
        )
        .unwrap();
        let f = img.func("main").unwrap().clone();
        let insts = img.decode_func(&f);
        assert!(insts.iter().any(|(_, i)| i.is_cond_branch()));
        // The whole body decodes cleanly.
        assert!(insts.iter().all(|(_, i)| !matches!(i.op, Op::Invalid(_))));
    }

    #[test]
    fn short_circuit_materialization() {
        let img = gen("int f(int a, int b) { return a && b; }").unwrap();
        let f = img.func("f").unwrap().clone();
        let insts = img.decode_func(&f);
        // Needs at least two conditional branches (one per operand).
        let branches = insts.iter().filter(|(_, i)| i.is_cond_branch()).count();
        assert!(branches >= 2, "got {branches}");
    }
}
