//! Selective exhaustive injection campaigns (paper §4/§5).

use crate::cache::{CacheLookup, CachedDigestedRun, CampaignCache, ClientStore, DivTuple};
use crate::counts::{LocationCounts, OutcomeCounts};
use fisec_apps::AppSpec;
use fisec_encoding::EncodingScheme;
use fisec_inject::{
    enumerate_targets, golden_run_opts, golden_run_with_coverage_opts,
    run_injection_group_recorded, run_injection_recorded, DivergenceReport, EngineOpts, GoldenRun,
    GroupMeta, InjectionRun, InjectionTarget, OutcomeClass, PropagationReport, RunMeta,
};
use fisec_os::Stop;
use fisec_telemetry::{
    metric, CacheEvent, CampaignEndEvent, CampaignEvent, HotBlock, MetricsShard, Phase,
    ProfileData, ProfileEvent, PropagationEvent, RunEvent, SlowShape, SpanEvent, Telemetry,
    TraceEvent,
};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How the engine executes the per-target experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Checkpoint-based: boot each (client, instruction-address) pair to
    /// the breakpoint once, snapshot, and replay only the post-flip
    /// suffix for every byte×bit of that instruction. Targets at
    /// addresses the golden run never executes are classified NA from
    /// the golden coverage set without spawning a run. Produces results
    /// bit-identical to [`ExecutionMode::FromScratch`] (enforced by the
    /// differential tests) at a fraction of the wall-clock.
    #[default]
    Snapshot,
    /// Reference oracle: every experiment boots the server from scratch,
    /// exactly the paper's §4 procedure.
    FromScratch,
}

impl ExecutionMode {
    /// Stable label used in trace headers and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            ExecutionMode::Snapshot => "snapshot",
            ExecutionMode::FromScratch => "from-scratch",
        }
    }
}

/// Campaign configuration.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Restrict to conditional branches only (`true` drops the MISC
    /// control-transfer instructions from the target set).
    pub cond_branches_only: bool,
    /// Encoding under test.
    pub scheme: EncodingScheme,
    /// Worker threads (1 = sequential).
    pub threads: usize,
    /// Checkpoint-based fast path (default) or from-scratch oracle.
    pub mode: ExecutionMode,
    /// Execute guests through the interpreter's basic-block cache
    /// (default). `false` — the `--no-block-cache` escape hatch — forces
    /// the reference per-step engine; results are bit-identical.
    pub block_cache: bool,
    /// Promote hot blocks into tier-2 superblock traces (default).
    /// `false` — the `--no-trace-cache` escape hatch — caps the engine
    /// at tier 1; results are bit-identical (differential tests).
    pub trace_cache: bool,
    /// Record a control-flow flight trace for every activated run and
    /// diff it against the golden continuation (`--recorder`). A pure
    /// observer: classification results are bit-identical either way
    /// (enforced by the differential tests); run events gain divergence
    /// depth and trace-derived latency, and the metrics registry gains
    /// per-outcome divergence-depth histograms.
    pub flight_recorder: bool,
    /// Collect the hot-spot execution profile (`fisec profile`): per-
    /// block dispatch/retire tallies, slow-path op shapes and block-
    /// cache traffic, accumulated in the metrics shards and emitted as
    /// one `profile` trace event per campaign. A pure observer —
    /// results are bit-identical either way (differential tests).
    pub profiler: bool,
    /// Emit hierarchical span events (campaign → client → checkpoint
    /// group → run → phase) into the trace stream (`--chrome-trace`).
    /// Off by default so existing traces stay byte-compatible.
    pub spans: bool,
    /// Trace how each activated injection's corrupted data propagates
    /// (`--propagation`): the taint tracer is armed per run at the flip,
    /// run events gain taint-to-decision latency / peak width /
    /// compare-vs-store ordering, the metrics registry gains per-outcome
    /// taint histograms, and one `propagation` aggregate trace event is
    /// emitted per campaign. A pure observer: classification results
    /// are bit-identical either way (differential tests).
    pub propagation: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            cond_branches_only: false,
            scheme: EncodingScheme::Baseline,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            mode: ExecutionMode::default(),
            block_cache: true,
            trace_cache: true,
            flight_recorder: false,
            profiler: false,
            spans: false,
            propagation: false,
        }
    }
}

impl CampaignConfig {
    /// The engine options every process of this campaign boots with.
    fn engine(&self) -> EngineOpts {
        EngineOpts {
            block_cache: self.block_cache,
            trace_cache: self.trace_cache,
            flight_recorder: self.flight_recorder,
            profiler: self.profiler,
            propagation: self.propagation,
            // The execution footprint is a per-group opt-in: the cached
            // paths enable it per process via `with_footprint()`.
            footprint: false,
        }
    }
}

/// Wire form of an [`fisec_x86::ExecProfile`]: hash maps down to
/// address-sorted vectors, block-cache deltas onto named counters.
fn profile_data(p: &fisec_x86::ExecProfile) -> ProfileData {
    let mut blocks: Vec<HotBlock> = p
        .blocks
        .iter()
        .map(|(addr, t)| HotBlock {
            addr: *addr,
            dispatches: t.dispatches,
            retired: t.retired,
        })
        .collect();
    blocks.sort_by_key(|b| b.addr);
    let mut slow: Vec<SlowShape> = p
        .slow
        .iter()
        .map(|(addr, s)| SlowShape {
            addr: *addr,
            shape: s.shape.clone(),
            count: s.count,
        })
        .collect();
    slow.sort_by_key(|s| s.addr);
    let mut hot_traces: Vec<HotBlock> = p
        .traces
        .iter()
        .map(|(addr, t)| HotBlock {
            addr: *addr,
            dispatches: t.dispatches,
            retired: t.retired,
        })
        .collect();
    hot_traces.sort_by_key(|b| b.addr);
    ProfileData {
        blocks,
        hot_traces,
        slow,
        stepwise_retired: p.stepwise_retired,
        cache_built: p.cache.built,
        cache_hits: p.cache.hits,
        cache_invalidated: p.cache.invalidated,
        cache_conflict_evictions: p.cache.conflict_evictions,
        trace_built: p.trace_cache.built,
        trace_hits: p.trace_cache.hits,
        trace_side_exits: p.trace_cache.side_exits,
        trace_invalidated: p.trace_cache.invalidated,
    }
}

/// Compact per-run digest of a [`DivergenceReport`]: everything the
/// campaign keeps after the (trace-heavy) report is dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RunDivergence {
    /// Instructions from activation to the first divergent edge.
    depth: Option<u64>,
    /// Crash latency re-derived from the trace (crashed runs only).
    trace_latency: Option<u64>,
}

/// Compact per-run digest of a [`PropagationReport`]: everything the
/// campaign keeps after the (event-heavy) timeline is dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RunPropagation {
    /// Whether the injected instruction retired (taint was seeded).
    seeded: bool,
    /// Instructions from the seed to the first tainted compare/branch.
    taint_to_decision: Option<u64>,
    /// Whether a tainted compare preceded every tainted store.
    compare_first: bool,
    /// Peak tainted width in bytes over the run.
    peak_width: u32,
    /// Whether every corrupted location was overwritten clean.
    died: bool,
    /// Whether the observation horizon froze the tracer.
    frozen: bool,
}

/// What the engine hands back per run once traces are digested away.
type DigestedRun = (InjectionRun, Option<RunDivergence>, Option<RunPropagation>);

/// Digested runs in the campaign cache's wire shape. The store memoizes
/// only the (run, divergence) pair — propagation campaigns bypass it
/// entirely, so a taint digest never needs to survive a round-trip.
fn to_cached(runs: &[DigestedRun]) -> Vec<CachedDigestedRun> {
    runs.iter()
        .map(|(run, div, _)| (run.clone(), div.map(|d| (d.depth, d.trace_latency))))
        .collect()
}

/// Cached digested runs back into the campaign's shape.
fn from_cached(runs: Vec<CachedDigestedRun>) -> Vec<DigestedRun> {
    runs.into_iter()
        .map(|(run, div)| {
            (
                run,
                div.map(|(depth, trace_latency): DivTuple| RunDivergence {
                    depth,
                    trace_latency,
                }),
                None,
            )
        })
        .collect()
}

/// Digest a report against its run; `None` when the recorder was off or
/// the run never activated.
fn digest(run: &InjectionRun, rep: Option<&DivergenceReport>) -> Option<RunDivergence> {
    rep.map(|rep| RunDivergence {
        depth: rep.divergence_depth,
        trace_latency: run.crash_latency.map(|_| rep.faulty.retired()),
    })
}

/// Digest a propagation report down to the per-run numbers the campaign
/// keeps; `None` when the tracer was off.
fn digest_prop(rep: Option<&PropagationReport>) -> Option<RunPropagation> {
    rep.map(|rep| RunPropagation {
        seeded: rep.seeded(),
        taint_to_decision: rep.taint_to_decision(),
        compare_first: rep.compare_before_store(),
        peak_width: rep.log.peak_width,
        died: rep.log.death.is_some(),
        frozen: rep.log.frozen,
    })
}

/// Metrics histogram a run's divergence depth lands in, by outcome.
fn depth_metric(outcome: OutcomeClass) -> Option<&'static str> {
    match outcome {
        OutcomeClass::NotActivated => None,
        OutcomeClass::NotManifested => Some(metric::DIVERGENCE_DEPTH_NM),
        OutcomeClass::SystemDetection => Some(metric::DIVERGENCE_DEPTH_SD),
        OutcomeClass::FailSilenceViolation => Some(metric::DIVERGENCE_DEPTH_FSV),
        OutcomeClass::Breakin => Some(metric::DIVERGENCE_DEPTH_BRK),
    }
}

/// Metrics histograms a seeded run's taint-to-branch latency and peak
/// width land in, by outcome.
fn taint_metrics(outcome: OutcomeClass) -> Option<(&'static str, &'static str)> {
    match outcome {
        OutcomeClass::NotActivated => None,
        OutcomeClass::NotManifested => Some((metric::TAINT_TO_BRANCH_NM, metric::TAINT_WIDTH_NM)),
        OutcomeClass::SystemDetection => Some((metric::TAINT_TO_BRANCH_SD, metric::TAINT_WIDTH_SD)),
        OutcomeClass::FailSilenceViolation => {
            Some((metric::TAINT_TO_BRANCH_FSV, metric::TAINT_WIDTH_FSV))
        }
        OutcomeClass::Breakin => Some((metric::TAINT_TO_BRANCH_BRK, metric::TAINT_WIDTH_BRK)),
    }
}

/// Campaign-wide propagation aggregate: how far corrupted data
/// travelled across every seeded run, per client or summed per app.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PropagationStats {
    /// Runs whose injected instruction retired (taint was seeded).
    pub seeded: u64,
    /// Seeded runs whose corruption reached a compare/branch decision.
    pub reached_decision: u64,
    /// Seeded runs where a tainted compare preceded any tainted store.
    pub compare_first: u64,
    /// Seeded runs whose taint died before the run stopped.
    pub deaths: u64,
    /// Seeded runs frozen by the observation horizon.
    pub frozen: u64,
    /// Fail-silence violations among the seeded runs.
    pub fsv_seeded: u64,
    /// FSV runs whose corruption reached a tainted decision.
    pub fsv_reached_decision: u64,
    /// FSV runs where a tainted compare preceded any tainted store.
    pub fsv_compare_first: u64,
}

impl PropagationStats {
    fn add(&mut self, outcome: OutcomeClass, p: RunPropagation) {
        if !p.seeded {
            return;
        }
        self.seeded += 1;
        self.reached_decision += u64::from(p.taint_to_decision.is_some());
        self.compare_first += u64::from(p.compare_first);
        self.deaths += u64::from(p.died);
        self.frozen += u64::from(p.frozen);
        if outcome == OutcomeClass::FailSilenceViolation {
            self.fsv_seeded += 1;
            self.fsv_reached_decision += u64::from(p.taint_to_decision.is_some());
            self.fsv_compare_first += u64::from(p.compare_first);
        }
    }

    /// Fold another aggregate into this one.
    pub fn merge(&mut self, other: &PropagationStats) {
        self.seeded += other.seeded;
        self.reached_decision += other.reached_decision;
        self.compare_first += other.compare_first;
        self.deaths += other.deaths;
        self.frozen += other.frozen;
        self.fsv_seeded += other.fsv_seeded;
        self.fsv_reached_decision += other.fsv_reached_decision;
        self.fsv_compare_first += other.fsv_compare_first;
    }

    /// Share of seeded FSV runs whose corruption reached a tainted
    /// compare or branch before the run stopped (0.0 when no FSV run
    /// seeded).
    pub fn fsv_decision_rate(&self) -> f64 {
        if self.fsv_seeded == 0 {
            0.0
        } else {
            self.fsv_reached_decision as f64 / self.fsv_seeded as f64
        }
    }
}

/// One injection run's record (kept for breakdowns and Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Target instruction address.
    pub addr: u32,
    /// Byte within the instruction.
    pub byte_index: u8,
    /// Bit within the byte.
    pub bit: u8,
    /// Classified outcome.
    pub outcome_abbrev: char,
    /// Location class abbreviation index (Table 2 order).
    pub location_index: u8,
    /// Crash latency in instructions, when the run crashed.
    pub crash_latency: Option<u64>,
    /// Crash runs whose pre-crash traffic deviated from golden.
    pub transient_deviation: bool,
}

/// Per-client campaign result (one column of Tables 1/3/5).
#[derive(Debug, Clone)]
pub struct ClientCampaign {
    /// Client name ("Client1"...).
    pub client: String,
    /// Whether the golden run denies this client.
    pub golden_denied: bool,
    /// Golden run.
    pub golden: GoldenRun,
    /// Outcome tallies.
    pub counts: OutcomeCounts,
    /// Location tallies over the BRK∪FSV runs (Table 3).
    pub brkfsv_by_location: LocationCounts,
    /// Crash latencies (instructions between activation and crash).
    pub crash_latencies: Vec<u64>,
    /// Crash latencies re-derived from recorded flight traces, in the
    /// same order as `crash_latencies`. Empty when the campaign ran
    /// without the flight recorder; equal to `crash_latencies`
    /// element-for-element when it ran with it (the Figure 4
    /// cross-check).
    pub trace_crash_latencies: Vec<u64>,
    /// Crash runs with pre-crash traffic deviation (transient window).
    pub transient_deviations: usize,
    /// Propagation aggregate over this client's runs; `None` when the
    /// campaign ran without the taint tracer.
    pub propagation: Option<PropagationStats>,
    /// Full per-run records.
    pub records: Vec<RunRecord>,
}

/// Campaign result for one application under one encoding.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Application name ("ftpd"/"sshd").
    pub app: String,
    /// Encoding under test.
    pub scheme: EncodingScheme,
    /// Number of targeted instructions.
    pub instructions: usize,
    /// Conditional branches among them.
    pub cond_branches: usize,
    /// Runs per client (= target bits).
    pub runs_per_client: usize,
    /// Per-client results in paper order.
    pub clients: Vec<ClientCampaign>,
}

impl CampaignResult {
    /// Sum of BRK over all clients.
    pub fn total_brk(&self) -> usize {
        self.clients.iter().map(|c| c.counts.brk).sum()
    }

    /// Sum of FSV over all clients.
    pub fn total_fsv(&self) -> usize {
        self.clients.iter().map(|c| c.counts.fsv).sum()
    }

    /// Propagation aggregate summed over all clients; `None` when the
    /// campaign ran without the taint tracer.
    pub fn propagation_totals(&self) -> Option<PropagationStats> {
        let mut total = PropagationStats::default();
        let mut any = false;
        for cc in &self.clients {
            if let Some(p) = &cc.propagation {
                total.merge(p);
                any = true;
            }
        }
        any.then_some(total)
    }
}

/// Table-2-order index of an error location (shared by [`RunRecord`]
/// and the run-event stream).
fn location_index(loc: fisec_inject::ErrorLocation) -> u8 {
    fisec_inject::ErrorLocation::ALL
        .iter()
        .position(|l| *l == loc)
        .expect("every ErrorLocation variant appears in ErrorLocation::ALL") as u8
}

/// Table-1-order index of an outcome (progress-tally slot).
fn outcome_index(outcome: OutcomeClass) -> usize {
    OutcomeClass::ALL
        .iter()
        .position(|o| *o == outcome)
        .expect("every OutcomeClass variant appears in OutcomeClass::ALL")
}

fn micros_since(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Events buffered per worker before one batched sink emission.
const EVENT_BATCH: usize = 256;

/// Per-worker telemetry accumulator: a private metrics shard plus an
/// event batch, folded into the shared [`Telemetry`] exactly once when
/// the worker finishes. When telemetry is disabled every method is one
/// branch.
struct WorkerTel<'a> {
    tel: &'a Telemetry,
    client: usize,
    worker: usize,
    shard: MetricsShard,
    batch: Vec<TraceEvent>,
    /// Campaign epoch when span tracing is on (`cfg.spans` and an
    /// enabled event sink); `None` keeps the span sites one branch.
    span_epoch: Option<Instant>,
}

impl<'a> WorkerTel<'a> {
    fn new(
        tel: &'a Telemetry,
        client: usize,
        worker: usize,
        span_epoch: Option<Instant>,
    ) -> WorkerTel<'a> {
        WorkerTel {
            tel,
            client,
            worker,
            shard: MetricsShard::new(),
            batch: Vec::new(),
            span_epoch,
        }
    }

    /// Fold a group's interpreter-side profile into this worker's shard.
    fn note_exec_profile(&mut self, profile: Option<&fisec_x86::ExecProfile>) {
        if let Some(p) = profile.filter(|_| self.tel.enabled()) {
            self.shard.profile_merge(&profile_data(p));
        }
    }

    fn push_span(&mut self, name: &str, cat: &str, ts: u64, dur: u64, addr: Option<u32>) {
        self.batch.push(TraceEvent::Span(SpanEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            tid: self.worker as u32,
            ts,
            dur,
            addr,
        }));
    }

    #[allow(clippy::too_many_arguments)]
    fn push_event(
        &mut self,
        target: &InjectionTarget,
        run: &InjectionRun,
        div: Option<RunDivergence>,
        prop: Option<RunPropagation>,
        icount: u64,
        micros: u64,
        snapshot_replay: bool,
        cache_hit: bool,
    ) {
        let seeded = prop.filter(|p| p.seeded);
        self.batch.push(TraceEvent::Run(RunEvent {
            client: self.client,
            addr: target.addr,
            byte_index: target.byte_index,
            bit: target.bit,
            outcome: run.outcome.abbrev().to_string(),
            location: location_index(target.location),
            worker: self.worker,
            snapshot_replay,
            na_prefilter: false,
            cache_hit,
            icount,
            micros,
            crash_latency: run.crash_latency,
            transient_deviation: run.transient_deviation,
            divergence_depth: div.and_then(|d| d.depth),
            trace_latency: div.and_then(|d| d.trace_latency),
            taint_decision: seeded.and_then(|p| p.taint_to_decision),
            taint_width: seeded.map(|p| u64::from(p.peak_width)),
            taint_compare_first: seeded.map(|p| p.compare_first),
        }));
    }

    /// Land a run's divergence depth in the per-outcome histogram.
    fn observe_divergence(&mut self, run: &InjectionRun, div: Option<RunDivergence>) {
        if let (Some(depth), Some(name)) = (div.and_then(|d| d.depth), depth_metric(run.outcome)) {
            self.shard.observe(name, depth);
        }
    }

    /// Land a seeded run's taint counters and per-outcome histograms.
    fn observe_propagation(&mut self, run: &InjectionRun, prop: Option<RunPropagation>) {
        let Some(p) = prop.filter(|p| p.seeded) else {
            return;
        };
        self.shard.inc(metric::TAINT_SEEDED_RUNS, 1);
        if p.died {
            self.shard.inc(metric::TAINT_DEATH_RUNS, 1);
        }
        if p.frozen {
            self.shard.inc(metric::TAINT_FROZEN_RUNS, 1);
        }
        if p.compare_first {
            self.shard.inc(metric::TAINT_CMP_FIRST_RUNS, 1);
        }
        if let Some(lat) = p.taint_to_decision {
            self.shard.inc(metric::TAINT_DECISION_RUNS, 1);
            if let Some((lat_metric, _)) = taint_metrics(run.outcome) {
                self.shard.observe(lat_metric, lat);
            }
        }
        if let Some((_, width_metric)) = taint_metrics(run.outcome) {
            self.shard.observe(width_metric, u64::from(p.peak_width));
        }
    }

    fn flush_if_full(&mut self) {
        if self.batch.len() >= EVENT_BATCH {
            self.tel.sink.emit_batch(&self.batch);
            self.batch.clear();
        }
    }

    /// One from-scratch experiment: the boot belongs to the run.
    #[allow(clippy::too_many_arguments)]
    fn note_fresh(
        &mut self,
        target: &InjectionTarget,
        run: &InjectionRun,
        div: Option<RunDivergence>,
        prop: Option<RunPropagation>,
        meta: RunMeta,
        gmeta: GroupMeta,
    ) {
        if !self.tel.enabled() {
            return;
        }
        let micros = gmeta.boot_micros + meta.run_micros;
        self.shard.inc(metric::RUNS, 1);
        self.shard.inc(metric::FRESH_BOOTS, 1);
        self.shard.observe(metric::REPLAY_MICROS, micros);
        self.shard.observe(metric::ICOUNT, meta.icount);
        self.shard.phase_add(Phase::Boot, gmeta.boot_micros);
        self.shard.phase_add(Phase::Replay, meta.run_micros);
        self.shard.phase_add(Phase::Classify, meta.classify_micros);
        self.observe_divergence(run, div);
        self.observe_propagation(run, prop);
        if self.tel.events_enabled() {
            self.push_event(target, run, div, prop, meta.icount, micros, false, false);
            if let Some(epoch) = self.span_epoch {
                // The phases were just measured, so the span is laid out
                // backwards from "now": boot → replay → classify.
                let end = micros_since(epoch);
                let total = gmeta.boot_micros + meta.run_micros + meta.classify_micros;
                let start = end.saturating_sub(total);
                self.push_span("run", "run", start, total, Some(target.addr));
                self.push_span("boot", "phase", start, gmeta.boot_micros, None);
                let cursor = start + gmeta.boot_micros;
                self.push_span("replay", "phase", cursor, meta.run_micros, None);
                self.push_span(
                    "classify",
                    "phase",
                    cursor + meta.run_micros,
                    meta.classify_micros,
                    None,
                );
            }
            self.flush_if_full();
        }
        let mut tally = [0u64; 5];
        tally[outcome_index(run.outcome)] = 1;
        self.tel.progress.add(tally, 1);
    }

    /// One executed checkpoint group (activated or not).
    fn note_group(
        &mut self,
        targets: &[InjectionTarget],
        runs: &[(
            InjectionRun,
            RunMeta,
            Option<RunDivergence>,
            Option<RunPropagation>,
        )],
        gmeta: GroupMeta,
    ) {
        if !self.tel.enabled() {
            return;
        }
        self.shard.inc(metric::RUNS, runs.len() as u64);
        self.shard.inc(metric::GROUPS, 1);
        self.shard.inc(metric::FRESH_BOOTS, 1);
        self.shard.inc(metric::RESTORES, gmeta.restores);
        self.shard.observe(metric::GROUP_SIZE, runs.len() as u64);
        self.shard
            .observe(metric::RESTORES_PER_GROUP, gmeta.restores);
        self.shard.phase_add(Phase::Boot, gmeta.boot_micros);
        self.shard.phase_add(Phase::Snapshot, gmeta.snapshot_micros);
        let mut tally = [0u64; 5];
        for ((run, meta, div, prop), target) in runs.iter().zip(targets) {
            self.shard.observe(metric::REPLAY_MICROS, meta.run_micros);
            self.shard.observe(metric::ICOUNT, meta.icount);
            self.shard.phase_add(Phase::Replay, meta.run_micros);
            self.shard.phase_add(Phase::Classify, meta.classify_micros);
            self.observe_divergence(run, *div);
            self.observe_propagation(run, *prop);
            tally[outcome_index(run.outcome)] += 1;
            if self.tel.events_enabled() {
                self.push_event(
                    target,
                    run,
                    *div,
                    *prop,
                    meta.icount,
                    meta.run_micros,
                    gmeta.activated,
                    false,
                );
            }
        }
        if self.tel.events_enabled() {
            if let Some(epoch) = self.span_epoch {
                self.push_group_spans(targets, runs, gmeta, epoch);
            }
            self.flush_if_full();
        }
        self.tel.progress.add(tally, 1);
    }

    /// The checkpoint-group span hierarchy: group ⊃ {boot, snapshot,
    /// run ⊃ {replay, classify}…}, laid out backwards from "now" using
    /// the measured phase durations, so children nest strictly.
    fn push_group_spans(
        &mut self,
        targets: &[InjectionTarget],
        runs: &[(
            InjectionRun,
            RunMeta,
            Option<RunDivergence>,
            Option<RunPropagation>,
        )],
        gmeta: GroupMeta,
        epoch: Instant,
    ) {
        let end = micros_since(epoch);
        let total = gmeta.boot_micros
            + gmeta.snapshot_micros
            + runs
                .iter()
                .map(|(_, m, _, _)| m.run_micros + m.classify_micros)
                .sum::<u64>();
        let start = end.saturating_sub(total);
        let addr = targets.first().map(|t| t.addr);
        self.push_span("group", "group", start, total, addr);
        let mut cursor = start;
        self.push_span("boot", "phase", cursor, gmeta.boot_micros, None);
        cursor += gmeta.boot_micros;
        if gmeta.snapshot_micros > 0 {
            self.push_span("snapshot", "phase", cursor, gmeta.snapshot_micros, None);
            cursor += gmeta.snapshot_micros;
        }
        for (_, m, _, _) in runs {
            let dur = m.run_micros + m.classify_micros;
            self.push_span("run", "run", cursor, dur, addr);
            self.push_span("replay", "phase", cursor, m.run_micros, None);
            self.push_span(
                "classify",
                "phase",
                cursor + m.run_micros,
                m.classify_micros,
                None,
            );
            cursor += dur;
        }
    }

    /// A group classified NA wholesale by the golden-coverage
    /// pre-filter: no process ever ran, so icount/micros are zero.
    fn note_prefilter(&mut self, targets: &[InjectionTarget]) {
        if !self.tel.enabled() {
            return;
        }
        let n = targets.len() as u64;
        self.shard.inc(metric::RUNS, n);
        self.shard.inc(metric::NA_PREFILTER_RUNS, n);
        if self.tel.events_enabled() {
            for target in targets {
                self.batch.push(TraceEvent::Run(RunEvent {
                    client: self.client,
                    addr: target.addr,
                    byte_index: target.byte_index,
                    bit: target.bit,
                    outcome: OutcomeClass::NotActivated.abbrev().to_string(),
                    location: location_index(target.location),
                    worker: self.worker,
                    snapshot_replay: false,
                    na_prefilter: true,
                    cache_hit: false,
                    icount: 0,
                    micros: 0,
                    crash_latency: None,
                    transient_deviation: false,
                    divergence_depth: None,
                    trace_latency: None,
                    taint_decision: None,
                    taint_width: None,
                    taint_compare_first: None,
                }));
            }
            self.flush_if_full();
        }
        self.tel.progress.add([n, 0, 0, 0, 0], 1);
    }

    /// A checkpoint group folded from the campaign cache: no process
    /// ran, so icount/micros are zero and the runs are flagged
    /// `cache_hit` (distinct from the NA pre-filter — those groups are
    /// *derived*, these are *memoized*). Divergence depths still land
    /// in the per-outcome histograms so `fisec stats` reads the same
    /// warm or cold.
    fn note_cache_group(&mut self, targets: &[InjectionTarget], runs: &[DigestedRun]) {
        if !self.tel.enabled() {
            return;
        }
        let n = targets.len() as u64;
        self.shard.inc(metric::RUNS, n);
        self.shard.inc(metric::CACHE_HIT_GROUPS, 1);
        self.shard.inc(metric::CACHE_SYNTH_RUNS, n);
        let mut tally = [0u64; 5];
        for ((run, div, prop), target) in runs.iter().zip(targets) {
            self.observe_divergence(run, *div);
            tally[outcome_index(run.outcome)] += 1;
            if self.tel.events_enabled() {
                self.push_event(target, run, *div, *prop, 0, 0, false, true);
            }
        }
        if self.tel.events_enabled() {
            self.flush_if_full();
        }
        self.tel.progress.add(tally, 1);
    }

    /// One cache consultation or write-back: a counter bump plus a
    /// `cache` trace event.
    fn note_cache(&mut self, app: &str, client: &str, action: &str, addr: Option<u32>, runs: u64) {
        if !self.tel.enabled() {
            return;
        }
        match action {
            "miss" => self.shard.inc(metric::CACHE_MISS_GROUPS, 1),
            "stale" => self.shard.inc(metric::CACHE_STALE_GROUPS, 1),
            "store" => self.shard.inc(metric::CACHE_STORES, 1),
            _ => {}
        }
        if self.tel.events_enabled() {
            self.batch.push(TraceEvent::Cache(CacheEvent {
                app: app.to_string(),
                client: client.to_string(),
                action: action.to_string(),
                addr,
                runs,
            }));
            self.flush_if_full();
        }
    }

    fn observe_queue_wait(&mut self, micros: u64) {
        if self.tel.enabled() {
            self.shard.observe(metric::QUEUE_WAIT, micros);
        }
    }

    /// Flush remaining events and fold the shard into the registry.
    fn finish(self) {
        if !self.tel.enabled() {
            return;
        }
        if !self.batch.is_empty() {
            self.tel.sink.emit_batch(&self.batch);
        }
        self.tel.metrics.absorb(&self.shard);
    }
}

/// Run the full selective-exhaustive campaign for `app` without
/// telemetry (the instrumentation reduces to one branch per site).
///
/// # Panics
/// Panics if the image cannot be loaded (a programming error: the same
/// image already ran its golden sessions).
pub fn run_campaign(app: &AppSpec, cfg: &CampaignConfig) -> CampaignResult {
    run_campaign_traced(app, cfg, &Telemetry::disabled())
}

/// [`run_campaign`] with observability: emits a campaign header, one
/// [`RunEvent`] per injection run and a closing [`CampaignEndEvent`]
/// into `tel`'s sink, accumulates counters/histograms/phase timings in
/// its metrics registry, and drives its progress meter. Results are
/// bit-identical to the untraced path.
///
/// # Panics
/// Panics if the image cannot be loaded (a programming error: the same
/// image already ran its golden sessions).
pub fn run_campaign_traced(app: &AppSpec, cfg: &CampaignConfig, tel: &Telemetry) -> CampaignResult {
    run_campaign_cached(app, cfg, tel, None)
}

/// [`run_campaign_traced`] with an incremental campaign cache: each
/// client's checkpoint groups are looked up in the persistent store
/// first — a hit folds the memoized runs without booting a process, a
/// miss executes the group with footprint recording on and writes the
/// entry back. Results are bit-identical to the uncached path in both
/// execution modes (pinned by the differential tests); only the
/// wall-clock and the telemetry cache counters change.
///
/// # Panics
/// Panics if the image cannot be loaded (a programming error: the same
/// image already ran its golden sessions).
pub fn run_campaign_cached(
    app: &AppSpec,
    cfg: &CampaignConfig,
    tel: &Telemetry,
    cache: Option<&CampaignCache>,
) -> CampaignResult {
    let wall_start = Instant::now();
    let before = tel.enabled().then(|| tel.metrics.snapshot());
    let set = enumerate_targets(&app.image, &app.auth_funcs, cfg.cond_branches_only);
    if tel.events_enabled() {
        tel.sink.emit(&TraceEvent::Campaign(CampaignEvent {
            app: app.name.to_string(),
            scheme: cfg.scheme.to_string(),
            mode: cfg.mode.name().to_string(),
            instructions: set.instructions,
            cond_branches: set.cond_branches,
            runs_per_client: set.targets.len(),
            clients: app.clients.iter().map(|c| c.name.clone()).collect(),
            golden_denied: app.clients.iter().map(|c| c.golden_denied).collect(),
        }));
    }
    tel.progress.begin(
        &format!("{} [{}]", app.name, cfg.scheme),
        (set.targets.len() * app.clients.len()) as u64,
    );
    // The span clock: every span's `ts` is microseconds since this
    // instant. `None` (the default) keeps the trace stream byte-
    // compatible with span-free campaigns.
    let span_epoch = (cfg.spans && tel.events_enabled()).then_some(wall_start);
    let mut client_spans: Vec<(String, u64, u64)> = Vec::new();

    let mut main = MetricsShard::new();
    let mut clients = Vec::with_capacity(app.clients.len());
    for (ci, spec) in app.clients.iter().enumerate() {
        let client_start = micros_since(wall_start);
        let boot_start = Instant::now();
        let golden = golden_run_opts(&app.image, spec, cfg.engine()).expect("image loads");
        if tel.enabled() {
            main.inc(metric::FRESH_BOOTS, 1);
            main.phase_add(Phase::Boot, micros_since(boot_start));
        }
        // Propagation campaigns bypass the incremental store: its wire
        // schema memoizes (run, divergence) pairs only, and folding a
        // memoized group would silently drop its taint timelines.
        let store = if cfg.propagation {
            None
        } else {
            cache.map(|c| c.open_client(app, spec, cfg.scheme, cfg.flight_recorder, &golden))
        };
        if let Some(s) = &store {
            if s.context_invalidated {
                if tel.enabled() {
                    main.inc(metric::CACHE_STALE_GROUPS, s.dropped_groups as u64);
                }
                if tel.events_enabled() {
                    tel.sink.emit(&TraceEvent::Cache(CacheEvent {
                        app: app.name.to_string(),
                        client: spec.name.clone(),
                        action: "context-miss".to_string(),
                        addr: None,
                        runs: s.dropped_groups as u64,
                    }));
                }
            }
        }
        let records = run_targets(
            app,
            spec,
            &golden,
            &set.targets,
            cfg,
            tel,
            ci,
            span_epoch,
            store.as_ref(),
        );
        if let Some(s) = &store {
            if s.fresh_count() > 0 || s.context_invalidated {
                if let Err(e) = s.save() {
                    eprintln!(
                        "warning: campaign cache write failed for {}/{}: {e}",
                        app.name, spec.name
                    );
                }
            }
        }
        let tally_start = Instant::now();
        let mut cc = ClientCampaign {
            client: spec.name.clone(),
            golden_denied: spec.golden_denied,
            golden,
            counts: OutcomeCounts::default(),
            brkfsv_by_location: LocationCounts::default(),
            crash_latencies: Vec::new(),
            trace_crash_latencies: Vec::new(),
            transient_deviations: 0,
            propagation: cfg.propagation.then(PropagationStats::default),
            records: Vec::new(),
        };
        for (target, (run, div, prop)) in set.targets.iter().zip(&records) {
            if let (Some(stats), Some(p)) = (&mut cc.propagation, prop) {
                stats.add(run.outcome, *p);
            }
            cc.counts.add(run.outcome);
            if matches!(
                run.outcome,
                OutcomeClass::Breakin | OutcomeClass::FailSilenceViolation
            ) {
                cc.brkfsv_by_location.add(target.location);
            }
            if let Some(lat) = run.crash_latency {
                cc.crash_latencies.push(lat);
            }
            if let Some(lat) = div.and_then(|d| d.trace_latency) {
                cc.trace_crash_latencies.push(lat);
            }
            if run.transient_deviation {
                cc.transient_deviations += 1;
            }
            cc.records.push(RunRecord {
                addr: target.addr,
                byte_index: target.byte_index,
                bit: target.bit,
                outcome_abbrev: match run.outcome {
                    OutcomeClass::NotActivated => 'N',
                    OutcomeClass::NotManifested => 'M',
                    OutcomeClass::SystemDetection => 'S',
                    OutcomeClass::FailSilenceViolation => 'F',
                    OutcomeClass::Breakin => 'B',
                },
                location_index: location_index(target.location),
                crash_latency: run.crash_latency,
                transient_deviation: run.transient_deviation,
            });
        }
        if tel.enabled() {
            main.phase_add(Phase::Reassemble, micros_since(tally_start));
        }
        if span_epoch.is_some() {
            client_spans.push((
                spec.name.clone(),
                client_start,
                micros_since(wall_start) - client_start,
            ));
        }
        clients.push(cc);
    }
    tel.progress.finish();

    let result = CampaignResult {
        app: app.name.to_string(),
        scheme: cfg.scheme,
        instructions: set.instructions,
        cond_branches: set.cond_branches,
        runs_per_client: set.targets.len(),
        clients,
    };

    if tel.enabled() {
        tel.metrics.absorb(&main);
        // The registry may span several campaigns (the report generator
        // reuses one bundle), so the trailer is the delta over this one.
        let after = tel.metrics.snapshot();
        let before = before.expect("snapshot taken when telemetry is enabled");
        let phase = |p| after.phases().get(p).saturating_sub(before.phases().get(p));
        let ctr = |n| after.counter(n).saturating_sub(before.counter(n));
        if tel.events_enabled() {
            // Client and campaign spans live on the campaign thread's
            // lane (tid 0); the campaign span closes over everything.
            if span_epoch.is_some() {
                for (name, ts, dur) in &client_spans {
                    tel.sink.emit(&TraceEvent::Span(SpanEvent {
                        name: name.clone(),
                        cat: "client".to_string(),
                        tid: 0,
                        ts: *ts,
                        dur: *dur,
                        addr: None,
                    }));
                }
                tel.sink.emit(&TraceEvent::Span(SpanEvent {
                    name: format!("{} [{}]", app.name, cfg.scheme),
                    cat: "campaign".to_string(),
                    tid: 0,
                    ts: 0,
                    dur: micros_since(wall_start),
                    addr: None,
                }));
            }
            if cfg.profiler {
                // The registry may span several campaigns, so the
                // profile event carries exactly this campaign's delta.
                let data = after.profile().diff(before.profile());
                if !data.is_empty() {
                    tel.sink.emit(&TraceEvent::Profile(Box::new(ProfileEvent {
                        app: app.name.to_string(),
                        mode: cfg.mode.name().to_string(),
                        data,
                    })));
                }
            }
            if let Some(p) = result.propagation_totals() {
                // The aggregate is rebuilt from the result's per-client
                // stats, so it is exact regardless of how many
                // campaigns share the registry.
                tel.sink.emit(&TraceEvent::Propagation(PropagationEvent {
                    app: app.name.to_string(),
                    mode: cfg.mode.name().to_string(),
                    seeded: p.seeded,
                    reached_decision: p.reached_decision,
                    compare_first: p.compare_first,
                    deaths: p.deaths,
                    frozen: p.frozen,
                    fsv_seeded: p.fsv_seeded,
                    fsv_reached_decision: p.fsv_reached_decision,
                    fsv_compare_first: p.fsv_compare_first,
                }));
            }
            tel.sink.emit(&TraceEvent::CampaignEnd(CampaignEndEvent {
                wall_micros: micros_since(wall_start),
                boot_micros: phase(Phase::Boot),
                snapshot_micros: phase(Phase::Snapshot),
                replay_micros: phase(Phase::Replay),
                classify_micros: phase(Phase::Classify),
                reassemble_micros: phase(Phase::Reassemble),
                runs: ctr(metric::RUNS),
                na_prefilter_runs: ctr(metric::NA_PREFILTER_RUNS),
                restores: ctr(metric::RESTORES),
                fresh_boots: ctr(metric::FRESH_BOOTS),
                cache_hit_groups: ctr(metric::CACHE_HIT_GROUPS),
                cache_miss_groups: ctr(metric::CACHE_MISS_GROUPS),
                cache_stale_groups: ctr(metric::CACHE_STALE_GROUPS),
                cache_synth_runs: ctr(metric::CACHE_SYNTH_RUNS),
            }));
        }
        tel.sink.flush();
    }
    result
}

/// Execute all targets for one client, dispatching on the configured
/// [`ExecutionMode`], optionally sharded over threads. Results are in
/// target order regardless of mode or thread count.
#[allow(clippy::too_many_arguments)]
fn run_targets(
    app: &AppSpec,
    spec: &fisec_apps::ClientSpec,
    golden: &GoldenRun,
    targets: &[InjectionTarget],
    cfg: &CampaignConfig,
    tel: &Telemetry,
    client_idx: usize,
    span_epoch: Option<Instant>,
    store: Option<&ClientStore>,
) -> Vec<DigestedRun> {
    match (cfg.mode, store) {
        (ExecutionMode::FromScratch, None) => {
            run_targets_from_scratch(app, spec, golden, targets, cfg, tel, client_idx, span_epoch)
        }
        (ExecutionMode::FromScratch, Some(store)) => run_targets_from_scratch_cached(
            app, spec, golden, targets, cfg, tel, client_idx, span_epoch, store,
        ),
        (ExecutionMode::Snapshot, store) => run_targets_snapshot(
            app, spec, golden, targets, cfg, tel, client_idx, span_epoch, store,
        ),
    }
}

/// Contiguous same-address slices of an address-major target list, each
/// with its offset into `targets` (checkpoint groups; also the cache's
/// memoization unit).
fn group_targets(targets: &[InjectionTarget]) -> Vec<(usize, &[InjectionTarget])> {
    let mut groups: Vec<(usize, &[InjectionTarget])> = Vec::new();
    let mut start = 0;
    for i in 1..=targets.len() {
        if i == targets.len() || targets[i].addr != targets[start].addr {
            groups.push((start, &targets[start..i]));
            start = i;
        }
    }
    groups
}

/// The reference oracle: one full boot per experiment (paper §4).
#[allow(clippy::too_many_arguments)]
fn run_targets_from_scratch(
    app: &AppSpec,
    spec: &fisec_apps::ClientSpec,
    golden: &GoldenRun,
    targets: &[InjectionTarget],
    cfg: &CampaignConfig,
    tel: &Telemetry,
    client_idx: usize,
    span_epoch: Option<Instant>,
) -> Vec<DigestedRun> {
    let engine = cfg.engine();
    let threads = cfg.threads.max(1);
    if threads == 1 || targets.len() < 64 {
        let mut wt = WorkerTel::new(tel, client_idx, 0, span_epoch);
        let out = targets
            .iter()
            .map(|t| {
                let (run, meta, gmeta, rep, prof, _fp, preport) =
                    run_injection_recorded(&app.image, spec, golden, t, cfg.scheme, engine)
                        .expect("image loads");
                let div = digest(&run, rep.as_ref());
                let prop = digest_prop(preport.as_ref());
                wt.note_fresh(t, &run, div, prop, meta, gmeta);
                wt.note_exec_profile(prof.as_ref());
                (run, div, prop)
            })
            .collect();
        wt.finish();
        return out;
    }
    let chunk = targets.len().div_ceil(threads);
    let mut out: Vec<Vec<DigestedRun>> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (w, shard) in targets.chunks(chunk).enumerate() {
            handles.push(s.spawn(move || {
                let mut wt = WorkerTel::new(tel, client_idx, w + 1, span_epoch);
                let runs = shard
                    .iter()
                    .map(|t| {
                        let (run, meta, gmeta, rep, prof, _fp, preport) =
                            run_injection_recorded(&app.image, spec, golden, t, cfg.scheme, engine)
                                .expect("image loads");
                        let div = digest(&run, rep.as_ref());
                        let prop = digest_prop(preport.as_ref());
                        wt.note_fresh(t, &run, div, prop, meta, gmeta);
                        wt.note_exec_profile(prof.as_ref());
                        (run, div, prop)
                    })
                    .collect::<Vec<_>>();
                wt.finish();
                runs
            }));
        }
        for h in handles {
            out.push(h.join().expect("worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// Consult the cache for one checkpoint group: `Some(runs)` on a hit
/// (already folded into `wt`'s telemetry), `None` on a miss or stale
/// entry (the group must execute).
fn consult(
    store: &ClientStore,
    app: &AppSpec,
    spec: &fisec_apps::ClientSpec,
    group: &[InjectionTarget],
    wt: &mut WorkerTel<'_>,
) -> Option<Vec<DigestedRun>> {
    let addr = group.first().map(|t| t.addr);
    let n = group.len() as u64;
    match store.lookup(&app.image, group) {
        CacheLookup::Hit(runs) => {
            let runs = from_cached(runs);
            wt.note_cache_group(group, &runs);
            wt.note_cache(app.name, &spec.name, "hit", addr, n);
            Some(runs)
        }
        CacheLookup::Stale => {
            wt.note_cache(app.name, &spec.name, "stale", addr, n);
            None
        }
        CacheLookup::Miss => {
            wt.note_cache(app.name, &spec.name, "miss", addr, n);
            None
        }
    }
}

/// The reference oracle with the campaign cache attached: targets are
/// grouped by address (the cache's memoization unit is the checkpoint
/// group in either mode), hits fold without booting a process, misses
/// run one full boot per experiment with footprint recording on and
/// write the group's entry back. Outcomes are bit-identical to the
/// uncached oracle, and the entries interoperate with snapshot-mode
/// campaigns — each entry self-describes the footprint it was recorded
/// under.
#[allow(clippy::too_many_arguments)]
fn run_targets_from_scratch_cached(
    app: &AppSpec,
    spec: &fisec_apps::ClientSpec,
    golden: &GoldenRun,
    targets: &[InjectionTarget],
    cfg: &CampaignConfig,
    tel: &Telemetry,
    client_idx: usize,
    span_epoch: Option<Instant>,
    store: &ClientStore,
) -> Vec<DigestedRun> {
    let groups = group_targets(targets);
    let engine = cfg.engine().with_footprint();
    let mut wt0 = WorkerTel::new(tel, client_idx, 0, span_epoch);

    let mut slots: Vec<Option<Vec<DigestedRun>>> = vec![None; groups.len()];
    let live: Vec<usize> = groups
        .iter()
        .enumerate()
        .filter_map(
            |(gi, (_, group))| match consult(store, app, spec, group, &mut wt0) {
                Some(runs) => {
                    slots[gi] = Some(runs);
                    None
                }
                None => Some(gi),
            },
        )
        .collect();

    let run_group = |group: &[InjectionTarget], wt: &mut WorkerTel<'_>| -> Vec<DigestedRun> {
        let mut foot: Vec<(u32, u32)> = Vec::new();
        let runs: Vec<DigestedRun> = group
            .iter()
            .map(|t| {
                let (run, meta, gmeta, rep, prof, fp, preport) =
                    run_injection_recorded(&app.image, spec, golden, t, cfg.scheme, engine)
                        .expect("image loads");
                let div = digest(&run, rep.as_ref());
                let prop = digest_prop(preport.as_ref());
                wt.note_fresh(t, &run, div, prop, meta, gmeta);
                wt.note_exec_profile(prof.as_ref());
                if let Some(fp) = fp {
                    foot.extend(fp.ranges());
                }
                (run, div, prop)
            })
            .collect();
        store.record(
            &app.image,
            group,
            &to_cached(&runs),
            crate::cache::merge_ranges(foot),
        );
        wt.note_cache(
            app.name,
            &spec.name,
            "store",
            group.first().map(|t| t.addr),
            group.len() as u64,
        );
        runs
    };

    let threads = cfg.threads.max(1).min(live.len().max(1));
    if threads <= 1 {
        for &gi in &live {
            let (_, group) = groups[gi];
            let runs = run_group(group, &mut wt0);
            slots[gi] = Some(runs);
        }
    } else {
        let slots_mx = Mutex::new(&mut slots);
        run_work_queue(threads, live.len(), |w, pull| {
            let mut wt = WorkerTel::new(tel, client_idx, w + 1, span_epoch);
            while let Some(i) = pull() {
                let gi = live[i];
                let (_, group) = groups[gi];
                let runs = run_group(group, &mut wt);
                let wait_start = Instant::now();
                let mut guard = slots_mx.lock().expect("no worker panicked");
                let wait = micros_since(wait_start);
                guard[gi] = Some(runs);
                drop(guard);
                wt.observe_queue_wait(wait);
            }
            wt.finish();
        });
    }

    let mut out = Vec::with_capacity(targets.len());
    for done in slots {
        out.extend(done.expect("every group ran or was folded from cache"));
    }
    wt0.finish();
    out
}

/// Shared work-queue threading: spawn `threads` scoped workers, each
/// pulling item indices `0..items` from one atomic counter until the
/// queue drains. The campaign engine feeds it checkpoint groups and the
/// random tier feeds it run batches — both have wildly uneven item
/// costs, which is exactly when a shared queue beats static chunking.
///
/// `worker` is called once per thread with the worker id and a `pull`
/// closure; it owns its loop so per-worker state (telemetry shards,
/// snapshot processes) lives across items.
pub fn run_work_queue<W>(threads: usize, items: usize, worker: W)
where
    W: Fn(usize, &dyn Fn() -> Option<usize>) + Sync,
{
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for w in 0..threads {
            let next = &next;
            let worker = &worker;
            s.spawn(move || {
                let pull = || {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    (i < items).then_some(i)
                };
                worker(w, &pull);
            });
        }
    });
}

/// The checkpointed fast path.
///
/// Targets are grouped by instruction address (enumeration emits them
/// address-major, so groups are contiguous slices). Groups at addresses
/// the golden run never executes are synthesized as NA wholesale — the
/// injected run's pre-activation execution is identical to golden, so
/// its breakpoint can never be hit and it must stop exactly as golden
/// did. The remaining groups each boot once to the breakpoint and
/// replay per-bit suffixes from a snapshot; a shared work queue feeds
/// groups to the worker threads (groups vary wildly in cost, so static
/// chunking would straggle).
#[allow(clippy::too_many_arguments)]
fn run_targets_snapshot(
    app: &AppSpec,
    spec: &fisec_apps::ClientSpec,
    golden: &GoldenRun,
    targets: &[InjectionTarget],
    cfg: &CampaignConfig,
    tel: &Telemetry,
    client_idx: usize,
    span_epoch: Option<Instant>,
    store: Option<&ClientStore>,
) -> Vec<DigestedRun> {
    let groups = group_targets(targets);
    // With a cache attached the group processes record their execution
    // footprint (a pure observer; results stay bit-identical) so the
    // written entries carry their invalidation ranges.
    let engine = match store {
        Some(_) => cfg.engine().with_footprint(),
        None => cfg.engine(),
    };

    // Worker 0 is the campaign thread: it owns the coverage boot, the
    // pre-filter, the sequential path and the final reassembly.
    let mut wt0 = WorkerTel::new(tel, client_idx, 0, span_epoch);

    // The NA pre-filter is sound only when the golden run's stop proves
    // the replayed prefix cannot reach the breakpoint: an Exited or
    // Deadlock golden run stops at the same point under the (larger)
    // injection budget, while a Budget golden would keep running and a
    // fetch-faulted golden stops *before* its final address enters the
    // coverage set. Outside the safe cases every group runs for real.
    let coverage = if matches!(golden.stop, Stop::Exited(_) | Stop::Deadlock) {
        let cov_start = Instant::now();
        let (gold2, cov) =
            golden_run_with_coverage_opts(&app.image, spec, cfg.engine()).expect("image loads");
        debug_assert_eq!(gold2.icount, golden.icount);
        if tel.enabled() {
            wt0.shard.inc(metric::FRESH_BOOTS, 1);
            wt0.shard.phase_add(Phase::Boot, micros_since(cov_start));
        }
        Some(cov)
    } else {
        None
    };
    let synth_na = |n: usize| -> Vec<DigestedRun> {
        let na = InjectionRun {
            outcome: OutcomeClass::NotActivated,
            activated: false,
            stop: golden.stop.clone(),
            client: golden.client,
            crash_latency: None,
            transient_deviation: false,
            divergence: None,
        };
        vec![(na, None, None); n]
    };

    // One checkpoint group: run it, digest each report down to the
    // per-run numbers the campaign keeps, drop the traces, and — with a
    // cache attached — write the memoized entry back.
    let run_group = |group: &[InjectionTarget], wt: &mut WorkerTel<'_>| -> Vec<DigestedRun> {
        let (runs, gmeta, prof, fp) =
            run_injection_group_recorded(&app.image, spec, golden, group, cfg.scheme, engine)
                .expect("image loads");
        let runs: Vec<(
            InjectionRun,
            RunMeta,
            Option<RunDivergence>,
            Option<RunPropagation>,
        )> = runs
            .into_iter()
            .map(|(run, meta, rep, preport)| {
                let div = digest(&run, rep.as_ref());
                let prop = digest_prop(preport.as_ref());
                (run, meta, div, prop)
            })
            .collect();
        wt.note_group(group, &runs, gmeta);
        wt.note_exec_profile(prof.as_ref());
        let digested: Vec<DigestedRun> = runs
            .into_iter()
            .map(|(run, _, div, prop)| (run, div, prop))
            .collect();
        if let Some(store) = store {
            let foot = fp.map(|f| f.ranges()).unwrap_or_default();
            store.record(&app.image, group, &to_cached(&digested), foot);
            wt.note_cache(
                app.name,
                &spec.name,
                "store",
                group.first().map(|t| t.addr),
                group.len() as u64,
            );
        }
        digested
    };

    // Prefilter first, cache second: a group the golden coverage proves
    // NA is synthesized for free and never touches (or populates) the
    // store; the survivors consult the cache before executing.
    let mut slots: Vec<Option<Vec<DigestedRun>>> = vec![None; groups.len()];
    let live: Vec<usize> = groups
        .iter()
        .enumerate()
        .filter_map(|(gi, (_, group))| {
            if let Some(cov) = &coverage {
                if !cov.contains(&group[0].addr) {
                    slots[gi] = Some(synth_na(group.len()));
                    wt0.note_prefilter(group);
                    return None;
                }
            }
            if let Some(store) = store {
                match consult(store, app, spec, group, &mut wt0) {
                    Some(runs) => {
                        slots[gi] = Some(runs);
                        return None;
                    }
                    None => return Some(gi),
                }
            }
            Some(gi)
        })
        .collect();

    let threads = cfg.threads.max(1).min(live.len().max(1));
    if threads <= 1 {
        for &gi in &live {
            let (_, group) = groups[gi];
            let runs = run_group(group, &mut wt0);
            slots[gi] = Some(runs);
        }
    } else {
        let slots_mx = Mutex::new(&mut slots);
        run_work_queue(threads, live.len(), |w, pull| {
            let mut wt = WorkerTel::new(tel, client_idx, w + 1, span_epoch);
            while let Some(i) = pull() {
                let gi = live[i];
                let (_, group) = groups[gi];
                let runs = run_group(group, &mut wt);
                let wait_start = Instant::now();
                let mut guard = slots_mx.lock().expect("no worker panicked");
                let wait = micros_since(wait_start);
                guard[gi] = Some(runs);
                drop(guard);
                wt.observe_queue_wait(wait);
            }
            wt.finish();
        });
    }

    let reassemble_start = Instant::now();
    let mut out = Vec::with_capacity(targets.len());
    for done in slots {
        out.extend(done.expect("every group ran or was synthesized"));
    }
    if tel.enabled() {
        wt0.shard
            .phase_add(Phase::Reassemble, micros_since(reassemble_start));
    }
    wt0.finish();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisec_apps::AppSpec;
    use fisec_inject::golden_run;

    /// A cut-down campaign over a few targets to keep test time sane;
    /// the full campaigns run in the bench harness.
    #[test]
    fn mini_campaign_classifies_and_tallies() {
        let app = AppSpec::ftpd();
        let set = enumerate_targets(&app.image, &["pass"], true);
        // Take the first 3 instructions' worth of opcode bits only.
        let targets: Vec<_> = set
            .targets
            .iter()
            .filter(|t| t.byte_index == 0)
            .take(24)
            .copied()
            .collect();
        let spec = &app.clients[0]; // Client1 (attack)
        let golden = golden_run(&app.image, spec).unwrap();
        let cfg = CampaignConfig::default();
        let runs = run_targets(
            &app,
            spec,
            &golden,
            &targets,
            &cfg,
            &Telemetry::disabled(),
            0,
            None,
            None,
        );
        assert_eq!(runs.len(), 24);
        let mut counts = OutcomeCounts::default();
        for (r, div, prop) in &runs {
            counts.add(r.outcome);
            assert!(div.is_none(), "recorder off must not produce digests");
            assert!(prop.is_none(), "tracer off must not produce digests");
        }
        assert_eq!(counts.total(), 24);
        // Opcode-bit flips on a hot path must manifest somehow.
        assert!(counts.activated() > 0);
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let app = AppSpec::ftpd();
        let set = enumerate_targets(&app.image, &["pass"], true);
        let targets: Vec<_> = set.targets.iter().take(80).copied().collect();
        let spec = &app.clients[0];
        let golden = golden_run(&app.image, spec).unwrap();
        let seq_cfg = CampaignConfig {
            threads: 1,
            ..CampaignConfig::default()
        };
        let par_cfg = CampaignConfig {
            threads: 4,
            ..CampaignConfig::default()
        };
        let tel = Telemetry::disabled();
        let a = run_targets(&app, spec, &golden, &targets, &seq_cfg, &tel, 0, None, None);
        let b = run_targets(&app, spec, &golden, &targets, &par_cfg, &tel, 0, None, None);
        let oa: Vec<_> = a.iter().map(|r| r.0.outcome).collect();
        let ob: Vec<_> = b.iter().map(|r| r.0.outcome).collect();
        assert_eq!(oa, ob);
    }

    #[test]
    fn traced_campaign_emits_one_event_per_run() {
        let app = AppSpec::ftpd();
        let sink = std::sync::Arc::new(fisec_telemetry::MemorySink::new());
        let tel = Telemetry::new(sink.clone(), false);
        let cfg = CampaignConfig {
            cond_branches_only: true,
            ..CampaignConfig::default()
        };
        let result = run_campaign_traced(&app, &cfg, &tel);
        let events = sink.events();
        let runs = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Run(_)))
            .count();
        assert_eq!(runs, result.runs_per_client * result.clients.len());
        assert!(matches!(events.first(), Some(TraceEvent::Campaign(_))));
        assert!(matches!(events.last(), Some(TraceEvent::CampaignEnd(_))));
        let snap = tel.metrics.snapshot();
        assert_eq!(snap.counter(metric::RUNS), runs as u64);
    }

    #[test]
    fn profiler_campaign_emits_profile_event_matching_registry() {
        let app = AppSpec::ftpd();
        let sink = std::sync::Arc::new(fisec_telemetry::MemorySink::new());
        let tel = Telemetry::new(sink.clone(), false);
        let cfg = CampaignConfig {
            cond_branches_only: true,
            profiler: true,
            ..CampaignConfig::default()
        };
        run_campaign_traced(&app, &cfg, &tel);
        let events = sink.events();
        // The profile event sits immediately before the trailer, so
        // `fisec profile trace.jsonl` can attribute it to the campaign.
        let n = events.len();
        assert!(matches!(&events[n - 1], TraceEvent::CampaignEnd(_)));
        let TraceEvent::Profile(p) = &events[n - 2] else {
            panic!(
                "expected a profile event before the trailer: {:?}",
                events[n - 2]
            );
        };
        assert_eq!(p.app, "ftpd");
        assert_eq!(p.mode, "snapshot");
        assert!(!p.data.is_empty());
        assert!(p.data.blocks.iter().any(|b| b.retired > 0));
        assert!(
            p.data.cache_hits > 0,
            "snapshot campaigns reuse cached blocks"
        );
        // The wire event is exactly what the registry aggregated.
        let snap = tel.metrics.snapshot();
        assert_eq!(&p.data, snap.profile());
        // And it survives a JSONL round-trip bit-for-bit.
        let line = events[n - 2].to_json_line();
        let back = TraceEvent::parse_line(&line).unwrap();
        assert_eq!(back, events[n - 2]);
    }

    #[test]
    fn span_campaign_nests_strictly_and_default_campaign_emits_no_spans() {
        let app = AppSpec::ftpd();
        let cfg = CampaignConfig {
            cond_branches_only: true,
            ..CampaignConfig::default()
        };

        // Byte-compat: a span-free campaign emits zero span events.
        let sink = std::sync::Arc::new(fisec_telemetry::MemorySink::new());
        let tel = Telemetry::new(sink.clone(), false);
        run_campaign_traced(&app, &cfg, &tel);
        assert!(
            !sink
                .events()
                .iter()
                .any(|e| matches!(e, TraceEvent::Span(_))),
            "cfg.spans=false must keep the stream span-free"
        );

        // Spans on: the hierarchy is strictly nested per lane and covers
        // campaign -> client -> group -> phase.
        let sink = std::sync::Arc::new(fisec_telemetry::MemorySink::new());
        let tel = Telemetry::new(sink.clone(), false);
        let cfg = CampaignConfig { spans: true, ..cfg };
        run_campaign_traced(&app, &cfg, &tel);
        let events = sink.events();
        let cats: std::collections::HashSet<&str> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Span(s) => Some(s.cat.as_str()),
                _ => None,
            })
            .collect();
        for cat in ["campaign", "client", "group", "phase"] {
            assert!(cats.contains(cat), "missing span category {cat}: {cats:?}");
        }
        fisec_telemetry::check_span_nesting(&events).unwrap();
    }

    #[test]
    fn profiler_is_invisible_to_campaign_outcomes_in_both_modes() {
        let app = AppSpec::ftpd();
        let set = enumerate_targets(&app.image, &["pass"], true);
        let targets: Vec<_> = set.targets.iter().take(80).copied().collect();
        let spec = &app.clients[0];
        let tel = Telemetry::disabled();
        for mode in [ExecutionMode::Snapshot, ExecutionMode::FromScratch] {
            let plain = CampaignConfig {
                mode,
                ..CampaignConfig::default()
            };
            let profiled = CampaignConfig {
                profiler: true,
                ..plain
            };
            let golden = golden_run_opts(&app.image, spec, plain.engine()).unwrap();
            let a = run_targets(&app, spec, &golden, &targets, &plain, &tel, 0, None, None);
            let golden = golden_run_opts(&app.image, spec, profiled.engine()).unwrap();
            let b = run_targets(
                &app, spec, &golden, &targets, &profiled, &tel, 0, None, None,
            );
            let oa: Vec<_> = a.iter().map(|r| (r.0.outcome, r.0.crash_latency)).collect();
            let ob: Vec<_> = b.iter().map(|r| (r.0.outcome, r.0.crash_latency)).collect();
            assert_eq!(oa, ob, "profiler changed outcomes in {} mode", mode.name());
        }
    }

    #[test]
    fn propagation_is_invisible_to_outcomes_in_all_four_engine_configs() {
        // The taint tracer is a pure observer: outcomes and crash
        // latencies must be bit-identical tracer on/off in both
        // execution modes and across all four {block cache} x {trace
        // cache} engine configurations.
        let app = AppSpec::ftpd();
        let set = enumerate_targets(&app.image, &["pass"], true);
        let targets: Vec<_> = set.targets.iter().take(60).copied().collect();
        let spec = &app.clients[0];
        let tel = Telemetry::disabled();
        for mode in [ExecutionMode::Snapshot, ExecutionMode::FromScratch] {
            for (block_cache, trace_cache) in
                [(true, true), (true, false), (false, true), (false, false)]
            {
                let plain = CampaignConfig {
                    mode,
                    block_cache,
                    trace_cache,
                    ..CampaignConfig::default()
                };
                let traced = CampaignConfig {
                    propagation: true,
                    ..plain
                };
                let golden = golden_run_opts(&app.image, spec, plain.engine()).unwrap();
                let a = run_targets(&app, spec, &golden, &targets, &plain, &tel, 0, None, None);
                let golden = golden_run_opts(&app.image, spec, traced.engine()).unwrap();
                let b = run_targets(&app, spec, &golden, &targets, &traced, &tel, 0, None, None);
                let oa: Vec<_> = a.iter().map(|r| (r.0.outcome, r.0.crash_latency)).collect();
                let ob: Vec<_> = b.iter().map(|r| (r.0.outcome, r.0.crash_latency)).collect();
                assert_eq!(
                    oa,
                    ob,
                    "tracer changed outcomes in {} mode (block_cache={block_cache}, \
                     trace_cache={trace_cache})",
                    mode.name()
                );
                // And the traced runs actually produced digests.
                assert!(
                    b.iter().any(|r| r.2.is_some_and(|p| p.seeded)),
                    "no run seeded taint in {} mode",
                    mode.name()
                );
                assert!(
                    a.iter().all(|r| r.2.is_none()),
                    "tracer off must not produce digests"
                );
            }
        }
    }

    #[test]
    fn propagation_campaign_emits_taint_metrics_and_aggregate_event() {
        let app = AppSpec::ftpd();
        let sink = std::sync::Arc::new(fisec_telemetry::MemorySink::new());
        let tel = Telemetry::new(sink.clone(), false);
        let cfg = CampaignConfig {
            cond_branches_only: true,
            propagation: true,
            ..CampaignConfig::default()
        };
        let result = run_campaign_traced(&app, &cfg, &tel);
        let totals = result
            .propagation_totals()
            .expect("propagation campaign aggregates stats");
        assert!(totals.seeded > 0, "no run seeded taint");
        assert!(totals.reached_decision > 0, "no taint reached a decision");
        // The aggregate event sits immediately before the trailer and
        // mirrors the per-client stats exactly.
        let events = sink.events();
        let n = events.len();
        assert!(matches!(&events[n - 1], TraceEvent::CampaignEnd(_)));
        let TraceEvent::Propagation(p) = &events[n - 2] else {
            panic!(
                "expected a propagation event before the trailer: {:?}",
                events[n - 2]
            );
        };
        assert_eq!(p.app, "ftpd");
        assert_eq!(p.seeded, totals.seeded);
        assert_eq!(p.reached_decision, totals.reached_decision);
        assert_eq!(p.fsv_seeded, totals.fsv_seeded);
        // Seeded run events carry the taint fields; unseeded ones don't.
        let mut decisions = 0u64;
        let mut widths = 0u64;
        for ev in &events {
            if let TraceEvent::Run(r) = ev {
                if r.outcome == "NA" {
                    assert_eq!(r.taint_width, None, "NA runs never seed taint");
                }
                if r.taint_decision.is_some() {
                    decisions += 1;
                }
                if r.taint_width.is_some() {
                    widths += 1;
                }
            }
        }
        assert_eq!(widths, totals.seeded);
        assert_eq!(decisions, totals.reached_decision);
        // The latency/width histograms observed the same populations.
        let snap = tel.metrics.snapshot();
        assert_eq!(snap.counter(metric::TAINT_SEEDED_RUNS), totals.seeded);
        let lat: u64 = [
            metric::TAINT_TO_BRANCH_NM,
            metric::TAINT_TO_BRANCH_SD,
            metric::TAINT_TO_BRANCH_FSV,
            metric::TAINT_TO_BRANCH_BRK,
        ]
        .iter()
        .filter_map(|m| snap.histogram(m))
        .map(|h| h.count)
        .sum();
        assert_eq!(lat, decisions);
        // And the event round-trips through the JSONL wire format.
        let line = events[n - 2].to_json_line();
        assert_eq!(TraceEvent::parse_line(&line).unwrap(), events[n - 2]);
    }

    #[test]
    fn propagation_campaign_bypasses_the_cache_store() {
        // The PR 9 store memoizes only (run, divergence): a propagation
        // campaign must not open it at all — neither writing taint-less
        // entries nor serving memoized runs without taint digests.
        let dir = std::env::temp_dir().join(format!("fisec_prop_cache_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cache = CampaignCache::at(dir.clone());
        let mut app = AppSpec::ftpd();
        app.clients.truncate(1);
        let cfg = CampaignConfig {
            cond_branches_only: true,
            propagation: true,
            ..CampaignConfig::default()
        };
        let tel = Telemetry::disabled();
        let a = run_campaign_cached(&app, &cfg, &tel, Some(&cache));
        assert!(
            std::fs::read_dir(&dir).unwrap().next().is_none(),
            "propagation campaign must not create store files"
        );
        // A second run reproduces the same outcomes from scratch.
        let b = run_campaign_cached(&app, &cfg, &tel, Some(&cache));
        assert_eq!(a.clients[0].counts, b.clients[0].counts);
        assert!(std::fs::read_dir(&dir).unwrap().next().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recorder_campaign_cross_checks_latencies_and_observes_depths() {
        let app = AppSpec::ftpd();
        let sink = std::sync::Arc::new(fisec_telemetry::MemorySink::new());
        let tel = Telemetry::new(sink.clone(), false);
        let cfg = CampaignConfig {
            cond_branches_only: true,
            flight_recorder: true,
            ..CampaignConfig::default()
        };
        let result = run_campaign_traced(&app, &cfg, &tel);
        // The trace-derived latencies must reproduce the live Figure 4
        // input exactly, element for element.
        for cc in &result.clients {
            assert!(!cc.crash_latencies.is_empty());
            assert_eq!(cc.trace_crash_latencies, cc.crash_latencies);
        }
        // Every run event agrees between the live and trace-derived
        // latency, and activated non-NA runs carry a divergence depth
        // whenever their control flow left the golden path.
        let mut depths = 0;
        for ev in sink.events() {
            if let TraceEvent::Run(r) = ev {
                assert_eq!(r.trace_latency, r.crash_latency);
                if r.divergence_depth.is_some() {
                    assert_ne!(r.outcome, "NA");
                    depths += 1;
                }
            }
        }
        assert!(depths > 0, "no run diverged from golden");
        // Depths land in the per-outcome histograms.
        let snap = tel.metrics.snapshot();
        let observed: u64 = [
            metric::DIVERGENCE_DEPTH_NM,
            metric::DIVERGENCE_DEPTH_SD,
            metric::DIVERGENCE_DEPTH_FSV,
            metric::DIVERGENCE_DEPTH_BRK,
        ]
        .iter()
        .filter_map(|m| snap.histogram(m))
        .map(|h| h.count)
        .sum();
        assert_eq!(observed, depths);
    }
}
