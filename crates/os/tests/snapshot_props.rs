//! Property tests for checkpoint/restore: after `snapshot()`, any
//! sequence of further steps and memory pokes followed by `restore()`
//! leaves the machine (and the whole process) observably identical to
//! one that never deviated — same registers, flags, memory, icount and
//! subsequent execution.

use fisec_net::{ClientDriver, ClientStatus};
use fisec_os::{Process, Stop};
use proptest::prelude::*;

/// Scripted client: feeds each input line on demand, records replies.
#[derive(Clone)]
struct ScriptClient {
    inputs: Vec<Vec<u8>>,
    next: usize,
}

impl ClientDriver for ScriptClient {
    fn on_server_data(&mut self, _data: &[u8], _out: &mut dyn FnMut(Vec<u8>)) {}

    fn on_server_read_idle(&mut self, out: &mut dyn FnMut(Vec<u8>)) {
        if self.next < self.inputs.len() {
            out(self.inputs[self.next].clone());
            self.next += 1;
        }
    }

    fn status(&self) -> ClientStatus {
        ClientStatus::InProgress
    }
}

/// An echo server with enough control flow that arbitrary step counts
/// land in interesting places (loop, syscalls, arithmetic).
fn image() -> &'static fisec_asm::Image {
    static IMG: std::sync::OnceLock<fisec_asm::Image> = std::sync::OnceLock::new();
    IMG.get_or_init(|| {
        fisec_cc::build_image(&[r#"
            int main() {
                char buf[64];
                int n;
                int total;
                total = 0;
                write_str(1, "220 ready\r\n");
                n = read(0, buf, 63);
                while (n > 0) {
                    buf[n] = 0;
                    write(1, buf, n);
                    total = total + n;
                    n = read(0, buf, 63);
                }
                return total;
            }
        "#])
        .expect("test program builds")
    })
}

fn load(inputs: &[Vec<u8>], budget: u64) -> Process {
    let mut p = Process::load(
        image(),
        Box::new(ScriptClient {
            inputs: inputs.to_vec(),
            next: 0,
        }),
    )
    .expect("image loads");
    p.set_budget(budget);
    p
}

/// Observable machine state compared between the restored machine and
/// its never-deviated twin.
fn machine_state(
    m: &fisec_x86::Machine,
    probe_addrs: &[u32],
) -> (fisec_x86::Cpu, u64, Vec<Option<u8>>) {
    let bytes = probe_addrs.iter().map(|a| m.mem.peek8(*a).ok()).collect();
    (m.cpu.clone(), m.icount, bytes)
}

fn lines_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(97u8..=122, 1..8).prop_map(|mut l| {
            l.push(b'\n');
            l
        }),
        0..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Machine level: snapshot → arbitrary steps and pokes → restore
    /// leaves every observable identical to a twin that never deviated,
    /// including the next stretch of execution.
    #[test]
    fn restore_rewinds_machine_exactly(
        lines in lines_strategy(),
        pre_steps in 0u64..600,
        deviation in proptest::collection::vec((0u8..3, 0u32..256, proptest::prelude::any::<u8>()), 0..12),
        post_steps in 1u64..200,
    ) {
        let mut p = load(&lines, 100_000);
        for _ in 0..pre_steps {
            let _ = p.machine.step();
        }
        let snap = p.machine.snapshot();
        let twin = p.machine.clone();

        // Deviate: extra steps and pokes into text and stack bytes.
        let img = image();
        for (kind, off, val) in &deviation {
            match kind {
                0 => {
                    for _ in 0..(*off % 64) {
                        let _ = p.machine.step();
                    }
                }
                1 => {
                    let addr = img.text_base + (*off % img.text.len() as u32);
                    let _ = p.machine.mem.poke8(addr, *val);
                }
                _ => {
                    let addr = fisec_os::STACK_TOP - 1 - (*off % 4096);
                    let _ = p.machine.mem.poke8(addr, *val);
                }
            }
        }
        p.machine.restore(&snap);

        // Probe text, stack and an unmapped hole.
        let probes: Vec<u32> = (0..32)
            .map(|i| img.text_base + i * 7)
            .chain((0..16).map(|i| fisec_os::STACK_TOP - 1 - i * 13))
            .chain([0x10u32])
            .collect();
        prop_assert_eq!(machine_state(&p.machine, &probes), machine_state(&twin, &probes));

        // Subsequent execution must be step-for-step identical.
        let mut twin = twin;
        for _ in 0..post_steps {
            let ea = p.machine.step();
            let eb = twin.step();
            prop_assert_eq!(ea, eb);
            prop_assert_eq!(&p.machine.cpu, &twin.cpu);
            prop_assert_eq!(p.machine.icount, twin.icount);
        }
    }

    /// Process level: a run after restore reproduces the original run
    /// exactly — stop reason, icount, client verdict and traffic.
    #[test]
    fn restored_process_reruns_identically(
        lines in lines_strategy(),
        budget in 1_000u64..40_000,
        pre_steps in 0u64..400,
    ) {
        let mut p = load(&lines, budget);
        for _ in 0..pre_steps {
            let _ = p.machine.step();
        }
        let snap = p.snapshot();

        let stop1 = p.run();
        let icount1 = p.icount();
        let client1 = p.client_status();
        let trace1 = p.trace();

        p.restore(&snap);
        let stop2 = p.run();
        prop_assert_eq!(stop1, stop2);
        prop_assert_eq!(icount1, p.icount());
        prop_assert_eq!(client1, p.client_status());
        prop_assert_eq!(trace1, p.trace());
    }
}

/// Injection-shaped group replay: restore to a boot snapshot, flip one
/// text byte, run — repeated across a whole group of errors. The
/// journal-based invalidation must retain the overwhelming majority of
/// the block cache across the group (the injector only ever touches one
/// byte per run), and every stop must match a step-engine reference.
#[test]
fn group_replay_retains_block_cache() {
    let img = image();
    let lines: Vec<Vec<u8>> = vec![b"hello\n".to_vec(), b"world\n".to_vec()];
    let text_len = img.text.len() as u32;
    let addr_of = |i: u32| img.text_base + (i * 37) % text_len;
    const RUNS: u32 = 40;

    let mut p = load(&lines, 100_000);
    let snap = p.snapshot();
    let _ = p.run(); // golden run primes the cache
    let primed = p.machine.block_stats();
    assert!(
        primed.cached > 10,
        "golden run populates the cache: {primed:?}"
    );

    let mut stops = Vec::new();
    let inv0 = p.machine.block_stats().invalidated;
    for i in 0..RUNS {
        p.restore(&snap);
        let orig = p.machine.mem.peek8(addr_of(i)).unwrap();
        p.machine.mem.poke8(addr_of(i), orig ^ 0x04).unwrap();
        stops.push(p.run());
    }
    let s = p.machine.block_stats();
    // Wholesale invalidation would drop the full cache every replay
    // (RUNS * cached blocks). Targeted invalidation drops only the
    // blocks covering the flipped byte, at the poke and at the
    // restore that reverts it — >95% of the cache survives each run.
    let dropped = s.invalidated - inv0;
    let wholesale = u64::from(RUNS) * primed.cached as u64;
    assert!(
        dropped * 20 <= wholesale,
        ">95% of the block cache must survive each replay: dropped {dropped} \
         of a wholesale {wholesale}: {s:?}"
    );
    assert!(s.hits > s.built, "replays are served from cache: {s:?}");

    // Step-engine reference: identical stops, run for run.
    let mut r = load(&lines, 100_000);
    r.machine.set_block_engine(false);
    let rsnap = r.snapshot();
    let _ = r.run();
    for i in 0..RUNS {
        r.restore(&rsnap);
        let orig = r.machine.mem.peek8(addr_of(i)).unwrap();
        r.machine.mem.poke8(addr_of(i), orig ^ 0x04).unwrap();
        assert_eq!(
            r.run(),
            stops[i as usize],
            "run {i} diverged from step engine"
        );
    }
}

/// The tier-2 companion to the retention test above: across an
/// injection-shaped restore/poke/run group, superblock traces built on
/// earlier replays must keep serving later ones (the journal drops only
/// traces covering the flipped byte), and every stop must match a
/// trace-cache-off reference.
#[test]
fn group_replay_retains_trace_cache() {
    let img = image();
    let lines: Vec<Vec<u8>> = vec![b"hello\n".to_vec(), b"world\n".to_vec()];
    let text_len = img.text.len() as u32;
    let addr_of = |i: u32| img.text_base + (i * 37) % text_len;
    const RUNS: u32 = 40;

    let mut p = load(&lines, 100_000);
    p.machine.set_trace_threshold(1);
    let snap = p.snapshot();
    let _ = p.run(); // golden run promotes the hot loops
    let primed = p.machine.trace_stats();
    assert!(primed.built > 0, "golden run builds traces: {primed:?}");

    let mut stops = Vec::new();
    for i in 0..RUNS {
        p.restore(&snap);
        let orig = p.machine.mem.peek8(addr_of(i)).unwrap();
        p.machine.mem.poke8(addr_of(i), orig ^ 0x04).unwrap();
        stops.push(p.run());
    }
    let s = p.machine.trace_stats();
    assert!(
        s.hits > primed.hits,
        "replays must be served from retained traces: {primed:?} -> {s:?}"
    );

    // Tier-1 reference: identical stops, run for run.
    let mut r = load(&lines, 100_000);
    r.machine.set_trace_cache(false);
    let rsnap = r.snapshot();
    let _ = r.run();
    for i in 0..RUNS {
        r.restore(&rsnap);
        let orig = r.machine.mem.peek8(addr_of(i)).unwrap();
        r.machine.mem.poke8(addr_of(i), orig ^ 0x04).unwrap();
        assert_eq!(
            r.run(),
            stops[i as usize],
            "run {i} diverged from the tier-1 engine"
        );
    }
}

/// Deterministic (non-property) check that restore clears decode state:
/// corrupt an executed instruction's bytes after the snapshot, run a
/// little (so the corrupted decode lands in the icache), restore, and
/// verify execution proceeds with the pristine decode.
#[test]
fn restore_discards_stale_decodes() {
    let img = image();
    let mut p = load(&[], 100_000);
    let snap = p.snapshot();
    let entry = img.func("_start").expect("entry").start;
    // Corrupt the first instruction into something else and execute it.
    let orig = p.machine.mem.peek8(entry).unwrap();
    p.machine.mem.poke8(entry, orig ^ 0x01).unwrap();
    let _ = p.machine.step();
    p.restore(&snap);
    assert_eq!(p.machine.mem.peek8(entry).unwrap(), orig);
    let stop = p.run();
    // The pristine program deadlocks waiting for a client (no inputs)
    // after its banner write — it must not fault.
    assert_eq!(stop, Stop::Deadlock);
}
