//! Derive macros for the vendored serde stand-in.
//!
//! Supports exactly the shapes this workspace derives: non-generic
//! structs with named fields. The input token stream is parsed by hand
//! (no syn/quote in the offline environment): attributes and
//! visibility markers are skipped, field names collected, and the
//! `impl` blocks are rendered as strings and re-parsed.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the derive target.
struct Struct {
    name: String,
    fields: Vec<String>,
}

fn parse_struct(input: TokenStream) -> Struct {
    let mut iter = input.into_iter();
    for tt in iter.by_ref() {
        if let TokenTree::Ident(id) = &tt {
            if id.to_string() == "struct" {
                break;
            }
            if id.to_string() == "enum" || id.to_string() == "union" {
                panic!("vendored serde_derive only supports structs with named fields");
            }
        }
    }
    let name = match iter.by_ref().next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => panic!("expected struct name"),
    };
    for tt in iter {
        if let TokenTree::Group(g) = &tt {
            match g.delimiter() {
                Delimiter::Brace => {
                    return Struct {
                        name,
                        fields: parse_fields(g.stream()),
                    };
                }
                Delimiter::Parenthesis => {
                    panic!("vendored serde_derive does not support tuple structs");
                }
                _ => {}
            }
        }
        if let TokenTree::Punct(p) = &tt {
            if p.as_char() == '<' {
                panic!("vendored serde_derive does not support generic structs");
            }
        }
    }
    // Unit struct: serialize as an empty object.
    Struct {
        name,
        fields: Vec::new(),
    }
}

fn parse_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    'fields: loop {
        // Skip attributes (`#[...]`, including rendered doc comments).
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next(); // the bracketed attribute body
                }
                _ => break,
            }
        }
        // Skip visibility (`pub`, `pub(crate)`, ...).
        if let Some(TokenTree::Ident(id)) = iter.peek() {
            if id.to_string() == "pub" {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
        }
        match iter.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            Some(other) => panic!("expected field name, found {other}"),
            None => break,
        }
        // Skip `: Type` up to the next top-level comma. Generic
        // argument lists nest via `<`/`>` puncts, so track that depth;
        // parenthesized/bracketed types arrive as single groups.
        let mut depth = 0i32;
        loop {
            match iter.next() {
                None => break 'fields,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
    fields
}

/// `#[derive(Serialize)]` for named-field structs.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let s = parse_struct(input);
    let pushes: String = s
        .fields
        .iter()
        .map(|f| {
            format!(
                "fields.push((::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::serialize(&self.{f})));\n"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n\
         let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n\
         let _ = &mut fields;\n\
         {pushes}\
         ::serde::Value::Object(fields)\n\
         }}\n\
         }}\n",
        name = s.name,
        pushes = pushes
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// `#[derive(Deserialize)]` for named-field structs.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let s = parse_struct(input);
    let inits: String = s
        .fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::deserialize(v.field(\"{f}\"))\
                 .map_err(|e| e.in_field(\"{f}\"))?,\n"
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(v: &::serde::Value) \
         -> ::std::result::Result<{name}, ::serde::Error> {{\n\
         let _ = v;\n\
         ::std::result::Result::Ok({name} {{\n\
         {inits}\
         }})\n\
         }}\n\
         }}\n",
        name = s.name,
        inits = inits
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
