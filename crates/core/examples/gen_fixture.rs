//! Regenerate the snapshot fixture (run after intentional behaviour
//! changes): cargo run --release -p fisec-core --example gen_fixture
use fisec_apps::AppSpec;
use fisec_core::{run_campaign, CampaignConfig, CampaignSummary};

fn main() {
    let mut app = AppSpec::ftpd();
    app.auth_funcs = vec!["pass"];
    app.clients.truncate(2);
    let r = run_campaign(&app, &CampaignConfig::default());
    println!("{}", CampaignSummary::from(&r).to_json());
}
