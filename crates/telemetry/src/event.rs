//! The structured run-event stream: schema, sinks and JSONL transport.
//!
//! A trace is a sequence of [`TraceEvent`]s. On disk each event is one
//! JSON object per line, tagged by an `"event"` field:
//!
//! ```text
//! {"event":"campaign","app":"ftpd","scheme":"baseline x86",...}
//! {"event":"run","client":0,"addr":134512678,"byte_index":0,"bit":3,...}
//! {"event":"campaign_end","app":"ftpd","wall_micros":812345,...}
//! ```
//!
//! The `campaign` header scopes the `run` events that follow it (their
//! `client` field indexes its `clients` array), and `campaign_end`
//! closes the campaign with the phase breakdown, so a saved stream is a
//! self-contained, replayable record of the whole experiment.

use crate::hotspot::ProfileData;
use crate::metrics::OutcomeHists;
use serde::{Deserialize, Serialize, Value};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Campaign header: identifies the app/scheme/engine and names the
/// clients so per-run events can reference them by index.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignEvent {
    /// Application name ("ftpd"/"sshd").
    pub app: String,
    /// Encoding scheme label (`EncodingScheme`'s `Display`).
    pub scheme: String,
    /// Execution engine: "snapshot" or "from-scratch".
    pub mode: String,
    /// Targeted instructions.
    pub instructions: usize,
    /// Conditional branches among them.
    pub cond_branches: usize,
    /// Injection runs per client (= target bits).
    pub runs_per_client: usize,
    /// Client names in paper order.
    pub clients: Vec<String>,
    /// Whether the golden run denies each client (same order).
    pub golden_denied: Vec<bool>,
}

/// One injection run. Exactly one of these is emitted per experiment,
/// including runs the NA pre-filter classified without execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunEvent {
    /// Index into the enclosing campaign header's `clients`.
    pub client: usize,
    /// Target instruction address.
    pub addr: u32,
    /// Byte within the instruction.
    pub byte_index: u8,
    /// Bit within the byte.
    pub bit: u8,
    /// Outcome abbreviation: NA/NM/SD/FSV/BRK.
    pub outcome: String,
    /// Error-location index in Table 2 order.
    pub location: u8,
    /// Worker thread that executed the run (0 = the campaign thread).
    pub worker: usize,
    /// True when the run replayed a checkpoint instead of booting fresh.
    pub snapshot_replay: bool,
    /// True when the run was classified NA from golden coverage without
    /// ever executing (the pre-filter); `icount`/`micros` are then 0.
    pub na_prefilter: bool,
    /// True when the run was synthesized from the incremental campaign
    /// cache without executing (its checkpoint group's key matched);
    /// `icount`/`micros` are then 0. Absent from cache-off traces
    /// (older streams parse fine).
    #[serde(default)]
    pub cache_hit: bool,
    /// Guest instructions retired for this run (since the restore point
    /// for snapshot replays, since boot for fresh runs).
    pub icount: u64,
    /// Host microseconds spent executing the run (excluding the shared
    /// boot-to-breakpoint prefix of a snapshot group).
    pub micros: u64,
    /// Crash latency in instructions, when the run crashed.
    pub crash_latency: Option<u64>,
    /// Whether pre-crash traffic deviated from golden.
    pub transient_deviation: bool,
    /// Instructions between activation and the first control-flow edge
    /// diverging from the golden continuation, when the campaign ran
    /// with the flight recorder and the run's control flow diverged.
    /// Absent from recorder-off traces (older streams parse fine).
    pub divergence_depth: Option<u64>,
    /// Crash latency re-derived from the recorded trace (stop icount −
    /// activation icount), when the recorder was on and the run
    /// crashed. Equals `crash_latency` by construction — the trace-only
    /// Figure 4 rebuild cross-checks the two.
    pub trace_latency: Option<u64>,
    /// Instructions from the taint seed to the first tainted compare or
    /// branch decision, when the campaign ran with the propagation
    /// tracer and the corruption reached one. Absent from
    /// propagation-off traces (older streams parse fine).
    #[serde(default)]
    pub taint_decision: Option<u64>,
    /// Peak tainted width in bytes over the run, when the tracer was on
    /// and taint was seeded.
    #[serde(default)]
    pub taint_width: Option<u64>,
    /// Whether a tainted compare preceded every tainted store, when the
    /// tracer was on and taint was seeded.
    #[serde(default)]
    pub taint_compare_first: Option<bool>,
}

/// Campaign trailer: wall-clock, the phase breakdown and engine-level
/// aggregates for the whole campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CampaignEndEvent {
    /// Wall-clock microseconds for the whole campaign.
    pub wall_micros: u64,
    /// Attributed microseconds: booting processes to the breakpoint.
    pub boot_micros: u64,
    /// Attributed microseconds: capturing checkpoints.
    pub snapshot_micros: u64,
    /// Attributed microseconds: executing post-flip suffixes.
    pub replay_micros: u64,
    /// Attributed microseconds: classifying outcomes against golden.
    pub classify_micros: u64,
    /// Attributed microseconds: tallying and reassembling results.
    pub reassemble_micros: u64,
    /// Total injection runs.
    pub runs: u64,
    /// Runs classified NA by the golden-coverage pre-filter.
    pub na_prefilter_runs: u64,
    /// Checkpoint restores performed.
    pub restores: u64,
    /// Fresh process boots (golden runs, group boots, from-scratch runs).
    pub fresh_boots: u64,
    /// Checkpoint groups folded in from the incremental campaign cache
    /// without executing. Absent from cache-off traces (older streams
    /// parse fine, all four cache counters default to 0).
    #[serde(default)]
    pub cache_hit_groups: u64,
    /// Groups that executed because the cache had no usable entry
    /// (includes stale entries).
    #[serde(default)]
    pub cache_miss_groups: u64,
    /// The subset of misses where an entry existed but its key or
    /// footprint hash no longer matched (invalidations).
    #[serde(default)]
    pub cache_stale_groups: u64,
    /// Runs synthesized from cache hits (counted in `runs` as well).
    #[serde(default)]
    pub cache_synth_runs: u64,
}

/// Random-campaign (§7 random-injection tier) header: identifies the
/// sample space so a ledger is self-describing and a resumed campaign
/// can hard-check it is continuing the same experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomCampaignEvent {
    /// Application name ("ftpd"/"sshd").
    pub app: String,
    /// Encoding scheme label.
    pub scheme: String,
    /// Execution engine: "snapshot" or "from-scratch".
    pub mode: String,
    /// The attack client driving every session.
    pub client: String,
    /// Master seed of the counter-based draw stream.
    pub seed: u64,
    /// Target total runs (the cap when `target_ci` is set).
    pub runs: u64,
    /// Ledger commit granularity in runs.
    pub batch: u64,
    /// Text-segment length the offsets are drawn from.
    pub text_len: u64,
    /// Requested maximum Wilson 95% CI width, when adaptive sampling
    /// was on.
    pub target_ci: Option<f64>,
}

/// One committed ledger checkpoint: the campaign state after folding
/// every run with index `< end`. Tallies and histograms are
/// *cumulative*, so the last committed batch alone restores the whole
/// aggregation state — a killed campaign resumes from `end` and its
/// final tallies are bit-identical to an uninterrupted run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomBatchEvent {
    /// First run index this batch covered.
    pub start: u64,
    /// One past the last run index committed (== cumulative runs).
    pub end: u64,
    /// Cumulative runs indistinguishable from golden.
    pub no_effect: u64,
    /// Cumulative crashes.
    pub sd: u64,
    /// Cumulative fail-silence violations.
    pub fsv: u64,
    /// Cumulative break-ins.
    pub brk: u64,
    /// Cumulative per-outcome icount histograms.
    pub hists: OutcomeHists,
}

/// Random-campaign trailer: the final tallies plus the violation-rate
/// estimate and its 95% confidence intervals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomEndEvent {
    /// Total injected errors.
    pub runs: u64,
    /// Runs indistinguishable from golden.
    pub no_effect: u64,
    /// Crashes.
    pub sd: u64,
    /// Fail-silence violations.
    pub fsv: u64,
    /// Break-ins.
    pub brk: u64,
    /// Wall-clock microseconds (this invocation only; a resumed
    /// campaign reports the resume leg, not the sum).
    pub wall_micros: u64,
    /// Point estimate brk/runs.
    pub violation_rate: f64,
    /// Wilson 95% interval on the violation rate.
    pub wilson_low: f64,
    /// Wilson 95% upper bound.
    pub wilson_high: f64,
    /// Clopper-Pearson 95% lower bound.
    pub cp_low: f64,
    /// Clopper-Pearson 95% upper bound.
    pub cp_high: f64,
}

/// One node of the hierarchical span trace (campaign →
/// checkpoint-group → run → phase). Spans are emitted into the same
/// JSONL stream as the run events (only when span tracing is on, so
/// default traces are byte-compatible with older readers) and export
/// directly to Chrome trace-event JSON: `ts`/`dur` are microseconds
/// relative to the campaign epoch, `tid` is the worker lane (0 = the
/// campaign thread), and spans on one lane are strictly nested.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Span label ("campaign", "client", "group", "boot", "snapshot",
    /// "run", "replay", "classify").
    pub name: String,
    /// Category for trace viewers: "campaign", "group", "run" or
    /// "phase".
    pub cat: String,
    /// Lane: worker index + 1, with 0 for the campaign thread.
    pub tid: u32,
    /// Start, in microseconds since the campaign epoch.
    pub ts: u64,
    /// Duration in microseconds.
    pub dur: u64,
    /// Target instruction address, for group/run spans.
    pub addr: Option<u32>,
}

/// Per-campaign hot-spot profile trailer: the interpreter's block/
/// slow-path/cache tallies accumulated by exactly this campaign
/// (emitted only when the profiler is on, before `campaign_end`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileEvent {
    /// Application name ("ftpd"/"sshd").
    pub app: String,
    /// Execution engine: "snapshot" or "from-scratch".
    pub mode: String,
    /// The collected profile.
    pub data: ProfileData,
}

/// Per-campaign propagation trailer: how far the corrupted data of the
/// campaign's activated injections travelled, aggregated over every
/// seeded run (emitted only when the taint tracer is on, before
/// `campaign_end`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropagationEvent {
    /// Application name ("ftpd"/"sshd").
    pub app: String,
    /// Execution engine: "snapshot" or "from-scratch".
    pub mode: String,
    /// Runs whose injected instruction retired (taint was seeded).
    pub seeded: u64,
    /// Seeded runs whose corruption reached a tainted compare or
    /// branch decision before the run stopped.
    pub reached_decision: u64,
    /// Seeded runs where a tainted compare preceded any tainted store.
    pub compare_first: u64,
    /// Seeded runs whose taint died (every corrupted location was
    /// overwritten clean) before the run stopped.
    pub deaths: u64,
    /// Seeded runs whose tracer hit the observation horizon.
    pub frozen: u64,
    /// Fail-silence violations among the seeded runs.
    pub fsv_seeded: u64,
    /// FSV runs whose corruption reached a tainted decision.
    pub fsv_reached_decision: u64,
    /// FSV runs where a tainted compare preceded any tainted store.
    pub fsv_compare_first: u64,
}

/// One incremental-campaign-cache transaction: a checkpoint group
/// consulted against or written to the on-disk store. Emitted only when
/// a cache is attached, so cache-off traces are byte-compatible with
/// older readers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheEvent {
    /// Application name ("ftpd"/"sshd").
    pub app: String,
    /// Client name the group belongs to.
    pub client: String,
    /// What happened: "hit" (folded from cache), "miss" (no entry),
    /// "stale" (entry invalidated by a key/footprint change), "store"
    /// (fresh result written back), or "context-miss" (the whole
    /// per-client file was invalidated by a context change — golden
    /// behavior, client script, scheme or fault model).
    pub action: String,
    /// Group instruction address; `None` for whole-store events.
    pub addr: Option<u32>,
    /// Runs covered by this transaction.
    pub runs: u64,
}

/// One element of a telemetry trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Campaign header.
    Campaign(CampaignEvent),
    /// One injection run.
    Run(RunEvent),
    /// Campaign trailer.
    CampaignEnd(CampaignEndEvent),
    /// Random-campaign header.
    RandomCampaign(RandomCampaignEvent),
    /// Random-campaign committed checkpoint (boxed: the cumulative
    /// histograms dwarf every other variant).
    RandomBatch(Box<RandomBatchEvent>),
    /// Random-campaign trailer.
    RandomEnd(RandomEndEvent),
    /// One incremental-campaign-cache transaction.
    Cache(CacheEvent),
    /// One hierarchical-trace span.
    Span(SpanEvent),
    /// Per-campaign hot-spot profile (boxed: the block tallies dwarf
    /// every other variant).
    Profile(Box<ProfileEvent>),
    /// Per-campaign propagation aggregate.
    Propagation(PropagationEvent),
}

impl TraceEvent {
    fn tag(&self) -> &'static str {
        match self {
            TraceEvent::Campaign(_) => "campaign",
            TraceEvent::Run(_) => "run",
            TraceEvent::CampaignEnd(_) => "campaign_end",
            TraceEvent::RandomCampaign(_) => "random_campaign",
            TraceEvent::RandomBatch(_) => "random_batch",
            TraceEvent::RandomEnd(_) => "random_end",
            TraceEvent::Cache(_) => "cache",
            TraceEvent::Span(_) => "span",
            TraceEvent::Profile(_) => "profile",
            TraceEvent::Propagation(_) => "propagation",
        }
    }

    /// Encode as one compact JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let body = match self {
            TraceEvent::Campaign(e) => e.serialize(),
            TraceEvent::Run(e) => e.serialize(),
            TraceEvent::CampaignEnd(e) => e.serialize(),
            TraceEvent::RandomCampaign(e) => e.serialize(),
            TraceEvent::RandomBatch(e) => e.serialize(),
            TraceEvent::RandomEnd(e) => e.serialize(),
            TraceEvent::Cache(e) => e.serialize(),
            TraceEvent::Span(e) => e.serialize(),
            TraceEvent::Profile(e) => e.serialize(),
            TraceEvent::Propagation(e) => e.serialize(),
        };
        let mut fields = vec![("event".to_string(), Value::Str(self.tag().to_string()))];
        if let Value::Object(body_fields) = body {
            fields.extend(body_fields);
        }
        serde_json::to_string(&Value::Object(fields)).expect("events contain no non-finite floats")
    }

    /// Decode one JSON line.
    ///
    /// # Errors
    /// A message when the line is not JSON, lacks an `event` tag, or
    /// does not match the tagged schema.
    pub fn parse_line(line: &str) -> Result<TraceEvent, String> {
        let v: Value = serde_json::from_str(line).map_err(|e| format!("bad JSON: {e}"))?;
        let Value::Str(tag) = v.field("event") else {
            return Err("missing `event` tag".to_string());
        };
        match tag.as_str() {
            "campaign" => CampaignEvent::deserialize(&v)
                .map(TraceEvent::Campaign)
                .map_err(|e| format!("campaign event: {e}")),
            "run" => RunEvent::deserialize(&v)
                .map(TraceEvent::Run)
                .map_err(|e| format!("run event: {e}")),
            "campaign_end" => CampaignEndEvent::deserialize(&v)
                .map(TraceEvent::CampaignEnd)
                .map_err(|e| format!("campaign_end event: {e}")),
            "random_campaign" => RandomCampaignEvent::deserialize(&v)
                .map(TraceEvent::RandomCampaign)
                .map_err(|e| format!("random_campaign event: {e}")),
            "random_batch" => RandomBatchEvent::deserialize(&v)
                .map(|e| TraceEvent::RandomBatch(Box::new(e)))
                .map_err(|e| format!("random_batch event: {e}")),
            "random_end" => RandomEndEvent::deserialize(&v)
                .map(TraceEvent::RandomEnd)
                .map_err(|e| format!("random_end event: {e}")),
            "cache" => CacheEvent::deserialize(&v)
                .map(TraceEvent::Cache)
                .map_err(|e| format!("cache event: {e}")),
            "span" => SpanEvent::deserialize(&v)
                .map(TraceEvent::Span)
                .map_err(|e| format!("span event: {e}")),
            "profile" => ProfileEvent::deserialize(&v)
                .map(|e| TraceEvent::Profile(Box::new(e)))
                .map_err(|e| format!("profile event: {e}")),
            "propagation" => PropagationEvent::deserialize(&v)
                .map(TraceEvent::Propagation)
                .map_err(|e| format!("propagation event: {e}")),
            other => Err(format!("unknown event tag `{other}`")),
        }
    }
}

/// Destination for the event stream. Implementations must tolerate
/// concurrent emission from worker threads.
pub trait EventSink: Send + Sync {
    /// Does emitting to this sink do anything? Engines skip building
    /// events entirely when this is false.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event.
    fn emit(&self, ev: &TraceEvent);

    /// Record a batch under one lock acquisition where possible.
    /// Workers buffer per-group and flush through this.
    fn emit_batch(&self, evs: &[TraceEvent]) {
        for ev in evs {
            self.emit(ev);
        }
    }

    /// Push buffered output to its destination.
    fn flush(&self) {}
}

/// The zero-cost default sink: drops everything, reports disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&self, _ev: &TraceEvent) {}
}

/// Collects events in memory; the differential tests compare its
/// contents against the campaign result.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// New empty collector.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Copy of everything collected so far, in emission order.
    ///
    /// # Panics
    /// If a thread panicked while emitting (poisoned lock).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("no emitter panicked").clone()
    }
}

impl EventSink for MemorySink {
    fn emit(&self, ev: &TraceEvent) {
        self.events
            .lock()
            .expect("no emitter panicked")
            .push(ev.clone());
    }

    fn emit_batch(&self, evs: &[TraceEvent]) {
        self.events
            .lock()
            .expect("no emitter panicked")
            .extend_from_slice(evs);
    }
}

/// Streams events as JSON Lines to any writer (normally a file created
/// by the CLI's `--trace-out`).
pub struct JsonlSink {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Create (truncate) `path` and stream events into it.
    ///
    /// # Errors
    /// The underlying [`std::fs::File::create`] error.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        let f = std::fs::File::create(path)?;
        Ok(JsonlSink::from_writer(Box::new(f)))
    }

    /// Open `path` for appending (creating it if absent) and stream
    /// events onto its end — how a resumed random campaign continues
    /// the ledger it is picking up from.
    ///
    /// # Errors
    /// The underlying [`std::fs::OpenOptions`] error.
    pub fn append(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        let f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(JsonlSink::from_writer(Box::new(f)))
    }

    /// Stream events into an arbitrary writer.
    pub fn from_writer(w: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink {
            out: Mutex::new(BufWriter::new(w)),
        }
    }

    fn write_line(w: &mut BufWriter<Box<dyn Write + Send>>, ev: &TraceEvent) {
        // A full disk mid-campaign should not kill the experiment;
        // the stats replayer reports truncated streams instead.
        let _ = writeln!(w, "{}", ev.to_json_line());
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, ev: &TraceEvent) {
        let mut w = self.out.lock().expect("no emitter panicked");
        JsonlSink::write_line(&mut w, ev);
    }

    fn emit_batch(&self, evs: &[TraceEvent]) {
        let mut w = self.out.lock().expect("no emitter panicked");
        for ev in evs {
            JsonlSink::write_line(&mut w, ev);
        }
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("no emitter panicked").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Parse a JSONL event stream. Blank lines are skipped; the first
/// malformed line aborts with its line number.
///
/// # Errors
/// A message naming the offending line.
pub fn read_jsonl(r: impl BufRead) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", i + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        events.push(TraceEvent::parse_line(&line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(events)
}

/// [`read_jsonl`] over a file path.
///
/// # Errors
/// A message for unreadable files or malformed lines.
pub fn read_jsonl_path(path: impl AsRef<Path>) -> Result<Vec<TraceEvent>, String> {
    let path = path.as_ref();
    let f = std::fs::File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    read_jsonl(std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run() -> RunEvent {
        RunEvent {
            client: 0,
            addr: 0x0804_8012,
            byte_index: 1,
            bit: 6,
            outcome: "BRK".to_string(),
            location: 0,
            worker: 3,
            snapshot_replay: true,
            na_prefilter: false,
            cache_hit: false,
            icount: 48_211,
            micros: 412,
            crash_latency: None,
            transient_deviation: false,
            divergence_depth: None,
            trace_latency: None,
            taint_decision: None,
            taint_width: None,
            taint_compare_first: None,
        }
    }

    #[test]
    fn run_event_round_trips() {
        let ev = TraceEvent::Run(sample_run());
        let line = ev.to_json_line();
        assert!(line.starts_with("{\"event\":\"run\""), "{line}");
        assert_eq!(TraceEvent::parse_line(&line).unwrap(), ev);
        let ev = TraceEvent::Run(RunEvent {
            divergence_depth: Some(17),
            trace_latency: Some(23),
            crash_latency: Some(23),
            ..sample_run()
        });
        assert_eq!(TraceEvent::parse_line(&ev.to_json_line()).unwrap(), ev);
    }

    #[test]
    fn recorder_fields_are_optional_for_old_traces() {
        // A pre-recorder stream lacks the divergence fields entirely;
        // it must still parse, with both reported absent.
        let line = TraceEvent::Run(sample_run()).to_json_line();
        let stripped = line
            .replace(",\"divergence_depth\":null", "")
            .replace(",\"trace_latency\":null", "");
        assert_ne!(line, stripped, "fields should serialize as null");
        let parsed = TraceEvent::parse_line(&stripped).unwrap();
        assert_eq!(parsed, TraceEvent::Run(sample_run()));
    }

    #[test]
    fn campaign_events_round_trip() {
        let hdr = TraceEvent::Campaign(CampaignEvent {
            app: "ftpd".to_string(),
            scheme: "baseline x86".to_string(),
            mode: "snapshot".to_string(),
            instructions: 42,
            cond_branches: 27,
            runs_per_client: 1072,
            clients: vec!["Client1".to_string(), "Client2".to_string()],
            golden_denied: vec![true, false],
        });
        let end = TraceEvent::CampaignEnd(CampaignEndEvent {
            wall_micros: 1_000_000,
            replay_micros: 700_000,
            runs: 2144,
            ..CampaignEndEvent::default()
        });
        for ev in [hdr, end] {
            assert_eq!(TraceEvent::parse_line(&ev.to_json_line()).unwrap(), ev);
        }
    }

    #[test]
    fn random_events_round_trip() {
        let hdr = TraceEvent::RandomCampaign(RandomCampaignEvent {
            app: "ftpd".to_string(),
            scheme: "baseline x86".to_string(),
            mode: "snapshot".to_string(),
            client: "Client1".to_string(),
            seed: 2001,
            runs: 1_000_000,
            batch: 512,
            text_len: 4096,
            target_ci: None,
        });
        let mut hists = OutcomeHists::default();
        hists.no_effect.record(30_000);
        hists.brk.record(41_000);
        let batch = TraceEvent::RandomBatch(Box::new(RandomBatchEvent {
            start: 512,
            end: 1024,
            no_effect: 1020,
            sd: 2,
            fsv: 1,
            brk: 1,
            hists,
        }));
        let end = TraceEvent::RandomEnd(RandomEndEvent {
            runs: 1_000_000,
            no_effect: 999_000,
            sd: 800,
            fsv: 100,
            brk: 100,
            wall_micros: 55_000_000,
            violation_rate: 1e-4,
            wilson_low: 8.2e-5,
            wilson_high: 1.2e-4,
            cp_low: 8.1e-5,
            cp_high: 1.2e-4,
        });
        for ev in [hdr, batch, end] {
            let line = ev.to_json_line();
            assert_eq!(TraceEvent::parse_line(&line).unwrap(), ev, "{line}");
        }
        // An adaptive campaign's header carries the requested width.
        let hdr = TraceEvent::RandomCampaign(RandomCampaignEvent {
            target_ci: Some(0.0005),
            app: "sshd".to_string(),
            scheme: "baseline x86".to_string(),
            mode: "from-scratch".to_string(),
            client: "Client1".to_string(),
            seed: 7,
            runs: 10_000_000,
            batch: 256,
            text_len: 2048,
        });
        assert_eq!(TraceEvent::parse_line(&hdr.to_json_line()).unwrap(), hdr);
    }

    #[test]
    fn span_events_round_trip() {
        let ev = TraceEvent::Span(SpanEvent {
            name: "group".to_string(),
            cat: "group".to_string(),
            tid: 3,
            ts: 1200,
            dur: 450,
            addr: Some(0x0804_915e),
        });
        let line = ev.to_json_line();
        assert!(line.starts_with("{\"event\":\"span\""), "{line}");
        assert_eq!(TraceEvent::parse_line(&line).unwrap(), ev);
        // Phase spans carry no address.
        let ev = TraceEvent::Span(SpanEvent {
            name: "replay".to_string(),
            cat: "phase".to_string(),
            tid: 0,
            ts: 0,
            dur: 0,
            addr: None,
        });
        assert_eq!(TraceEvent::parse_line(&ev.to_json_line()).unwrap(), ev);
    }

    #[test]
    fn profile_events_round_trip() {
        use crate::hotspot::{HotBlock, SlowShape};
        let ev = TraceEvent::Profile(Box::new(ProfileEvent {
            app: "ftpd".to_string(),
            mode: "snapshot".to_string(),
            data: ProfileData {
                blocks: vec![HotBlock {
                    addr: 0x0804_9000,
                    dispatches: 12_000,
                    retired: 96_000,
                }],
                slow: vec![SlowShape {
                    addr: 0x0804_9123,
                    shape: "shl32 r32, imm".to_string(),
                    count: 77,
                }],
                stepwise_retired: 431,
                cache_built: 96,
                cache_hits: 11_904,
                cache_invalidated: 12,
                hot_traces: vec![HotBlock {
                    addr: 0x0804_9000,
                    dispatches: 9_000,
                    retired: 81_000,
                }],
                trace_built: 3,
                trace_hits: 9_000,
                trace_side_exits: 41,
                ..ProfileData::default()
            },
        }));
        let line = ev.to_json_line();
        assert!(line.starts_with("{\"event\":\"profile\""), "{line}");
        assert_eq!(TraceEvent::parse_line(&line).unwrap(), ev);
    }

    #[test]
    fn propagation_events_round_trip() {
        let ev = TraceEvent::Propagation(PropagationEvent {
            app: "ftpd".to_string(),
            mode: "snapshot".to_string(),
            seeded: 812,
            reached_decision: 790,
            compare_first: 611,
            deaths: 102,
            frozen: 3,
            fsv_seeded: 41,
            fsv_reached_decision: 40,
            fsv_compare_first: 37,
        });
        let line = ev.to_json_line();
        assert!(line.starts_with("{\"event\":\"propagation\""), "{line}");
        assert_eq!(TraceEvent::parse_line(&line).unwrap(), ev);
    }

    #[test]
    fn taint_fields_are_optional_for_old_traces() {
        // A propagation-off stream lacks the taint fields entirely; it
        // must still parse, with all three reported absent.
        let line = TraceEvent::Run(sample_run()).to_json_line();
        let stripped = line
            .replace(",\"taint_decision\":null", "")
            .replace(",\"taint_width\":null", "")
            .replace(",\"taint_compare_first\":null", "");
        assert_ne!(line, stripped, "fields should serialize as null");
        let parsed = TraceEvent::parse_line(&stripped).unwrap();
        assert_eq!(parsed, TraceEvent::Run(sample_run()));
        // And a propagation trace carries them through.
        let ev = TraceEvent::Run(RunEvent {
            taint_decision: Some(12),
            taint_width: Some(6),
            taint_compare_first: Some(true),
            ..sample_run()
        });
        assert_eq!(TraceEvent::parse_line(&ev.to_json_line()).unwrap(), ev);
    }

    #[test]
    fn append_sink_extends_an_existing_ledger() {
        let dir = std::env::temp_dir().join(format!("fisec-append-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.jsonl");
        let a = TraceEvent::CampaignEnd(CampaignEndEvent {
            runs: 1,
            ..CampaignEndEvent::default()
        });
        let b = TraceEvent::CampaignEnd(CampaignEndEvent {
            runs: 2,
            ..CampaignEndEvent::default()
        });
        let sink = JsonlSink::create(&path).unwrap();
        sink.emit(&a);
        drop(sink);
        let sink = JsonlSink::append(&path).unwrap();
        sink.emit(&b);
        drop(sink);
        assert_eq!(read_jsonl_path(&path).unwrap(), vec![a, b]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TraceEvent::parse_line("not json").is_err());
        assert!(TraceEvent::parse_line("{\"no\":\"tag\"}").is_err());
        assert!(TraceEvent::parse_line("{\"event\":\"martian\"}").is_err());
        let err = TraceEvent::parse_line("{\"event\":\"run\",\"client\":0}").unwrap_err();
        assert!(err.contains("run event"), "{err}");
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let sink = MemorySink::new();
        let a = TraceEvent::Run(sample_run());
        let b = TraceEvent::CampaignEnd(CampaignEndEvent::default());
        sink.emit(&a);
        sink.emit_batch(std::slice::from_ref(&b));
        assert_eq!(sink.events(), vec![a, b]);
    }

    #[test]
    fn jsonl_sink_round_trips_through_reader() {
        // Write through a JsonlSink into a shared buffer, then parse.
        #[derive(Clone, Default)]
        struct Shared(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Shared::default();
        let sink = JsonlSink::from_writer(Box::new(buf.clone()));
        let ev = TraceEvent::Run(sample_run());
        sink.emit(&ev);
        sink.emit_batch(&[ev.clone(), ev.clone()]);
        sink.flush();
        let bytes = buf.0.lock().unwrap().clone();
        let got = read_jsonl(&bytes[..]).unwrap();
        assert_eq!(got, vec![ev.clone(), ev.clone(), ev]);
    }

    #[test]
    fn read_jsonl_skips_blanks_and_reports_line_numbers() {
        let ok = "\n{\"event\":\"campaign_end\",\"wall_micros\":1,\"boot_micros\":0,\
                  \"snapshot_micros\":0,\"replay_micros\":0,\"classify_micros\":0,\
                  \"reassemble_micros\":0,\"runs\":0,\"na_prefilter_runs\":0,\
                  \"restores\":0,\"fresh_boots\":0}\n\n";
        assert_eq!(read_jsonl(ok.as_bytes()).unwrap().len(), 1);
        let err = read_jsonl("{}\n".as_bytes()).unwrap_err();
        assert!(err.starts_with("line 1"), "{err}");
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
        NullSink.emit(&TraceEvent::CampaignEnd(CampaignEndEvent::default()));
    }
}
