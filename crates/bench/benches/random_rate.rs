//! Regenerates the paper's §7 estimate — "about one out of 3,000
//! single-bit errors causes security violation" under massive random
//! injection with the server under constant attack — through the
//! streaming sharded campaign engine, reports the violation rate with
//! its 95% confidence intervals and the sustained runs/second, and
//! benchmarks one latent-error session under each execution engine.

use criterion::{criterion_group, criterion_main, Criterion};
use fisec_apps::AppSpec;
use fisec_core::random::{render_report, run_random_streaming, RandomConfig};
use fisec_inject::{golden_run, EngineOpts, LatentError, LatentRunner};
use fisec_telemetry::Telemetry;
use std::time::Instant;

fn bench(c: &mut Criterion) {
    let ftpd = AppSpec::ftpd();
    let runs = if fisec_bench::quick_mode() {
        300
    } else {
        10_000
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let cfg = RandomConfig {
        runs,
        seed: 2001,
        threads,
        ..RandomConfig::default()
    };
    let start = Instant::now();
    let stats = run_random_streaming(&ftpd, &cfg, &Telemetry::disabled()).unwrap();
    let secs = start.elapsed().as_secs_f64();
    println!("\n== §7: random single-bit errors, server under constant attack ==");
    print!("{}", render_report(&stats));
    println!(
        "throughput: {:.0} runs/s on {threads} threads ({runs} runs in {secs:.2}s)",
        runs as f64 / secs
    );
    match stats.result.errors_per_breakin() {
        Some(n) => println!(
            "=> about one out of {n:.0} single-bit errors causes a security violation\n\
             (the paper reports ~1/3000 on a full-size wu-ftpd text segment; our\n\
             text segment is ~30x smaller and ~30% auth code, so a higher rate\n\
             is expected — see EXPERIMENTS.md)"
        ),
        None => println!("=> no break-in in this sample"),
    }

    let spec = &ftpd.clients[0];
    let golden = golden_run(&ftpd.image, spec).unwrap();
    let err = LatentError {
        offset: 100,
        corrupted: ftpd.image.text[100] ^ (1 << 3),
    };

    let mut snap = LatentRunner::snapshot(&ftpd.image, spec, &golden, EngineOpts::default())
        .expect("image loads");
    c.bench_function("latent_error_session/ftpd_client1_snapshot", |b| {
        b.iter(|| snap.run(&golden, std::hint::black_box(err)))
    });

    let mut scratch = LatentRunner::from_scratch(&ftpd.image, spec, &golden, EngineOpts::default());
    c.bench_function("latent_error_session/ftpd_client1_from_scratch", |b| {
        b.iter(|| scratch.run(&golden, std::hint::black_box(err)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
