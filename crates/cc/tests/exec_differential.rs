//! Differential testing of the whole stack: generate random mini-C
//! expressions, evaluate them with a reference interpreter in Rust (C
//! semantics: wrapping i32 arithmetic, arithmetic right shift), compile
//! them with fisec-cc, execute on the fisec-x86 machine, and compare.
//!
//! A pass here certifies the lexer, parser, code generator, assembler,
//! encoder, decoder, interpreter and flag semantics agree end to end.

use fisec_cc::build_image;
use fisec_x86::{Machine, Memory, Perms, Reg32, Region, RunOutcome};
use proptest::prelude::*;

/// Reference AST mirroring the generated source text.
#[derive(Debug, Clone)]
enum E {
    Num(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Rem(Box<E>, Box<E>),
    Shl(Box<E>, u8),
    Shr(Box<E>, u8),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Neg(Box<E>),
    BitNot(Box<E>),
    Not(Box<E>),
    Eq(Box<E>, Box<E>),
    Ne(Box<E>, Box<E>),
    Lt(Box<E>, Box<E>),
    Le(Box<E>, Box<E>),
    Gt(Box<E>, Box<E>),
    Ge(Box<E>, Box<E>),
    LAnd(Box<E>, Box<E>),
    LOr(Box<E>, Box<E>),
}

impl E {
    fn eval(&self) -> i32 {
        match self {
            E::Num(n) => *n,
            E::Add(a, b) => a.eval().wrapping_add(b.eval()),
            E::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            E::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
            E::Div(a, b) => {
                let (x, y) = (a.eval(), b.eval());
                if y == 0 || (x == i32::MIN && y == -1) {
                    0 // generator avoids these; defensive
                } else {
                    x.wrapping_div(y)
                }
            }
            E::Rem(a, b) => {
                let (x, y) = (a.eval(), b.eval());
                if y == 0 || (x == i32::MIN && y == -1) {
                    0
                } else {
                    x.wrapping_rem(y)
                }
            }
            E::Shl(a, n) => a.eval().wrapping_shl(u32::from(*n)),
            E::Shr(a, n) => a.eval().wrapping_shr(u32::from(*n)),
            E::And(a, b) => a.eval() & b.eval(),
            E::Or(a, b) => a.eval() | b.eval(),
            E::Xor(a, b) => a.eval() ^ b.eval(),
            E::Neg(a) => a.eval().wrapping_neg(),
            E::BitNot(a) => !a.eval(),
            E::Not(a) => i32::from(a.eval() == 0),
            E::Eq(a, b) => i32::from(a.eval() == b.eval()),
            E::Ne(a, b) => i32::from(a.eval() != b.eval()),
            E::Lt(a, b) => i32::from(a.eval() < b.eval()),
            E::Le(a, b) => i32::from(a.eval() <= b.eval()),
            E::Gt(a, b) => i32::from(a.eval() > b.eval()),
            E::Ge(a, b) => i32::from(a.eval() >= b.eval()),
            E::LAnd(a, b) => i32::from(a.eval() != 0 && b.eval() != 0),
            E::LOr(a, b) => i32::from(a.eval() != 0 || b.eval() != 0),
        }
    }

    fn to_c(&self) -> String {
        match self {
            E::Num(n) => {
                // Negative literals need parentheses so `-(-1)` does not
                // lex as `--`; INT_MIN cannot appear as a literal at all.
                if *n == i32::MIN {
                    format!("({} - 1)", i32::MIN + 1)
                } else if *n < 0 {
                    format!("({n})")
                } else {
                    format!("{n}")
                }
            }
            E::Add(a, b) => format!("({} + {})", a.to_c(), b.to_c()),
            E::Sub(a, b) => format!("({} - {})", a.to_c(), b.to_c()),
            E::Mul(a, b) => format!("({} * {})", a.to_c(), b.to_c()),
            E::Div(a, b) => format!("({} / {})", a.to_c(), b.to_c()),
            E::Rem(a, b) => format!("({} % {})", a.to_c(), b.to_c()),
            E::Shl(a, n) => format!("({} << {n})", a.to_c()),
            E::Shr(a, n) => format!("({} >> {n})", a.to_c()),
            E::And(a, b) => format!("({} & {})", a.to_c(), b.to_c()),
            E::Or(a, b) => format!("({} | {})", a.to_c(), b.to_c()),
            E::Xor(a, b) => format!("({} ^ {})", a.to_c(), b.to_c()),
            E::Neg(a) => format!("(-{})", a.to_c()),
            E::BitNot(a) => format!("(~{})", a.to_c()),
            E::Not(a) => format!("(!{})", a.to_c()),
            E::Eq(a, b) => format!("({} == {})", a.to_c(), b.to_c()),
            E::Ne(a, b) => format!("({} != {})", a.to_c(), b.to_c()),
            E::Lt(a, b) => format!("({} < {})", a.to_c(), b.to_c()),
            E::Le(a, b) => format!("({} <= {})", a.to_c(), b.to_c()),
            E::Gt(a, b) => format!("({} > {})", a.to_c(), b.to_c()),
            E::Ge(a, b) => format!("({} >= {})", a.to_c(), b.to_c()),
            E::LAnd(a, b) => format!("({} && {})", a.to_c(), b.to_c()),
            E::LOr(a, b) => format!("({} || {})", a.to_c(), b.to_c()),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = (-1000i32..1000).prop_map(E::Num);
    leaf.prop_recursive(4, 48, 3, |inner| {
        // Division/remainder right operands come from a nonzero literal
        // range so C UB (div by zero, INT_MIN/-1) never arises.
        let nonzero = prop_oneof![(1i32..500).prop_map(E::Num), (-500i32..-1).prop_map(E::Num)];
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(a.into(), b.into())),
            (inner.clone(), nonzero.clone()).prop_map(|(a, b)| E::Div(a.into(), b.into())),
            (inner.clone(), nonzero).prop_map(|(a, b)| E::Rem(a.into(), b.into())),
            (inner.clone(), 0u8..16).prop_map(|(a, n)| E::Shl(a.into(), n)),
            (inner.clone(), 0u8..16).prop_map(|(a, n)| E::Shr(a.into(), n)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::And(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Or(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(a.into(), b.into())),
            inner.clone().prop_map(|a| E::Neg(a.into())),
            inner.clone().prop_map(|a| E::BitNot(a.into())),
            inner.clone().prop_map(|a| E::Not(a.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Eq(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Ne(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Lt(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Le(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Gt(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Ge(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::LAnd(a.into(), b.into())),
            (inner, inner_clone_hack()).prop_map(|(a, b)| E::LOr(a.into(), b.into())),
        ]
    })
}

// proptest's prop_recursive closure consumes `inner` by move in the last
// arm; produce an independent small expression instead.
fn inner_clone_hack() -> impl Strategy<Value = E> {
    (-50i32..50).prop_map(E::Num)
}

/// Compile `int main() { return expr; }` and run it to the exit syscall.
fn run_main(src: &str) -> i32 {
    let image = build_image(&[src]).expect("compiles");
    let mut mem = Memory::new();
    mem.map(Region::with_data(
        "text",
        image.text_base,
        image.text.clone(),
        Perms::RX,
    ))
    .unwrap();
    if !image.data.is_empty() {
        mem.map(Region::with_data(
            "data",
            image.data_base,
            image.data.clone(),
            Perms::RW,
        ))
        .unwrap();
    }
    mem.map(Region::zeroed("stack", 0xBFFE_0000, 0x2_0000, Perms::RW))
        .unwrap();
    let mut m = Machine::new(mem);
    m.cpu.eip = image.func("_start").unwrap().start;
    m.cpu.regs[Reg32::Esp as usize] = 0xBFFF_FFF0;
    match m.run_until_event(5_000_000) {
        RunOutcome::Syscall(0x80) => {
            assert_eq!(m.cpu.regs[0], 1, "expected exit syscall");
            m.cpu.regs[3] as i32
        }
        other => panic!("program did not exit cleanly: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compiled arithmetic agrees with the C-semantics reference.
    #[test]
    fn compiled_expression_matches_reference(e in arb_expr()) {
        let expected = e.eval();
        let src = format!("int main() {{ return {}; }}", e.to_c());
        let got = run_main(&src);
        prop_assert_eq!(got, expected, "source: {}", src);
    }

    /// The same expression routed through an `if` produces consistent
    /// branch decisions (exercises gen_branch vs. value semantics).
    #[test]
    fn branch_and_value_semantics_agree(e in arb_expr()) {
        let expected = i32::from(e.eval() != 0);
        let src = format!(
            "int main() {{ if ({}) {{ return 1; }} return 0; }}",
            e.to_c()
        );
        let got = run_main(&src);
        prop_assert_eq!(got, expected, "source: {}", src);
    }
}
