//! Regenerate the paper's full evaluation: Tables 1, 2, 3, 4, 5, Figure 4,
//! the §7 random-injection estimate and the §5.4 load study.
//!
//! ```text
//! cargo run --release --example campaign_report [--quick] [--from-scratch] [--no-block-cache]
//! ```
//!
//! `--quick` shrinks the random studies so the whole report finishes in
//! well under a minute. `--from-scratch` runs the campaigns on the
//! one-boot-per-experiment reference oracle instead of the default
//! checkpoint-based engine; `--no-block-cache` disables the
//! interpreter's basic-block engine. Both switches produce identical
//! results, only slower — see the "Campaign runtime" section of
//! EXPERIMENTS.md.

use fisec_apps::AppSpec;
use fisec_core::{
    figure4, load, random, run_campaign, tables, CampaignConfig, CampaignSummary, EncodingScheme,
    ExecutionMode,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mode = if std::env::args().any(|a| a == "--from-scratch") {
        ExecutionMode::FromScratch
    } else {
        ExecutionMode::Snapshot
    };
    let random_runs = if quick { 300 } else { 3000 };
    let load_samples = if quick { 40 } else { 200 };

    let ftpd = AppSpec::ftpd();
    let sshd = AppSpec::sshd();

    println!("== Injection targets ==");
    for app in [&ftpd, &sshd] {
        let set = fisec_inject::enumerate_targets(&app.image, &app.auth_funcs, false);
        println!(
            "{}: {} control-transfer instructions ({} conditional branches), {} bits => {} runs/client; auth section = {:.1}% of text",
            app.name,
            set.instructions,
            set.cond_branches,
            set.runs(),
            set.runs(),
            app.image.text_fraction(&app.auth_funcs) * 100.0
        );
    }

    let base_cfg = CampaignConfig {
        mode,
        block_cache: !std::env::args().any(|a| a == "--no-block-cache"),
        ..CampaignConfig::default()
    };
    let new_cfg = CampaignConfig {
        scheme: EncodingScheme::NewEncoding,
        ..base_cfg
    };

    eprintln!("running baseline campaigns...");
    let ftp_base = run_campaign(&ftpd, &base_cfg);
    let ssh_base = run_campaign(&sshd, &base_cfg);

    println!("\n== Table 1: FTP and SSH Result Distributions ==");
    println!("{}", tables::render_table1(&[&ftp_base, &ssh_base]));

    println!("== Table 2: Error Location Abbreviations ==");
    println!("{}", tables::render_table2());

    println!("== Table 3: Break-ins and Fail Silence Violations by Location ==");
    println!("{}", tables::render_table3(&[&ftp_base, &ssh_base]));

    println!("== Table 4: Conditional Branch Encoding Mapping ==");
    println!("{}", fisec_encoding::render_table4());

    eprintln!("running new-encoding campaigns...");
    let ftp_new = run_campaign(&ftpd, &new_cfg);
    let ssh_new = run_campaign(&sshd, &new_cfg);

    println!("== Table 5: FTP and SSH Results from New Encoding ==");
    println!(
        "{}",
        tables::render_table5(&[&ftp_base, &ssh_base], &[&ftp_new, &ssh_new])
    );

    println!("== Figure 4: Instructions between Error and Crash (FTP Client1) ==");
    let lat = &ftp_base.clients[0].crash_latencies;
    let hist = figure4::histogram(lat);
    println!("{}", figure4::render(&hist));
    let transient = ftp_base.clients[0].transient_deviations;
    println!(
        "crashes with pre-crash traffic deviation (transient vulnerability window): {} of {}\n",
        transient,
        lat.len()
    );

    eprintln!("running random-injection campaign ({random_runs} errors)...");
    println!("== §7: Random single-bit errors over the whole text segment ==");
    let r = random::run_random_campaign(&ftpd, random_runs, 2001);
    println!(
        "runs {}  no-effect {}  SD {}  FSV {}  BRK {}",
        r.runs, r.no_effect, r.sd, r.fsv, r.brk
    );
    match r.errors_per_breakin() {
        Some(n) => {
            println!("=> about one out of {n:.0} single-bit errors causes a security violation\n")
        }
        None => println!("=> no break-in in this sample\n"),
    }

    eprintln!("running load/diversity study ({load_samples} samples)...");
    println!("== §5.4: Latent-error manifestation vs. client diversity ==");
    let l = load::run_load_study(&ftpd, load_samples, 77);
    println!("{}", load::render(&l));

    // Machine-readable snapshot for EXPERIMENTS.md regression comparison.
    println!("== JSON summaries ==");
    for c in [&ftp_base, &ssh_base, &ftp_new, &ssh_new] {
        println!("{}", CampaignSummary::from(c).to_json());
    }
}
