//! Statement-level differential testing: generate random mini-C
//! *programs* (assignments, `if`/`else`, bounded `for` loops over four
//! variables), run them against a reference interpreter with C
//! semantics, and compare with the compiled execution on the simulator.

use fisec_cc::build_image;
use fisec_x86::{Machine, Memory, Perms, Reg32, Region, RunOutcome};
use proptest::prelude::*;

const NVARS: usize = 4;

#[derive(Debug, Clone)]
enum PExpr {
    Const(i32),
    Var(usize),
    Add(Box<PExpr>, Box<PExpr>),
    Sub(Box<PExpr>, Box<PExpr>),
    Mul(Box<PExpr>, Box<PExpr>),
    Xor(Box<PExpr>, Box<PExpr>),
    And(Box<PExpr>, Box<PExpr>),
    Or(Box<PExpr>, Box<PExpr>),
    Shl(Box<PExpr>, u8),
    Sar(Box<PExpr>, u8),
    Lt(Box<PExpr>, Box<PExpr>),
    Eq(Box<PExpr>, Box<PExpr>),
}

impl PExpr {
    fn eval(&self, v: &[i32; NVARS]) -> i32 {
        match self {
            PExpr::Const(c) => *c,
            PExpr::Var(i) => v[*i],
            PExpr::Add(a, b) => a.eval(v).wrapping_add(b.eval(v)),
            PExpr::Sub(a, b) => a.eval(v).wrapping_sub(b.eval(v)),
            PExpr::Mul(a, b) => a.eval(v).wrapping_mul(b.eval(v)),
            PExpr::Xor(a, b) => a.eval(v) ^ b.eval(v),
            PExpr::And(a, b) => a.eval(v) & b.eval(v),
            PExpr::Or(a, b) => a.eval(v) | b.eval(v),
            PExpr::Shl(a, n) => a.eval(v).wrapping_shl(u32::from(*n)),
            PExpr::Sar(a, n) => a.eval(v).wrapping_shr(u32::from(*n)),
            PExpr::Lt(a, b) => i32::from(a.eval(v) < b.eval(v)),
            PExpr::Eq(a, b) => i32::from(a.eval(v) == b.eval(v)),
        }
    }

    fn to_c(&self) -> String {
        let paren = |n: i32| {
            if n < 0 {
                format!("({n})")
            } else {
                format!("{n}")
            }
        };
        match self {
            PExpr::Const(c) => paren(*c),
            PExpr::Var(i) => format!("v{i}"),
            PExpr::Add(a, b) => format!("({} + {})", a.to_c(), b.to_c()),
            PExpr::Sub(a, b) => format!("({} - {})", a.to_c(), b.to_c()),
            PExpr::Mul(a, b) => format!("({} * {})", a.to_c(), b.to_c()),
            PExpr::Xor(a, b) => format!("({} ^ {})", a.to_c(), b.to_c()),
            PExpr::And(a, b) => format!("({} & {})", a.to_c(), b.to_c()),
            PExpr::Or(a, b) => format!("({} | {})", a.to_c(), b.to_c()),
            PExpr::Shl(a, n) => format!("({} << {n})", a.to_c()),
            PExpr::Sar(a, n) => format!("({} >> {n})", a.to_c()),
            PExpr::Lt(a, b) => format!("({} < {})", a.to_c(), b.to_c()),
            PExpr::Eq(a, b) => format!("({} == {})", a.to_c(), b.to_c()),
        }
    }
}

#[derive(Debug, Clone)]
enum PStmt {
    Assign(usize, PExpr),
    If(PExpr, Vec<PStmt>, Vec<PStmt>),
    /// `for (tD = 0; tD < n; tD++) body` — D is the nesting depth, so the
    /// counter cannot be assigned by the body (vars are v0..v3 only).
    For(u8, Vec<PStmt>),
}

impl PStmt {
    fn eval(&self, v: &mut [i32; NVARS]) {
        match self {
            PStmt::Assign(i, e) => v[*i] = e.eval(v),
            PStmt::If(c, t, e) => {
                let branch = if c.eval(v) != 0 { t } else { e };
                for s in branch {
                    s.eval(v);
                }
            }
            PStmt::For(n, body) => {
                for _ in 0..*n {
                    for s in body {
                        s.eval(v);
                    }
                }
            }
        }
    }

    fn to_c(&self, depth: usize, out: &mut String) {
        let pad = "    ".repeat(depth + 1);
        match self {
            PStmt::Assign(i, e) => {
                out.push_str(&format!("{pad}v{i} = {};\n", e.to_c()));
            }
            PStmt::If(c, t, e) => {
                out.push_str(&format!("{pad}if ({}) {{\n", c.to_c()));
                for s in t {
                    s.to_c(depth + 1, out);
                }
                if e.is_empty() {
                    out.push_str(&format!("{pad}}}\n"));
                } else {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    for s in e {
                        s.to_c(depth + 1, out);
                    }
                    out.push_str(&format!("{pad}}}\n"));
                }
            }
            PStmt::For(n, body) => {
                out.push_str(&format!(
                    "{pad}for (t{depth} = 0; t{depth} < {n}; t{depth}++) {{\n"
                ));
                for s in body {
                    s.to_c(depth + 1, out);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

fn program_to_c(stmts: &[PStmt], init: &[i32; NVARS]) -> String {
    let mut src = String::from("int main() {\n");
    for i in 0..NVARS {
        src.push_str(&format!("    int v{i};\n"));
    }
    for d in 0..6 {
        src.push_str(&format!("    int t{d};\n"));
    }
    for (i, val) in init.iter().enumerate() {
        let v = if *val < 0 {
            format!("({val})")
        } else {
            format!("{val}")
        };
        src.push_str(&format!("    v{i} = {v};\n"));
    }
    let mut body = String::new();
    for s in stmts {
        s.to_c(0, &mut body);
    }
    src.push_str(&body);
    src.push_str("    return (v0 ^ v1) + (v2 ^ v3);\n}\n");
    src
}

fn reference_result(stmts: &[PStmt], init: &[i32; NVARS]) -> i32 {
    let mut v = *init;
    for s in stmts {
        s.eval(&mut v);
    }
    (v[0] ^ v[1]).wrapping_add(v[2] ^ v[3])
}

fn arb_pexpr() -> impl Strategy<Value = PExpr> {
    let leaf = prop_oneof![
        (-200i32..200).prop_map(PExpr::Const),
        (0usize..NVARS).prop_map(PExpr::Var),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| PExpr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| PExpr::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| PExpr::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| PExpr::Xor(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| PExpr::And(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| PExpr::Or(a.into(), b.into())),
            (inner.clone(), 0u8..12).prop_map(|(a, n)| PExpr::Shl(a.into(), n)),
            (inner.clone(), 0u8..12).prop_map(|(a, n)| PExpr::Sar(a.into(), n)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| PExpr::Lt(a.into(), b.into())),
            (inner.clone(), inner).prop_map(|(a, b)| PExpr::Eq(a.into(), b.into())),
        ]
    })
}

fn arb_stmts(depth: u32) -> BoxedStrategy<Vec<PStmt>> {
    let assign = (0usize..NVARS, arb_pexpr()).prop_map(|(i, e)| PStmt::Assign(i, e));
    if depth == 0 {
        proptest::collection::vec(assign, 0..4).boxed()
    } else {
        let stmt = prop_oneof![
            3 => (0usize..NVARS, arb_pexpr()).prop_map(|(i, e)| PStmt::Assign(i, e)),
            1 => (arb_pexpr(), arb_stmts(depth - 1), arb_stmts(depth - 1))
                .prop_map(|(c, t, e)| PStmt::If(c, t, e)),
            1 => (1u8..5, arb_stmts(depth - 1)).prop_map(|(n, b)| PStmt::For(n, b)),
        ];
        proptest::collection::vec(stmt, 0..5).boxed()
    }
}

fn run_compiled(src: &str) -> i32 {
    let image = build_image(&[src]).expect("compiles");
    let mut mem = Memory::new();
    mem.map(Region::with_data(
        "text",
        image.text_base,
        image.text.clone(),
        Perms::RX,
    ))
    .unwrap();
    if !image.data.is_empty() {
        mem.map(Region::with_data(
            "data",
            image.data_base,
            image.data.clone(),
            Perms::RW,
        ))
        .unwrap();
    }
    mem.map(Region::zeroed("stack", 0xBFFE_0000, 0x2_0000, Perms::RW))
        .unwrap();
    let mut m = Machine::new(mem);
    m.cpu.eip = image.func("_start").unwrap().start;
    m.cpu.regs[Reg32::Esp as usize] = 0xBFFF_FFF0;
    match m.run_until_event(20_000_000) {
        RunOutcome::Syscall(0x80) => m.cpu.regs[3] as i32,
        other => panic!("no clean exit: {other:?}\n{src}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whole random programs agree with the reference interpreter. The
    /// nesting exercises codegen's scope handling, branch generation,
    /// loop labels and expression stack discipline together.
    #[test]
    fn compiled_program_matches_reference(
        init in proptest::array::uniform4(-100i32..100),
        stmts in arb_stmts(2),
    ) {
        let expected = reference_result(&stmts, &init);
        let src = program_to_c(&stmts, &init);
        let got = run_compiled(&src);
        prop_assert_eq!(got, expected, "program:\n{}", src);
    }
}

/// A handful of pinned regression programs from earlier shrink outputs
/// and interesting shapes.
#[test]
fn pinned_programs() {
    let cases: Vec<(Vec<PStmt>, [i32; NVARS])> = vec![
        // Nested loop accumulation.
        (
            vec![PStmt::For(
                4,
                vec![PStmt::For(
                    3,
                    vec![PStmt::Assign(
                        0,
                        PExpr::Add(Box::new(PExpr::Var(0)), Box::new(PExpr::Const(1))),
                    )],
                )],
            )],
            [0, 0, 0, 0],
        ),
        // Branch on overflowing multiply.
        (
            vec![
                PStmt::Assign(
                    1,
                    PExpr::Mul(Box::new(PExpr::Const(100_000)), Box::new(PExpr::Var(0))),
                ),
                PStmt::If(
                    PExpr::Lt(Box::new(PExpr::Var(1)), Box::new(PExpr::Const(0))),
                    vec![PStmt::Assign(2, PExpr::Const(7))],
                    vec![PStmt::Assign(3, PExpr::Const(9))],
                ),
            ],
            [90_000, 0, 0, 0],
        ),
        // Shift chains.
        (
            vec![PStmt::Assign(
                0,
                PExpr::Sar(Box::new(PExpr::Shl(Box::new(PExpr::Var(0)), 11)), 3),
            )],
            [-5, 1, 2, 3],
        ),
    ];
    for (stmts, init) in cases {
        let expected = reference_result(&stmts, &init);
        let src = program_to_c(&stmts, &init);
        assert_eq!(run_compiled(&src), expected, "{src}");
    }
}
