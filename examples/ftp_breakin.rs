//! Reproduce the paper's §3.2 Example 1: a single-bit error in the
//! `pass()` function of the ftpd-like server lets a client with a wrong
//! password log in and retrieve the protected file.
//!
//! We enumerate the conditional branches of `pass()`, flip each opcode
//! bit in turn (a breakpoint-triggered injection, as NFTAPE did), and
//! report which flips hand FTP Client1 (valid user, wrong password) the
//! secret file.
//!
//! ```text
//! cargo run --release --example ftp_breakin
//! ```

use fisec_apps::AppSpec;
use fisec_encoding::EncodingScheme;
use fisec_inject::{enumerate_targets, golden_run, run_injection, OutcomeClass};

fn main() {
    let app = AppSpec::ftpd();
    let client1 = &app.clients[0];
    let golden = golden_run(&app.image, client1).expect("golden run");
    println!(
        "golden run: Client1 (user alice, wrong password) -> {:?}, server {}",
        golden.client, golden.stop
    );
    assert_eq!(golden.client, fisec_net::ClientStatus::Denied);

    // All opcode bits of the conditional branches inside pass().
    let set = enumerate_targets(&app.image, &["pass"], true);
    let opcode_bits: Vec<_> = set
        .targets
        .iter()
        .filter(|t| t.byte_index == 0 || (t.first_byte == 0x0F && t.byte_index == 1))
        .collect();
    println!(
        "\npass() has {} conditional branches; probing {} opcode bits under the stock encoding\n",
        set.cond_branches,
        opcode_bits.len()
    );

    let mut breakins = Vec::new();
    for t in &opcode_bits {
        let r =
            run_injection(&app.image, client1, &golden, t, EncodingScheme::Baseline).expect("run");
        if r.outcome == OutcomeClass::Breakin {
            breakins.push((**t, r));
        }
    }

    println!("BREAK-INS ({} found):", breakins.len());
    for (t, r) in &breakins {
        // Disassemble the victim instruction before and after the flip.
        let off = (t.addr - app.image.text_base) as usize;
        let before = fisec_x86::decode(&app.image.text[off..off + 8]);
        let mut bytes = app.image.text[off..off + 8].to_vec();
        bytes[t.byte_index as usize] ^= 1 << t.bit;
        let after = fisec_x86::decode(&bytes);
        println!(
            "  {:#010x}: {before}  --bit {} of byte {}-->  {after}   [client: {:?}, server: {}]",
            t.addr, t.bit, t.byte_index, r.client, r.stop
        );
    }
    assert!(
        !breakins.is_empty(),
        "expected at least one je/jne-style break-in in pass()"
    );

    // The paper's fix: repeat the same flips under the new encoding.
    let survived: Vec<_> = breakins
        .iter()
        .filter(|(t, _)| {
            let r = run_injection(&app.image, client1, &golden, t, EncodingScheme::NewEncoding)
                .expect("run");
            r.outcome == OutcomeClass::Breakin
        })
        .collect();
    println!(
        "\nunder the new parity encoding, {} of {} of those flips still break in",
        survived.len(),
        breakins.len()
    );
    println!(
        "(each grant/deny branch flip now lands on a non-branch opcode instead of\n\
         the opposite condition — the Hamming distance within the branch block is 2)"
    );
}
