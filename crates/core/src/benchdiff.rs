//! `fisec bench-diff`: the perf-regression gate.
//!
//! Compares a freshly *measured* campaign against the recorded baseline
//! in `BENCH_campaign.json` with a per-metric threshold, and reports
//! which metrics regressed — the CLI exits nonzero when any did, so CI
//! fails the build instead of letting a slow engine land silently.
//!
//! The measured leg is deliberately small and deterministic in shape: a
//! full ftpd baseline campaign (the same workload the baseline file
//! records under `flight_recorder.campaign_ftpd_full_ms.recorder_off`),
//! once plain, once with the profiler on and once with the taint
//! tracer on — the extra runs gate the observatory's own promises that
//! profiling and propagation tracing each cost ≤ 10%. A third
//! pair of runs against a throwaway incremental-cache store gates the
//! cache's two promises: populating it costs ≤ 10% extra wall, and an
//! unchanged-tree warm rerun is ≥ 5x faster than the cold run.
//!
//! Thresholds are ratios over the baseline, scaled by `--factor` so a
//! cold shared CI runner can use generous headroom while a quiet
//! development box keeps the tight default.

use crate::cache::CampaignCache;
use crate::campaign::{run_campaign_cached, run_campaign_traced, CampaignConfig};
use fisec_apps::AppSpec;
use fisec_telemetry::{metric, Telemetry};
use serde::Value;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

/// Default wall-clock headroom over the recorded baseline (cold caches,
/// scheduler noise) before `--factor` scales it.
const WALL_HEADROOM: f64 = 1.6;

/// Default headroom on the mean per-replay cost.
const REPLAY_HEADROOM: f64 = 1.6;

/// The observatory's contract: profiling a campaign costs at most this
/// fraction of extra wall-clock (before `--factor`).
const PROFILER_OVERHEAD_LIMIT: f64 = 0.10;

/// The taint tracer's contract: a propagation-traced campaign costs at
/// most this fraction of extra wall-clock (before `--factor`).
const PROPAGATION_OVERHEAD_LIMIT: f64 = 0.10;

/// Headroom under the recorded ALU-loop throughput floor: the measured
/// rate may drop to `baseline / (ALU_HEADROOM * factor)` before the
/// gate trips (throughput floors divide where wall-clock ceilings
/// multiply).
const ALU_HEADROOM: f64 = 1.6;

/// Iterations of the measured ALU loop (4 retired instructions each).
const ALU_LOOP_ITERS: u32 = 2_000_000;

/// The incremental cache's contract on a cold campaign: populating the
/// store costs at most this fraction of extra wall-clock over a
/// cache-off run (before `--factor`).
const COLD_CACHE_OVERHEAD_LIMIT: f64 = 0.10;

/// The incremental cache's contract on a warm campaign: an
/// unchanged-tree rerun must be at least this many times faster than
/// the cold run that populated the store (`--factor` lowers the floor).
const WARM_SPEEDUP_FLOOR: f64 = 5.0;

/// The baseline numbers `bench-diff` reads out of `BENCH_campaign.json`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Baseline {
    /// `flight_recorder.campaign_ftpd_full_ms.recorder_off`.
    pub campaign_ftpd_full_ms: f64,
    /// `replay_phase.block_engine.mean_micros_per_replay`.
    pub mean_micros_per_replay: f64,
    /// `tier2.alu_loop_minst_per_s` — the tier-2 interpreter's ALU-loop
    /// throughput floor, in millions of instructions per second.
    pub alu_loop_minst_per_s: f64,
    /// `incremental.cold_overhead` — the recorded extra wall fraction a
    /// cold cached campaign costs over a cache-off one.
    pub cache_cold_overhead: f64,
    /// `incremental.warm_speedup` — the recorded cold/warm wall ratio
    /// of an unchanged-tree rerun.
    pub cache_warm_speedup: f64,
}

/// What the fresh measurement produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measured {
    /// Wall-clock of one full ftpd baseline campaign, in milliseconds.
    pub campaign_ftpd_full_ms: f64,
    /// Mean of the campaign's `replay_micros_per_run` histogram.
    pub mean_micros_per_replay: f64,
    /// Extra wall-clock fraction of the same campaign with the profiler
    /// on (0.07 = 7% slower).
    pub profiler_overhead: f64,
    /// ALU-loop throughput under the full engine (tier 2 on), in
    /// millions of instructions per second.
    pub alu_loop_minst_per_s: f64,
    /// Extra wall-clock fraction of a cold cached campaign (fresh
    /// store) over the cache-off run.
    pub cache_cold_overhead: f64,
    /// Cold-cached wall divided by warm-cached wall on the same store.
    pub cache_warm_speedup: f64,
    /// Extra wall-clock fraction of the same campaign with the taint
    /// tracer on (0.07 = 7% slower).
    pub propagation_overhead: f64,
}

/// One compared metric: the gate's verdict plus everything needed to
/// render the row.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Metric name.
    pub name: &'static str,
    /// Recorded baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub measured: f64,
    /// Boundary value the gate accepts: a ceiling for cost metrics, a
    /// floor when [`DiffRow::floor`] is set.
    pub limit: f64,
    /// Is `limit` a throughput floor (measured must stay *above* it)
    /// rather than a cost ceiling?
    pub floor: bool,
    /// Within the limit?
    pub ok: bool,
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::Float(f) => Some(*f),
        Value::UInt(u) => Some(*u as f64),
        Value::Int(i) => Some(*i as f64),
        _ => None,
    }
}

/// Extract the baseline metrics from a parsed `BENCH_campaign.json`.
///
/// # Errors
/// A message naming the missing or non-numeric field.
pub fn baseline_of(v: &Value) -> Result<Baseline, String> {
    let wall = num(v
        .field("flight_recorder")
        .field("campaign_ftpd_full_ms")
        .field("recorder_off"))
    .ok_or("baseline lacks flight_recorder.campaign_ftpd_full_ms.recorder_off")?;
    let replay = num(v
        .field("replay_phase")
        .field("block_engine")
        .field("mean_micros_per_replay"))
    .ok_or("baseline lacks replay_phase.block_engine.mean_micros_per_replay")?;
    let alu = num(v.field("tier2").field("alu_loop_minst_per_s"))
        .ok_or("baseline lacks tier2.alu_loop_minst_per_s")?;
    let cold = num(v.field("incremental").field("cold_overhead"))
        .ok_or("baseline lacks incremental.cold_overhead")?;
    let warm = num(v.field("incremental").field("warm_speedup"))
        .ok_or("baseline lacks incremental.warm_speedup")?;
    Ok(Baseline {
        campaign_ftpd_full_ms: wall,
        mean_micros_per_replay: replay,
        alu_loop_minst_per_s: alu,
        cache_cold_overhead: cold,
        cache_warm_speedup: warm,
    })
}

/// Read and extract the baseline from a `BENCH_campaign.json` file.
///
/// # Errors
/// A message for unreadable files, malformed JSON or missing fields.
pub fn read_baseline(path: impl AsRef<Path>) -> Result<Baseline, String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let v: Value = serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    baseline_of(&v)
}

/// Run the measured leg: one full ftpd baseline campaign plain, one
/// with the profiler on, one with the taint tracer on.
pub fn measure() -> Measured {
    let app = AppSpec::ftpd();
    let cfg = CampaignConfig::default();
    let run_ms = |cfg: &CampaignConfig| -> (f64, f64) {
        let tel = Telemetry::collecting();
        let start = Instant::now();
        run_campaign_traced(&app, cfg, &tel);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let snap = tel.metrics.snapshot();
        let mean = snap
            .histogram(metric::REPLAY_MICROS)
            .map_or(0.0, fisec_telemetry::LogHistogram::mean);
        (ms, mean)
    };
    let (plain_ms, mean_replay) = run_ms(&cfg);
    let profiled = CampaignConfig {
        profiler: true,
        ..cfg
    };
    let (profiled_ms, _) = run_ms(&profiled);
    let propagated = CampaignConfig {
        propagation: true,
        ..cfg
    };
    let (propagated_ms, _) = run_ms(&propagated);
    let (cold_overhead, warm_speedup) = measure_cached(&app, &cfg);
    Measured {
        campaign_ftpd_full_ms: plain_ms,
        mean_micros_per_replay: mean_replay,
        profiler_overhead: (profiled_ms / plain_ms - 1.0).max(0.0),
        alu_loop_minst_per_s: measure_alu_loop(),
        cache_cold_overhead: cold_overhead,
        cache_warm_speedup: warm_speedup,
        propagation_overhead: (propagated_ms / plain_ms - 1.0).max(0.0),
    }
}

/// Time the campaign plain (no cache), cold (empty store, every group
/// replayed and recorded) and warm (unchanged tree, every group folded
/// from the store). Returns `(cold_overhead, warm_speedup)`. The
/// cold/plain gap is a sub-10% effect, well inside single-shot
/// scheduler noise, so the legs run as back-to-back plain/cold pairs —
/// slow drift hits both halves of a pair alike — and the overhead is
/// the median of the per-pair ratios.
fn measure_cached(app: &AppSpec, cfg: &CampaignConfig) -> (f64, f64) {
    let dir = std::env::temp_dir().join(format!("fisec-benchdiff-{}", std::process::id()));
    let cached_ms = |cache: Option<&CampaignCache>| {
        let tel = Telemetry::collecting();
        let start = Instant::now();
        run_campaign_cached(app, cfg, &tel, cache);
        start.elapsed().as_secs_f64() * 1e3
    };
    let mut ratios = Vec::new();
    let (mut cold_min, mut warm_min) = (f64::MAX, f64::MAX);
    for _ in 0..5 {
        let plain = cached_ms(None);
        let _ = std::fs::remove_dir_all(&dir);
        let cold = cached_ms(Some(&CampaignCache::at(dir.clone())));
        ratios.push(cold / plain);
        cold_min = cold_min.min(cold);
    }
    // The last cold run above left the store populated: warm reuses it.
    for _ in 0..3 {
        warm_min = warm_min.min(cached_ms(Some(&CampaignCache::at(dir.clone()))));
    }
    let _ = std::fs::remove_dir_all(&dir);
    ratios.sort_by(f64::total_cmp);
    let overhead = (ratios[ratios.len() / 2] - 1.0).max(0.0);
    (overhead, cold_min / warm_min)
}

/// Time the interpreter benchmark's tight ALU loop under the full
/// engine (block cache + trace cache, the defaults) and return millions
/// of retired instructions per second — the throughput the `tier2`
/// baseline block records.
fn measure_alu_loop() -> f64 {
    use fisec_x86::{Machine, Memory, Perms, Region};
    let n = ALU_LOOP_ITERS;
    let mut text = vec![0xB9];
    text.extend_from_slice(&n.to_le_bytes());
    text.extend_from_slice(&[
        0x83, 0xC0, 0x01, // top: add eax, 1
        0x83, 0xF0, 0x03, // xor eax, 3
        0x49, // dec ecx
        0x75, 0xF7, // jne top (back 9 bytes)
        0xEB, 0xFE, // jmp self (we stop via budget)
    ]);
    let insts = 1 + u64::from(n) * 4;
    let mut mem = Memory::new();
    mem.map(Region::with_data("text", 0x1000, text, Perms::RX))
        .unwrap();
    let mut m = Machine::new(mem);
    m.cpu.eip = 0x1000;
    let start = Instant::now();
    let out = m.run_until_event(insts);
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box((out, m.cpu.regs[0]));
    insts as f64 / secs / 1e6
}

/// The pure gate: compare a measurement against the baseline under
/// `factor`-scaled thresholds. Deterministic and side-effect free — the
/// regression test injects a slow measurement here and asserts the gate
/// trips.
pub fn compare(baseline: &Baseline, measured: &Measured, factor: f64) -> Vec<DiffRow> {
    let row = |name, base: f64, got: f64, limit: f64| DiffRow {
        name,
        baseline: base,
        measured: got,
        limit,
        floor: false,
        ok: got <= limit,
    };
    let alu_floor = baseline.alu_loop_minst_per_s / (ALU_HEADROOM * factor);
    vec![
        row(
            "campaign_ftpd_full_ms",
            baseline.campaign_ftpd_full_ms,
            measured.campaign_ftpd_full_ms,
            baseline.campaign_ftpd_full_ms * WALL_HEADROOM * factor,
        ),
        row(
            "mean_micros_per_replay",
            baseline.mean_micros_per_replay,
            measured.mean_micros_per_replay,
            baseline.mean_micros_per_replay * REPLAY_HEADROOM * factor,
        ),
        row(
            "profiler_overhead",
            PROFILER_OVERHEAD_LIMIT,
            measured.profiler_overhead,
            PROFILER_OVERHEAD_LIMIT * factor,
        ),
        DiffRow {
            name: "alu_loop_minst_per_s",
            baseline: baseline.alu_loop_minst_per_s,
            measured: measured.alu_loop_minst_per_s,
            limit: alu_floor,
            floor: true,
            ok: measured.alu_loop_minst_per_s >= alu_floor,
        },
        row(
            "cache_cold_overhead",
            baseline.cache_cold_overhead,
            measured.cache_cold_overhead,
            COLD_CACHE_OVERHEAD_LIMIT * factor,
        ),
        DiffRow {
            name: "cache_warm_speedup",
            baseline: baseline.cache_warm_speedup,
            measured: measured.cache_warm_speedup,
            limit: WARM_SPEEDUP_FLOOR / factor,
            floor: true,
            ok: measured.cache_warm_speedup >= WARM_SPEEDUP_FLOOR / factor,
        },
        row(
            "propagation_overhead",
            PROPAGATION_OVERHEAD_LIMIT,
            measured.propagation_overhead,
            PROPAGATION_OVERHEAD_LIMIT * factor,
        ),
    ]
}

/// Did any metric exceed its limit?
pub fn regressed(rows: &[DiffRow]) -> bool {
    rows.iter().any(|r| !r.ok)
}

/// Render the comparison table.
pub fn render(rows: &[DiffRow], factor: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== bench-diff (threshold factor {factor:.2}) ==");
    let _ = writeln!(
        out,
        "{:<24} {:>12} {:>12} {:>12}  verdict",
        "metric", "baseline", "measured", "limit"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<24} {:>12.2} {:>12.2} {:>12.2}  {}{}",
            r.name,
            r.baseline,
            r.measured,
            r.limit,
            if r.ok { "ok" } else { "REGRESSED" },
            if r.floor { " (floor)" } else { "" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> Baseline {
        Baseline {
            campaign_ftpd_full_ms: 100.0,
            mean_micros_per_replay: 50.0,
            alu_loop_minst_per_s: 320.0,
            cache_cold_overhead: 0.03,
            cache_warm_speedup: 10.0,
        }
    }

    fn ok_measured() -> Measured {
        Measured {
            campaign_ftpd_full_ms: 100.0,
            mean_micros_per_replay: 50.0,
            profiler_overhead: 0.02,
            alu_loop_minst_per_s: 310.0,
            cache_cold_overhead: 0.04,
            cache_warm_speedup: 9.0,
            propagation_overhead: 0.03,
        }
    }

    #[test]
    fn within_thresholds_passes() {
        let m = Measured {
            campaign_ftpd_full_ms: 120.0,
            mean_micros_per_replay: 60.0,
            profiler_overhead: 0.05,
            ..ok_measured()
        };
        let rows = compare(&baseline(), &m, 1.0);
        assert!(!regressed(&rows), "{rows:?}");
        let s = render(&rows, 1.0);
        assert!(s.contains("ok"), "{s}");
        assert!(!s.contains("REGRESSED"), "{s}");
    }

    #[test]
    fn injected_regression_trips_the_gate() {
        // A 3x-slower campaign must fail the 1.6x wall threshold.
        let m = Measured {
            campaign_ftpd_full_ms: 300.0,
            mean_micros_per_replay: 55.0,
            ..ok_measured()
        };
        let rows = compare(&baseline(), &m, 1.0);
        assert!(regressed(&rows));
        let s = render(&rows, 1.0);
        assert!(s.contains("campaign_ftpd_full_ms"), "{s}");
        assert!(s.contains("REGRESSED"), "{s}");
        // A blown profiler-overhead budget trips its own row.
        let m = Measured {
            profiler_overhead: 0.4,
            ..ok_measured()
        };
        let rows = compare(&baseline(), &m, 1.0);
        assert!(regressed(&rows));
        assert!(!rows[2].ok, "{rows:?}");
        // A blown propagation-overhead budget trips its own row too.
        let m = Measured {
            propagation_overhead: 0.4,
            ..ok_measured()
        };
        let rows = compare(&baseline(), &m, 1.0);
        assert!(regressed(&rows));
        assert!(!rows[6].ok, "{rows:?}");
        let s = render(&rows, 1.0);
        assert!(s.contains("propagation_overhead"), "{s}");
    }

    #[test]
    fn cache_rows_gate_cold_overhead_and_warm_speedup() {
        // An expensive cold store population trips its ceiling.
        let m = Measured {
            cache_cold_overhead: 0.25,
            ..ok_measured()
        };
        let rows = compare(&baseline(), &m, 1.0);
        assert!(regressed(&rows), "{rows:?}");
        assert!(!rows[4].ok && !rows[4].floor, "{rows:?}");
        // A warm run barely faster than cold trips the speedup floor.
        let m = Measured {
            cache_warm_speedup: 1.2,
            ..ok_measured()
        };
        let rows = compare(&baseline(), &m, 1.0);
        assert!(regressed(&rows), "{rows:?}");
        assert!(!rows[5].ok && rows[5].floor, "{rows:?}");
        let s = render(&rows, 1.0);
        assert!(s.contains("cache_warm_speedup"), "{s}");
        // A generous factor lowers the floor: 5.0 / 4 = 1.25 > 1.2
        // still trips, 5.0 / 8 = 0.625 passes.
        assert!(regressed(&compare(&baseline(), &m, 4.0)));
        assert!(!regressed(&compare(&baseline(), &m, 8.0)));
    }

    #[test]
    fn throughput_floor_trips_when_the_interpreter_slows_down() {
        // 320 / 1.6 = 200 M inst/s is the floor at factor 1.
        let mut m = Measured {
            alu_loop_minst_per_s: 201.0,
            ..ok_measured()
        };
        assert!(!regressed(&compare(&baseline(), &m, 1.0)));
        m.alu_loop_minst_per_s = 150.0;
        let rows = compare(&baseline(), &m, 1.0);
        assert!(regressed(&rows), "{rows:?}");
        assert!(!rows[3].ok && rows[3].floor, "{rows:?}");
        let s = render(&rows, 1.0);
        assert!(s.contains("alu_loop_minst_per_s"), "{s}");
        assert!(s.contains("(floor)"), "{s}");
        // A generous factor lowers the floor instead of raising it.
        assert!(!regressed(&compare(&baseline(), &m, 3.0)));
    }

    #[test]
    fn factor_scales_every_threshold() {
        let m = Measured {
            campaign_ftpd_full_ms: 300.0,
            mean_micros_per_replay: 120.0,
            profiler_overhead: 0.25,
            alu_loop_minst_per_s: 120.0,
            cache_cold_overhead: 0.25,
            cache_warm_speedup: 2.0,
            propagation_overhead: 0.25,
        };
        assert!(regressed(&compare(&baseline(), &m, 1.0)));
        assert!(!regressed(&compare(&baseline(), &m, 3.0)));
    }

    #[test]
    fn baseline_parses_the_checked_in_bench_file() {
        let b = read_baseline(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_campaign.json"
        ))
        .unwrap();
        assert!(b.campaign_ftpd_full_ms > 0.0);
        assert!(b.mean_micros_per_replay > 0.0);
        assert!(b.alu_loop_minst_per_s > 0.0);
        assert!(b.cache_cold_overhead >= 0.0);
        assert!(b.cache_warm_speedup >= WARM_SPEEDUP_FLOOR);
    }

    #[test]
    fn missing_fields_are_reported() {
        let v: Value = serde_json::from_str("{}").unwrap();
        let e = baseline_of(&v).unwrap_err();
        assert!(e.contains("recorder_off"), "{e}");
    }
}
