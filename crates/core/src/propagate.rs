//! `fisec propagate`: an annotated corruption timeline of one injection.
//!
//! Where [`crate::explain`] narrates the *control-flow* story of a run
//! (the first divergent edge against the golden continuation), this
//! module narrates the *data-flow* story upstream of it: the same
//! experiment re-run with the taint tracer armed, rendered as the
//! corruption's journey from the flipped destination through registers,
//! flags and memory until it reaches a compare/branch decision, dies,
//! or the run stops.

use fisec_apps::AppSpec;
use fisec_asm::Image;
use fisec_encoding::EncodingScheme;
use fisec_inject::{
    enumerate_targets, golden_run_opts, kind_label, run_injection_recorded, EngineOpts,
    PropagationReport,
};
use fisec_x86::taint::PropKind;
use std::fmt::Write as _;

/// Events shown from the front of the timeline before eliding.
const HEAD: usize = 24;
/// Events always kept at the tail after eliding.
const TAIL: usize = 8;

/// Trace one injection's corruption and render the timeline.
///
/// `client` is 1-based (the CLI's `--client`).
///
/// # Errors
/// A message when the client is out of range, no enumerated target
/// matches `(addr, byte_index, bit)`, or the image fails to load.
pub fn propagate(
    app: &AppSpec,
    client: usize,
    addr: u32,
    byte_index: u8,
    bit: u8,
    scheme: EncodingScheme,
) -> Result<String, String> {
    let spec = app.clients.get(client.wrapping_sub(1)).ok_or_else(|| {
        format!(
            "--client {client} out of range (valid: 1..={})",
            app.clients.len()
        )
    })?;
    let set = enumerate_targets(&app.image, &app.auth_funcs, false);
    let target = *set
        .targets
        .iter()
        .find(|t| t.addr == addr && t.byte_index == byte_index && t.bit == bit)
        .ok_or_else(|| {
            format!(
                "no injection target at {addr:#010x} byte {byte_index} bit {bit} \
                 (see `fisec targets` / `fisec disasm` for the enumerated set)"
            )
        })?;
    let engine = EngineOpts {
        flight_recorder: true,
        propagation: true,
        ..EngineOpts::default()
    };
    let golden = golden_run_opts(&app.image, spec, engine).map_err(|e| e.to_string())?;
    let (run, _, _, rep, _, _, preport) =
        run_injection_recorded(&app.image, spec, &golden, &target, scheme, engine)
            .map_err(|e| e.to_string())?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== fisec propagate: {} {} @ {:#010x} byte {} bit {} [{}] ==",
        app.name, spec.name, addr, byte_index, bit, scheme
    );
    let _ = writeln!(
        out,
        "flip: {}: corrupts the destination of this instruction",
        sym(&app.image, addr)
    );
    let _ = writeln!(
        out,
        "outcome: {}  stop: {}  client: {:?}{}",
        run.outcome.abbrev(),
        run.stop,
        run.client,
        run.crash_latency
            .map_or_else(String::new, |l| format!("  crash latency: {l}"))
    );
    let Some(preport) = preport else {
        let _ = writeln!(
            out,
            "the golden run never reaches this instruction: the flip cannot activate \
             and no corruption is ever born"
        );
        return Ok(out);
    };
    render_timeline(&mut out, &app.image, &preport);
    let _ = write!(out, "{preport}");
    if let Some(rep) = rep {
        let _ = writeln!(
            out,
            "control flow: {}",
            rep.first_divergence.map_or_else(
                || "never left the golden path".to_string(),
                |d| format!("first divergent edge at recorded index {d}"),
            )
        );
    }
    Ok(out)
}

/// The corruption timeline, head + tail windows around an elision.
fn render_timeline(out: &mut String, image: &Image, rep: &PropagationReport) {
    let events = &rep.log.events;
    if events.is_empty() {
        return;
    }
    let _ = writeln!(
        out,
        "corruption timeline: {} event(s) recorded{}",
        events.len() as u64 + rep.log.dropped,
        if rep.log.dropped > 0 { ", capped" } else { "" }
    );
    let n = events.len();
    let elide = n > HEAD + TAIL;
    let head_end = if elide { HEAD } else { n };
    for e in &events[..head_end] {
        render_event(out, image, rep, e);
    }
    if elide {
        let _ = writeln!(out, "  ... {} intermediate event(s) ...", n - HEAD - TAIL);
        for e in &events[n - TAIL..] {
            render_event(out, image, rep, e);
        }
    }
}

fn render_event(
    out: &mut String,
    image: &Image,
    rep: &PropagationReport,
    e: &fisec_x86::taint::PropEvent,
) {
    let detail = match e.kind {
        PropKind::Write { addr, len } => format!("{len} byte(s) -> {addr:#010x}"),
        PropKind::SyscallArg { nr } => format!("nr {nr}"),
        _ => String::new(),
    };
    let _ = writeln!(
        out,
        "  +{:<8} {:08x} {:<22} {:<8} w={:<4} {:<28} {}",
        e.icount.saturating_sub(rep.activation_icount),
        e.addr,
        sym(image, e.addr),
        kind_label(e.kind),
        e.width,
        disasm(image, e.addr),
        detail
    );
}

/// `func+0xoff` for a text address, or the raw hex outside any symbol.
fn sym(image: &Image, addr: u32) -> String {
    image
        .symbols
        .funcs
        .iter()
        .find(|f| (f.start..f.end).contains(&addr))
        .map_or_else(
            || format!("{addr:#010x}"),
            |f| format!("{}+{:#x}", f.name, addr - f.start),
        )
}

/// Disassemble the (uncorrupted) instruction at `addr`.
fn disasm(image: &Image, addr: u32) -> String {
    let Some(off) = addr
        .checked_sub(image.text_base)
        .map(|o| o as usize)
        .filter(|&o| o < image.text.len())
    else {
        return "<outside text>".to_string();
    };
    let end = (off + 16).min(image.text.len());
    let inst = fisec_x86::decode(&image.text[off..end]);
    fisec_x86::fmt_att(&inst, addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisec_inject::{golden_run, run_injection, InjectionTarget, OutcomeClass};

    /// First opcode-byte flip with the wanted outcome on ftpd Client1.
    fn find_target(outcome: OutcomeClass) -> InjectionTarget {
        let app = AppSpec::ftpd();
        let spec = &app.clients[0];
        let golden = golden_run(&app.image, spec).unwrap();
        let set = enumerate_targets(&app.image, &app.auth_funcs, false);
        for t in set.targets.iter().filter(|t| t.byte_index == 0) {
            let r = run_injection(&app.image, spec, &golden, t, EncodingScheme::Baseline).unwrap();
            if r.outcome == outcome {
                return *t;
            }
        }
        panic!("no {outcome:?} opcode flip found");
    }

    #[test]
    fn propagates_a_breakin_with_corruption_timeline() {
        let app = AppSpec::ftpd();
        let t = find_target(OutcomeClass::Breakin);
        let s = propagate(
            &app,
            1,
            t.addr,
            t.byte_index,
            t.bit,
            EncodingScheme::Baseline,
        )
        .unwrap();
        assert!(s.contains("outcome: BRK"), "{s}");
        assert!(s.contains("taint seeded at activation+"), "{s}");
        assert!(s.contains("corruption timeline:"), "{s}");
        assert!(s.contains("seed"), "{s}");
        assert!(s.contains("control flow:"), "{s}");
    }

    #[test]
    fn propagates_a_never_activated_target() {
        let app = AppSpec::ftpd();
        let (_, cov) = fisec_inject::golden_run_with_coverage_opts(
            &app.image,
            &app.clients[0],
            EngineOpts::default(),
        )
        .unwrap();
        let set = enumerate_targets(&app.image, &app.auth_funcs, false);
        let t = *set
            .targets
            .iter()
            .find(|t| !cov.contains(&t.addr))
            .expect("some enumerated instruction is never executed");
        let s = propagate(
            &app,
            1,
            t.addr,
            t.byte_index,
            t.bit,
            EncodingScheme::Baseline,
        )
        .unwrap();
        assert!(s.contains("outcome: NA"), "{s}");
        assert!(s.contains("no corruption is ever born"), "{s}");
        assert!(!s.contains("corruption timeline"), "{s}");
    }

    #[test]
    fn rejects_unknown_target_and_client() {
        let app = AppSpec::ftpd();
        let e = propagate(&app, 1, 0xdead_beef, 0, 0, EncodingScheme::Baseline).unwrap_err();
        assert!(e.contains("no injection target"), "{e}");
        let t = enumerate_targets(&app.image, &app.auth_funcs, false).targets[0];
        let e = propagate(
            &app,
            9,
            t.addr,
            t.byte_index,
            t.bit,
            EncodingScheme::Baseline,
        )
        .unwrap_err();
        assert!(e.contains("out of range"), "{e}");
    }
}
