//! Recursive-descent parser for the mini-C dialect.

use crate::ast::{BinOp, Expr, Func, Global, GlobalInit, Program, Stmt, Type, UnOp};
use crate::lexer::{lex, SpannedTok, Tok};
use std::fmt;

/// Parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Explanation.
    pub msg: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a mini-C translation unit.
///
/// # Errors
/// [`ParseError`] with the offending line on malformed input.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src).map_err(|e| ParseError {
        msg: e.msg,
        line: e.line,
    })?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            msg: msg.into(),
            line: self.line(),
        })
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {}", self.peek()))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            t => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected identifier, found {t}"))
            }
        }
    }

    fn base_type(&mut self) -> Result<Option<Type>, ParseError> {
        let t = if self.eat_kw("int") {
            Type::Int
        } else if self.eat_kw("char") {
            Type::Char
        } else if self.eat_kw("void") {
            Type::Void
        } else {
            return Ok(None);
        };
        let mut t = t;
        while self.eat_punct("*") {
            t = Type::Ptr(Box::new(t));
        }
        Ok(Some(t))
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        while !matches!(self.peek(), Tok::Eof) {
            let Some(ty) = self.base_type()? else {
                return self.err(format!("expected declaration, found {}", self.peek()));
            };
            let name = self.ident()?;
            if self.eat_punct("(") {
                // Function definition or prototype.
                let params = self.params()?;
                if self.eat_punct(";") {
                    continue; // prototype — bodies are resolved by name
                }
                self.expect_punct("{")?;
                let body = self.block_body()?;
                prog.funcs.push(Func {
                    ret: ty,
                    name,
                    params,
                    body,
                });
            } else {
                // Global variable.
                let g = self.global_rest(ty, name)?;
                prog.globals.push(g);
            }
        }
        Ok(prog)
    }

    fn params(&mut self) -> Result<Vec<(Type, String)>, ParseError> {
        let mut params = Vec::new();
        if self.eat_punct(")") {
            return Ok(params);
        }
        if matches!(self.peek(), Tok::Ident(s) if s == "void")
            && matches!(self.peek2(), Tok::Punct(")"))
        {
            self.bump();
            self.bump();
            return Ok(params);
        }
        loop {
            let Some(ty) = self.base_type()? else {
                return self.err("expected parameter type");
            };
            let name = self.ident()?;
            params.push((ty, name));
            if self.eat_punct(")") {
                break;
            }
            self.expect_punct(",")?;
        }
        Ok(params)
    }

    fn global_rest(&mut self, ty: Type, name: String) -> Result<Global, ParseError> {
        let mut ty = ty;
        if self.eat_punct("[") {
            // Sized or (for string initializers) unsized array.
            if let Tok::Num(n) = self.peek().clone() {
                self.bump();
                self.expect_punct("]")?;
                if n <= 0 {
                    return self.err("array length must be positive");
                }
                ty = Type::Array(Box::new(ty), n as u32);
            } else {
                self.expect_punct("]")?;
                ty = Type::Array(Box::new(ty), 0); // fixed up by initializer
            }
        }
        let init = if self.eat_punct("=") {
            match self.bump() {
                Tok::Num(n) => GlobalInit::Num(n),
                Tok::Str(s) => GlobalInit::Str(s),
                Tok::CharLit(c) => GlobalInit::Num(c as i32),
                t => return self.err(format!("unsupported global initializer {t}")),
            }
        } else {
            GlobalInit::Zero
        };
        // Fix up unsized arrays from string initializers.
        if let (Type::Array(elem, 0), GlobalInit::Str(s)) = (&ty, &init) {
            ty = Type::Array(elem.clone(), s.len() as u32 + 1);
        }
        if matches!(ty, Type::Array(_, 0)) {
            return self.err("unsized array requires a string initializer");
        }
        if matches!(init, GlobalInit::Str(_)) && !matches!(ty, Type::Array(_, _)) {
            return self.err("string initializer requires a char array");
        }
        self.expect_punct(";")?;
        Ok(Global { ty, name, init })
    }

    fn block_body(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if matches!(self.peek(), Tok::Eof) {
                return self.err("unterminated block");
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        // Declaration?
        if matches!(self.peek(), Tok::Ident(s) if s == "int" || s == "char") {
            let ty = self.base_type()?.expect("checked");
            let name = self.ident()?;
            let mut ty = ty;
            if self.eat_punct("[") {
                let Tok::Num(n) = self.bump() else {
                    return self.err("expected array length");
                };
                self.expect_punct("]")?;
                if n <= 0 {
                    return self.err("array length must be positive");
                }
                ty = Type::Array(Box::new(ty), n as u32);
            }
            let init = if self.eat_punct("=") {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Decl { ty, name, init });
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then = self.stmt_or_block()?;
            let els = if self.eat_kw("else") {
                self.stmt_or_block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If { cond, then, els });
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.stmt_or_block()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.eat_kw("for") {
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else {
                let s = self.stmt()?; // consumes the `;` (decl or expr stmt)
                Some(Box::new(s))
            };
            let cond = if self.eat_punct(";") {
                None
            } else {
                let e = self.expr()?;
                self.expect_punct(";")?;
                Some(e)
            };
            let step = if self.eat_punct(")") {
                None
            } else {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Some(e)
            };
            let body = self.stmt_or_block()?;
            return Ok(Stmt::For {
                init,
                cond,
                step,
                body,
            });
        }
        if self.eat_kw("return") {
            if self.eat_punct(";") {
                return Ok(Stmt::Return(None));
            }
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Return(Some(e)));
        }
        if self.eat_kw("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break);
        }
        if self.eat_kw("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue);
        }
        if self.eat_punct("{") {
            return Ok(Stmt::Block(self.block_body()?));
        }
        if self.eat_punct(";") {
            return Ok(Stmt::Block(Vec::new()));
        }
        let e = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Expr(e))
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.eat_punct("{") {
            self.block_body()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    // Expression precedence (lowest to highest):
    // assignment, ||, &&, |, ^, &, ==/!=, relational, shift, additive,
    // multiplicative, unary, postfix, primary.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.logical_or()?;
        for (tok, op) in [
            ("+=", BinOp::Add),
            ("-=", BinOp::Sub),
            ("*=", BinOp::Mul),
            ("/=", BinOp::Div),
            ("%=", BinOp::Rem),
            ("&=", BinOp::BitAnd),
            ("|=", BinOp::BitOr),
            ("^=", BinOp::BitXor),
            ("<<=", BinOp::Shl),
            (">>=", BinOp::Shr),
        ] {
            if self.eat_punct(tok) {
                let rhs = self.assignment()?;
                return Ok(Expr::Assign(
                    Box::new(lhs.clone()),
                    Box::new(Expr::Bin(op, Box::new(lhs), Box::new(rhs))),
                ));
            }
        }
        if self.eat_punct("=") {
            let rhs = self.assignment()?;
            return Ok(Expr::Assign(Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn logical_or(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.logical_and()?;
        while self.eat_punct("||") {
            let r = self.logical_and()?;
            e = Expr::Bin(BinOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn logical_and(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bit_or()?;
        while self.eat_punct("&&") {
            let r = self.bit_or()?;
            e = Expr::Bin(BinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bit_or(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bit_xor()?;
        while self.eat_punct("|") {
            let r = self.bit_xor()?;
            e = Expr::Bin(BinOp::BitOr, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bit_xor(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bit_and()?;
        while self.eat_punct("^") {
            let r = self.bit_and()?;
            e = Expr::Bin(BinOp::BitXor, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bit_and(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.equality()?;
        while self.eat_punct("&") {
            let r = self.equality()?;
            e = Expr::Bin(BinOp::BitAnd, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.relational()?;
        loop {
            if self.eat_punct("==") {
                let r = self.relational()?;
                e = Expr::Bin(BinOp::Eq, Box::new(e), Box::new(r));
            } else if self.eat_punct("!=") {
                let r = self.relational()?;
                e = Expr::Bin(BinOp::Ne, Box::new(e), Box::new(r));
            } else {
                return Ok(e);
            }
        }
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.shift()?;
        loop {
            let op = if self.eat_punct("<=") {
                BinOp::Le
            } else if self.eat_punct(">=") {
                BinOp::Ge
            } else if self.eat_punct("<") {
                BinOp::Lt
            } else if self.eat_punct(">") {
                BinOp::Gt
            } else {
                return Ok(e);
            };
            let r = self.shift()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.additive()?;
        loop {
            let op = if self.eat_punct("<<") {
                BinOp::Shl
            } else if self.eat_punct(">>") {
                BinOp::Shr
            } else {
                return Ok(e);
            };
            let r = self.additive()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.multiplicative()?;
        loop {
            let op = if self.eat_punct("+") {
                BinOp::Add
            } else if self.eat_punct("-") {
                BinOp::Sub
            } else {
                return Ok(e);
            };
            let r = self.multiplicative()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary()?;
        loop {
            let op = if self.eat_punct("*") {
                BinOp::Mul
            } else if self.eat_punct("/") {
                BinOp::Div
            } else if self.eat_punct("%") {
                BinOp::Rem
            } else {
                return Ok(e);
            };
            let r = self.unary()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("-") {
            return Ok(Expr::Un(UnOp::Neg, Box::new(self.unary()?)));
        }
        if self.eat_punct("!") {
            return Ok(Expr::Un(UnOp::Not, Box::new(self.unary()?)));
        }
        if self.eat_punct("~") {
            return Ok(Expr::Un(UnOp::BitNot, Box::new(self.unary()?)));
        }
        if self.eat_punct("*") {
            return Ok(Expr::Deref(Box::new(self.unary()?)));
        }
        if self.eat_punct("&") {
            return Ok(Expr::Addr(Box::new(self.unary()?)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            if self.eat_punct("(") {
                let Expr::Var(name) = e else {
                    return self.err("only direct calls are supported");
                };
                let mut args = Vec::new();
                if !self.eat_punct(")") {
                    loop {
                        args.push(self.expr()?);
                        if self.eat_punct(")") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                e = Expr::Call(name, args);
            } else if self.eat_punct("[") {
                let idx = self.expr()?;
                self.expect_punct("]")?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else if self.eat_punct("++") {
                e = Expr::PostIncDec(Box::new(e), true);
            } else if self.eat_punct("--") {
                e = Expr::PostIncDec(Box::new(e), false);
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Tok::Num(n) => Ok(Expr::Num(n)),
            Tok::CharLit(c) => Ok(Expr::CharLit(c)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::Ident(s) => Ok(Expr::Var(s)),
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            t => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected expression, found {t}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal_function() {
        let p = parse("int main() { return 0; }").unwrap();
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].name, "main");
        assert_eq!(p.funcs[0].body, vec![Stmt::Return(Some(Expr::Num(0)))]);
    }

    #[test]
    fn parse_params_and_pointers() {
        let p = parse("int f(char *s, int n) { return n; }").unwrap();
        assert_eq!(
            p.funcs[0].params,
            vec![
                (Type::Ptr(Box::new(Type::Char)), "s".into()),
                (Type::Int, "n".into())
            ]
        );
        let p = parse("char **argv_handler(void) { return 0; }").unwrap();
        assert_eq!(
            p.funcs[0].ret,
            Type::Ptr(Box::new(Type::Ptr(Box::new(Type::Char))))
        );
    }

    #[test]
    fn parse_globals() {
        let p =
            parse("int counter = 5;\nchar buf[64];\nchar motd[] = \"hi\\n\";\nint zero;").unwrap();
        assert_eq!(p.globals.len(), 4);
        assert_eq!(p.globals[0].init, GlobalInit::Num(5));
        assert_eq!(p.globals[1].ty, Type::Array(Box::new(Type::Char), 64));
        assert_eq!(p.globals[2].ty, Type::Array(Box::new(Type::Char), 4));
        assert_eq!(p.globals[3].init, GlobalInit::Zero);
    }

    #[test]
    fn parse_precedence() {
        let p = parse("int f() { return 1 + 2 * 3 == 7 && 4 < 5; }").unwrap();
        let Stmt::Return(Some(e)) = &p.funcs[0].body[0] else {
            panic!()
        };
        // ((1 + (2*3)) == 7) && (4 < 5)
        let Expr::Bin(BinOp::And, l, r) = e else {
            panic!("{e:?}")
        };
        assert!(matches!(**l, Expr::Bin(BinOp::Eq, _, _)));
        assert!(matches!(**r, Expr::Bin(BinOp::Lt, _, _)));
    }

    #[test]
    fn parse_if_else_chain() {
        let p = parse(
            "int f(int x) { if (x == 1) return 1; else if (x == 2) return 2; else return 3; }",
        )
        .unwrap();
        let Stmt::If { els, .. } = &p.funcs[0].body[0] else {
            panic!()
        };
        assert!(matches!(els[0], Stmt::If { .. }));
    }

    #[test]
    fn parse_loops() {
        let p = parse("int f() { int i; for (i = 0; i < 10; i++) { if (i == 5) break; } while (i) i--; return i; }").unwrap();
        assert_eq!(p.funcs[0].body.len(), 4);
        assert!(matches!(p.funcs[0].body[1], Stmt::For { .. }));
        assert!(matches!(p.funcs[0].body[2], Stmt::While { .. }));
    }

    #[test]
    fn parse_for_with_decl_init() {
        let p = parse("int f() { for (int i = 0; i < 4; i++) ; return 0; }").unwrap();
        let Stmt::For { init, .. } = &p.funcs[0].body[0] else {
            panic!()
        };
        assert!(matches!(init.as_deref(), Some(Stmt::Decl { .. })));
    }

    #[test]
    fn parse_compound_assignment_desugars() {
        let p = parse("int f(int x) { x += 2; return x; }").unwrap();
        let Stmt::Expr(Expr::Assign(lhs, rhs)) = &p.funcs[0].body[0] else {
            panic!()
        };
        assert_eq!(**lhs, Expr::Var("x".into()));
        assert!(matches!(**rhs, Expr::Bin(BinOp::Add, _, _)));
    }

    #[test]
    fn parse_pointer_expressions() {
        let p = parse("int f(char *p) { *p = 'x'; return p[1] + *(p + 2); }").unwrap();
        assert!(matches!(p.funcs[0].body[0], Stmt::Expr(Expr::Assign(_, _))));
    }

    #[test]
    fn parse_call_args() {
        let p = parse("int f() { return g(1, h(2), \"s\"); }").unwrap();
        let Stmt::Return(Some(Expr::Call(name, args))) = &p.funcs[0].body[0] else {
            panic!()
        };
        assert_eq!(name, "g");
        assert_eq!(args.len(), 3);
    }

    #[test]
    fn parse_prototypes_ignored() {
        let p = parse("int strcmp(char *a, char *b);\nint main() { return 0; }").unwrap();
        assert_eq!(p.funcs.len(), 1);
    }

    #[test]
    fn parse_errors_have_lines() {
        let e = parse("int main() {\n  return 0\n}").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(parse("int main() { 1 + ; }").is_err());
        assert!(parse("float f() { }").is_err());
        assert!(parse("int a[0];").is_err());
        assert!(parse("int main() {").is_err());
    }

    #[test]
    fn parse_address_of_and_not() {
        let p = parse("int f(int x) { int *p; p = &x; return !*p; }").unwrap();
        assert_eq!(p.funcs[0].body.len(), 3);
    }
}
