//! Failure injection against the harness itself: truncated images,
//! missing symbols, hostile clients. The experiment infrastructure must
//! degrade with clear errors, never panics or bogus classifications.

use fisec_asm::{Image, SymbolTable};
use fisec_cc::build_image;
use fisec_net::{ClientDriver, ClientStatus};
use fisec_os::{run_session, LoadError, Process, Stop};

#[derive(Clone)]
struct MuteClient;

impl ClientDriver for MuteClient {
    fn on_server_data(&mut self, _d: &[u8], _out: &mut dyn FnMut(Vec<u8>)) {}
    fn status(&self) -> ClientStatus {
        ClientStatus::InProgress
    }
}

#[test]
fn image_without_start_is_rejected() {
    let img = Image {
        text: vec![0x90, 0xC3],
        data: vec![],
        text_base: 0x1000,
        data_base: 0x2000,
        symbols: SymbolTable::default(),
    };
    let err = Process::load(&img, Box::new(MuteClient)).unwrap_err();
    assert_eq!(err, LoadError::NoEntry);
    assert!(err.to_string().contains("_start"));
}

#[test]
fn overlapping_segments_are_rejected() {
    let img = Image {
        text: vec![0x90; 64],
        data: vec![0; 64],
        text_base: 0x1000,
        data_base: 0x1020, // overlaps text
        symbols: SymbolTable {
            funcs: vec![fisec_asm::FuncSymbol {
                name: "_start".into(),
                start: 0x1000,
                end: 0x1040,
            }],
            data: vec![],
        },
    };
    assert!(matches!(
        Process::load(&img, Box::new(MuteClient)),
        Err(LoadError::Map(_))
    ));
}

#[test]
fn truncated_text_crashes_cleanly() {
    // Cut the image mid-function: execution runs off the end of the
    // mapped text and must report a fetch fault, not panic.
    let mut img = build_image(&["int main() { return f(); } int f() { return 1; }"]).unwrap();
    img.text.truncate(img.text.len() / 4);
    let r = run_session(&img, Box::new(MuteClient), 100_000).unwrap();
    match r.stop {
        Stop::Crashed(f) => assert_eq!(f.signal_name(), "SIGSEGV"),
        other => panic!("expected crash, got {other:?}"),
    }
}

#[test]
fn hostile_client_flooding_is_bounded() {
    // A client that queues data endlessly cannot hang the harness: the
    // instruction budget stops the run.
    #[derive(Clone)]
    struct Flood;
    impl ClientDriver for Flood {
        fn on_server_data(&mut self, _d: &[u8], out: &mut dyn FnMut(Vec<u8>)) {
            out(vec![b'A'; 4096]);
        }
        fn on_server_read_idle(&mut self, out: &mut dyn FnMut(Vec<u8>)) {
            out(vec![b'A'; 4096]);
        }
        fn status(&self) -> ClientStatus {
            ClientStatus::InProgress
        }
    }
    let img = build_image(&[r#"
        int main() {
            char buf[64];
            while (1) {
                if (read(0, buf, 63) <= 0) { return 1; }
            }
            return 0;
        }
    "#])
    .unwrap();
    let r = run_session(&img, Box::new(Flood), 200_000).unwrap();
    assert_eq!(r.stop, Stop::Budget);
    assert!(r.icount <= 200_000);
}

#[test]
fn client_disconnecting_early_deadlocks_not_panics() {
    // Client answers the banner once and then goes silent while the
    // server expects a command: deadlock detection must trigger.
    #[derive(Clone)]
    struct OneShot {
        sent: bool,
    }
    impl ClientDriver for OneShot {
        fn on_server_data(&mut self, _d: &[u8], out: &mut dyn FnMut(Vec<u8>)) {
            if !self.sent {
                self.sent = true;
                out(b"HELLO\r\n".to_vec());
            }
        }
        fn status(&self) -> ClientStatus {
            ClientStatus::InProgress
        }
    }
    let img = build_image(&[r#"
        int main() {
            char buf[64];
            int n;
            write_str(1, "220 ready\r\n");
            n = read(0, buf, 63);
            n = read(0, buf, 63); /* never arrives */
            return n;
        }
    "#])
    .unwrap();
    let r = run_session(&img, Box::new(OneShot { sent: false }), 200_000).unwrap();
    assert_eq!(r.stop, Stop::Deadlock);
}

#[test]
fn zero_length_reads_and_writes_are_noops() {
    let img = build_image(&[r#"
        int main() {
            char buf[8];
            int a;
            int b;
            a = read(0, buf, 0);
            b = write(1, buf, 0);
            return a * 10 + b;
        }
    "#])
    .unwrap();
    let r = run_session(&img, Box::new(MuteClient), 100_000).unwrap();
    assert_eq!(r.stop, Stop::Exited(0));
}

#[test]
fn stack_exhaustion_faults_as_segv() {
    // Unbounded recursion must hit the guard gap below the stack.
    let img =
        build_image(&["int f(int n) { return f(n + 1); } int main() { return f(0); }"]).unwrap();
    let r = run_session(&img, Box::new(MuteClient), 10_000_000).unwrap();
    match r.stop {
        Stop::Crashed(f) => assert_eq!(f.signal_name(), "SIGSEGV"),
        other => panic!("expected stack overflow crash, got {other:?}"),
    }
}
