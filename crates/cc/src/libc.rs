//! The mini libc, written in mini-C and compiled into every image.
//!
//! These routines are deliberately ordinary compiled code (not host-side
//! intrinsics): the study injects faults into *application text*, and
//! `strcmp`-style comparison loops are exactly the kind of code the paper's
//! Example 1 walks through (`call strcmp; test %eax,%eax; jne`).

/// Syscall numbers follow Linux i386: 1=exit, 3=read, 4=write.
pub const MINI_LIBC: &str = r#"
int read(int fd, char *buf, int n) {
    return __syscall3(3, fd, buf, n);
}

int write(int fd, char *buf, int n) {
    return __syscall3(4, fd, buf, n);
}

void exit(int code) {
    __syscall3(1, code, 0, 0);
}

int strlen(char *s) {
    int n;
    n = 0;
    while (s[n]) {
        n++;
    }
    return n;
}

int strcmp(char *a, char *b) {
    int i;
    i = 0;
    while (a[i] && b[i] && a[i] == b[i]) {
        i++;
    }
    return a[i] - b[i];
}

int strncmp(char *a, char *b, int n) {
    int i;
    i = 0;
    if (n == 0) {
        return 0;
    }
    while (i < n - 1 && a[i] && b[i] && a[i] == b[i]) {
        i++;
    }
    return a[i] - b[i];
}

void strcpy(char *dst, char *src) {
    int i;
    i = 0;
    while (src[i]) {
        dst[i] = src[i];
        i++;
    }
    dst[i] = 0;
}

void strncpy_safe(char *dst, char *src, int max) {
    int i;
    i = 0;
    while (i < max - 1 && src[i]) {
        dst[i] = src[i];
        i++;
    }
    dst[i] = 0;
}

void strcat(char *dst, char *src) {
    strcpy(dst + strlen(dst), src);
}

void memset(char *p, int v, int n) {
    int i;
    for (i = 0; i < n; i++) {
        p[i] = v;
    }
}

void memcpy(char *dst, char *src, int n) {
    int i;
    for (i = 0; i < n; i++) {
        dst[i] = src[i];
    }
}

int atoi(char *s) {
    int v;
    int sign;
    v = 0;
    sign = 1;
    if (*s == '-') {
        sign = -1;
        s++;
    }
    while (*s >= '0' && *s <= '9') {
        v = v * 10 + (*s - '0');
        s++;
    }
    return v * sign;
}

void itoa(int v, char *out) {
    char tmp[16];
    int i;
    int j;
    if (v == 0) {
        out[0] = '0';
        out[1] = 0;
        return;
    }
    j = 0;
    if (v < 0) {
        out[j] = '-';
        j++;
        v = -v;
    }
    i = 0;
    while (v > 0) {
        tmp[i] = '0' + v % 10;
        v = v / 10;
        i++;
    }
    while (i > 0) {
        i--;
        out[j] = tmp[i];
        j++;
    }
    out[j] = 0;
}

int write_str(int fd, char *s) {
    return write(fd, s, strlen(s));
}

/*
 * A stand-in for crypt(3): a deterministic string hash rendered as text.
 * The control-flow structure around it (strcmp of hashed strings) is what
 * the study exercises; the hash itself is immaterial.
 */
void crypt_hash(char *password, char *out) {
    int h;
    int i;
    h = 5381;
    i = 0;
    while (password[i]) {
        h = h * 33 + password[i];
        i++;
    }
    if (h < 0) {
        h = -h;
    }
    itoa(h, out);
}
"#;

/// Maximum bytes a `read` may transfer in one call (mirrors a page-sized
/// kernel buffer; keeps rogue reads bounded).
pub const READ_MAX: u32 = 8192;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn libc_parses() {
        let p = parse(MINI_LIBC).unwrap();
        let names: Vec<&str> = p.funcs.iter().map(|f| f.name.as_str()).collect();
        for expected in [
            "read",
            "write",
            "exit",
            "strlen",
            "strcmp",
            "strncmp",
            "strcpy",
            "strncpy_safe",
            "strcat",
            "memset",
            "memcpy",
            "atoi",
            "itoa",
            "write_str",
            "crypt_hash",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }
}
