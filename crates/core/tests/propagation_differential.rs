//! Differential: the taint tracer must be invisible to every paper
//! artifact. Table 1, Table 5 and Figure 4 are rendered with the
//! tracer on and off — in both execution modes and with the tier-2
//! trace cache on and off — and must be byte-identical.

use fisec_apps::AppSpec;
use fisec_core::{figure4, run_campaign, tables, CampaignConfig, EncodingScheme, ExecutionMode};

/// Render the artifacts one configuration produces.
fn artifacts(app: &AppSpec, cfg: &CampaignConfig) -> (String, String, String) {
    let base = run_campaign(app, cfg);
    let new = run_campaign(
        app,
        &CampaignConfig {
            scheme: EncodingScheme::NewEncoding,
            ..*cfg
        },
    );
    let table1 = tables::render_table1(&[&base]);
    let table5 = tables::render_table5(&[&base], &[&new]);
    let fig4 = figure4::render(&figure4::histogram(&base.clients[0].crash_latencies));
    (table1, table5, fig4)
}

#[test]
fn tables_and_figure4_are_bit_identical_tracer_on_and_off() {
    let mut app = AppSpec::ftpd();
    app.clients.truncate(1);
    for mode in [ExecutionMode::Snapshot, ExecutionMode::FromScratch] {
        for trace_cache in [true, false] {
            let plain = CampaignConfig {
                cond_branches_only: true,
                mode,
                trace_cache,
                ..CampaignConfig::default()
            };
            let traced = CampaignConfig {
                propagation: true,
                ..plain
            };
            let off = artifacts(&app, &plain);
            let on = artifacts(&app, &traced);
            assert_eq!(
                off.0,
                on.0,
                "Table 1 drifted under the tracer ({} mode, trace_cache={trace_cache})",
                mode.name()
            );
            assert_eq!(
                off.1,
                on.1,
                "Table 5 drifted under the tracer ({} mode, trace_cache={trace_cache})",
                mode.name()
            );
            assert_eq!(
                off.2,
                on.2,
                "Figure 4 drifted under the tracer ({} mode, trace_cache={trace_cache})",
                mode.name()
            );
        }
    }
}
