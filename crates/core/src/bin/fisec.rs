//! `fisec` — command-line driver for the DSN'01 reproduction.
//!
//! ```text
//! fisec table1  [--app ftpd|sshd|both] [--threads N] [--json]
//! fisec table3  [--app ...]
//! fisec table5  [--app ...]
//! fisec figure4 [--app ftpd] [--client N]
//! fisec random  [--runs N] [--seed S] [--new-encoding]
//! fisec load    [--samples N] [--seed S]
//! fisec targets [--app ...]
//! fisec disasm  --app ftpd [--func pass]
//! fisec breakins [--app ...]
//! fisec forensics [--app ftpd] [--top K]
//! ```

use fisec_apps::AppSpec;
use fisec_core::{
    figure4, load, random, run_campaign, tables, CampaignConfig, CampaignSummary, EncodingScheme,
};
use fisec_inject::{crash_forensics, enumerate_targets, golden_run, run_injection, OutcomeClass};
use std::process::ExitCode;

struct Args {
    cmd: String,
    app: String,
    func: Option<String>,
    client: usize,
    runs: usize,
    samples: usize,
    seed: u64,
    threads: Option<usize>,
    top: usize,
    json: bool,
    new_encoding: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let cmd = argv.next().ok_or_else(usage)?;
    let mut a = Args {
        cmd,
        app: "both".into(),
        func: None,
        client: 1,
        runs: 3000,
        samples: 200,
        seed: 2001,
        threads: None,
        top: 3,
        json: false,
        new_encoding: false,
    };
    while let Some(flag) = argv.next() {
        let mut val = |name: &str| -> Result<String, String> {
            argv.next().ok_or(format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--app" => a.app = val("--app")?,
            "--func" => a.func = Some(val("--func")?),
            "--client" => a.client = val("--client")?.parse().map_err(|e| format!("{e}"))?,
            "--runs" => a.runs = val("--runs")?.parse().map_err(|e| format!("{e}"))?,
            "--samples" => a.samples = val("--samples")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => a.seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--threads" => a.threads = Some(val("--threads")?.parse().map_err(|e| format!("{e}"))?),
            "--top" => a.top = val("--top")?.parse().map_err(|e| format!("{e}"))?,
            "--json" => a.json = true,
            "--new-encoding" => a.new_encoding = true,
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(a)
}

fn usage() -> String {
    "usage: fisec <table1|table3|table5|figure4|random|load|targets|disasm|breakins|forensics|ablation> [flags]\n\
     flags: --app ftpd|sshd|both  --func NAME  --client N  --runs N  --samples N\n\
            --seed S  --threads N  --top K  --json  --new-encoding"
        .to_string()
}

fn apps_for(name: &str) -> Result<Vec<AppSpec>, String> {
    match name {
        "ftpd" => Ok(vec![AppSpec::ftpd()]),
        "sshd" => Ok(vec![AppSpec::sshd()]),
        "both" => Ok(vec![AppSpec::ftpd(), AppSpec::sshd()]),
        other => Err(format!("unknown app `{other}` (use ftpd, sshd or both)")),
    }
}

fn cfg_of(a: &Args, scheme: EncodingScheme) -> CampaignConfig {
    let mut cfg = CampaignConfig {
        scheme,
        ..CampaignConfig::default()
    };
    if let Some(t) = a.threads {
        cfg.threads = t;
    }
    cfg
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[allow(clippy::too_many_lines)]
fn run(args: &Args) -> Result<(), String> {
    match args.cmd.as_str() {
        "table1" | "table3" => {
            let apps = apps_for(&args.app)?;
            let scheme = if args.new_encoding {
                EncodingScheme::NewEncoding
            } else {
                EncodingScheme::Baseline
            };
            let cfg = cfg_of(args, scheme);
            let results: Vec<_> = apps.iter().map(|a| run_campaign(a, &cfg)).collect();
            let refs: Vec<_> = results.iter().collect();
            if args.json {
                for r in &results {
                    println!("{}", CampaignSummary::from(r).to_json());
                }
            } else if args.cmd == "table1" {
                println!("{}", tables::render_table1(&refs));
            } else {
                println!("{}", tables::render_table2());
                println!("{}", tables::render_table3(&refs));
            }
        }
        "table5" => {
            let apps = apps_for(&args.app)?;
            let base_cfg = cfg_of(args, EncodingScheme::Baseline);
            let new_cfg = cfg_of(args, EncodingScheme::NewEncoding);
            let base: Vec<_> = apps.iter().map(|a| run_campaign(a, &base_cfg)).collect();
            let new: Vec<_> = apps.iter().map(|a| run_campaign(a, &new_cfg)).collect();
            if args.json {
                for r in base.iter().chain(&new) {
                    println!("{}", CampaignSummary::from(r).to_json());
                }
            } else {
                println!("{}", fisec_encoding::render_table4());
                let b: Vec<_> = base.iter().collect();
                let n: Vec<_> = new.iter().collect();
                println!("{}", tables::render_table5(&b, &n));
            }
        }
        "figure4" => {
            let apps = apps_for(if args.app == "both" {
                "ftpd"
            } else {
                &args.app
            })?;
            let app = &apps[0];
            let cfg = cfg_of(args, EncodingScheme::Baseline);
            let result = run_campaign(app, &cfg);
            let idx = args.client.saturating_sub(1).min(result.clients.len() - 1);
            let c = &result.clients[idx];
            let h = figure4::histogram(&c.crash_latencies);
            if args.json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&h).map_err(|e| e.to_string())?
                );
            } else {
                println!("{}", figure4::render(&h));
                println!(
                    "transient deviations before crash: {} of {}",
                    c.transient_deviations,
                    c.crash_latencies.len()
                );
            }
        }
        "random" => {
            let apps = apps_for(if args.app == "both" {
                "ftpd"
            } else {
                &args.app
            })?;
            let scheme = if args.new_encoding {
                EncodingScheme::NewEncoding
            } else {
                EncodingScheme::Baseline
            };
            let r = random::run_random_campaign_scheme(&apps[0], args.runs, args.seed, scheme);
            if args.json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&r).map_err(|e| e.to_string())?
                );
            } else {
                println!(
                    "runs {}  no-effect {}  SD {}  FSV {}  BRK {}",
                    r.runs, r.no_effect, r.sd, r.fsv, r.brk
                );
                match r.errors_per_breakin() {
                    Some(n) => {
                        println!("about one out of {n:.0} errors causes a security violation")
                    }
                    None => println!("no break-in in this sample"),
                }
            }
        }
        "load" => {
            let apps = apps_for(if args.app == "both" {
                "ftpd"
            } else {
                &args.app
            })?;
            let r = load::run_load_study(&apps[0], args.samples, args.seed);
            if args.json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&r).map_err(|e| e.to_string())?
                );
            } else {
                println!("{}", load::render(&r));
            }
        }
        "targets" => {
            for app in apps_for(&args.app)? {
                let set = enumerate_targets(&app.image, &app.auth_funcs, false);
                println!(
                    "{}: {} branch instructions ({} conditional), {} injection runs per client, auth = {:.1}% of text",
                    app.name,
                    set.instructions,
                    set.cond_branches,
                    set.runs(),
                    app.image.text_fraction(&app.auth_funcs) * 100.0
                );
            }
        }
        "disasm" => {
            let apps = apps_for(if args.app == "both" {
                "ftpd"
            } else {
                &args.app
            })?;
            let app = &apps[0];
            let funcs: Vec<String> = match &args.func {
                Some(f) => vec![f.clone()],
                None => app.auth_funcs.iter().map(|s| s.to_string()).collect(),
            };
            for name in funcs {
                let f = app
                    .image
                    .func(&name)
                    .ok_or(format!("no function `{name}` in {}", app.name))?
                    .clone();
                println!("{:08x} <{}>:", f.start, f.name);
                let start = (f.start - app.image.text_base) as usize;
                let end = (f.end - app.image.text_base) as usize;
                for line in fisec_x86::disassemble(&app.image.text[start..end], f.start) {
                    println!("{line}");
                }
                println!();
            }
        }
        "breakins" => {
            for app in apps_for(&args.app)? {
                let client = &app.clients[0];
                let golden = golden_run(&app.image, client).map_err(|e| e.to_string())?;
                let set = enumerate_targets(&app.image, &app.auth_funcs, true);
                println!("{} ({}):", app.name, client.name);
                for t in set
                    .targets
                    .iter()
                    .filter(|t| t.byte_index == 0 || (t.first_byte == 0x0F && t.byte_index == 1))
                {
                    let r = run_injection(&app.image, client, &golden, t, EncodingScheme::Baseline)
                        .map_err(|e| e.to_string())?;
                    if r.outcome == OutcomeClass::Breakin {
                        let off = (t.addr - app.image.text_base) as usize;
                        let before = fisec_x86::decode(&app.image.text[off..off + 8]);
                        let mut bytes = app.image.text[off..off + 8].to_vec();
                        bytes[t.byte_index as usize] ^= 1 << t.bit;
                        let after = fisec_x86::decode(&bytes);
                        println!(
                            "  {:08x}: {}  ->  {}  (bit {} of byte {})",
                            t.addr,
                            fisec_x86::fmt_att(&before, t.addr),
                            fisec_x86::fmt_att(&after, t.addr),
                            t.bit,
                            t.byte_index
                        );
                    }
                }
            }
        }
        "ablation" => {
            let cfg = cfg_of(args, EncodingScheme::Baseline);
            println!("== entry points (sshd, Client1) ==");
            let ep = fisec_core::ablation::entry_points_study(&cfg);
            println!("{}", fisec_core::ablation::render_entry_points(&ep));
            println!("== sampling vs exhaustive (ftpd, Client1) ==");
            let mut ftpd = AppSpec::ftpd();
            ftpd.clients.truncate(1);
            let result = run_campaign(&ftpd, &cfg);
            let (truth, rows) = fisec_core::ablation::sampling_study(
                &result,
                0,
                &[50, 200, 500, result.runs_per_client],
                500,
                args.seed,
            );
            println!("{}", fisec_core::ablation::render_sampling(truth, &rows));
        }
        "forensics" => {
            let apps = apps_for(if args.app == "both" {
                "ftpd"
            } else {
                &args.app
            })?;
            let app = &apps[0];
            let client = &app.clients[0];
            let set = enumerate_targets(&app.image, &app.auth_funcs, false);
            // Collect crash reports and show the longest transient windows.
            let mut reports = Vec::new();
            for t in &set.targets {
                if t.bit % 4 != 0 {
                    continue; // sample every 4th bit for speed
                }
                if let Some(r) = crash_forensics(&app.image, client, t, EncodingScheme::Baseline)
                    .map_err(|e| e.to_string())?
                {
                    reports.push((t.addr, r));
                }
            }
            reports.sort_by_key(|(_, r)| std::cmp::Reverse(r.latency));
            println!(
                "{} crashes sampled; {} longest transient windows:",
                reports.len(),
                args.top
            );
            for (addr, r) in reports.iter().take(args.top) {
                println!("\ninjected at {addr:#010x}:");
                print!("{r}");
            }
        }
        other => return Err(format!("unknown command `{other}`\n{}", usage())),
    }
    Ok(())
}
