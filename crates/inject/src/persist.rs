//! Stable, versioned serialization of digested injection outcomes for
//! the incremental campaign cache.
//!
//! A cached checkpoint group stores one [`CachedRun`] per target, built
//! from the [`InjectionRun`](crate::InjectionRun) plus the divergence
//! observables the campaign layer digests out of a
//! [`DivergenceReport`](crate::DivergenceReport). Enum-valued fields are
//! flattened to short, human-auditable strings rather than relying on
//! derived enum encodings, so the on-disk format only changes when
//! [`DIGEST_SCHEMA`] is bumped deliberately. Decoding is total:
//! malformed input yields `None` (the cache layer treats it as a miss),
//! never a panic.

use crate::classify::{InjectionRun, OutcomeClass};
use fisec_net::ClientStatus;
use fisec_os::Stop;
use fisec_x86::Fault;
use serde::{Deserialize, Serialize};

/// Version tag for the digested-run serialization. Bump on any change
/// to [`CachedRun`]'s fields or the string codecs below; the cache
/// treats entries with a different schema as misses.
pub const DIGEST_SCHEMA: u32 = 1;

/// One memoized injection outcome: everything the campaign layer folds
/// into `CampaignResults` for a run, with enum fields flattened to
/// stable strings.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachedRun {
    /// Outcome abbreviation: NA/NM/SD/FSV/BRK.
    pub outcome: String,
    /// Whether the corrupted instruction executed.
    pub activated: bool,
    /// Stop reason, via [`stop_to_string`].
    pub stop: String,
    /// Client verdict, via [`client_to_string`].
    pub client: String,
    /// Figure 4 crash latency, when the run crashed.
    pub crash_latency: Option<u64>,
    /// Whether pre-crash traffic deviated from golden.
    pub transient_deviation: bool,
    /// Human-readable first trace divergence.
    pub divergence: Option<String>,
    /// Whether the run carried a flight-recorder divergence digest
    /// (distinguishes "recorder off" from "recorder on, no data").
    pub has_div: bool,
    /// Instructions from activation to the first diverging edge.
    pub divergence_depth: Option<u64>,
    /// Instructions from activation to the first trace divergence.
    pub trace_latency: Option<u64>,
}

/// Digested divergence observables: `(divergence_depth, trace_latency)`.
pub type DivObservables = (Option<u64>, Option<u64>);

/// Flatten a run and its digested divergence observables.
pub fn encode_run(run: &InjectionRun, div: Option<DivObservables>) -> CachedRun {
    CachedRun {
        outcome: run.outcome.abbrev().to_string(),
        activated: run.activated,
        stop: stop_to_string(run.stop.clone()),
        client: client_to_string(run.client).to_string(),
        crash_latency: run.crash_latency,
        transient_deviation: run.transient_deviation,
        divergence: run.divergence.clone(),
        has_div: div.is_some(),
        divergence_depth: div.and_then(|(d, _)| d),
        trace_latency: div.and_then(|(_, t)| t),
    }
}

/// Rebuild the run and divergence observables. `None` on any malformed
/// field — the caller treats the whole entry as a cache miss.
pub fn decode_run(c: &CachedRun) -> Option<(InjectionRun, Option<DivObservables>)> {
    let run = InjectionRun {
        outcome: outcome_from_abbrev(&c.outcome)?,
        activated: c.activated,
        stop: stop_from_string(&c.stop)?,
        client: client_from_string(&c.client)?,
        crash_latency: c.crash_latency,
        transient_deviation: c.transient_deviation,
        divergence: c.divergence.clone(),
    };
    let div = c.has_div.then_some((c.divergence_depth, c.trace_latency));
    Some((run, div))
}

/// Stable string form of a [`Stop`]: `exit:<code>`, `crash:<fault>`,
/// `budget`, `deadlock`, `bp:<hex addr>`.
pub fn stop_to_string(stop: Stop) -> String {
    match stop {
        Stop::Exited(code) => format!("exit:{code}"),
        Stop::Crashed(f) => format!("crash:{}", fault_to_string(f)),
        Stop::Budget => "budget".to_string(),
        Stop::Deadlock => "deadlock".to_string(),
        Stop::Breakpoint(addr) => format!("bp:{addr:x}"),
    }
}

/// Inverse of [`stop_to_string`]; `None` on malformed input.
pub fn stop_from_string(s: &str) -> Option<Stop> {
    match s {
        "budget" => return Some(Stop::Budget),
        "deadlock" => return Some(Stop::Deadlock),
        _ => {}
    }
    let (tag, rest) = s.split_once(':')?;
    match tag {
        "exit" => rest.parse().ok().map(Stop::Exited),
        "crash" => fault_from_string(rest).map(Stop::Crashed),
        "bp" => u32::from_str_radix(rest, 16).ok().map(Stop::Breakpoint),
        _ => None,
    }
}

fn fault_to_string(f: Fault) -> String {
    match f {
        Fault::InvalidOpcode(a) => format!("ud:{a:x}"),
        Fault::GeneralProtection(a) => format!("gp:{a:x}"),
        Fault::MemAccess { addr, write } => {
            format!("mem:{addr:x}:{}", if write { 'w' } else { 'r' })
        }
        Fault::FetchFault(a) => format!("fetch:{a:x}"),
        Fault::DivideError(a) => format!("div:{a:x}"),
        Fault::Trap(a) => format!("trap:{a:x}"),
    }
}

fn fault_from_string(s: &str) -> Option<Fault> {
    let (tag, rest) = s.split_once(':')?;
    let hex = |s: &str| u32::from_str_radix(s, 16).ok();
    match tag {
        "ud" => hex(rest).map(Fault::InvalidOpcode),
        "gp" => hex(rest).map(Fault::GeneralProtection),
        "mem" => {
            let (addr, rw) = rest.split_once(':')?;
            let write = match rw {
                "w" => true,
                "r" => false,
                _ => return None,
            };
            hex(addr).map(|addr| Fault::MemAccess { addr, write })
        }
        "fetch" => hex(rest).map(Fault::FetchFault),
        "div" => hex(rest).map(Fault::DivideError),
        "trap" => hex(rest).map(Fault::Trap),
        _ => None,
    }
}

/// Stable string form of a [`ClientStatus`].
pub fn client_to_string(c: ClientStatus) -> &'static str {
    match c {
        ClientStatus::InProgress => "in-progress",
        ClientStatus::Granted => "granted",
        ClientStatus::Denied => "denied",
        ClientStatus::Confused => "confused",
    }
}

/// Inverse of [`client_to_string`]; `None` on malformed input.
pub fn client_from_string(s: &str) -> Option<ClientStatus> {
    match s {
        "in-progress" => Some(ClientStatus::InProgress),
        "granted" => Some(ClientStatus::Granted),
        "denied" => Some(ClientStatus::Denied),
        "confused" => Some(ClientStatus::Confused),
        _ => None,
    }
}

/// Outcome class from its Table 1 abbreviation; `None` on malformed
/// input.
pub fn outcome_from_abbrev(s: &str) -> Option<OutcomeClass> {
    OutcomeClass::ALL.iter().copied().find(|o| o.abbrev() == s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_codec_round_trips_every_variant() {
        let stops = [
            Stop::Exited(0),
            Stop::Exited(-1),
            Stop::Crashed(Fault::InvalidOpcode(0x8048_0001)),
            Stop::Crashed(Fault::GeneralProtection(0x1234)),
            Stop::Crashed(Fault::MemAccess {
                addr: 0xdead_beef,
                write: true,
            }),
            Stop::Crashed(Fault::MemAccess {
                addr: 0,
                write: false,
            }),
            Stop::Crashed(Fault::FetchFault(0xffff_ffff)),
            Stop::Crashed(Fault::DivideError(0x80)),
            Stop::Crashed(Fault::Trap(3)),
            Stop::Budget,
            Stop::Deadlock,
            Stop::Breakpoint(0x8048_1234),
        ];
        for stop in stops {
            let s = stop_to_string(stop.clone());
            assert_eq!(stop_from_string(&s), Some(stop), "via {s:?}");
        }
    }

    #[test]
    fn malformed_strings_decode_to_none_not_panic() {
        for s in [
            "",
            "exit",
            "exit:",
            "exit:x",
            "crash",
            "crash:",
            "crash:mem:zz:w",
            "crash:mem:10:x",
            "crash:nope:1",
            "bp:",
            "bp:zz",
            "unknown:5",
        ] {
            assert_eq!(stop_from_string(s), None, "input {s:?}");
        }
        assert_eq!(client_from_string("Granted"), None);
        assert_eq!(outcome_from_abbrev("XX"), None);
        assert_eq!(outcome_from_abbrev("na"), None);
    }

    #[test]
    fn run_codec_round_trips() {
        let run = InjectionRun {
            outcome: OutcomeClass::FailSilenceViolation,
            activated: true,
            stop: Stop::Crashed(Fault::MemAccess {
                addr: 0x2004,
                write: true,
            }),
            client: ClientStatus::Confused,
            crash_latency: Some(4242),
            transient_deviation: true,
            divergence: Some("msg 3 differs".to_string()),
        };
        // Recorder on, with observables.
        let enc = encode_run(&run, Some((Some(17), None)));
        let (dec, div) = decode_run(&enc).unwrap();
        assert_eq!(dec, run);
        assert_eq!(div, Some((Some(17), None)));
        // Recorder off: no divergence side at all.
        let enc = encode_run(&run, None);
        let (_, div) = decode_run(&enc).unwrap();
        assert_eq!(div, None);
        // JSON round-trip preserves everything.
        let json = serde_json::to_string(&encode_run(&run, Some((None, Some(9))))).unwrap();
        let back: CachedRun = serde_json::from_str(&json).unwrap();
        let (dec, div) = decode_run(&back).unwrap();
        assert_eq!(dec, run);
        assert_eq!(div, Some((None, Some(9))));
    }

    #[test]
    fn bad_outcome_or_stop_is_a_miss() {
        let run = InjectionRun {
            outcome: OutcomeClass::NotManifested,
            activated: true,
            stop: Stop::Exited(0),
            client: ClientStatus::Denied,
            crash_latency: None,
            transient_deviation: false,
            divergence: None,
        };
        let mut c = encode_run(&run, None);
        c.outcome = "??".to_string();
        assert!(decode_run(&c).is_none());
        let mut c = encode_run(&run, None);
        c.stop = "crash:mem:10".to_string();
        assert!(decode_run(&c).is_none());
        let mut c = encode_run(&run, None);
        c.client = "granted!".to_string();
        assert!(decode_run(&c).is_none());
    }
}
