//! Measures the observability overhead of the campaign engine and
//! prints a phase-profile breakdown: the disabled-telemetry campaign is
//! the baseline every instrumentation change must stay within (<2% per
//! the telemetry acceptance bar), and the event-collecting run shows
//! the full cost of one structured event per injection run.

use criterion::{criterion_group, criterion_main, Criterion};
use fisec_apps::AppSpec;
use fisec_core::{run_campaign_traced, CampaignConfig};
use fisec_telemetry::{render_phase_table, MemorySink, Telemetry};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    // A cut-down campaign (one client) keeps iteration time sane while
    // exercising both the snapshot work-queue and the NA pre-filter.
    let mut ftpd = AppSpec::ftpd();
    ftpd.clients.truncate(1);
    let cfg = CampaignConfig::default();

    c.bench_function("campaign/ftpd_client1/telemetry_disabled", |b| {
        b.iter(|| run_campaign_traced(&ftpd, &cfg, &Telemetry::disabled()))
    });

    c.bench_function("campaign/ftpd_client1/metrics_only", |b| {
        b.iter(|| run_campaign_traced(&ftpd, &cfg, &Telemetry::collecting()))
    });

    c.bench_function("campaign/ftpd_client1/memory_events", |b| {
        b.iter(|| {
            let tel = Telemetry::new(Arc::new(MemorySink::new()), false);
            run_campaign_traced(&ftpd, &cfg, &tel)
        })
    });

    // Regenerate the artefact: a measured phase profile of the full
    // ftpd campaign (all clients).
    let full = AppSpec::ftpd();
    let tel = Telemetry::collecting();
    let wall_start = std::time::Instant::now();
    run_campaign_traced(&full, &cfg, &tel);
    let wall = u64::try_from(wall_start.elapsed().as_micros()).unwrap_or(u64::MAX);
    let snap = tel.metrics.snapshot();
    println!("\n== Phase profile: full ftpd campaign (baseline encoding) ==");
    print!("{}", render_phase_table(snap.phases(), wall));
    print!("{}", snap.render());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
