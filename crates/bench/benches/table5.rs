//! Regenerates the paper's **Table 4** (the encoding mapping) and
//! **Table 5** (campaign results under the new encoding, with FSV/BRK
//! reduction rows), and benchmarks the §6.2 remap-flip transform.

use criterion::{criterion_group, criterion_main, Criterion};
use fisec_apps::AppSpec;
use fisec_core::{run_campaign, tables, CampaignConfig};
use fisec_encoding::{remap_flip, ByteCtx, EncodingScheme};

fn bench(c: &mut Criterion) {
    let ftpd = AppSpec::ftpd();
    let sshd = AppSpec::sshd();

    println!("\n== Table 4: x86 Conditional Branch Instruction Encoding Mapping ==");
    println!("{}", fisec_encoding::render_table4());

    let base_cfg = CampaignConfig::default();
    let new_cfg = CampaignConfig {
        scheme: EncodingScheme::NewEncoding,
        ..base_cfg
    };
    let ftp_base = run_campaign(&ftpd, &base_cfg);
    let ssh_base = run_campaign(&sshd, &base_cfg);
    let ftp_new = run_campaign(&ftpd, &new_cfg);
    let ssh_new = run_campaign(&sshd, &new_cfg);
    println!("== Table 5: FTP and SSH Results from New Encoding ==");
    println!(
        "{}",
        tables::render_table5(&[&ftp_base, &ssh_base], &[&ftp_new, &ssh_new])
    );
    println!(
        "baseline BRK: ftpd {}, sshd {}  |  new encoding BRK: ftpd {}, sshd {}",
        ftp_base.total_brk(),
        ssh_base.total_brk(),
        ftp_new.total_brk(),
        ssh_new.total_brk()
    );

    c.bench_function("remap_flip/new_encoding", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for byte in 0x70u8..=0x7F {
                for bit in 0..8 {
                    acc = acc.wrapping_add(remap_flip(
                        std::hint::black_box(byte),
                        bit,
                        ByteCtx::OneByteOpcode,
                        EncodingScheme::NewEncoding,
                    ) as u32);
                }
            }
            acc
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);
