//! End-to-end language-feature tests: compile mini-C programs and verify
//! their behaviour on the simulated machine (exit codes via `_start`).

use fisec_cc::build_image;
use fisec_x86::{Machine, Memory, Perms, Reg32, Region, RunOutcome};

/// Compile and run to the exit syscall; returns the exit code.
fn run(src: &str) -> i32 {
    let image = build_image(&[src]).expect("compiles");
    let mut mem = Memory::new();
    mem.map(Region::with_data(
        "text",
        image.text_base,
        image.text.clone(),
        Perms::RX,
    ))
    .unwrap();
    if !image.data.is_empty() {
        mem.map(Region::with_data(
            "data",
            image.data_base,
            image.data.clone(),
            Perms::RW,
        ))
        .unwrap();
    }
    mem.map(Region::zeroed("stack", 0xBFFE_0000, 0x2_0000, Perms::RW))
        .unwrap();
    let mut m = Machine::new(mem);
    m.cpu.eip = image.func("_start").unwrap().start;
    m.cpu.regs[Reg32::Esp as usize] = 0xBFFF_FFF0;
    match m.run_until_event(10_000_000) {
        RunOutcome::Syscall(0x80) => m.cpu.regs[3] as i32,
        other => panic!("no clean exit: {other:?}"),
    }
}

#[test]
fn while_loop_and_compound_assign() {
    assert_eq!(
        run(
            "int main() { int s; int i; s = 0; i = 1; while (i <= 10) { s += i; i++; } return s; }"
        ),
        55
    );
}

#[test]
fn for_loop_with_break_continue() {
    assert_eq!(
        run(
            "int main() { int s; s = 0; for (int i = 0; i < 100; i++) { \
             if (i % 2 == 0) { continue; } if (i > 10) { break; } s += i; } return s; }"
        ),
        1 + 3 + 5 + 7 + 9
    );
}

#[test]
fn nested_loops() {
    assert_eq!(
        run("int main() { int n; n = 0; for (int i = 0; i < 5; i++) \
             for (int j = 0; j < 5; j++) if (i == j) n++; return n; }"),
        5
    );
}

#[test]
fn pointers_and_address_of() {
    assert_eq!(
        run("int main() { int x; int *p; x = 5; p = &x; *p = *p + 2; return x; }"),
        7
    );
}

#[test]
fn pointer_arithmetic_scales() {
    assert_eq!(
        run(
            "int main() { int a[4]; int *p; a[0] = 10; a[1] = 20; a[2] = 30; \
             p = a; p = p + 2; return *p; }"
        ),
        30
    );
    assert_eq!(
        run("int main() { char s[4]; char *p; s[0] = 'x'; s[1] = 'y'; \
             p = s; p = p + 1; return *p; }"),
        b'y' as i32
    );
}

#[test]
fn pointer_difference() {
    assert_eq!(
        run("int main() { int a[8]; int *p; int *q; p = a; q = &a[5]; return q - p; }"),
        5
    );
}

#[test]
fn arrays_and_indexing() {
    assert_eq!(
        run(
            "int main() { int a[10]; int i; for (i = 0; i < 10; i++) a[i] = i * i; \
             return a[7]; }"
        ),
        49
    );
}

#[test]
fn char_sign_extension() {
    // char is signed: 0x80 must load as -128.
    assert_eq!(run("int main() { char c; c = 128; return c; }"), -128);
}

#[test]
fn global_state_persists_across_calls() {
    assert_eq!(
        run("int counter; void bump() { counter++; } \
             int main() { bump(); bump(); bump(); return counter; }"),
        3
    );
}

#[test]
fn recursion_with_args() {
    assert_eq!(
        run("int ack(int m, int n) { if (m == 0) { return n + 1; } if (n == 0) { return ack(m - 1, 1); } return ack(m - 1, ack(m, n - 1)); } int main() { return ack(2, 3); }"),
        9
    );
}

#[test]
fn post_increment_returns_old_value() {
    assert_eq!(
        run("int main() { int i; i = 5; int j; j = i++; return j * 10 + i; }"),
        56
    );
    assert_eq!(
        run("int main() { int i; i = 5; int j; j = i--; return j * 10 + i; }"),
        54
    );
}

#[test]
fn post_increment_on_pointers_steps_by_size() {
    assert_eq!(
        run(
            "int main() { int a[3]; int *p; a[0] = 1; a[1] = 2; a[2] = 3; \
             p = a; p++; p++; return *p; }"
        ),
        3
    );
}

#[test]
fn short_circuit_skips_side_effects() {
    assert_eq!(
        run("int hits; int bump() { hits++; return 1; } \
             int main() { int r; r = 0 && bump(); r = 1 || bump(); return hits; }"),
        0
    );
    assert_eq!(
        run("int hits; int bump() { hits++; return 1; } \
             int main() { int r; r = 1 && bump(); r = 0 || bump(); return hits; }"),
        2
    );
}

#[test]
fn string_literals_are_addressable() {
    assert_eq!(
        run("int main() { char *s; s = \"hello\"; return s[1]; }"),
        b'e' as i32
    );
    assert_eq!(run("int main() { return strlen(\"hello world\"); }"), 11);
}

#[test]
fn assignment_is_an_expression() {
    assert_eq!(
        run("int main() { int a; int b; a = b = 21; return a + b; }"),
        42
    );
}

#[test]
fn else_if_chains() {
    let prog = |x: i32| {
        format!(
            "int classify(int x) {{ if (x < 0) {{ return 1; }} else if (x == 0) \
             {{ return 2; }} else if (x < 10) {{ return 3; }} else {{ return 4; }} }} \
             int main() {{ return classify({x}); }}"
        )
    };
    assert_eq!(run(&prog(-5)), 1);
    assert_eq!(run(&prog(0)), 2);
    assert_eq!(run(&prog(5)), 3);
    assert_eq!(run(&prog(50)), 4);
}

#[test]
fn comparisons_are_signed() {
    assert_eq!(
        run("int main() { int a; a = -1; if (a < 1) { return 1; } return 0; }"),
        1
    );
}

#[test]
fn division_follows_c_truncation() {
    assert_eq!(run("int main() { return -7 / 2; }"), -3);
    assert_eq!(run("int main() { return -7 % 2; }"), -1);
    assert_eq!(run("int main() { return 7 / -2; }"), -3);
}

#[test]
fn global_char_arrays_with_string_init() {
    assert_eq!(
        run("char msg[] = \"abc\"; int main() { return msg[0] + msg[2] - 2 * 'a'; }"),
        (b'a' + b'c' - 2 * b'a') as i32
    );
}

#[test]
fn shadowing_in_nested_blocks() {
    assert_eq!(
        run("int main() { int x; x = 1; { int x; x = 2; { int x; x = 3; } } return x; }"),
        1
    );
}

#[test]
fn char_pointer_write_through() {
    assert_eq!(
        run(
            "int main() { char buf[4]; char *p; p = buf; *p = 'A'; p[1] = 'B'; \
             return buf[0] * 1000 + buf[1]; }"
        ),
        (b'A' as i32) * 1000 + b'B' as i32
    );
}

#[test]
fn mixed_char_int_arithmetic() {
    assert_eq!(
        run("int main() { char c; int i; c = 'z'; i = c - 'a'; return i; }"),
        25
    );
}

#[test]
fn hex_literals_and_bitops() {
    assert_eq!(run("int main() { return (0xF0 | 0x0F) ^ 0xFF; }"), 0);
    assert_eq!(run("int main() { return 0x2000; }"), 8192);
}

#[test]
fn deep_expression_stack_discipline() {
    // Exercises the push/pop expression stack across nesting.
    assert_eq!(
        run("int main() { return ((1+2)*(3+4) - (5-6)*(7+8)) / 2; }"),
        (21 + 15) / 2
    );
}

#[test]
fn function_results_feed_arguments() {
    assert_eq!(
        run(
            "int twice(int x) { return 2 * x; } int inc(int x) { return x + 1; } \
             int main() { return twice(inc(twice(5))); }"
        ),
        22
    );
}
