//! Reproduce the paper's §3.3 Example 2: a single-bit `je`→`jne` error
//! around an `auth_rhosts()`-style check gives an unauthorized SSH user a
//! login shell — and, per §5.3, the sshd-like server's *multiple points
//! of entry* (none/rhosts/RSA/password) make it easier to break into
//! than the ftpd-like server's single password gate.
//!
//! ```text
//! cargo run --release --example ssh_breakin
//! ```

use fisec_apps::AppSpec;
use fisec_encoding::EncodingScheme;
use fisec_inject::{enumerate_targets, golden_run, run_injection, OutcomeClass};

fn probe(app: &AppSpec, funcs: &[&str]) -> (usize, usize, Vec<(u32, String)>) {
    let client1 = &app.clients[0];
    let golden = golden_run(&app.image, client1).expect("golden");
    let set = enumerate_targets(&app.image, funcs, true);
    let opcode_bits: Vec<_> = set
        .targets
        .iter()
        .filter(|t| t.byte_index == 0 || (t.first_byte == 0x0F && t.byte_index == 1))
        .collect();
    let mut breakins = Vec::new();
    for t in &opcode_bits {
        let r =
            run_injection(&app.image, client1, &golden, t, EncodingScheme::Baseline).expect("run");
        if r.outcome == OutcomeClass::Breakin {
            let off = (t.addr - app.image.text_base) as usize;
            let before = fisec_x86::decode(&app.image.text[off..off + 8]);
            let mut bytes = app.image.text[off..off + 8].to_vec();
            bytes[t.byte_index as usize] ^= 1 << t.bit;
            let after = fisec_x86::decode(&bytes);
            breakins.push((t.addr, format!("{before} -> {after}")));
        }
    }
    (opcode_bits.len(), breakins.len(), breakins)
}

fn main() {
    let sshd = AppSpec::sshd();
    println!("== sshd: probing branch-opcode bits in the three auth functions ==");
    let mut total_bits = 0;
    let mut total_brk = 0;
    for f in &sshd.auth_funcs {
        let (bits, brk, details) = probe(&sshd, &[f]);
        println!("\n{f}: {brk} break-in flips out of {bits} opcode bits");
        for (addr, change) in details.iter().take(4) {
            println!("  {addr:#010x}: {change}");
        }
        total_bits += bits;
        total_brk += brk;
    }
    assert!(total_brk > 0, "expected sshd break-ins");

    println!("\n== ftpd for comparison (single point of entry) ==");
    let ftpd = AppSpec::ftpd();
    let (fbits, fbrk, _) = probe(&ftpd, &["user", "pass"]);
    println!("ftpd user()+pass(): {fbrk} break-in flips out of {fbits} opcode bits");

    let ssh_rate = total_brk as f64 / total_bits as f64;
    let ftp_rate = fbrk as f64 / fbits as f64;
    println!(
        "\nbreak-in rate per opcode bit: sshd {:.2}%  vs  ftpd {:.2}%",
        ssh_rate * 100.0,
        ftp_rate * 100.0
    );
    println!(
        "=> applications with multiple points of entry have a higher probability\n\
         of being compromised (paper §5.3: 1.53% vs 1.07% of activated errors)"
    );
    assert!(
        ssh_rate > ftp_rate,
        "sshd should be easier to break into than ftpd"
    );
}
