//! The execution flight recorder.
//!
//! A bounded control-flow trace: one [`Edge`] per retired control
//! transfer (taken/not-taken conditional branches, direct and indirect
//! jumps and calls, returns, software interrupts, faults), plus the
//! register file and instruction count captured when recording starts
//! and when the trace is taken. Straight-line instructions emit
//! nothing, so a traced basic block costs one branch per instruction on
//! top of normal execution and blocks still retire whole — the recorder
//! composes with the block engine instead of forcing single-stepping.
//!
//! The buffer keeps the *first* `capacity` edges after activation (a
//! prefix window: golden-vs-faulty divergence happens near the injection
//! point, and the paper's Figure 4 shows crash latencies concentrated
//! within ~100 instructions) and counts the overflow, so a runaway run
//! costs bounded memory.
//!
//! Both execution engines ([`crate::Machine::run_until_event`] in block
//! and per-step mode) emit bit-identical edge streams; edges are
//! classified from the decoded instruction, never from the lowered µop.

use crate::cpu::Cpu;
use crate::inst::{Inst, Op};
use crate::mem::Memory;

/// What kind of control transfer an [`Edge`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Conditional branch (including `loop*`/`jecxz`) that was taken.
    BranchTaken,
    /// Conditional branch that fell through.
    BranchNotTaken,
    /// Direct unconditional jump.
    Jump,
    /// Indirect jump through a register or memory.
    IndirectJump,
    /// Direct (relative) call.
    Call,
    /// Indirect call through a register or memory.
    IndirectCall,
    /// Near return.
    Ret,
    /// Software interrupt serviced as a syscall; the edge target is EAX
    /// (the syscall number), not an address.
    Syscall,
    /// The instruction at `from` faulted; the edge target is 0.
    Fault,
}

impl EdgeKind {
    /// Short fixed-width label for rendered timelines.
    pub fn label(self) -> &'static str {
        match self {
            EdgeKind::BranchTaken => "br-taken",
            EdgeKind::BranchNotTaken => "br-fall",
            EdgeKind::Jump => "jmp",
            EdgeKind::IndirectJump => "jmp*",
            EdgeKind::Call => "call",
            EdgeKind::IndirectCall => "call*",
            EdgeKind::Ret => "ret",
            EdgeKind::Syscall => "syscall",
            EdgeKind::Fault => "fault",
        }
    }
}

/// One recorded control transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Address of the transferring (or faulting) instruction.
    pub from: u32,
    /// Transfer target: the next EIP, EAX for [`EdgeKind::Syscall`],
    /// 0 for [`EdgeKind::Fault`].
    pub to: u32,
    /// Absolute retired-instruction count at the edge (the transferring
    /// instruction included; a fetch fault retires nothing and reports
    /// the count before it).
    pub icount: u64,
    /// Transfer classification.
    pub kind: EdgeKind,
}

/// Classify a retired control transfer from its decoded instruction.
///
/// Returns `None` for instructions that emit no edge: every
/// non-control-transfer when it falls through (`taken == false`).
/// Classification uses only the architectural instruction, so the block
/// engine (which executes lowered µops) and the per-step engine record
/// identical streams.
pub fn edge_kind(inst: &Inst, taken: bool) -> Option<EdgeKind> {
    match inst.op {
        Op::Jcc(_) | Op::Loop | Op::Loope | Op::Loopne | Op::Jecxz => Some(if taken {
            EdgeKind::BranchTaken
        } else {
            EdgeKind::BranchNotTaken
        }),
        Op::Jmp => taken.then_some(EdgeKind::Jump),
        Op::JmpInd => taken.then_some(EdgeKind::IndirectJump),
        Op::Call => taken.then_some(EdgeKind::Call),
        Op::CallInd => taken.then_some(EdgeKind::IndirectCall),
        Op::Ret(_) => taken.then_some(EdgeKind::Ret),
        // No other op produces a jump flow; if one ever does, record it
        // as a generic jump rather than silently dropping the edge.
        _ => taken.then_some(EdgeKind::Jump),
    }
}

/// Live recorder state owned by a [`crate::Machine`].
#[derive(Debug, Clone)]
pub(crate) struct FlightRecorder {
    cap: usize,
    edges: Vec<Edge>,
    total: u64,
    start_cpu: Cpu,
    start_icount: u64,
}

impl FlightRecorder {
    pub(crate) fn new(cap: usize, cpu: Cpu, icount: u64) -> FlightRecorder {
        FlightRecorder {
            cap,
            edges: Vec::new(),
            total: 0,
            start_cpu: cpu,
            start_icount: icount,
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, edge: Edge) {
        self.total += 1;
        if self.edges.len() < self.cap {
            self.edges.push(edge);
        }
    }

    pub(crate) fn into_trace(self, stop_cpu: Cpu, stop_icount: u64) -> FlightTrace {
        FlightTrace {
            edges: self.edges,
            total_edges: self.total,
            start_cpu: self.start_cpu,
            start_icount: self.start_icount,
            stop_cpu,
            stop_icount,
        }
    }
}

/// A completed recording: the bounded edge prefix plus the register
/// file and instruction count at both ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightTrace {
    /// The first `capacity` edges after recording started.
    pub edges: Vec<Edge>,
    /// Edges observed in total, including any past the buffer bound.
    pub total_edges: u64,
    /// Register file when recording started.
    pub start_cpu: Cpu,
    /// Retired-instruction count when recording started.
    pub start_icount: u64,
    /// Register file when the trace was taken.
    pub stop_cpu: Cpu,
    /// Retired-instruction count when the trace was taken.
    pub stop_icount: u64,
}

impl FlightTrace {
    /// Instructions retired while recording — for a trace enabled at
    /// error activation and taken at the stop, this is exactly the
    /// paper's Figure 4 crash latency.
    pub fn retired(&self) -> u64 {
        self.stop_icount - self.start_icount
    }

    /// True when edges past the buffer bound were dropped.
    pub fn truncated(&self) -> bool {
        self.total_edges > self.edges.len() as u64
    }
}

/// Index of the first position where two edge streams differ: a
/// position where the edges are unequal, or the shorter stream's end
/// when one is a strict prefix of the other. `None` when the recorded
/// windows are identical (equal streams — or both truncated at the same
/// bound before any divergence).
pub fn first_divergence(golden: &[Edge], faulty: &[Edge]) -> Option<usize> {
    let n = golden.len().min(faulty.len());
    (0..n)
        .find(|&i| golden[i] != faulty[i])
        .or_else(|| (golden.len() != faulty.len()).then_some(n))
}

/// One architectural register whose value differs between two stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegDelta {
    /// Register name (AT&T spelling, plus `eip`/`eflags`).
    pub name: &'static str,
    /// Value in the golden continuation at its stop.
    pub golden: u32,
    /// Value in the faulty run at its stop.
    pub faulty: u32,
}

/// IA-32 register names in encoding order (index with `Reg32`).
pub const REG_NAMES: [&str; 8] = ["eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"];

/// Registers (plus EIP and EFLAGS) that differ between two register
/// files, in encoding order.
pub fn diff_regs(golden: &Cpu, faulty: &Cpu) -> Vec<RegDelta> {
    let mut out = Vec::new();
    for (i, name) in REG_NAMES.iter().enumerate() {
        if golden.regs[i] != faulty.regs[i] {
            out.push(RegDelta {
                name,
                golden: golden.regs[i],
                faulty: faulty.regs[i],
            });
        }
    }
    if golden.eip != faulty.eip {
        out.push(RegDelta {
            name: "eip",
            golden: golden.eip,
            faulty: faulty.eip,
        });
    }
    if golden.eflags != faulty.eflags {
        out.push(RegDelta {
            name: "eflags",
            golden: golden.eflags,
            faulty: faulty.eflags,
        });
    }
    out
}

/// One memory byte that differs between two stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemDiffByte {
    /// Address of the differing byte.
    pub addr: u32,
    /// Byte in the golden continuation at its stop.
    pub golden: u8,
    /// Byte in the faulty run at its stop.
    pub faulty: u8,
}

/// Summary of how two address spaces differ.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MemDelta {
    /// Total differing bytes across all regions.
    pub bytes_changed: u64,
    /// The first few differing bytes, lowest addresses first (bounded
    /// sample for rendering).
    pub sample: Vec<MemDiffByte>,
}

/// Byte-compare two address spaces region by region. Regions are
/// matched pairwise in mapping order (the study's processes never remap
/// after boot, so golden and faulty layouts are identical); a region
/// present in only one space counts every byte as changed.
pub fn diff_memory(golden: &Memory, faulty: &Memory, sample_cap: usize) -> MemDelta {
    let mut delta = MemDelta::default();
    let gr: Vec<_> = golden.regions().collect();
    let fr: Vec<_> = faulty.regions().collect();
    for i in 0..gr.len().max(fr.len()) {
        match (gr.get(i), fr.get(i)) {
            (Some(g), Some(f)) if g.start() == f.start() && g.len() == f.len() => {
                let (gb, fb) = (g.bytes(), f.bytes());
                if gb == fb {
                    continue;
                }
                for (off, (a, b)) in gb.iter().zip(fb).enumerate() {
                    if a != b {
                        delta.bytes_changed += 1;
                        if delta.sample.len() < sample_cap {
                            delta.sample.push(MemDiffByte {
                                addr: g.start().wrapping_add(off as u32),
                                golden: *a,
                                faulty: *b,
                            });
                        }
                    }
                }
            }
            (g, f) => {
                delta.bytes_changed +=
                    u64::from(g.map_or(0, |r| r.len())) + u64::from(f.map_or(0, |r| r.len()));
            }
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(from: u32, to: u32, icount: u64, kind: EdgeKind) -> Edge {
        Edge {
            from,
            to,
            icount,
            kind,
        }
    }

    #[test]
    fn edge_kind_classifies_transfers() {
        use crate::inst::Cond;
        let jcc = Inst::new(Op::Jcc(Cond::E));
        assert_eq!(edge_kind(&jcc, true), Some(EdgeKind::BranchTaken));
        assert_eq!(edge_kind(&jcc, false), Some(EdgeKind::BranchNotTaken));
        assert_eq!(edge_kind(&Inst::new(Op::Jmp), true), Some(EdgeKind::Jump));
        assert_eq!(
            edge_kind(&Inst::new(Op::JmpInd), true),
            Some(EdgeKind::IndirectJump)
        );
        assert_eq!(edge_kind(&Inst::new(Op::Call), true), Some(EdgeKind::Call));
        assert_eq!(
            edge_kind(&Inst::new(Op::CallInd), true),
            Some(EdgeKind::IndirectCall)
        );
        assert_eq!(edge_kind(&Inst::new(Op::Ret(0)), true), Some(EdgeKind::Ret));
        assert_eq!(edge_kind(&Inst::new(Op::Mov), false), None);
        assert_eq!(
            edge_kind(&Inst::new(Op::Loop), false),
            Some(EdgeKind::BranchNotTaken)
        );
    }

    #[test]
    fn recorder_keeps_prefix_and_counts_overflow() {
        let mut r = FlightRecorder::new(2, Cpu::new(), 10);
        for i in 0..5u32 {
            r.push(e(i, i + 1, 10 + u64::from(i), EdgeKind::Jump));
        }
        let t = r.into_trace(Cpu::new(), 40);
        assert_eq!(t.edges.len(), 2);
        assert_eq!(t.total_edges, 5);
        assert!(t.truncated());
        assert_eq!(t.edges[0].from, 0);
        assert_eq!(t.edges[1].from, 1);
        assert_eq!(t.retired(), 30);
    }

    #[test]
    fn first_divergence_finds_mismatch_and_length_difference() {
        let a = vec![
            e(1, 2, 1, EdgeKind::Jump),
            e(2, 3, 2, EdgeKind::Call),
            e(3, 4, 3, EdgeKind::Ret),
        ];
        let mut b = a.clone();
        assert_eq!(first_divergence(&a, &b), None);
        b[1].to = 9;
        assert_eq!(first_divergence(&a, &b), Some(1));
        let c = &a[..2];
        assert_eq!(first_divergence(&a, c), Some(2));
        assert_eq!(first_divergence(&[], &[]), None);
    }

    #[test]
    fn diff_regs_reports_only_changes() {
        let g = Cpu::new();
        let mut f = Cpu::new();
        assert!(diff_regs(&g, &f).is_empty());
        f.regs[0] = 7;
        f.eip = 0x1000;
        let d = diff_regs(&g, &f);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].name, "eax");
        assert_eq!(d[0].faulty, 7);
        assert_eq!(d[1].name, "eip");
    }

    #[test]
    fn diff_memory_counts_and_samples() {
        use crate::mem::{Perms, Region};
        let mut g = Memory::new();
        g.map(Region::with_data("data", 0x1000, vec![0u8; 64], Perms::RW))
            .unwrap();
        let mut f = g.clone();
        assert_eq!(diff_memory(&g, &f, 4).bytes_changed, 0);
        f.write8(0x1004, 0xAA).unwrap();
        f.write8(0x1010, 0xBB).unwrap();
        let d = diff_memory(&g, &f, 1);
        assert_eq!(d.bytes_changed, 2);
        assert_eq!(d.sample.len(), 1);
        assert_eq!(
            d.sample[0],
            MemDiffByte {
                addr: 0x1004,
                golden: 0,
                faulty: 0xAA
            }
        );
    }
}
