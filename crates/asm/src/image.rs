//! Assembled program images and symbol tables.

use fisec_x86::{decode, Inst};

/// A function symbol: name plus the half-open byte range `[start, end)` of
/// its body in the text segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncSymbol {
    /// Function name.
    pub name: String,
    /// First instruction address.
    pub start: u32,
    /// One past the last instruction byte.
    pub end: u32,
}

/// A data symbol: name, absolute address, and length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSymbol {
    /// Symbol name.
    pub name: String,
    /// Absolute address in the data segment.
    pub addr: u32,
    /// Length in bytes.
    pub len: u32,
}

/// Function and data symbols of an image.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolTable {
    /// Functions in definition order.
    pub funcs: Vec<FuncSymbol>,
    /// Data symbols in definition order.
    pub data: Vec<DataSymbol>,
}

/// An assembled program: text and data bytes plus their load addresses and
/// symbols.
#[derive(Debug, Clone)]
pub struct Image {
    /// Text segment bytes.
    pub text: Vec<u8>,
    /// Data segment bytes.
    pub data: Vec<u8>,
    /// Load address of the text segment.
    pub text_base: u32,
    /// Load address of the data segment.
    pub data_base: u32,
    /// Symbol table.
    pub symbols: SymbolTable,
}

impl Image {
    /// Look up a function by name.
    pub fn func(&self, name: &str) -> Option<&FuncSymbol> {
        self.symbols.funcs.iter().find(|f| f.name == name)
    }

    /// Look up a data symbol by name.
    pub fn data_symbol(&self, name: &str) -> Option<&DataSymbol> {
        self.symbols.data.iter().find(|d| d.name == name)
    }

    /// Decode the instructions of a function body linearly. Returns
    /// `(address, instruction)` pairs. This is how the fault injector
    /// enumerates the branch instructions of the paper's target functions.
    pub fn decode_func(&self, f: &FuncSymbol) -> Vec<(u32, Inst)> {
        let mut out = Vec::new();
        let mut pos = (f.start - self.text_base) as usize;
        let end = (f.end - self.text_base) as usize;
        while pos < end {
            let i = decode(&self.text[pos..end.min(pos + 15).max(pos)]);
            out.push((self.text_base + pos as u32, i));
            pos += i.len as usize;
        }
        out
    }

    /// The fraction of the text segment occupied by the named functions —
    /// the paper reports its injected sections as 2.1% (sshd) and 8%
    /// (ftpd) of the compiled binaries.
    pub fn text_fraction(&self, func_names: &[&str]) -> f64 {
        let selected: u32 = func_names
            .iter()
            .filter_map(|n| self.func(n))
            .map(|f| f.end - f.start)
            .sum();
        if self.text.is_empty() {
            0.0
        } else {
            selected as f64 / self.text.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> Image {
        Image {
            // mov eax,1; je +2; inc eax; ret
            text: vec![0xB8, 1, 0, 0, 0, 0x74, 0x01, 0x40, 0xC3],
            data: vec![],
            text_base: 0x1000,
            data_base: 0x2000,
            symbols: SymbolTable {
                funcs: vec![FuncSymbol {
                    name: "f".into(),
                    start: 0x1000,
                    end: 0x1009,
                }],
                data: vec![],
            },
        }
    }

    #[test]
    fn decode_func_boundaries() {
        let img = image();
        let f = img.func("f").unwrap().clone();
        let insts = img.decode_func(&f);
        assert_eq!(insts.len(), 4);
        assert_eq!(insts[0].0, 0x1000);
        assert_eq!(insts[1].0, 0x1005);
        assert!(insts[1].1.is_cond_branch());
        assert_eq!(insts[3].0, 0x1008);
    }

    #[test]
    fn text_fraction_computation() {
        let img = image();
        assert!((img.text_fraction(&["f"]) - 1.0).abs() < 1e-9);
        assert_eq!(img.text_fraction(&[]), 0.0);
        assert_eq!(img.text_fraction(&["missing"]), 0.0);
    }
}
