//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates-io access, so the workspace
//! vendors the subset of proptest it uses: the [`strategy::Strategy`]
//! trait with `prop_map`/`prop_filter`/`prop_recursive`/`boxed`,
//! integer-range/tuple/`Just`/union strategies, `any::<T>()`,
//! `collection::vec`, `option::of`, `array::uniform4`, and the
//! `proptest!`/`prop_assert*!`/`prop_oneof!` macros.
//!
//! Differences from upstream: generation is seeded deterministically
//! per test (same inputs every run — failures are inherently
//! reproducible), and there is **no shrinking**: a failing case reports
//! the generated inputs verbatim.

pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop imports for tests.
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

use strategy::Strategy;
use test_runner::TestRng;

/// Canonical strategy for a type ("any value of `T`").
pub trait Arbitrary: Sized + 'static {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy generating any value of a primitive type.
pub struct AnyPrim<T>(std::marker::PhantomData<T>);

impl<T> Clone for AnyPrim<T> {
    fn clone(&self) -> AnyPrim<T> {
        AnyPrim(std::marker::PhantomData)
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;

            fn arbitrary() -> AnyPrim<$t> {
                AnyPrim(std::marker::PhantomData)
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrim<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrim<bool>;

    fn arbitrary() -> AnyPrim<bool> {
        AnyPrim(std::marker::PhantomData)
    }
}

/// Strategy generating fixed-size arrays of an [`Arbitrary`] type.
pub struct AnyArray<T, const N: usize>(std::marker::PhantomData<T>);

impl<T, const N: usize> Clone for AnyArray<T, N> {
    fn clone(&self) -> AnyArray<T, N> {
        AnyArray(std::marker::PhantomData)
    }
}

impl<T: Arbitrary, const N: usize> Strategy for AnyArray<T, N> {
    type Value = [T; N];

    fn generate(&self, rng: &mut TestRng) -> [T; N] {
        let strat = T::arbitrary();
        std::array::from_fn(|_| strat.generate(rng))
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    type Strategy = AnyArray<T, N>;

    fn arbitrary() -> AnyArray<T, N> {
        AnyArray(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from a [`SizeRange`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_incl - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.u64_below(span) as usize);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec<T>` strategy with the given element strategy and size.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<T>` (`None` one time in four).
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.u64_below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `Option<T>` strategy over the given inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[T; 4]` from one element strategy.
    #[derive(Clone)]
    pub struct Uniform4<S> {
        element: S,
    }

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; 4] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    /// Four independent draws from `element`.
    pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
        Uniform4 { element }
    }
}

/// Boolean property assertion; failure fails the current case (with the
/// generated inputs in the panic message) rather than panicking mid-run.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {:?} == {:?}: {}",
                    a,
                    b,
                    ::std::format!($($fmt)*)
                ),
            ));
        }
    }};
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a != *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {:?} != {:?}: {}",
                    a,
                    b,
                    ::std::format!($($fmt)*)
                ),
            ));
        }
    }};
}

/// Weighted or unweighted union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_proptest(__config, stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    let __inputs = ::std::format!(
                        concat!("" $(, stringify!($arg), " = {:?}; ")*),
                        $(&$arg),*
                    );
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    (__inputs, __result)
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = TestRng::deterministic("t", 0);
        let s = (10u8..20).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((20..40).contains(&v) && v % 2 == 0);
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let mut rng = TestRng::deterministic("u", 1);
        let s = prop_oneof![1 => Just(1u8), 1 => Just(2), 3 => Just(3)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(!seen[0] && seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn filter_retries_until_predicate_holds() {
        let mut rng = TestRng::deterministic("f", 2);
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0u8..8)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::deterministic("r", 3);
        for _ in 0..50 {
            assert!(depth(&s.generate(&mut rng)) <= 3);
        }
    }

    #[test]
    fn collections_and_options_respect_shapes() {
        let mut rng = TestRng::deterministic("c", 4);
        let vs = crate::collection::vec(any::<u8>(), 2..5);
        let os = crate::option::of(0u8..4);
        let ar = crate::array::uniform4(0u8..9);
        let mut saw_none = false;
        for _ in 0..100 {
            let v = vs.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            if os.generate(&mut rng).is_none() {
                saw_none = true;
            }
            assert!(ar.generate(&mut rng).iter().all(|x| *x < 9));
        }
        assert!(saw_none);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(a in 0u32..50, b in any::<u8>(), v in crate::collection::vec(0i32..5, 0..4)) {
            prop_assert!(a < 50);
            prop_assert_eq!(a + 1, 1 + a, "commutativity for {}", a);
            prop_assert_ne!(i32::from(b) - 1, 256);
            prop_assert!(v.len() < 4);
        }
    }

    #[test]
    #[should_panic(expected = "macro_failure_reports")]
    fn failing_case_panics_with_inputs() {
        proptest! {
            #[allow(clippy::assertions_on_constants)]
            fn macro_failure_reports(x in 0u8..4) {
                prop_assert!(x > 100);
            }
        }
        macro_failure_reports();
    }
}
