//! Error-location taxonomy (the paper's Table 2).

use fisec_x86::Inst;
use std::fmt;

/// Where inside an instruction an injected bit lives (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ErrorLocation {
    /// 2BC — opcode byte of a 2-byte conditional branch.
    TwoByteCondOpcode,
    /// 2BO — operand (offset) byte of a 2-byte conditional branch.
    TwoByteCondOperand,
    /// 6BC1 — first opcode byte (`0x0F`) of a 6-byte conditional branch.
    SixByteCond1,
    /// 6BC2 — second opcode byte of a 6-byte conditional branch.
    SixByteCond2,
    /// 6BO — operand (offset) bytes of a 6-byte conditional branch.
    SixByteCondOperand,
    /// MISC — other injected instructions (unconditional jumps, calls,
    /// returns, loops; see DESIGN.md on the paper's nonzero MISC rows).
    Misc,
}

impl ErrorLocation {
    /// All six classes in the paper's Table 2/3 order.
    pub const ALL: [ErrorLocation; 6] = [
        ErrorLocation::TwoByteCondOpcode,
        ErrorLocation::TwoByteCondOperand,
        ErrorLocation::SixByteCond1,
        ErrorLocation::SixByteCond2,
        ErrorLocation::SixByteCondOperand,
        ErrorLocation::Misc,
    ];

    /// The paper's abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            ErrorLocation::TwoByteCondOpcode => "2BC",
            ErrorLocation::TwoByteCondOperand => "2BO",
            ErrorLocation::SixByteCond1 => "6BC1",
            ErrorLocation::SixByteCond2 => "6BC2",
            ErrorLocation::SixByteCondOperand => "6BO",
            ErrorLocation::Misc => "MISC",
        }
    }

    /// The paper's definition text (Table 2 right column).
    pub fn definition(self) -> &'static str {
        match self {
            ErrorLocation::TwoByteCondOpcode => "Opcode of 2-byte conditional branch instruction",
            ErrorLocation::TwoByteCondOperand => "Operand of 2-byte conditional branch instruction",
            ErrorLocation::SixByteCond1 => {
                "Byte 1 of opcode of 6-byte conditional branch instruction"
            }
            ErrorLocation::SixByteCond2 => {
                "Byte 2 of opcode of 6-byte conditional branch instruction"
            }
            ErrorLocation::SixByteCondOperand => "Operand of 6-byte conditional branch instruction",
            ErrorLocation::Misc => "Others",
        }
    }

    /// Classify a bit position within a decoded instruction.
    pub fn classify(inst: &Inst, byte_index: u8) -> ErrorLocation {
        if inst.is_cond_branch() {
            match (inst.len, byte_index) {
                (2, 0) => ErrorLocation::TwoByteCondOpcode,
                (2, _) => ErrorLocation::TwoByteCondOperand,
                (6, 0) => ErrorLocation::SixByteCond1,
                (6, 1) => ErrorLocation::SixByteCond2,
                (6, _) => ErrorLocation::SixByteCondOperand,
                // Prefixed/word-size forms would land here; our compiler
                // never emits them, but stay total.
                _ => ErrorLocation::Misc,
            }
        } else {
            ErrorLocation::Misc
        }
    }
}

impl fmt::Display for ErrorLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisec_x86::{decode, Cond, Op};

    #[test]
    fn classify_two_byte_branch() {
        let i = decode(&[0x74, 0x06]);
        assert_eq!(i.op, Op::Jcc(Cond::E));
        assert_eq!(
            ErrorLocation::classify(&i, 0),
            ErrorLocation::TwoByteCondOpcode
        );
        assert_eq!(
            ErrorLocation::classify(&i, 1),
            ErrorLocation::TwoByteCondOperand
        );
    }

    #[test]
    fn classify_six_byte_branch() {
        let i = decode(&[0x0F, 0x84, 0, 1, 0, 0]);
        assert_eq!(ErrorLocation::classify(&i, 0), ErrorLocation::SixByteCond1);
        assert_eq!(ErrorLocation::classify(&i, 1), ErrorLocation::SixByteCond2);
        for b in 2..6 {
            assert_eq!(
                ErrorLocation::classify(&i, b),
                ErrorLocation::SixByteCondOperand
            );
        }
    }

    #[test]
    fn classify_misc() {
        let jmp = decode(&[0xEB, 0x05]);
        assert_eq!(ErrorLocation::classify(&jmp, 0), ErrorLocation::Misc);
        let call = decode(&[0xE8, 0, 0, 0, 0]);
        assert_eq!(ErrorLocation::classify(&call, 2), ErrorLocation::Misc);
    }

    #[test]
    fn table2_fixture() {
        assert_eq!(ErrorLocation::ALL.len(), 6);
        assert_eq!(ErrorLocation::TwoByteCondOpcode.abbrev(), "2BC");
        assert_eq!(ErrorLocation::SixByteCond2.abbrev(), "6BC2");
        assert!(ErrorLocation::Misc.definition().contains("Others"));
    }
}
