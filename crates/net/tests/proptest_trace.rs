//! Property tests for trace normalization and diffing.

use fisec_net::{Dir, Message, Trace};
use proptest::prelude::*;

fn arb_messages() -> impl Strategy<Value = Vec<Message>> {
    proptest::collection::vec(
        (
            prop_oneof![Just(Dir::ToClient), Just(Dir::ToServer)],
            proptest::collection::vec(any::<u8>(), 0..12),
        )
            .prop_map(|(dir, bytes)| Message { dir, bytes }),
        0..16,
    )
}

proptest! {
    /// Normalization is idempotent.
    #[test]
    fn normalization_idempotent(msgs in arb_messages()) {
        let t1 = Trace::normalized(msgs);
        let t2 = Trace::normalized(t1.messages().to_vec());
        prop_assert_eq!(t1, t2);
    }

    /// Normalization preserves the per-direction byte streams.
    #[test]
    fn normalization_preserves_bytes(msgs in arb_messages()) {
        let collect = |ms: &[Message], d: Dir| -> Vec<u8> {
            ms.iter().filter(|m| m.dir == d).flat_map(|m| m.bytes.clone()).collect()
        };
        let before_c = collect(&msgs, Dir::ToClient);
        let before_s = collect(&msgs, Dir::ToServer);
        let t = Trace::normalized(msgs);
        prop_assert_eq!(collect(t.messages(), Dir::ToClient), before_c);
        prop_assert_eq!(collect(t.messages(), Dir::ToServer), before_s);
    }

    /// After normalization, adjacent messages always alternate direction
    /// and none is empty.
    #[test]
    fn normalized_alternates(msgs in arb_messages()) {
        let t = Trace::normalized(msgs);
        for w in t.messages().windows(2) {
            prop_assert_ne!(w[0].dir, w[1].dir);
        }
        prop_assert!(t.messages().iter().all(|m| !m.bytes.is_empty()));
    }

    /// Chunking invariance: re-splitting a trace's payloads arbitrarily
    /// yields an equal normalized trace.
    #[test]
    fn chunking_invariance(msgs in arb_messages(), split in 1usize..5) {
        let t = Trace::normalized(msgs.clone());
        let rechunked: Vec<Message> = msgs
            .into_iter()
            .flat_map(|m| {
                m.bytes
                    .chunks(split)
                    .map(|c| Message { dir: m.dir, bytes: c.to_vec() })
                    .collect::<Vec<_>>()
            })
            .collect();
        prop_assert!(t.matches(&Trace::normalized(rechunked)));
    }

    /// A trace always matches itself and divergence is symmetric in
    /// *presence* (if a diverges from b, b diverges from a).
    #[test]
    fn divergence_symmetry(a in arb_messages(), b in arb_messages()) {
        let ta = Trace::normalized(a);
        let tb = Trace::normalized(b);
        prop_assert!(ta.matches(&ta.clone()));
        prop_assert_eq!(ta.first_divergence(&tb).is_some(), tb.first_divergence(&ta).is_some());
        if ta.matches(&tb) {
            prop_assert_eq!(ta, tb);
        }
    }
}
