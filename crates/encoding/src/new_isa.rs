//! The hypothetical re-encoded processor of §6.2, realized.
//!
//! The paper evaluated its encoding with the old→new→flip→new→old mapping
//! trick because "a real implementation … is not feasible for us". In the
//! simulator it *is* feasible: [`decode_new_isa`] is a decoder for the
//! re-encoded instruction set (it translates the opcode byte(s) through
//! the Table 4 involution and defers to the stock decoder), and
//! [`reencode_image_text`] rewrites a compiled image into the new
//! encoding. Together they let the experiments run **directly on the
//! re-encoded CPU**, which `crates/core/tests/new_isa_equivalence.rs`
//! uses to verify that the paper's trick produces outcome-identical
//! campaigns — a validation the original authors could not perform.

use crate::{map_0f_second, map_1byte};
use fisec_asm::Image;
use fisec_x86::{decode, Inst};

/// Decode one instruction of the *new* (re-encoded) instruction set.
///
/// The new ISA is the old ISA with the first opcode byte renamed through
/// the Table 4 involution (and the second opcode byte for `0x0F`-escaped
/// instructions). Operand bytes are unchanged — mirroring exactly which
/// bytes the §6.2 injection procedure maps.
pub fn decode_new_isa(bytes: &[u8]) -> Inst {
    if bytes.is_empty() {
        return decode(bytes);
    }
    let mut buf = [0u8; 15];
    let n = bytes.len().min(15);
    buf[..n].copy_from_slice(&bytes[..n]);
    buf[0] = map_1byte(buf[0]);
    if buf[0] == 0x0F && n >= 2 {
        buf[1] = map_0f_second(buf[1]);
    }
    decode(&buf[..n])
}

/// Rewrite an image's text segment into the new encoding: for every
/// instruction of every function, rename the opcode byte(s) through the
/// involution. The data segment, symbol table and layout are unchanged
/// (the mapping is length-preserving by construction).
///
/// # Panics
/// Panics if a function range decodes inconsistently (cannot happen for
/// assembler-produced images; the function is intended for them).
pub fn reencode_image_text(image: &Image) -> Image {
    let mut out = image.clone();
    for f in &image.symbols.funcs {
        for (addr, inst) in image.decode_func(f) {
            let off = (addr - image.text_base) as usize;
            let b0 = image.text[off];
            out.text[off] = map_1byte(b0);
            if b0 == 0x0F && inst.len >= 2 {
                out.text[off + 1] = map_0f_second(image.text[off + 1]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisec_x86::{Cond, Op, Operand};

    #[test]
    fn new_isa_je_uses_0x64() {
        // In the new ISA, je is encoded 0x64.
        let i = decode_new_isa(&[0x64, 0x05]);
        assert_eq!(i.op, Op::Jcc(Cond::E));
        assert_eq!(i.dst, Some(Operand::Rel(5)));
        // And 0x74 now means the FS segment prefix (swapped) — decoding
        // 0x74 0x90 in the new ISA yields prefix+nop, not je.
        let i = decode_new_isa(&[0x74, 0x90]);
        assert_eq!(i.op, Op::Nop);
        assert_eq!(i.len, 2);
    }

    #[test]
    fn new_isa_6byte_branches() {
        // 0F 84 (je rel32) is 0F 84 in the new ISA too (identity row).
        let i = decode_new_isa(&[0x0F, 0x84, 1, 0, 0, 0]);
        assert_eq!(i.op, Op::Jcc(Cond::E));
        // 0F 95 decodes as jne (old 0F 85 re-encoded).
        let i = decode_new_isa(&[0x0F, 0x95, 1, 0, 0, 0]);
        assert_eq!(i.op, Op::Jcc(Cond::Ne));
        // 0F 85 in the new ISA is setne (swapped with the setcc block).
        let i = decode_new_isa(&[0x0F, 0x85, 0xC0]);
        assert_eq!(i.op, Op::Setcc(Cond::Ne));
    }

    #[test]
    fn unmapped_instructions_identical() {
        for bytes in [
            &[0x89u8, 0xD8][..],
            &[0xB8, 1, 0, 0, 0][..],
            &[0xC3][..],
            &[0xE8, 0, 0, 0, 0][..],
            &[0x85, 0xC0][..],
        ] {
            assert_eq!(decode_new_isa(bytes), decode(bytes));
        }
    }

    #[test]
    fn reencode_then_new_decode_matches_old_decode() {
        // Build a tiny image, re-encode it, and check semantic identity
        // instruction by instruction.
        use fisec_asm::Assembler;
        use fisec_x86::{Inst, Reg32};
        let mut a = Assembler::new();
        let l = a.new_label();
        a.begin_func("f");
        a.emit(
            Inst::new(Op::Cmp)
                .dst(Operand::Reg(Reg32::Eax))
                .src(Operand::Imm(0)),
        );
        a.jcc(Cond::E, l);
        a.emit(Inst::new(Op::Inc).dst(Operand::Reg(Reg32::Eax)));
        a.bind(l);
        for _ in 0..200 {
            a.emit(Inst::new(Op::Nop));
        }
        a.jcc(Cond::Ne, l); // 6-byte backward branch
        a.emit(Inst::new(Op::Ret(0)));
        a.end_func();
        let img = a.assemble(0x1000, 0x8000).unwrap();
        let re = reencode_image_text(&img);
        assert_eq!(img.text.len(), re.text.len());
        let f = img.func("f").unwrap().clone();
        let old_insts = img.decode_func(&f);
        let mut pos = 0usize;
        for (addr, old) in &old_insts {
            let _ = addr;
            let new = decode_new_isa(&re.text[pos..re.text.len().min(pos + 15)]);
            assert_eq!(&new, old, "at offset {pos}");
            pos += old.len as usize;
        }
        // And the je really is stored as 0x64 now.
        let je_off = old_insts
            .iter()
            .find(|(_, i)| i.op == Op::Jcc(Cond::E))
            .map(|(a, _)| (*a - 0x1000) as usize)
            .unwrap();
        assert_eq!(img.text[je_off], 0x74);
        assert_eq!(re.text[je_off], 0x64);
    }

    #[test]
    fn reencode_is_involution_on_text() {
        use fisec_asm::Assembler;
        let mut a = Assembler::new();
        let l = a.new_label();
        a.begin_func("f");
        a.bind(l);
        a.jcc(Cond::G, l);
        a.emit(fisec_x86::Inst::new(Op::Ret(0)));
        a.end_func();
        let img = a.assemble(0x1000, 0x8000).unwrap();
        let once = reencode_image_text(&img);
        // Re-encoding the re-encoded image decodes differently (the
        // boundaries shift), so instead verify byte-level involution on
        // the opcode byte.
        assert_eq!(crate::map_1byte(once.text[0]), img.text[0]);
    }
}
