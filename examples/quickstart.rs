//! Quickstart: the core phenomenon in ~60 lines.
//!
//! We assemble a tiny authentication decision — "grant only when the
//! check flag is zero" — and show that flipping a single bit of the `je`
//! opcode (0x74 → 0x75, `jne`) reverses the decision, because IA-32
//! encodes opposite branch conditions one Hamming distance apart.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fisec_asm::{mov_ri, Assembler};
use fisec_x86::{
    decode, Cond, Inst, Machine, MemOperand, Memory, Op, Operand, Perms, Reg32, Region,
};

const TEXT: u32 = 0x0804_8000;
const DATA: u32 = 0x0810_0000;

/// Build: eax = [rval]; test eax,eax; je grant; mov eax,0; ret; grant:
/// mov eax,1; ret — the shape of the paper's Figure 1.
fn build() -> fisec_asm::Image {
    let mut a = Assembler::new();
    let rval = a.data("rval", vec![1, 0, 0, 0], 4); // wrong password: rval != 0
    let grant = a.new_label();
    a.begin_func("decide");
    a.emit_sym(
        Inst::new(Op::Mov)
            .dst(Operand::Reg(Reg32::Eax))
            .src(Operand::Mem(MemOperand::abs(0))),
        fisec_asm::SymSlot::MemSrc,
        fisec_asm::SymRef::data(rval),
    );
    a.emit(
        Inst::new(Op::Test)
            .dst(Operand::Reg(Reg32::Eax))
            .src(Operand::Reg(Reg32::Eax)),
    );
    a.jcc(Cond::E, grant); // rval == 0 -> grant
    a.emit(mov_ri(Reg32::Eax, 0)); // deny
    a.emit(Inst::new(Op::Ret(0)));
    a.bind(grant);
    a.emit(mov_ri(Reg32::Eax, 1)); // grant
    a.emit(Inst::new(Op::Ret(0)));
    a.end_func();
    a.assemble(TEXT, DATA).expect("assembles")
}

/// Run `decide` to its `ret` and return EAX (1 = access granted).
fn run(image: &fisec_asm::Image) -> u32 {
    let mut mem = Memory::new();
    mem.map(Region::with_data(
        "text",
        TEXT,
        image.text.clone(),
        Perms::RX,
    ))
    .unwrap();
    mem.map(Region::with_data(
        "data",
        DATA,
        image.data.clone(),
        Perms::RW,
    ))
    .unwrap();
    mem.map(Region::zeroed("stack", 0x9000_0000, 0x1000, Perms::RW))
        .unwrap();
    let mut m = Machine::new(mem);
    m.cpu.eip = TEXT;
    m.cpu.regs[Reg32::Esp as usize] = 0x9000_0FF0;
    // Plant a sentinel return address; `ret` jumps there and faults,
    // which is how we know the function finished.
    m.mem.write32(0x9000_0FF0, 0xDEAD_0000).unwrap();
    loop {
        match m.step() {
            fisec_x86::StepEvent::Executed if m.cpu.eip == 0xDEAD_0000 => break,
            fisec_x86::StepEvent::Executed => {}
            e => panic!("unexpected event {e:?} at {:#x}", m.cpu.eip),
        }
    }
    m.cpu.regs[Reg32::Eax as usize]
}

fn main() {
    let image = build();

    // Locate the je and show its encoding.
    let f = image.func("decide").unwrap().clone();
    let (je_addr, je) = image
        .decode_func(&f)
        .into_iter()
        .find(|(_, i)| i.is_cond_branch())
        .expect("decide has a branch");
    let off = (je_addr - TEXT) as usize;
    println!(
        "correct binary : {je} at {je_addr:#x}, opcode {:#04x}",
        image.text[off]
    );

    assert_eq!(run(&image), 0);
    println!("correct run    : access DENIED (rval != 0), as the programmer intended");

    // Flip one bit of the branch opcode: je (0x74) becomes jne (0x75).
    let mut corrupted = image.clone();
    corrupted.text[off] ^= 0x01;
    let flipped = decode(&corrupted.text[off..off + 2]);
    println!(
        "single-bit flip: opcode {:#04x} -> {:#04x} ({flipped})",
        image.text[off], corrupted.text[off]
    );

    assert_eq!(run(&corrupted), 1);
    println!("corrupted run  : access GRANTED — a permanent security hole");
    println!();
    println!(
        "Under the paper's re-encoding, je maps to {:#04x}; no single-bit\n\
         flip of it reaches another conditional branch (see the\n\
         new_encoding_demo example).",
        fisec_encoding::map_1byte(0x74)
    );
}
