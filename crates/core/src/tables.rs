//! Paper-layout table renderers (Tables 1, 3 and 5).

use crate::campaign::CampaignResult;
use fisec_inject::{ErrorLocation, OutcomeClass};

fn col_header(r: &CampaignResult) -> Vec<String> {
    r.clients
        .iter()
        .map(|c| format!("{} {}", r.app.to_uppercase(), c.client))
        .collect()
}

/// Render Table 1 ("FTP and SSH Result Distributions"): one count column
/// and one %-of-activated column per client, rows NA/NM/SD/FSV/BRK.
pub fn render_table1(results: &[&CampaignResult]) -> String {
    let mut out = String::new();
    let headers: Vec<String> = results.iter().flat_map(|r| col_header(r)).collect();
    out.push_str(&format!("{:<6}", "Type"));
    for h in &headers {
        out.push_str(&format!("{h:>22}"));
    }
    out.push('\n');
    for class in OutcomeClass::ALL {
        out.push_str(&format!("{:<6}", class.abbrev()));
        for r in results {
            for c in &r.clients {
                let n = c.counts.get(class);
                let cell = match c.counts.pct_of_activated(class) {
                    None => format!("{n:>8}        -"),
                    Some(p) => {
                        // The attack categories print a dash for clients
                        // that cannot break in, mirroring the paper.
                        if class == OutcomeClass::Breakin && !c.golden_denied && n == 0 {
                            format!("{:>8}        -", "-")
                        } else {
                            format!("{n:>8}  {p:>6.2}%")
                        }
                    }
                };
                out.push_str(&format!("{cell:>22}"));
            }
        }
        out.push('\n');
    }
    out
}

/// Render Table 3 ("Break-ins and Fail Silence Violations by Location"):
/// rows 2BC/2BO/6BC1/6BC2/6BO/MISC plus a Total row.
pub fn render_table3(results: &[&CampaignResult]) -> String {
    let mut out = String::new();
    let headers: Vec<String> = results.iter().flat_map(|r| col_header(r)).collect();
    out.push_str(&format!("{:<9}", "Location"));
    for h in &headers {
        out.push_str(&format!("{h:>22}"));
    }
    out.push('\n');
    for loc in ErrorLocation::ALL {
        out.push_str(&format!("{:<9}", loc.abbrev()));
        for r in results {
            for c in &r.clients {
                let n = c.brkfsv_by_location.get(loc);
                let p = c.brkfsv_by_location.pct(loc);
                out.push_str(&format!("{:>22}", format!("{n:>8}  {p:>6.2}%")));
            }
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<9}", "Total"));
    for r in results {
        for c in &r.clients {
            let n = c.brkfsv_by_location.total();
            out.push_str(&format!("{:>22}", format!("{n:>8}        -")));
        }
    }
    out.push('\n');
    out
}

/// FSV/BRK reduction percentages between a baseline and a new-encoding
/// campaign for the same app/client (paper Table 5's last two rows).
pub fn reduction_pct(base: usize, new: usize) -> Option<f64> {
    if base == 0 {
        return None;
    }
    Some((base as f64 - new as f64) * 100.0 / base as f64)
}

/// Render Table 5 ("Results from New Encoding"): the Table 1 layout under
/// the new encoding, plus FSV Red. / BRK Red. rows against the baseline.
///
/// # Panics
/// Panics if the two slices do not pair up app-by-app and
/// client-by-client.
pub fn render_table5(baseline: &[&CampaignResult], new: &[&CampaignResult]) -> String {
    assert_eq!(baseline.len(), new.len(), "app count mismatch");
    let mut out = render_table1(new);
    // Reduction rows.
    let mut fsv_row = format!("{:<6}", "FSVRd");
    let mut brk_row = format!("{:<6}", "BRKRd");
    for (b, n) in baseline.iter().zip(new) {
        assert_eq!(b.app, n.app, "app order mismatch");
        assert_eq!(b.clients.len(), n.clients.len(), "client count mismatch");
        for (bc, nc) in b.clients.iter().zip(&n.clients) {
            assert_eq!(bc.client, nc.client, "client order mismatch");
            let fsv = match reduction_pct(bc.counts.fsv, nc.counts.fsv) {
                Some(p) => format!(
                    "{:>8}  {p:>6.0}%",
                    bc.counts.fsv - nc.counts.fsv.min(bc.counts.fsv)
                ),
                None => format!("{:>8}        -", "-"),
            };
            fsv_row.push_str(&format!("{fsv:>22}"));
            let brk = match reduction_pct(bc.counts.brk, nc.counts.brk) {
                Some(p) => format!(
                    "{:>8}  {p:>6.0}%",
                    bc.counts.brk - nc.counts.brk.min(bc.counts.brk)
                ),
                None => format!("{:>8}        -", "-"),
            };
            brk_row.push_str(&format!("{brk:>22}"));
        }
    }
    out.push_str(&fsv_row);
    out.push('\n');
    out.push_str(&brk_row);
    out.push('\n');
    out
}

/// Render Table 2 (the location taxonomy — definitional).
pub fn render_table2() -> String {
    let mut out = String::from("Abbr.  Definition\n");
    for l in ErrorLocation::ALL {
        out.push_str(&format!("{:<6} {}\n", l.abbrev(), l.definition()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::ClientCampaign;
    use crate::counts::{LocationCounts, OutcomeCounts};
    use fisec_encoding::EncodingScheme;
    use fisec_inject::GoldenRun;
    use fisec_net::{ClientStatus, Trace};
    use fisec_os::Stop;

    fn fake_client(name: &str, counts: OutcomeCounts) -> ClientCampaign {
        ClientCampaign {
            client: name.to_string(),
            golden_denied: name == "Client1",
            golden: GoldenRun {
                stop: Stop::Exited(0),
                client: ClientStatus::Denied,
                trace: Trace::default(),
                icount: 1000,
            },
            counts,
            brkfsv_by_location: {
                let mut l = LocationCounts::default();
                for _ in 0..counts.fsv + counts.brk {
                    l.add(fisec_inject::ErrorLocation::TwoByteCondOpcode);
                }
                l
            },
            crash_latencies: vec![10, 20, 5000],
            trace_crash_latencies: vec![],
            transient_deviations: 1,
            records: Vec::new(),
            propagation: None,
        }
    }

    fn fake_result(app: &str, brk: usize, fsv: usize) -> CampaignResult {
        CampaignResult {
            app: app.to_string(),
            scheme: EncodingScheme::Baseline,
            instructions: 50,
            cond_branches: 40,
            runs_per_client: 1000,
            clients: vec![
                fake_client(
                    "Client1",
                    OutcomeCounts {
                        na: 800,
                        nm: 100,
                        sd: 100 - brk - fsv,
                        fsv,
                        brk,
                    },
                ),
                fake_client(
                    "Client2",
                    OutcomeCounts {
                        na: 700,
                        nm: 150,
                        sd: 130,
                        fsv: 20,
                        brk: 0,
                    },
                ),
            ],
        }
    }

    #[test]
    fn table1_layout() {
        let r = fake_result("ftpd", 3, 10);
        let s = render_table1(&[&r]);
        assert!(s.contains("FTPD Client1"));
        assert!(s.contains("NA"));
        assert!(s.contains("BRK"));
        // NA row prints dashes for the percentage.
        let na_line = s.lines().find(|l| l.starts_with("NA")).unwrap();
        assert!(na_line.contains('-'));
        // Client2 BRK prints a dash (cannot break in, golden grants).
        let brk_line = s.lines().find(|l| l.starts_with("BRK")).unwrap();
        assert!(brk_line.contains('-'));
        assert!(brk_line.contains('3'));
    }

    #[test]
    fn table3_totals() {
        let r = fake_result("ssh", 2, 8);
        let s = render_table3(&[&r]);
        let total_line = s.lines().find(|l| l.starts_with("Total")).unwrap();
        assert!(total_line.contains("10")); // 2 + 8 for Client1
        assert!(s.contains("2BC"));
        assert!(s.contains("MISC"));
    }

    #[test]
    fn reduction_math() {
        assert_eq!(reduction_pct(7, 1), Some(600.0 / 7.0));
        assert_eq!(reduction_pct(0, 0), None);
        assert_eq!(reduction_pct(10, 10), Some(0.0));
        assert_eq!(reduction_pct(10, 0), Some(100.0));
    }

    #[test]
    fn table5_has_reduction_rows() {
        let base = fake_result("ftpd", 7, 20);
        let new = fake_result("ftpd", 1, 14);
        let s = render_table5(&[&base], &[&new]);
        assert!(s.contains("FSVRd"));
        assert!(s.contains("BRKRd"));
        // 7 -> 1 is an 86% reduction, the paper's headline number.
        let brk_line = s.lines().find(|l| l.starts_with("BRKRd")).unwrap();
        assert!(brk_line.contains("86%"), "{brk_line}");
    }

    #[test]
    fn table2_definitions() {
        let s = render_table2();
        assert!(s.contains("2BC"));
        assert!(s.contains("Opcode of 2-byte conditional branch instruction"));
        assert_eq!(s.lines().count(), 7);
    }

    #[test]
    #[should_panic(expected = "app count mismatch")]
    fn table5_mismatch_panics() {
        let base = fake_result("ftpd", 1, 1);
        let _ = render_table5(&[&base], &[]);
    }
}
