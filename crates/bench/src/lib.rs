//! # fisec-bench — table/figure regeneration harness + Criterion benches
//!
//! Each bench target under `benches/` regenerates one artefact of the
//! paper's evaluation (printed to stdout before measurement) and then
//! benchmarks the hot operation behind it:
//!
//! | bench target | paper artefact | measured operation |
//! |---|---|---|
//! | `table1` | Table 1 result distributions | one breakpoint injection run |
//! | `table3` | Table 3 location breakdown | target enumeration |
//! | `table5` | Table 5 new-encoding campaign | §6.2 remap-flip |
//! | `figure4` | Figure 4 latency histogram | histogram construction |
//! | `random_rate` | §7 "one in ~3000" estimate | one latent-error session |
//! | `load_study` | §5.4 diversity ablation | one golden session |
//! | `substrate` | — | decoder and interpreter throughput |
//!
//! Run with `cargo bench -p fisec-bench` (add `--bench table1` etc. for a
//! single artefact). Set `FISEC_BENCH_QUICK=1` to shrink the campaign
//! sizes during development.

/// True when the environment asks for reduced campaign sizes.
pub fn quick_mode() -> bool {
    std::env::var_os("FISEC_BENCH_QUICK").is_some()
}
