//! Property tests for branch relaxation: random control-flow graphs must
//! assemble into streams that decode linearly, with every branch landing
//! exactly on its label, regardless of short/long form selection.

use fisec_asm::{mov_ri, Assembler};
use fisec_x86::{decode, Cond, Inst, Op, Operand, Reg32};
use proptest::prelude::*;
use std::collections::HashMap;

const TB: u32 = 0x0804_8000;
const DB: u32 = 0x0810_0000;

/// Marker immediate carrying the label index: `mov eax, 0xBEE0000 + i`.
const MARK: i64 = 0x0BEE_0000;

#[derive(Debug, Clone)]
struct Block {
    pad_before: usize, // nops preceding the branch
    cond: Option<u8>,  // None = jmp, Some(n) = jcc n
    target: usize,     // label index
}

fn arb_blocks(labels: usize) -> impl Strategy<Value = Vec<Block>> {
    proptest::collection::vec(
        (0usize..120, proptest::option::of(0u8..16), 0usize..labels).prop_map(
            |(pad_before, cond, target)| Block {
                pad_before,
                cond,
                target,
            },
        ),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn branches_resolve_to_their_labels(blocks in arb_blocks(6)) {
        let n_labels = 6usize;
        let mut a = Assembler::new();
        let labels: Vec<_> = (0..n_labels).map(|_| a.new_label()).collect();
        a.begin_func("f");
        // Emit the branch soup.
        for b in &blocks {
            for _ in 0..b.pad_before {
                a.emit(Inst::new(Op::Nop));
            }
            match b.cond {
                Some(c) => a.jcc(Cond::from_nibble(c), labels[b.target]),
                None => a.jmp(labels[b.target]),
            }
        }
        // Bind every label before a unique marker instruction.
        for (i, l) in labels.iter().enumerate() {
            a.bind(*l);
            a.emit(mov_ri(Reg32::Eax, MARK + i as i64));
        }
        a.emit(Inst::new(Op::Ret(0)));
        a.end_func();
        let img = a.assemble(TB, DB).expect("assembles");

        // Decode linearly; find marker addresses and collect branches.
        let mut pos = 0usize;
        let mut markers: HashMap<i64, u32> = HashMap::new();
        let mut branches: Vec<(u32, Inst)> = Vec::new();
        while pos < img.text.len() {
            let i = decode(&img.text[pos..]);
            prop_assert!(!matches!(i.op, Op::Invalid(_)), "bad decode at {}", pos);
            let addr = TB + pos as u32;
            if i.op == Op::Mov {
                if let (Some(Operand::Reg(Reg32::Eax)), Some(Operand::Imm(v))) = (i.dst, i.src) {
                    if (MARK..MARK + n_labels as i64).contains(&v) {
                        markers.insert(v - MARK, addr);
                    }
                }
            }
            if matches!(i.op, Op::Jcc(_) | Op::Jmp) {
                branches.push((addr, i));
            }
            pos += i.len as usize;
        }
        prop_assert_eq!(markers.len(), n_labels);

        // Each emitted branch must target its label's marker, in order.
        prop_assert_eq!(branches.len(), blocks.len());
        for (b, (addr, inst)) in blocks.iter().zip(&branches) {
            let Some(Operand::Rel(d)) = inst.dst else {
                prop_assert!(false, "branch without rel operand");
                return Ok(());
            };
            let computed = addr.wrapping_add(inst.len as u32).wrapping_add(d as u32);
            let want = markers[&(b.target as i64)];
            prop_assert_eq!(computed, want, "branch at {:#x} ({})", addr, inst);
            match b.cond {
                Some(c) => prop_assert_eq!(inst.op, Op::Jcc(Cond::from_nibble(c))),
                None => prop_assert_eq!(inst.op, Op::Jmp),
            }
        }
    }

    /// Short branches stay 2 bytes, long ones widen, and the choice is
    /// consistent with the final displacement.
    #[test]
    fn form_selection_is_displacement_consistent(blocks in arb_blocks(4)) {
        let mut a = Assembler::new();
        let labels: Vec<_> = (0..4).map(|_| a.new_label()).collect();
        a.begin_func("f");
        for b in &blocks {
            for _ in 0..b.pad_before {
                a.emit(Inst::new(Op::Nop));
            }
            match b.cond {
                Some(c) => a.jcc(Cond::from_nibble(c), labels[b.target]),
                None => a.jmp(labels[b.target]),
            }
        }
        for l in &labels {
            a.bind(*l);
            a.emit(Inst::new(Op::Nop));
        }
        a.emit(Inst::new(Op::Ret(0)));
        a.end_func();
        let img = a.assemble(TB, DB).expect("assembles");
        let mut pos = 0usize;
        while pos < img.text.len() {
            let i = decode(&img.text[pos..]);
            if let (Op::Jcc(_) | Op::Jmp, Some(Operand::Rel(d))) = (i.op, i.dst) {
                if i.len <= 2 {
                    prop_assert!((-128..=127).contains(&d), "short form with rel {}", d);
                }
                // Long forms with tiny displacements would only mean the
                // relaxer over-widened; it never under-widens:
                // displacement must fit the emitted form by construction.
            }
            pos += i.len as usize;
        }
    }
}
