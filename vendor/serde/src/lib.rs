//! Offline stand-in for `serde`.
//!
//! The build environment has no crates-io access, so the workspace
//! vendors a minimal serde: everything serializes through one
//! self-describing [`Value`] data model, and `#[derive(Serialize,
//! Deserialize)]` (from the sibling `serde_derive` stand-in, enabled by
//! the `derive` feature) works for plain named-field structs — the only
//! shapes this workspace derives. `serde_json` renders and parses
//! `Value` trees.

use std::fmt;

/// Self-describing data model every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also how `None` serializes).
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key/value map (insertion order preserved so snapshots
    /// render deterministically).
    Object(Vec<(String, Value)>),
}

/// Shared `null` for lookups of absent fields.
pub static NULL: Value = Value::Null;

impl Value {
    /// Field lookup on an object; absent keys and non-objects read as
    /// [`Value::Null`] (so `Option` fields tolerate missing keys while
    /// required fields produce a type error).
    pub fn field(&self, name: &str) -> &Value {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map_or(&NULL, |(_, v)| v),
            _ => &NULL,
        }
    }

    /// Short type label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error with a dotted-path context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// New error from a message.
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }

    /// Wrap with the name of the field being deserialized.
    pub fn in_field(self, field: &str) -> Error {
        Error(format!("{field}: {}", self.0))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Convert to a [`Value`] tree.
    fn serialize(&self) -> Value;
}

/// Types that can rebuild themselves from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild from a [`Value`] tree.
    ///
    /// # Errors
    /// [`Error`] when the value's shape does not match `Self`.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<String, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<char, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::msg(format!(
                "expected single-char string, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range"))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range"))),
                    other => Err(Error::msg(format!(
                        "expected integer, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::UInt(n as u64)
                } else {
                    Value::Int(n)
                }
            }
        }

        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::UInt(n) => i64::try_from(*n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| Error::msg(format!("{n} out of range"))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range"))),
                    other => Err(Error::msg(format!(
                        "expected integer, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }

        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    other => Err(Error::msg(format!(
                        "expected number, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Array(xs) => xs
                .iter()
                .enumerate()
                .map(|(i, x)| T::deserialize(x).map_err(|e| e.in_field(&format!("[{i}]"))))
                .collect(),
            other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<[T; N], Error> {
        let xs = Vec::<T>::deserialize(v)?;
        let n = xs.len();
        <[T; N]>::try_from(xs)
            .map_err(|_| Error::msg(format!("expected array of length {N}, got {n}")))
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::deserialize(&42u32.serialize()).unwrap(), 42);
        assert_eq!(i32::deserialize(&(-7i32).serialize()).unwrap(), -7);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(char::deserialize(&'B'.serialize()).unwrap(), 'B');
        assert_eq!(
            Option::<u64>::deserialize(&Some(9u64).serialize()).unwrap(),
            Some(9)
        );
        assert_eq!(Option::<u64>::deserialize(&Value::Null).unwrap(), None);
        let v: Vec<usize> = vec![1, 2, 3];
        assert_eq!(Vec::<usize>::deserialize(&v.serialize()).unwrap(), v);
    }

    #[test]
    fn missing_field_reads_null() {
        let obj = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(obj.field("a"), &Value::UInt(1));
        assert_eq!(obj.field("b"), &Value::Null);
        assert!(u32::deserialize(obj.field("b")).is_err());
        assert_eq!(Option::<u32>::deserialize(obj.field("b")).unwrap(), None);
    }

    #[test]
    fn range_errors_are_reported() {
        assert!(u8::deserialize(&Value::UInt(300)).is_err());
        assert!(u32::deserialize(&Value::Int(-1)).is_err());
        let e = String::deserialize(&Value::UInt(3)).unwrap_err();
        assert!(e.to_string().contains("expected string"));
    }
}
