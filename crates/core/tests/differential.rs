//! Full-campaign differential tests: the checkpoint-based engine (the
//! default) must reproduce the from-scratch reference oracle
//! bit-for-bit over the complete ftpd and sshd campaigns, and both must
//! reproduce the headline numbers recorded in EXPERIMENTS.md (Tables
//! 1/3/5 inputs and the Figure 4 latency vector).

use fisec_apps::AppSpec;
use fisec_core::{run_campaign, CampaignConfig, CampaignResult, EncodingScheme, ExecutionMode};

fn cfg(scheme: EncodingScheme, mode: ExecutionMode) -> CampaignConfig {
    CampaignConfig {
        scheme,
        mode,
        ..CampaignConfig::default()
    }
}

/// Every observable per-client artefact must match between engines:
/// tallies, location breakdowns, latencies, deviation counts and the
/// full per-run record vectors.
fn assert_campaigns_identical(fast: &CampaignResult, slow: &CampaignResult) {
    assert_eq!(fast.runs_per_client, slow.runs_per_client);
    assert_eq!(fast.clients.len(), slow.clients.len());
    for (f, s) in fast.clients.iter().zip(&slow.clients) {
        assert_eq!(f.client, s.client);
        assert_eq!(
            f.counts, s.counts,
            "{} {} tallies diverged",
            fast.app, f.client
        );
        assert_eq!(
            f.brkfsv_by_location, s.brkfsv_by_location,
            "{} {} location breakdown diverged",
            fast.app, f.client
        );
        assert_eq!(
            f.crash_latencies, s.crash_latencies,
            "{} {} Figure-4 latencies diverged",
            fast.app, f.client
        );
        assert_eq!(f.transient_deviations, s.transient_deviations);
        assert_eq!(
            f.records, s.records,
            "{} {} per-run records diverged",
            fast.app, f.client
        );
    }
}

#[test]
fn ftpd_full_campaign_identical_across_engines_and_pinned() {
    let app = AppSpec::ftpd();
    for scheme in [EncodingScheme::Baseline, EncodingScheme::NewEncoding] {
        let fast = run_campaign(&app, &cfg(scheme, ExecutionMode::Snapshot));
        let slow = run_campaign(&app, &cfg(scheme, ExecutionMode::FromScratch));
        assert_campaigns_identical(&fast, &slow);
        // EXPERIMENTS.md pins (Tables 1 and 5): 1072 target bits;
        // Client1 BRK 4 baseline -> 1 new encoding; Client3 BRK 3
        // baseline; granted clients never break in.
        assert_eq!(fast.runs_per_client, 1072);
        match scheme {
            EncodingScheme::Baseline => {
                assert_eq!(fast.clients[0].counts.brk, 4);
                assert_eq!(fast.clients[2].counts.brk, 3);
            }
            EncodingScheme::NewEncoding => {
                assert_eq!(fast.clients[0].counts.brk, 1);
            }
        }
        for c in &fast.clients {
            if !c.golden_denied {
                assert_eq!(c.counts.brk, 0, "{} must not break in", c.client);
            }
        }
    }
}

#[test]
fn sshd_full_campaign_identical_across_engines_and_pinned() {
    let app = AppSpec::sshd();
    for scheme in [EncodingScheme::Baseline, EncodingScheme::NewEncoding] {
        let fast = run_campaign(&app, &cfg(scheme, ExecutionMode::Snapshot));
        let slow = run_campaign(&app, &cfg(scheme, ExecutionMode::FromScratch));
        assert_campaigns_identical(&fast, &slow);
        // EXPERIMENTS.md pins: 1160 target bits; Client1 BRK 20
        // baseline -> 7 new encoding.
        assert_eq!(fast.runs_per_client, 1160);
        let want_brk = match scheme {
            EncodingScheme::Baseline => 20,
            EncodingScheme::NewEncoding => 7,
        };
        assert_eq!(fast.clients[0].counts.brk, want_brk);
    }
}

#[test]
fn full_campaigns_identical_with_and_without_block_cache() {
    // The interpreter's basic-block engine is a pure speedup: over the
    // complete ftpd and sshd campaigns, in both execution modes, every
    // per-run record must be identical with the cache disabled.
    for app in [AppSpec::ftpd(), AppSpec::sshd()] {
        for mode in [ExecutionMode::Snapshot, ExecutionMode::FromScratch] {
            let blk = run_campaign(&app, &cfg(EncodingScheme::Baseline, mode));
            let stp = run_campaign(
                &app,
                &CampaignConfig {
                    block_cache: false,
                    ..cfg(EncodingScheme::Baseline, mode)
                },
            );
            assert_campaigns_identical(&blk, &stp);
        }
    }
}

#[test]
fn full_campaigns_identical_with_and_without_trace_cache() {
    // The tier-2 trace engine (superblocks across taken branches) is a
    // pure speedup on top of the block cache: over the complete ftpd
    // and sshd campaigns, in both execution modes, every per-run record
    // must be identical with the trace cache disabled.
    for app in [AppSpec::ftpd(), AppSpec::sshd()] {
        for mode in [ExecutionMode::Snapshot, ExecutionMode::FromScratch] {
            let tier2 = run_campaign(&app, &cfg(EncodingScheme::Baseline, mode));
            let tier1 = run_campaign(
                &app,
                &CampaignConfig {
                    trace_cache: false,
                    ..cfg(EncodingScheme::Baseline, mode)
                },
            );
            assert_campaigns_identical(&tier2, &tier1);
        }
    }
}

#[test]
fn full_campaigns_identical_with_and_without_flight_recorder() {
    // The flight recorder is a pure observer: over the complete ftpd
    // campaign, in both execution modes, recorder-on results must be
    // bit-identical to recorder-off — and the trace-derived crash
    // latencies must reproduce the live Figure 4 vector exactly.
    let app = AppSpec::ftpd();
    for mode in [ExecutionMode::Snapshot, ExecutionMode::FromScratch] {
        let off = run_campaign(&app, &cfg(EncodingScheme::Baseline, mode));
        let on = run_campaign(
            &app,
            &CampaignConfig {
                flight_recorder: true,
                ..cfg(EncodingScheme::Baseline, mode)
            },
        );
        assert_campaigns_identical(&on, &off);
        for (c_on, c_off) in on.clients.iter().zip(&off.clients) {
            assert!(
                c_off.trace_crash_latencies.is_empty(),
                "recorder-off campaigns record no traces"
            );
            assert_eq!(
                c_on.trace_crash_latencies, c_on.crash_latencies,
                "{:?} {} trace-derived Figure 4 diverged from live",
                mode, c_on.client
            );
        }
    }
}

#[test]
fn snapshot_engine_agrees_sequential_vs_threaded() {
    // The work-queue scheduler must not perturb results or ordering.
    let mut app = AppSpec::ftpd();
    app.auth_funcs = vec!["pass"];
    app.clients.truncate(2);
    let seq = run_campaign(
        &app,
        &CampaignConfig {
            threads: 1,
            ..CampaignConfig::default()
        },
    );
    let par = run_campaign(
        &app,
        &CampaignConfig {
            threads: 4,
            ..CampaignConfig::default()
        },
    );
    assert_campaigns_identical(&par, &seq);
}

#[test]
fn from_scratch_engine_agrees_sequential_vs_threaded() {
    let mut app = AppSpec::ftpd();
    app.auth_funcs = vec!["pass"];
    app.clients.truncate(1);
    let base = CampaignConfig {
        mode: ExecutionMode::FromScratch,
        ..CampaignConfig::default()
    };
    let seq = run_campaign(&app, &CampaignConfig { threads: 1, ..base });
    let par = run_campaign(&app, &CampaignConfig { threads: 4, ..base });
    assert_campaigns_identical(&par, &seq);
}
