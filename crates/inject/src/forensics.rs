//! Crash forensics: what did the server execute between error activation
//! and the crash?
//!
//! The paper's §5.4 examines crash cases with long latency — the
//! *transient window of vulnerability* — by looking at the work the
//! server performed while corrupted ("in several cases erroneous
//! messages were sent out"). This module re-runs an injection with EIP
//! tracing enabled and summarizes the corrupted execution path at
//! function granularity.
//!
//! For edge-granular analysis — the first divergent control-flow edge,
//! propagation depth, and the corrupted-state delta against the golden
//! continuation — see [`crate::divergence`], which supersedes this view
//! wherever per-edge detail matters; the function-granular path here
//! remains the compact summary `fisec forensics` prints.

use crate::target::InjectionTarget;
use fisec_apps::ClientSpec;
use fisec_asm::Image;
use fisec_encoding::{remap_flip, ByteCtx, EncodingScheme};
use fisec_os::{Process, Stop};
use std::fmt;

/// Per-function slice of the corrupted execution path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSegment {
    /// Function name, or `"?"` for addresses outside any known symbol.
    pub func: String,
    /// Consecutive instructions spent there.
    pub instructions: u64,
}

/// Forensic report for one crashing injection.
#[derive(Debug, Clone)]
pub struct CrashReport {
    /// Instructions between activation and crash.
    pub latency: u64,
    /// How the run ended.
    pub stop: Stop,
    /// Function-granular path from activation to the crash (merged
    /// consecutive segments, capped by the trace window).
    pub path: Vec<PathSegment>,
    /// Messages the corrupted server emitted after activation (bytes).
    pub messages_after_activation: usize,
}

impl fmt::Display for CrashReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "crash after {} instructions ({}), {} bytes sent while corrupted",
            self.latency, self.stop, self.messages_after_activation
        )?;
        for seg in &self.path {
            writeln!(f, "  {:<24} {:>8} instructions", seg.func, seg.instructions)?;
        }
        Ok(())
    }
}

/// Size of the EIP ring buffer used for path reconstruction.
pub const TRACE_WINDOW: usize = 65_536;

/// Re-run an injection with tracing and produce a [`CrashReport`].
/// Returns `None` when the target does not activate or the run does not
/// crash.
///
/// # Errors
/// Propagates [`fisec_os::LoadError`].
pub fn crash_forensics(
    image: &Image,
    client: &ClientSpec,
    target: &InjectionTarget,
    scheme: EncodingScheme,
) -> Result<Option<CrashReport>, fisec_os::LoadError> {
    let mut p = Process::load(image, client.make())?;
    p.set_budget(5_000_000);
    p.machine.add_breakpoint(target.addr);
    let Stop::Breakpoint(_) = p.run() else {
        return Ok(None);
    };
    let byte_addr = target.addr.wrapping_add(target.byte_index as u32);
    let orig = p.machine.mem.peek8(byte_addr).expect("mapped");
    let ctx = if target.byte_index == 0 {
        ByteCtx::OneByteOpcode
    } else if target.byte_index == 1 && target.first_byte == 0x0F {
        ByteCtx::SecondOpcodeByte
    } else {
        ByteCtx::Other
    };
    p.machine
        .mem
        .poke8(byte_addr, remap_flip(orig, target.bit, ctx, scheme))
        .expect("mapped");
    p.machine.remove_breakpoint(target.addr);
    p.machine.enable_eip_trace(TRACE_WINDOW);
    let activation_icount = p.icount();
    let bytes_before: usize = traffic_bytes(&p);

    let stop = p.run();
    if !stop.is_crash() {
        return Ok(None);
    }
    let latency = p.icount() - activation_icount;
    let bytes_after = traffic_bytes(&p) - bytes_before;

    // Reconstruct the function-level path.
    let path = merge_path(p.machine.eip_trace().iter().map(|&eip| {
        image
            .symbols
            .funcs
            .iter()
            .find(|f| (f.start..f.end).contains(&eip))
            .map_or("?", |f| f.name.as_str())
    }));
    Ok(Some(CrashReport {
        latency,
        stop,
        path,
        messages_after_activation: bytes_after,
    }))
}

fn traffic_bytes(p: &Process) -> usize {
    p.trace().messages().iter().map(|m| m.bytes.len()).sum()
}

/// Merge a per-instruction stream of function names (one per retired
/// EIP, `"?"` for addresses outside every known symbol) into
/// consecutive [`PathSegment`]s: equal neighbours coalesce, every
/// name change — including into and out of `"?"` gaps — starts a new
/// segment. The segment instruction counts sum to the input length, so
/// a trace capped at [`TRACE_WINDOW`] yields a path capped the same.
pub fn merge_path<'a>(names: impl IntoIterator<Item = &'a str>) -> Vec<PathSegment> {
    let mut path: Vec<PathSegment> = Vec::new();
    for name in names {
        match path.last_mut() {
            Some(seg) if seg.func == name => seg.instructions += 1,
            _ => path.push(PathSegment {
                func: name.to_string(),
                instructions: 1,
            }),
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::enumerate_targets;
    use fisec_apps::AppSpec;

    #[test]
    fn forensics_reconstructs_crash_paths() {
        let app = AppSpec::ftpd();
        let client = &app.clients[0];
        let set = enumerate_targets(&app.image, &["pass"], true);
        // Find a crashing target among offset-byte flips.
        let mut found = false;
        for t in set.targets.iter().filter(|t| t.byte_index == 1).take(64) {
            if let Some(report) =
                crash_forensics(&app.image, client, t, EncodingScheme::Baseline).unwrap()
            {
                assert!(report.latency >= 1);
                assert!(!report.path.is_empty());
                let total: u64 = report.path.iter().map(|s| s.instructions).sum();
                assert!(total <= TRACE_WINDOW as u64);
                // The path must pass through the injected function or its
                // callees before dying.
                let display = format!("{report}");
                assert!(display.contains("instructions"));
                found = true;
                break;
            }
        }
        assert!(found, "no crashing offset flip found in pass()");
    }

    #[test]
    fn merge_path_coalesces_consecutive_same_function_segments() {
        let path = merge_path(["main", "main", "auth", "auth", "auth", "main"]);
        assert_eq!(
            path,
            vec![
                PathSegment {
                    func: "main".into(),
                    instructions: 2
                },
                PathSegment {
                    func: "auth".into(),
                    instructions: 3
                },
                PathSegment {
                    func: "main".into(),
                    instructions: 1
                },
            ]
        );
    }

    #[test]
    fn merge_path_keeps_symbol_gaps_as_separate_segments() {
        // "?" gaps must not be merged into neighbouring functions, and
        // two separate excursions outside the symbol table must remain
        // two segments (re-entering a name starts a new segment).
        let path = merge_path(["f", "?", "?", "f", "?", "g"]);
        let funcs: Vec<&str> = path.iter().map(|s| s.func.as_str()).collect();
        assert_eq!(funcs, ["f", "?", "f", "?", "g"]);
        assert_eq!(path[1].instructions, 2);
        assert_eq!(path[3].instructions, 1);
    }

    #[test]
    fn merge_path_is_capped_by_the_trace_window() {
        // A trace longer than the window arrives pre-capped (the EIP
        // ring holds the most recent TRACE_WINDOW entries); the merged
        // path's instruction total equals the input length exactly.
        let long = vec!["spin"; TRACE_WINDOW + 1000];
        let capped = &long[..TRACE_WINDOW];
        let path = merge_path(capped.iter().copied());
        assert_eq!(path.len(), 1);
        assert_eq!(path[0].instructions, TRACE_WINDOW as u64);
        assert!(merge_path(std::iter::empty()).is_empty());
    }

    #[test]
    fn non_activating_target_yields_none() {
        let app = AppSpec::ftpd();
        let client = &app.clients[0]; // denied: never reaches retr()'s body
        let set = enumerate_targets(&app.image, &["retr"], true);
        let r = crash_forensics(
            &app.image,
            client,
            &set.targets[0],
            EncodingScheme::Baseline,
        )
        .unwrap();
        assert!(r.is_none());
    }
}
