//! The concluding-remarks experiment (§7): massive random single-bit
//! injection over the whole text segment while the server is under a
//! constant authentication attack. The paper reports roughly one
//! security violation per 3,000 single-bit errors.
//!
//! Unlike the breakpoint campaigns, these errors are *latent*: the bit is
//! corrupted in the loaded image before the connection starts, modelling
//! a memory error that persists until the page is reloaded (§5.4).

use fisec_apps::{AppSpec, ClientSpec};
use fisec_asm::Image;
use fisec_encoding::EncodingScheme;
use fisec_inject::{classify_run, golden_run, GoldenRun, InjectionRun, OutcomeClass};
use fisec_os::run_session;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Run one session against an image whose text byte `offset` has `bit`
/// flipped (optionally through the §6.2 new-encoding transform — the
/// transform needs to know whether the byte is an opcode byte, which we
/// determine by decoding the enclosing function stream; for the random
/// campaign we apply the plain flip, as the paper did).
///
/// # Panics
/// Panics if `offset` is out of range.
pub fn run_with_latent_error(
    image: &Image,
    spec: &ClientSpec,
    golden: &GoldenRun,
    offset: usize,
    bit: u8,
) -> InjectionRun {
    assert!(offset < image.text.len(), "offset out of text segment");
    let mut corrupted = image.clone();
    corrupted.text[offset] ^= 1 << bit;
    let budget = (golden.icount * 8).max(400_000);
    let r = run_session(&corrupted, spec.make(), budget).expect("image loads");
    let mut run = classify_run(golden, r.stop, r.client, r.trace, None);
    // With a latent error there is no breakpoint to observe activation;
    // a run indistinguishable from golden counts as "no effect".
    if run.outcome == OutcomeClass::NotManifested {
        run.activated = false;
    }
    run
}

/// Random-campaign tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomCampaignResult {
    /// Total injected errors.
    pub runs: usize,
    /// Runs indistinguishable from golden.
    pub no_effect: usize,
    /// Crashes.
    pub sd: usize,
    /// Fail-silence violations.
    pub fsv: usize,
    /// Security break-ins.
    pub brk: usize,
}

impl RandomCampaignResult {
    /// Errors per break-in ("one out of N"); `None` when no break-in
    /// occurred.
    pub fn errors_per_breakin(&self) -> Option<f64> {
        if self.brk == 0 {
            None
        } else {
            Some(self.runs as f64 / self.brk as f64)
        }
    }
}

/// Run `runs` random single-bit text-segment errors under the attack
/// client (the app's first client pattern), seeded for reproducibility.
pub fn run_random_campaign(app: &AppSpec, runs: usize, seed: u64) -> RandomCampaignResult {
    run_random_campaign_scheme(app, runs, seed, EncodingScheme::Baseline)
}

/// [`run_random_campaign`] parameterized by encoding scheme. Under
/// [`EncodingScheme::NewEncoding`] each chosen byte goes through the
/// §6.2 map→flip→map transform using its decoded byte context.
pub fn run_random_campaign_scheme(
    app: &AppSpec,
    runs: usize,
    seed: u64,
    scheme: EncodingScheme,
) -> RandomCampaignResult {
    let spec = &app.clients[0];
    let golden = golden_run(&app.image, spec).expect("image loads");
    let mut rng = StdRng::seed_from_u64(seed);
    let opcode_ctx = opcode_contexts(&app.image);
    let mut out = RandomCampaignResult::default();
    for _ in 0..runs {
        let offset = rng.gen_range(0..app.image.text.len());
        let bit = rng.gen_range(0..8u8);
        let run = match scheme {
            EncodingScheme::Baseline => {
                run_with_latent_error(&app.image, spec, &golden, offset, bit)
            }
            EncodingScheme::NewEncoding => {
                let ctx = opcode_ctx[offset];
                let mut corrupted = app.image.clone();
                let b = corrupted.text[offset];
                corrupted.text[offset] = fisec_encoding::remap_flip(b, bit, ctx, scheme);
                let budget = (golden.icount * 8).max(400_000);
                let r = run_session(&corrupted, spec.make(), budget).expect("image loads");
                classify_run(&golden, r.stop, r.client, r.trace, None)
            }
        };
        out.runs += 1;
        match run.outcome {
            OutcomeClass::Breakin => out.brk += 1,
            OutcomeClass::SystemDetection => out.sd += 1,
            OutcomeClass::FailSilenceViolation => out.fsv += 1,
            _ => out.no_effect += 1,
        }
    }
    out
}

/// Per-byte §6.2 mapping context, derived by linearly decoding every
/// function body.
fn opcode_contexts(image: &Image) -> Vec<fisec_encoding::ByteCtx> {
    use fisec_encoding::ByteCtx;
    let mut ctx = vec![ByteCtx::Other; image.text.len()];
    for f in &image.symbols.funcs {
        for (addr, inst) in image.decode_func(f) {
            let off = (addr - image.text_base) as usize;
            ctx[off] = ByteCtx::OneByteOpcode;
            if inst.len >= 2 && image.text[off] == 0x0F {
                ctx[off + 1] = ByteCtx::SecondOpcodeByte;
            }
        }
    }
    ctx
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisec_apps::AppSpec;

    #[test]
    fn latent_error_runs_classify() {
        let app = AppSpec::ftpd();
        let spec = &app.clients[0];
        let golden = golden_run(&app.image, spec).unwrap();
        // Flip a bit in _start's first instruction: guaranteed activation,
        // near-certain manifestation of some kind (or none if benign).
        let r = run_with_latent_error(&app.image, spec, &golden, 0, 6);
        assert!(matches!(
            r.outcome,
            OutcomeClass::NotManifested
                | OutcomeClass::SystemDetection
                | OutcomeClass::FailSilenceViolation
                | OutcomeClass::Breakin
        ));
    }

    #[test]
    fn random_campaign_is_reproducible() {
        let app = AppSpec::ftpd();
        let a = run_random_campaign(&app, 30, 42);
        let b = run_random_campaign(&app, 30, 42);
        assert_eq!(a, b);
        assert_eq!(a.runs, 30);
        assert_eq!(a.no_effect + a.sd + a.fsv + a.brk, 30);
    }

    #[test]
    fn different_seeds_differ() {
        let app = AppSpec::ftpd();
        let a = run_random_campaign(&app, 40, 1);
        let b = run_random_campaign(&app, 40, 2);
        // Extremely unlikely to tally identically in every category.
        assert!(a != b || a.no_effect == 40);
    }

    #[test]
    fn errors_per_breakin_math() {
        let r = RandomCampaignResult {
            runs: 3000,
            brk: 1,
            ..Default::default()
        };
        assert_eq!(r.errors_per_breakin(), Some(3000.0));
        let r = RandomCampaignResult::default();
        assert_eq!(r.errors_per_breakin(), None);
    }

    #[test]
    #[should_panic(expected = "offset out of text segment")]
    fn bad_offset_panics() {
        let app = AppSpec::ftpd();
        let spec = &app.clients[0];
        let golden = golden_run(&app.image, spec).unwrap();
        let _ = run_with_latent_error(&app.image, spec, &golden, usize::MAX, 0);
    }
}
