//! Flight-recorder overhead: the full ftpd campaign with the recorder
//! off (the default) and on. Recorder-off must sit within noise of the
//! pre-recorder engine — the instrumentation is one branch per block —
//! while recorder-on pays for the golden continuation per group plus
//! one edge record per control transfer.

use criterion::{criterion_group, criterion_main, Criterion};
use fisec_apps::AppSpec;
use fisec_core::{run_campaign, CampaignConfig};

fn bench(c: &mut Criterion) {
    let ftpd = AppSpec::ftpd();
    let off = CampaignConfig::default();
    let on = CampaignConfig {
        flight_recorder: true,
        ..CampaignConfig::default()
    };

    // Regenerate the cross-check artefact once: the trace-derived
    // Figure 4 input must equal the live one exactly.
    let result = run_campaign(&ftpd, &on);
    for cc in &result.clients {
        assert_eq!(cc.trace_crash_latencies, cc.crash_latencies);
    }
    println!(
        "\n== recorder cross-check: {} trace-derived latencies match live over {} clients ==",
        result
            .clients
            .iter()
            .map(|c| c.trace_crash_latencies.len())
            .sum::<usize>(),
        result.clients.len()
    );

    c.bench_function("campaign/ftpd_recorder_off", |b| {
        b.iter(|| run_campaign(&ftpd, &off))
    });
    c.bench_function("campaign/ftpd_recorder_on", |b| {
        b.iter(|| run_campaign(&ftpd, &on))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
