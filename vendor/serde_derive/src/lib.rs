//! Derive macros for the vendored serde stand-in.
//!
//! Supports exactly the shapes this workspace derives: non-generic
//! structs with named fields, plus the `#[serde(default)]` field
//! attribute (a missing/null field deserializes to `Default::default()`
//! instead of erroring, so old saved JSON stays readable after a struct
//! grows). The input token stream is parsed by hand (no syn/quote in
//! the offline environment): other attributes and visibility markers
//! are skipped, field names collected, and the `impl` blocks are
//! rendered as strings and re-parsed.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field of the derive target.
struct Field {
    name: String,
    /// Carries `#[serde(default)]`.
    default: bool,
}

/// Parsed shape of the derive target.
struct Struct {
    name: String,
    fields: Vec<Field>,
}

fn parse_struct(input: TokenStream) -> Struct {
    let mut iter = input.into_iter();
    for tt in iter.by_ref() {
        if let TokenTree::Ident(id) = &tt {
            if id.to_string() == "struct" {
                break;
            }
            if id.to_string() == "enum" || id.to_string() == "union" {
                panic!("vendored serde_derive only supports structs with named fields");
            }
        }
    }
    let name = match iter.by_ref().next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => panic!("expected struct name"),
    };
    for tt in iter {
        if let TokenTree::Group(g) = &tt {
            match g.delimiter() {
                Delimiter::Brace => {
                    return Struct {
                        name,
                        fields: parse_fields(g.stream()),
                    };
                }
                Delimiter::Parenthesis => {
                    panic!("vendored serde_derive does not support tuple structs");
                }
                _ => {}
            }
        }
        if let TokenTree::Punct(p) = &tt {
            if p.as_char() == '<' {
                panic!("vendored serde_derive does not support generic structs");
            }
        }
    }
    // Unit struct: serialize as an empty object.
    Struct {
        name,
        fields: Vec::new(),
    }
}

/// Is this bracketed attribute body `serde(default)`?
fn is_serde_default(attr: TokenStream) -> bool {
    let mut iter = attr.into_iter();
    match (iter.next(), iter.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            g.stream()
                .into_iter()
                .any(|tt| matches!(&tt, TokenTree::Ident(id) if id.to_string() == "default"))
        }
        _ => false,
    }
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    'fields: loop {
        // Scan attributes (`#[...]`, including rendered doc comments):
        // `#[serde(default)]` marks the field, everything else is skipped.
        let mut default = false;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.next() {
                        default |= is_serde_default(g.stream());
                    }
                }
                _ => break,
            }
        }
        // Skip visibility (`pub`, `pub(crate)`, ...).
        if let Some(TokenTree::Ident(id)) = iter.peek() {
            if id.to_string() == "pub" {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
        }
        match iter.next() {
            Some(TokenTree::Ident(id)) => fields.push(Field {
                name: id.to_string(),
                default,
            }),
            Some(other) => panic!("expected field name, found {other}"),
            None => break,
        }
        // Skip `: Type` up to the next top-level comma. Generic
        // argument lists nest via `<`/`>` puncts, so track that depth;
        // parenthesized/bracketed types arrive as single groups.
        let mut depth = 0i32;
        loop {
            match iter.next() {
                None => break 'fields,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
    fields
}

/// `#[derive(Serialize)]` for named-field structs.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let s = parse_struct(input);
    let pushes: String = s
        .fields
        .iter()
        .map(|f| {
            format!(
                "fields.push((::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::serialize(&self.{f})));\n",
                f = f.name
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n\
         let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n\
         let _ = &mut fields;\n\
         {pushes}\
         ::serde::Value::Object(fields)\n\
         }}\n\
         }}\n",
        name = s.name,
        pushes = pushes
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// `#[derive(Deserialize)]` for named-field structs. Fields marked
/// `#[serde(default)]` fall back to `Default::default()` when the key
/// is missing or null.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let s = parse_struct(input);
    let inits: String = s
        .fields
        .iter()
        .map(|f| {
            if f.default {
                format!(
                    "{f}: match v.field(\"{f}\") {{\n\
                     ::serde::Value::Null => ::std::default::Default::default(),\n\
                     other => ::serde::Deserialize::deserialize(other)\
                     .map_err(|e| e.in_field(\"{f}\"))?,\n\
                     }},\n",
                    f = f.name
                )
            } else {
                format!(
                    "{f}: ::serde::Deserialize::deserialize(v.field(\"{f}\"))\
                     .map_err(|e| e.in_field(\"{f}\"))?,\n",
                    f = f.name
                )
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(v: &::serde::Value) \
         -> ::std::result::Result<{name}, ::serde::Error> {{\n\
         let _ = v;\n\
         ::std::result::Result::Ok({name} {{\n\
         {inits}\
         }})\n\
         }}\n\
         }}\n",
        name = s.name,
        inits = inits
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
