//! Golden-vs-faulty divergence diffing over flight-recorder traces.
//!
//! The recorded entry points in the crate root capture two
//! [`FlightTrace`]s per activated injection: a **golden continuation**
//! (the checkpointed process resumed once *without* the flip, recorder
//! on) and the faulty run itself. Diffing the two edge streams answers
//! the questions the paper's §5.4 narrative raises per run — where did
//! the corrupted control flow first leave the correct path, how far did
//! the error propagate before the run stopped, what state was corrupt
//! at the end, and did the server speak to the client while corrupted —
//! at control-flow-edge granularity rather than the function-granular
//! view of [`crate::forensics`].

use fisec_os::{sysno, Stop};
use fisec_x86::recorder::{diff_memory, diff_regs, first_divergence, MemDelta, RegDelta};
use fisec_x86::{EdgeKind, FlightTrace, Memory};
use std::fmt;
use std::sync::Arc;

/// Flight-recorder edge capacity used by the recorded entry points:
/// the same prefix window as [`crate::forensics::TRACE_WINDOW`], but
/// counted in control transfers, so it covers several times more
/// instructions.
pub const RECORDER_EDGES: usize = 65_536;

/// The golden continuation of one checkpoint: the reference the faulty
/// runs of the same activation point are diffed against.
#[derive(Debug, Clone)]
pub struct GoldenContinuation {
    /// Recorded control flow from the activation point to the natural
    /// stop, shared by every report of the group.
    pub trace: Arc<FlightTrace>,
    /// How the continuation stopped (matches the golden run's stop).
    pub stop: Stop,
    /// The address space at the continuation's stop.
    pub mem: Memory,
}

/// How one faulty run diverged from the golden continuation.
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// The golden continuation's recorded control flow.
    pub golden: Arc<FlightTrace>,
    /// The faulty run's recorded control flow.
    pub faulty: FlightTrace,
    /// Index into both edge streams of the first divergent edge; `None`
    /// when the recorded control flow is identical (the error stayed in
    /// data or never propagated to an edge within the window).
    pub first_divergence: Option<usize>,
    /// Instructions retired between activation and the first divergent
    /// edge — the paper's propagation depth. `None` when control flow
    /// never diverged in the window.
    pub divergence_depth: Option<u64>,
    /// Registers differing between the two stop states.
    pub regs: Vec<RegDelta>,
    /// Memory bytes differing between the two stop states.
    pub mem: MemDelta,
    /// `write` syscalls the faulty run issued at or after the first
    /// divergent edge — messages emitted while corrupted (the study's
    /// servers only `write` to the client socket).
    pub messages_after_divergence: u64,
}

/// Diff one faulty run against its golden continuation.
pub fn diff_run(
    golden: &GoldenContinuation,
    faulty: FlightTrace,
    faulty_mem: &Memory,
) -> DivergenceReport {
    let first = first_divergence(&golden.trace.edges, &faulty.edges);
    let divergence_depth = first.map(|i| {
        // The faulty edge at the divergence point dates the departure;
        // when the faulty stream is a strict prefix (it stopped where
        // golden continued), the faulty stop itself is the departure.
        let at = faulty.edges.get(i).map_or(faulty.stop_icount, |e| e.icount);
        at.saturating_sub(faulty.start_icount)
    });
    let messages_after_divergence = first.map_or(0, |i| {
        faulty.edges[i..]
            .iter()
            .filter(|e| e.kind == EdgeKind::Syscall && e.to == sysno::WRITE)
            .count() as u64
    });
    let regs = diff_regs(&golden.trace.stop_cpu, &faulty.stop_cpu);
    let mem = diff_memory(&golden.mem, faulty_mem, MEM_SAMPLE);
    DivergenceReport {
        golden: Arc::clone(&golden.trace),
        faulty,
        first_divergence: first,
        divergence_depth,
        regs,
        mem,
        messages_after_divergence,
    }
}

/// How many differing memory bytes a report keeps verbatim.
const MEM_SAMPLE: usize = 8;

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.first_divergence {
            Some(i) => {
                let g = self.golden.edges.get(i);
                let x = self.faulty.edges.get(i);
                writeln!(
                    f,
                    "first divergent edge at index {i} (depth {} instructions)",
                    self.divergence_depth.unwrap_or(0)
                )?;
                match (g, x) {
                    (Some(g), Some(x)) => {
                        writeln!(
                            f,
                            "  golden: {:08x} -> {:08x} {}",
                            g.from,
                            g.to,
                            g.kind.label()
                        )?;
                        writeln!(
                            f,
                            "  faulty: {:08x} -> {:08x} {}",
                            x.from,
                            x.to,
                            x.kind.label()
                        )?;
                    }
                    (Some(g), None) => writeln!(
                        f,
                        "  faulty run stopped where golden ran {:08x} -> {:08x} {}",
                        g.from,
                        g.to,
                        g.kind.label()
                    )?,
                    (None, Some(x)) => writeln!(
                        f,
                        "  faulty run ran {:08x} -> {:08x} {} where golden stopped",
                        x.from,
                        x.to,
                        x.kind.label()
                    )?,
                    (None, None) => {}
                }
            }
            None => writeln!(f, "control flow never diverged in the recorded window")?,
        }
        writeln!(
            f,
            "  {} register(s) and {} memory byte(s) differ at stop; {} message write(s) after divergence",
            self.regs.len(),
            self.mem.bytes_changed,
            self.messages_after_divergence
        )?;
        for r in &self.regs {
            writeln!(
                f,
                "    {:<7} golden {:08x}  faulty {:08x}",
                r.name, r.golden, r.faulty
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisec_x86::recorder::Edge;
    use fisec_x86::Cpu;

    fn trace(edges: Vec<Edge>, start: u64, stop: u64) -> FlightTrace {
        FlightTrace {
            total_edges: edges.len() as u64,
            edges,
            start_cpu: Cpu::new(),
            start_icount: start,
            stop_cpu: Cpu::new(),
            stop_icount: stop,
        }
    }

    fn e(from: u32, to: u32, icount: u64, kind: EdgeKind) -> Edge {
        Edge {
            from,
            to,
            icount,
            kind,
        }
    }

    fn continuation(edges: Vec<Edge>, start: u64, stop: u64) -> GoldenContinuation {
        GoldenContinuation {
            trace: Arc::new(trace(edges, start, stop)),
            stop: Stop::Exited(0),
            mem: Memory::new(),
        }
    }

    #[test]
    fn depth_and_messages_count_from_the_divergent_edge() {
        let golden = continuation(
            vec![
                e(0x10, 0x20, 105, EdgeKind::BranchTaken),
                e(0x24, 0x30, 110, EdgeKind::Call),
                e(0x34, 0x04, 115, EdgeKind::Syscall),
            ],
            100,
            130,
        );
        let faulty = trace(
            vec![
                e(0x10, 0x20, 105, EdgeKind::BranchTaken),
                e(0x24, 0x40, 110, EdgeKind::Call), // diverges here
                e(0x44, 0x04, 113, EdgeKind::Syscall),
                e(0x48, 0x04, 118, EdgeKind::Syscall),
                e(0x4C, 0x03, 121, EdgeKind::Syscall), // read, not write
            ],
            100,
            125,
        );
        let r = diff_run(&golden, faulty, &Memory::new());
        assert_eq!(r.first_divergence, Some(1));
        assert_eq!(r.divergence_depth, Some(10));
        assert_eq!(r.messages_after_divergence, 2);
        assert!(r.regs.is_empty());
        assert_eq!(r.mem.bytes_changed, 0);
    }

    #[test]
    fn identical_streams_report_no_divergence() {
        let edges = vec![e(0x10, 0x20, 5, EdgeKind::Jump)];
        let golden = continuation(edges.clone(), 0, 10);
        let r = diff_run(&golden, trace(edges, 0, 10), &Memory::new());
        assert_eq!(r.first_divergence, None);
        assert_eq!(r.divergence_depth, None);
        assert_eq!(r.messages_after_divergence, 0);
        let text = format!("{r}");
        assert!(text.contains("never diverged"));
    }

    #[test]
    fn prefix_stop_dates_depth_at_the_faulty_stop() {
        // The faulty run crashed two edges in; golden kept going.
        let golden = continuation(
            vec![
                e(0x10, 0x20, 4, EdgeKind::Jump),
                e(0x20, 0x30, 9, EdgeKind::Jump),
                e(0x30, 0x40, 14, EdgeKind::Jump),
            ],
            0,
            20,
        );
        let faulty = trace(
            vec![
                e(0x10, 0x20, 4, EdgeKind::Jump),
                e(0x20, 0x30, 9, EdgeKind::Jump),
            ],
            0,
            12,
        );
        let r = diff_run(&golden, faulty, &Memory::new());
        assert_eq!(r.first_divergence, Some(2));
        assert_eq!(r.divergence_depth, Some(12));
    }
}
