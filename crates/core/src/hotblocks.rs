//! Ranked hot-block rendering: the `fisec profile` table, shared with
//! the HTML report.
//!
//! The interpreter's [`fisec_telemetry::ProfileData`] says *where*
//! guest time went — per-block dispatch/retire tallies, the op shapes
//! that still fall back to the stepwise interpreter, and block-cache
//! traffic. This module turns it into the observatory's ranked table:
//! blocks ordered by retired instructions, annotated with the owning
//! function symbol and the disassembly of their first instruction, then
//! the residual slow-path breakdown and the cache bottom line.

use fisec_asm::Image;
use fisec_telemetry::{HotBlock, ProfileData};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Rows shown in the ranked table when the caller has no preference.
pub const DEFAULT_TOP: usize = 20;

/// `func+0xoff` for a text address, or the raw hex outside any symbol.
fn sym(image: &Image, addr: u32) -> String {
    image
        .symbols
        .funcs
        .iter()
        .find(|f| (f.start..f.end).contains(&addr))
        .map_or_else(
            || format!("{addr:#010x}"),
            |f| format!("{}+{:#x}", f.name, addr - f.start),
        )
}

/// AT&T disassembly of the single instruction at `addr`.
fn disasm_at(image: &Image, addr: u32) -> String {
    let Some(off) = addr
        .checked_sub(image.text_base)
        .map(|o| o as usize)
        .filter(|&o| o < image.text.len())
    else {
        return "<outside text>".to_string();
    };
    let end = (off + 16).min(image.text.len());
    let inst = fisec_x86::decode(&image.text[off..end]);
    fisec_x86::fmt_att(&inst, addr)
}

/// Render the ranked hot-block table for one campaign profile.
///
/// Blocks are ordered by retired instructions (ties by address);
/// `image` adds the symbol and leading-instruction annotation when the
/// caller can name the binary the profile came from. Always followed by
/// the slow-path op-shape breakdown and the block-cache bottom line, so
/// the table answers both "where did guest time go" and "what still
/// escapes the block engine".
pub fn render_hot_blocks(data: &ProfileData, image: Option<&Image>, top: usize) -> String {
    let mut out = String::new();
    if data.is_empty() {
        out.push_str("profile is empty (campaign ran without --profile?)\n");
        return out;
    }
    let total = data.total_retired();
    let in_blocks: u64 = data.blocks.iter().map(|b| b.retired).sum();
    let _ = writeln!(
        out,
        "== hot blocks: {} blocks, {} instructions retired ({} in blocks, {} stepwise) ==",
        data.blocks.len(),
        total,
        in_blocks,
        data.stepwise_retired
    );

    let mut ranked: Vec<&HotBlock> = data.blocks.iter().collect();
    ranked.sort_by(|a, b| b.retired.cmp(&a.retired).then(a.addr.cmp(&b.addr)));
    if !ranked.is_empty() {
        let _ = writeln!(
            out,
            "{:>4}  {:<10}  {:<22} {:>10} {:>11} {:>7}  leading instruction",
            "rank", "addr", "symbol", "dispatches", "retired", "%total"
        );
    }
    for (i, b) in ranked.iter().take(top).enumerate() {
        let pct = if total == 0 {
            0.0
        } else {
            b.retired as f64 * 100.0 / total as f64
        };
        let (symbol, lead) = match image {
            Some(img) => (sym(img, b.addr), disasm_at(img, b.addr)),
            None => (format!("{:#010x}", b.addr), String::new()),
        };
        let _ = writeln!(
            out,
            "{:>4}  {:#010x}  {:<22} {:>10} {:>11} {:>6.1}%  {}",
            i + 1,
            b.addr,
            symbol,
            b.dispatches,
            b.retired,
            pct,
            lead
        );
    }
    if ranked.len() > top {
        let _ = writeln!(out, "      ... {} more blocks", ranked.len() - top);
    }

    if !data.hot_traces.is_empty() {
        let in_traces: u64 = data.hot_traces.iter().map(|t| t.retired).sum();
        let _ = writeln!(
            out,
            "hot traces (tier-2 superblocks; {} traces retired {} instructions):",
            data.hot_traces.len(),
            in_traces
        );
        let mut traces: Vec<&HotBlock> = data.hot_traces.iter().collect();
        traces.sort_by(|a, b| b.retired.cmp(&a.retired).then(a.addr.cmp(&b.addr)));
        for t in traces.iter().take(top) {
            let symbol = match image {
                Some(img) => sym(img, t.addr),
                None => format!("{:#010x}", t.addr),
            };
            let _ = writeln!(
                out,
                "  {:#010x}  {:<22} {:>10} dispatches {:>11} retired",
                t.addr, symbol, t.dispatches, t.retired
            );
        }
        if traces.len() > top {
            let _ = writeln!(out, "      ... {} more traces", traces.len() - top);
        }
    }

    let shapes = data.slow_by_shape();
    if shapes.is_empty() {
        out.push_str("slow path: never taken\n");
    } else {
        out.push_str("slow-path ops (executed stepwise, outside any cached block):\n");
        for (shape, count, sites) in &shapes {
            let _ = writeln!(out, "  {shape:<28} {count:>10} hits  {sites:>4} sites");
        }
    }

    let lookups = data.cache_hits + data.cache_built;
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        data.cache_hits as f64 * 100.0 / lookups as f64
    };
    let _ = writeln!(
        out,
        "block cache: {} built, {} hits ({hit_rate:.1}% hit rate), {} invalidated, {} conflict evictions",
        data.cache_built, data.cache_hits, data.cache_invalidated, data.cache_conflict_evictions
    );
    if data.trace_built + data.trace_hits + data.trace_side_exits + data.trace_invalidated > 0 {
        let _ = writeln!(
            out,
            "trace cache: {} built, {} hits, {} side exits, {} invalidated",
            data.trace_built, data.trace_hits, data.trace_side_exits, data.trace_invalidated
        );
    }
    out
}

/// Render the residual slow-path delta between a profile and an earlier
/// baseline profile of the same binary: per op shape, the baseline and
/// current hit counts, tagging shapes whose slow path disappeared as
/// `lowered since baseline` (the burn-down `fisec profile --baseline`
/// reports) and shapes the baseline never saw as `new`.
pub fn render_slow_delta(data: &ProfileData, baseline: &ProfileData) -> String {
    let now: BTreeMap<String, u64> = data
        .slow_by_shape()
        .into_iter()
        .map(|(shape, count, _)| (shape, count))
        .collect();
    let before = baseline.slow_by_shape();
    let mut out = String::new();
    out.push_str("slow-path delta vs baseline:\n");
    let mut lowered = 0usize;
    for (shape, was, _) in &before {
        let is = now.get(shape).copied().unwrap_or(0);
        let tag = if is == 0 && *was > 0 {
            lowered += 1;
            "  lowered since baseline"
        } else if is < *was {
            "  reduced"
        } else {
            ""
        };
        let _ = writeln!(out, "  {shape:<28} {was:>10} -> {is:>10}{tag}");
    }
    for (shape, count) in &now {
        if !before.iter().any(|(s, _, _)| s == shape) {
            let _ = writeln!(out, "  {shape:<28} {:>10} -> {count:>10}  new", 0);
        }
    }
    let _ = writeln!(
        out,
        "  {} of {} baseline shapes lowered since baseline",
        lowered,
        before.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisec_telemetry::SlowShape;

    fn sample() -> ProfileData {
        ProfileData {
            blocks: vec![
                HotBlock {
                    addr: 0x0804_8000,
                    dispatches: 10,
                    retired: 50,
                },
                HotBlock {
                    addr: 0x0804_9000,
                    dispatches: 100,
                    retired: 900,
                },
            ],
            slow: vec![SlowShape {
                addr: 0x0804_8100,
                shape: "div32 r/m32".to_string(),
                count: 7,
            }],
            stepwise_retired: 50,
            cache_built: 2,
            cache_hits: 108,
            cache_invalidated: 1,
            cache_conflict_evictions: 3,
            hot_traces: vec![HotBlock {
                addr: 0x0804_9000,
                dispatches: 80,
                retired: 720,
            }],
            trace_built: 1,
            trace_hits: 80,
            trace_side_exits: 2,
            ..ProfileData::default()
        }
    }

    #[test]
    fn ranks_blocks_by_retired_and_reports_cache() {
        let s = render_hot_blocks(&sample(), None, 10);
        let first = s
            .lines()
            .find(|l| l.trim_start().starts_with("1 "))
            .unwrap();
        assert!(first.contains("0x08049000"), "{s}");
        assert!(s.contains("div32 r/m32"), "{s}");
        assert!(s.contains("7 hits"), "{s}");
        assert!(
            s.contains("2 built, 108 hits (98.2% hit rate), 1 invalidated, 3 conflict evictions"),
            "{s}"
        );
        assert!(
            s.contains("trace cache: 1 built, 80 hits, 2 side exits, 0 invalidated"),
            "{s}"
        );
        assert!(
            s.contains("hot traces (tier-2 superblocks; 1 traces"),
            "{s}"
        );
        assert!(
            s.contains("1000 instructions retired (950 in blocks, 50 stepwise)"),
            "{s}"
        );
    }

    #[test]
    fn tier1_only_profiles_render_without_a_trace_cache_line() {
        let mut p = sample();
        p.hot_traces.clear();
        p.trace_built = 0;
        p.trace_hits = 0;
        p.trace_side_exits = 0;
        let s = render_hot_blocks(&p, None, 10);
        assert!(!s.contains("trace cache:"), "{s}");
        assert!(!s.contains("hot traces"), "{s}");
    }

    #[test]
    fn slow_delta_reports_lowered_shapes() {
        let baseline = ProfileData {
            slow: vec![
                SlowShape {
                    addr: 0x1000,
                    shape: "div32 r/m32".to_string(),
                    count: 17_186,
                },
                SlowShape {
                    addr: 0x2000,
                    shape: "shl32 r32, imm".to_string(),
                    count: 400,
                },
            ],
            ..ProfileData::default()
        };
        let now = ProfileData {
            slow: vec![
                SlowShape {
                    addr: 0x2000,
                    shape: "shl32 r32, imm".to_string(),
                    count: 400,
                },
                SlowShape {
                    addr: 0x3000,
                    shape: "rep movs8".to_string(),
                    count: 9,
                },
            ],
            ..ProfileData::default()
        };
        let s = render_slow_delta(&now, &baseline);
        let div = s.lines().find(|l| l.contains("div32 r/m32")).unwrap();
        assert!(
            div.contains("17186 ->          0  lowered since baseline"),
            "{s}"
        );
        let shl = s.lines().find(|l| l.contains("shl32")).unwrap();
        assert!(!shl.contains("lowered"), "{s}");
        let new = s.lines().find(|l| l.contains("rep movs8")).unwrap();
        assert!(new.trim_end().ends_with("new"), "{s}");
        assert!(s.contains("1 of 2 baseline shapes lowered"), "{s}");
    }

    #[test]
    fn truncates_past_top_and_handles_empty() {
        let s = render_hot_blocks(&sample(), None, 1);
        assert!(s.contains("... 1 more blocks"), "{s}");
        assert!(!s.contains("0x08048000"), "{s}");
        let s = render_hot_blocks(&ProfileData::default(), None, 5);
        assert!(s.contains("profile is empty"), "{s}");
    }

    #[test]
    fn annotates_with_symbols_and_disassembly_when_an_image_is_given() {
        let app = fisec_apps::AppSpec::ftpd();
        let f = app.image.symbols.funcs.first().unwrap();
        let data = ProfileData {
            blocks: vec![HotBlock {
                addr: f.start,
                dispatches: 1,
                retired: 4,
            }],
            ..ProfileData::default()
        };
        let s = render_hot_blocks(&data, Some(&app.image), 5);
        assert!(s.contains(&format!("{}+0x0", f.name)), "{s}");
        // The leading-instruction column is non-empty disassembly.
        let row = s
            .lines()
            .find(|l| l.trim_start().starts_with("1 "))
            .unwrap();
        assert!(row.trim_end().len() > row.find('%').unwrap() + 2, "{s}");
    }
}
