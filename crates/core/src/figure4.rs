//! Figure 4: histogram of instructions executed between error activation
//! and crash, in log2 bins ("bin(x) includes all crashes between 2^(x-1)
//! and 2^x instructions").

use serde::{Deserialize, Serialize};

/// Number of bins. Bin `x` covers `(2^(x-1), 2^x]` — an exact power of
/// two lands in its own bin (16384 is bin 14), so the last bin, 15,
/// covers 16385..=32768 plus everything above folded in, matching the
/// paper's axis.
pub const BINS: usize = 16;

/// The Figure 4 histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Frequencies per log2 bin.
    pub bins: [u64; BINS],
    /// Number of samples.
    pub samples: u64,
    /// Fraction of crashes within 100 instructions of activation (the
    /// paper reports 91.5%).
    pub within_100: f64,
    /// Largest observed latency.
    pub max_latency: u64,
}

/// Bin index for a latency: smallest `x` with `latency <= 2^x`.
pub fn bin_index(latency: u64) -> usize {
    if latency <= 1 {
        return 0;
    }
    let x = 64 - (latency - 1).leading_zeros() as usize;
    x.min(BINS - 1)
}

/// Build the histogram from crash latencies.
pub fn histogram(latencies: &[u64]) -> LatencyHistogram {
    let mut bins = [0u64; BINS];
    let mut within = 0u64;
    let mut max = 0u64;
    for &l in latencies {
        bins[bin_index(l)] += 1;
        if l < 100 {
            within += 1;
        }
        max = max.max(l);
    }
    let samples = latencies.len() as u64;
    LatencyHistogram {
        bins,
        samples,
        within_100: if samples == 0 {
            0.0
        } else {
            within as f64 / samples as f64
        },
        max_latency: max,
    }
}

/// Render as an ASCII bar chart in the paper's layout (X axis log2).
pub fn render(h: &LatencyHistogram) -> String {
    let mut out = String::from("Number of instructions between error and crash (log2 bins)\n");
    let peak = h.bins.iter().copied().max().unwrap_or(0).max(1);
    for (i, &n) in h.bins.iter().enumerate() {
        let lo = if i == 0 { 1 } else { (1u64 << (i - 1)) + 1 };
        let hi = 1u64 << i;
        let bar_len = (n * 50 / peak) as usize;
        let label = if i == BINS - 1 {
            // The fold bin holds everything strictly above 2^(BINS-2):
            // ">16384", not ">16385" (its lowest member is 16385).
            format!(">{}", 1u64 << (BINS - 2))
        } else {
            format!("{lo}..{hi}")
        };
        out.push_str(&format!("{label:>14} | {:<50} {n}\n", "#".repeat(bar_len)));
    }
    out.push_str(&format!(
        "samples: {}   within 100 instructions: {:.1}%   max: {}\n",
        h.samples,
        h.within_100 * 100.0,
        h.max_latency
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_boundaries_match_paper_definition() {
        // bin(x) covers (2^(x-1), 2^x].
        assert_eq!(bin_index(1), 0);
        assert_eq!(bin_index(2), 1);
        assert_eq!(bin_index(3), 2);
        assert_eq!(bin_index(4), 2);
        assert_eq!(bin_index(5), 3);
        assert_eq!(bin_index(8), 3);
        assert_eq!(bin_index(9), 4);
        assert_eq!(bin_index(1024), 10);
        assert_eq!(bin_index(1025), 11);
        assert_eq!(bin_index(16384), 14);
        assert_eq!(bin_index(16385), 15);
        // Overflow folds into the last bin.
        assert_eq!(bin_index(1 << 30), BINS - 1);
    }

    #[test]
    fn powers_of_two_land_in_their_own_bin() {
        // Exact powers of two sit at the top of their bin, never the
        // next one: latency == 2^x must land in bin x.
        for x in 0..=14 {
            assert_eq!(bin_index(1u64 << x), x as usize, "2^{x}");
        }
        // Bin 0 holds 0 and 1; bin 1 is exactly {2}.
        assert_eq!(bin_index(0), 0);
        assert_eq!(bin_index(1), 0);
        assert_eq!(bin_index(2), 1);
        assert_eq!(bin_index(3), 2);
        // Bin 15 starts at 16385 and folds the overflow.
        assert_eq!(bin_index(16384), 14);
        assert_eq!(bin_index(16385), 15);
        assert_eq!(bin_index(32768), 15);
        assert_eq!(bin_index(32769), 15);
        assert_eq!(bin_index(u64::MAX), 15);
    }

    #[test]
    fn render_labels_the_fold_bin_by_its_boundary() {
        let h = histogram(&[20_000]);
        let s = render(&h);
        assert!(s.contains(">16384"), "{s}");
        assert!(!s.contains(">16385"), "{s}");
        // The non-fold bins keep their inclusive upper bound.
        assert!(s.contains("8193..16384"), "{s}");
    }

    #[test]
    fn histogram_statistics() {
        let h = histogram(&[1, 2, 50, 99, 100, 20_000]);
        assert_eq!(h.samples, 6);
        assert_eq!(h.max_latency, 20_000);
        assert!((h.within_100 - 4.0 / 6.0).abs() < 1e-9);
        assert_eq!(h.bins.iter().sum::<u64>(), 6);
        assert_eq!(h.bins[BINS - 1], 1);
    }

    #[test]
    fn empty_histogram() {
        let h = histogram(&[]);
        assert_eq!(h.samples, 0);
        assert_eq!(h.within_100, 0.0);
        assert!(render(&h).contains("samples: 0"));
    }

    #[test]
    fn render_has_all_bins() {
        let h = histogram(&[1, 7, 120, 5000]);
        let s = render(&h);
        assert_eq!(s.lines().count(), BINS + 2);
        assert!(s.contains("within 100 instructions"));
    }
}
