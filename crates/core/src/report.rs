//! `fisec report`: regenerate the experiment's figures from a saved
//! trace as one self-contained HTML file.
//!
//! Everything is derived from the trace alone — no re-execution, no
//! timestamps, no external assets — so the same trace always renders
//! the same bytes (pinned by a golden-file test) and the file can be
//! archived next to the ledger it describes. The Table 1 section embeds
//! the *exact* text `fisec stats` prints, so the report and the CLI can
//! never drift apart.

use crate::campaign::CampaignResult;
use crate::figure4;
use crate::hotblocks::{render_hot_blocks, DEFAULT_TOP};
use crate::random::render_report;
use crate::tables::render_table1;
use crate::trace::{ReplayedCampaign, ReplayedTrace};
use fisec_apps::AppSpec;
use fisec_telemetry::{metric, render_phase_table, LogHistogram, PhaseTimes};
use std::fmt::Write as _;

/// Escape text for embedding inside an HTML `<pre>`.
fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn pre(out: &mut String, title: &str, body: &str) {
    let _ = writeln!(out, "<h2>{}</h2>", esc(title));
    let _ = writeln!(out, "<pre>{}</pre>", esc(body.trim_end()));
}

/// The bundled image a replayed campaign profiled, when its recorded
/// app name matches one ("ftpd"/"sshd") — the disassembly annotation of
/// the hot-block table needs the text bytes back.
fn image_for(app: &str) -> Option<AppSpec> {
    match app {
        "ftpd" => Some(AppSpec::ftpd()),
        "sshd" => Some(AppSpec::sshd()),
        _ => None,
    }
}

fn campaign_title(c: &ReplayedCampaign) -> String {
    format!(
        "{} [{}] — {} engine",
        c.header.app, c.header.scheme, c.header.mode
    )
}

/// The divergence-depth histograms a recorder campaign's run events
/// rebuild, `(metric name, histogram)` per outcome with any samples.
fn divergence_hists(c: &ReplayedCampaign) -> Vec<(&'static str, LogHistogram)> {
    let mut hists = [
        (metric::DIVERGENCE_DEPTH_NM, "NM", LogHistogram::default()),
        (metric::DIVERGENCE_DEPTH_SD, "SD", LogHistogram::default()),
        (metric::DIVERGENCE_DEPTH_FSV, "FSV", LogHistogram::default()),
        (metric::DIVERGENCE_DEPTH_BRK, "BRK", LogHistogram::default()),
    ];
    for run in &c.run_events {
        if let Some(d) = run.divergence_depth {
            if let Some(h) = hists.iter_mut().find(|(_, abbr, _)| *abbr == run.outcome) {
                h.2.record(d);
            }
        }
    }
    hists
        .into_iter()
        .filter(|(_, _, h)| h.count > 0)
        .map(|(name, _, h)| (name, h))
        .collect()
}

/// The taint histograms a propagation campaign's run events rebuild:
/// taint-to-decision latency and peak taint width per outcome class.
fn taint_hists(c: &ReplayedCampaign) -> Vec<(&'static str, LogHistogram)> {
    let mut lat = [
        (metric::TAINT_TO_BRANCH_NM, "NM", LogHistogram::default()),
        (metric::TAINT_TO_BRANCH_SD, "SD", LogHistogram::default()),
        (metric::TAINT_TO_BRANCH_FSV, "FSV", LogHistogram::default()),
        (metric::TAINT_TO_BRANCH_BRK, "BRK", LogHistogram::default()),
    ];
    let mut width = [
        (metric::TAINT_WIDTH_NM, "NM", LogHistogram::default()),
        (metric::TAINT_WIDTH_SD, "SD", LogHistogram::default()),
        (metric::TAINT_WIDTH_FSV, "FSV", LogHistogram::default()),
        (metric::TAINT_WIDTH_BRK, "BRK", LogHistogram::default()),
    ];
    for run in &c.run_events {
        if let Some(d) = run.taint_decision {
            if let Some(h) = lat.iter_mut().find(|(_, abbr, _)| *abbr == run.outcome) {
                h.2.record(d);
            }
        }
        if let Some(w) = run.taint_width {
            if let Some(h) = width.iter_mut().find(|(_, abbr, _)| *abbr == run.outcome) {
                h.2.record(w);
            }
        }
    }
    lat.into_iter()
        .chain(width)
        .filter(|(_, _, h)| h.count > 0)
        .map(|(name, _, h)| (name, h))
        .collect()
}

/// One histogram line in the shared p50/p95/p99 format.
fn hist_line(name: &str, h: &LogHistogram) -> String {
    let (p50, p95, p99) = h.percentiles();
    format!(
        "{name:<24} n={:<9} mean={:<11.1} p50={:<9.1} p95={:<9.1} p99={:<11.1} max={}\n",
        h.count,
        h.mean(),
        p50,
        p95,
        p99,
        h.max
    )
}

/// Render the whole trace as one self-contained HTML document.
#[allow(clippy::too_many_lines)]
pub fn render_html(trace: &ReplayedTrace) -> String {
    let mut out = String::new();
    out.push_str(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>fisec campaign report</title>\n<style>\n\
         body { font-family: sans-serif; max-width: 72rem; margin: 2rem auto; padding: 0 1rem; }\n\
         pre { background: #f4f4f4; padding: 0.75rem; overflow-x: auto; font-size: 0.85rem; }\n\
         h1 { border-bottom: 2px solid #444; padding-bottom: 0.3rem; }\n\
         h2 { margin-top: 2rem; color: #234; }\n\
         </style>\n</head>\n<body>\n<h1>fisec campaign report</h1>\n",
    );
    let _ = writeln!(
        out,
        "<p>{} targeted campaign(s), {} random campaign(s), {} span event(s), \
         regenerated entirely from the saved trace.</p>",
        trace.campaigns.len(),
        trace.random.len(),
        trace.spans.len()
    );

    // Table 1, per consecutive same-scheme group — the exact bytes
    // `fisec stats` prints for this trace.
    let campaigns = &trace.campaigns;
    let mut i = 0;
    while i < campaigns.len() {
        let scheme = campaigns[i].result.scheme;
        let mut j = i;
        while j < campaigns.len() && campaigns[j].result.scheme == scheme {
            j += 1;
        }
        let refs: Vec<&CampaignResult> = campaigns[i..j].iter().map(|c| &c.result).collect();
        pre(
            &mut out,
            &format!("Table 1 [{scheme}]"),
            &render_table1(&refs),
        );
        i = j;
    }

    for c in campaigns {
        let title = campaign_title(c);

        // Phase profile + engine aggregates from the trailer.
        if let Some(end) = c.end {
            let mut body = format!(
                "runs {}  na-prefilter {}  fresh boots {}  restores {}\n",
                end.runs, end.na_prefilter_runs, end.fresh_boots, end.restores
            );
            // Memoized (cache-hit) groups get their own line, distinct
            // from the NA pre-filter's derived groups; absent for
            // cache-off campaigns so existing report fixtures hold.
            if end.cache_hit_groups + end.cache_miss_groups + end.cache_stale_groups > 0 {
                body.push_str(&format!(
                    "cache: hit groups {} ({} memoized runs)  miss {}  stale {}\n",
                    end.cache_hit_groups,
                    end.cache_synth_runs,
                    end.cache_miss_groups,
                    end.cache_stale_groups
                ));
            }
            let phases = PhaseTimes {
                micros: [
                    end.boot_micros,
                    end.snapshot_micros,
                    end.replay_micros,
                    end.classify_micros,
                    end.reassemble_micros,
                ],
            };
            body.push_str(&render_phase_table(&phases, end.wall_micros));
            let mut micros = LogHistogram::default();
            let mut icount = LogHistogram::default();
            for run in c
                .run_events
                .iter()
                .filter(|r| !r.na_prefilter && !r.cache_hit)
            {
                micros.record(run.micros);
                icount.record(run.icount);
            }
            for (name, h) in [(metric::REPLAY_MICROS, &micros), (metric::ICOUNT, &icount)] {
                if h.count > 0 {
                    body.push_str(&hist_line(name, h));
                }
            }
            pre(&mut out, &format!("Phase profile — {title}"), &body);
        }

        // Figure 4 per client with crash latencies.
        for (ci, cc) in c.result.clients.iter().enumerate() {
            if cc.crash_latencies.is_empty() {
                continue;
            }
            let h = figure4::histogram(&cc.crash_latencies);
            let mut body = figure4::render(&h);
            let _ = writeln!(
                body,
                "transient deviations before crash: {} of {}",
                cc.transient_deviations,
                cc.crash_latencies.len()
            );
            pre(
                &mut out,
                &format!(
                    "Figure 4 — {title}, {}",
                    c.header.clients.get(ci).map_or("?", String::as_str)
                ),
                &body,
            );
        }

        // Divergence-depth histograms (recorder campaigns only).
        let div = divergence_hists(c);
        if !div.is_empty() {
            let mut body = String::new();
            for (name, h) in &div {
                body.push_str(&hist_line(name, h));
            }
            pre(&mut out, &format!("Divergence depth — {title}"), &body);
        }

        // Propagation profile (taint-traced campaigns only).
        if let Some(p) = &c.propagation {
            let mut body = format!(
                "seeded {}  reached decision {}  compare-first {}  deaths {}  frozen {}\n",
                p.seeded, p.reached_decision, p.compare_first, p.deaths, p.frozen
            );
            if p.fsv_seeded > 0 {
                let pct = 100.0 * p.fsv_reached_decision as f64 / p.fsv_seeded as f64;
                let _ = writeln!(
                    body,
                    "FSV: {}/{} reached a tainted decision ({pct:.1}%), \
                     {} compare-before-store",
                    p.fsv_reached_decision, p.fsv_seeded, p.fsv_compare_first
                );
            }
            for (name, h) in taint_hists(c) {
                body.push_str(&hist_line(name, &h));
            }
            pre(&mut out, &format!("Propagation — {title}"), &body);
        }

        // Hot-block table (profiler campaigns only).
        if let Some(p) = &c.profile {
            let app = image_for(&p.app);
            let body = render_hot_blocks(&p.data, app.as_ref().map(|a| &a.image), DEFAULT_TOP);
            pre(&mut out, &format!("Hot blocks — {title}"), &body);
        }
    }

    for r in &trace.random {
        let mut body = render_report(&r.stats);
        match &r.end {
            Some(end) => {
                let secs = end.wall_micros as f64 / 1e6;
                let rate = if secs > 0.0 {
                    r.stats.result.runs as f64 / secs
                } else {
                    0.0
                };
                let _ = writeln!(body, "wall {secs:.1}s ({rate:.0} runs/s)");
            }
            None => {
                let _ = writeln!(
                    body,
                    "RESUMABLE ledger: {} of {} runs committed, no trailer \
                     (fisec random --resume <ledger> continues it)",
                    r.stats.result.runs, r.header.runs
                );
            }
        }
        pre(
            &mut out,
            &format!(
                "Random injection — {} [{}], {}",
                r.header.app, r.header.scheme, r.header.client
            ),
            &body,
        );
    }

    out.push_str("</body>\n</html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::parse_trace;
    use fisec_telemetry::{
        CampaignEndEvent, CampaignEvent, HotBlock, ProfileData, ProfileEvent, PropagationEvent,
        RunEvent, TraceEvent,
    };

    fn run_ev(outcome: &str, bit: u8) -> TraceEvent {
        TraceEvent::Run(RunEvent {
            client: 0,
            addr: 0x0804_8000,
            byte_index: 0,
            bit,
            outcome: outcome.to_string(),
            location: 0,
            worker: 0,
            snapshot_replay: true,
            na_prefilter: false,
            cache_hit: false,
            icount: 1000,
            micros: 10,
            crash_latency: if outcome == "SD" { Some(7) } else { None },
            transient_deviation: false,
            divergence_depth: if outcome == "NA" { None } else { Some(12) },
            trace_latency: None,
            taint_decision: if outcome == "NA" { None } else { Some(40) },
            taint_width: if outcome == "NA" { None } else { Some(3) },
            taint_compare_first: if outcome == "NA" {
                None
            } else {
                Some(outcome == "BRK")
            },
        })
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Campaign(CampaignEvent {
                app: "ftpd".to_string(),
                scheme: "baseline x86".to_string(),
                mode: "snapshot".to_string(),
                instructions: 1,
                cond_branches: 1,
                runs_per_client: 3,
                clients: vec!["Client1".to_string()],
                golden_denied: vec![true],
            }),
            run_ev("NA", 0),
            run_ev("SD", 1),
            run_ev("BRK", 2),
            TraceEvent::Profile(Box::new(ProfileEvent {
                app: "ftpd".to_string(),
                mode: "snapshot".to_string(),
                data: ProfileData {
                    blocks: vec![HotBlock {
                        addr: 0x0804_8000,
                        dispatches: 3,
                        retired: 30,
                    }],
                    ..ProfileData::default()
                },
            })),
            TraceEvent::Propagation(PropagationEvent {
                app: "ftpd".to_string(),
                mode: "snapshot".to_string(),
                seeded: 2,
                reached_decision: 2,
                compare_first: 1,
                deaths: 0,
                frozen: 0,
                fsv_seeded: 0,
                fsv_reached_decision: 0,
                fsv_compare_first: 0,
            }),
            TraceEvent::CampaignEnd(CampaignEndEvent {
                runs: 3,
                wall_micros: 5000,
                replay_micros: 3000,
                ..CampaignEndEvent::default()
            }),
        ]
    }

    #[test]
    fn report_embeds_table1_byte_for_byte() {
        let replay = parse_trace(&sample_events()).unwrap();
        let html = render_html(&replay);
        let refs: Vec<&CampaignResult> = replay.campaigns.iter().map(|c| &c.result).collect();
        let table1 = render_table1(&refs);
        assert!(
            html.contains(&esc(table1.trim_end())),
            "report must embed the stats Table 1 verbatim:\n{table1}"
        );
        assert!(html.starts_with("<!DOCTYPE html>"), "{html}");
        assert!(html.trim_end().ends_with("</html>"), "{html}");
    }

    #[test]
    fn report_carries_every_observatory_section() {
        let html = render_html(&parse_trace(&sample_events()).unwrap());
        assert!(html.contains("Phase profile"), "{html}");
        assert!(html.contains("Figure 4"), "{html}");
        assert!(html.contains("Divergence depth"), "{html}");
        assert!(html.contains("divergence_depth_sd"), "{html}");
        assert!(html.contains("Propagation —"), "{html}");
        assert!(html.contains("taint_to_branch_sd"), "{html}");
        assert!(html.contains("taint_width_brk"), "{html}");
        assert!(html.contains("Hot blocks"), "{html}");
        assert!(
            html.contains("pass+") || html.contains("0x08048000"),
            "{html}"
        );
    }

    #[test]
    fn report_is_deterministic() {
        let replay = parse_trace(&sample_events()).unwrap();
        assert_eq!(render_html(&replay), render_html(&replay));
    }

    #[test]
    fn html_escaping_covers_the_angle_brackets() {
        assert_eq!(esc("a<b>&c"), "a&lt;b&gt;&amp;c");
    }
}
