//! The incremental campaign cache: content-hash keyed memoization of
//! checkpoint-group results with a persistent on-disk store.
//!
//! FastFlip-style structure (arXiv 2403.13989): error-injection results
//! compose per section and can be keyed by what actually changed, so
//! only perturbed sections need re-analysis. Our sections are the
//! checkpoint groups the campaign engine already schedules — every
//! target sharing one instruction address. A group's memoized outcomes
//! are valid when
//!
//! 1. the **context** is unchanged — everything shared by every group of
//!    a (app, client, scheme) campaign: the fault model, the budget
//!    constants, the image layout and full data segment, the client
//!    script fingerprint, the encoding scheme, and the golden run's
//!    observable behavior (icount, stop, client verdict, network trace,
//!    which classification compares every run against);
//! 2. the **group key** is unchanged — the target tuples plus the raw
//!    code bytes of the injected instruction; and
//! 3. the **footprint hash** is unchanged — the current image text
//!    hashed over the byte ranges the group's runs actually fetched for
//!    execution (recorded by [`fisec_x86::Footprint`], a union over the
//!    boot and every replay). Anything a run fetched can affect its
//!    outcome; anything outside provably cannot. Code bytes read as
//!    *data* are the one documented exception — `fisec cache verify`
//!    exists to audit it.
//!
//! The store is one JSON file per (app, client, scheme, recorder) under
//! the cache root (`~/.fisec-cache` or `--cache DIR`), written with the
//! same tmp+atomic-rename discipline as the random-tier ledger. Corrupt,
//! truncated or stale-schema files are treated as misses, never a
//! panic.

use fisec_apps::{AppSpec, ClientSpec};
use fisec_asm::Image;
use fisec_encoding::EncodingScheme;
use fisec_inject::persist::{self, CachedRun};
use fisec_inject::{ErrorLocation, GoldenRun, InjectionRun, InjectionTarget};
use fisec_net::Dir;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Version tag of the store-file layout. Bump on any change to
/// [`StoreFile`]/[`GroupEntry`] fields or the key derivations; files
/// with a different schema are ignored wholesale.
pub const CACHE_SCHEMA: u32 = 1;

/// Identity of the injected fault model. The study injects exhaustive
/// single-bit flips into instruction bytes; any change to that model
/// (multi-bit faults, data-segment faults, …) must change this string,
/// which invalidates every cached context.
pub const FAULT_MODEL: &str = "single-bit-flip-exhaustive-v1";

/// Digested divergence observables as the cache stores them:
/// `(divergence_depth, trace_latency)`, present iff the flight recorder
/// produced a report for the run.
pub type DivTuple = (Option<u64>, Option<u64>);

/// One memoized run: the classified outcome plus the recorder digest.
pub type CachedDigestedRun = (InjectionRun, Option<DivTuple>);

// ---------------------------------------------------------------------
// SHA-256 (FIPS 180-4). Self-contained: the workspace deliberately
// vendors no hash crate, and the cache only needs one digest.
// ---------------------------------------------------------------------

mod sha {
    const K: [u32; 64] = [
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
        0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
        0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
        0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
        0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
        0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
        0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
        0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
        0xc67178f2,
    ];

    /// Incremental SHA-256 state.
    pub struct Sha256 {
        state: [u32; 8],
        buf: [u8; 64],
        buflen: usize,
        total: u64,
    }

    impl Sha256 {
        pub fn new() -> Sha256 {
            Sha256 {
                state: [
                    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c,
                    0x1f83d9ab, 0x5be0cd19,
                ],
                buf: [0; 64],
                buflen: 0,
                total: 0,
            }
        }

        pub fn update(&mut self, mut data: &[u8]) {
            self.total = self.total.wrapping_add(data.len() as u64);
            if self.buflen > 0 {
                let take = (64 - self.buflen).min(data.len());
                self.buf[self.buflen..self.buflen + take].copy_from_slice(&data[..take]);
                self.buflen += take;
                data = &data[take..];
                if self.buflen == 64 {
                    let block = self.buf;
                    self.compress(&block);
                    self.buflen = 0;
                }
                // Everything fit in the buffer: the tail below must not
                // clobber the byte count we just accumulated.
                if data.is_empty() {
                    return;
                }
            }
            while data.len() >= 64 {
                let (block, rest) = data.split_at(64);
                let mut b = [0u8; 64];
                b.copy_from_slice(block);
                self.compress(&b);
                data = rest;
            }
            self.buf[..data.len()].copy_from_slice(data);
            self.buflen = data.len();
        }

        pub fn finalize(mut self) -> [u8; 32] {
            let bits = self.total.wrapping_mul(8);
            self.update(&[0x80]);
            while self.buflen != 56 {
                self.update(&[0]);
            }
            self.update(&bits.to_be_bytes());
            let mut out = [0u8; 32];
            for (i, w) in self.state.iter().enumerate() {
                out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
            }
            out
        }

        fn compress(&mut self, block: &[u8; 64]) {
            let mut w = [0u32; 64];
            for (i, c) in block.chunks_exact(4).enumerate() {
                w[i] = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
            }
            for i in 16..64 {
                let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
                let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
                w[i] = w[i - 16]
                    .wrapping_add(s0)
                    .wrapping_add(w[i - 7])
                    .wrapping_add(s1);
            }
            let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
            for i in 0..64 {
                let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
                let ch = (e & f) ^ (!e & g);
                let t1 = h
                    .wrapping_add(s1)
                    .wrapping_add(ch)
                    .wrapping_add(K[i])
                    .wrapping_add(w[i]);
                let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
                let maj = (a & b) ^ (a & c) ^ (b & c);
                let t2 = s0.wrapping_add(maj);
                h = g;
                g = f;
                f = e;
                e = d.wrapping_add(t1);
                d = c;
                c = b;
                b = a;
                a = t1.wrapping_add(t2);
            }
            for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
                *s = s.wrapping_add(v);
            }
        }
    }
}

/// Domain-separated, length-framed hasher: every field is preceded by
/// its length or has a fixed width, so distinct input sequences cannot
/// collide by concatenation.
struct KeyHasher {
    inner: sha::Sha256,
}

impl KeyHasher {
    fn new(domain: &str) -> KeyHasher {
        let mut h = KeyHasher {
            inner: sha::Sha256::new(),
        };
        h.str(domain);
        h
    }

    fn u32(&mut self, v: u32) {
        self.inner.update(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.inner.update(&v.to_le_bytes());
    }

    fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.inner.update(b);
    }

    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    fn hex(self) -> String {
        self.inner
            .finalize()
            .iter()
            .fold(String::with_capacity(64), |mut s, b| {
                use std::fmt::Write as _;
                let _ = write!(s, "{b:02x}");
                s
            })
    }
}

// ---------------------------------------------------------------------
// On-disk layout
// ---------------------------------------------------------------------

/// One byte range of a stored execution footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FootRange {
    /// First byte address.
    pub start: u32,
    /// Length in bytes.
    pub len: u32,
}

/// One injection target, as stored (everything `fisec cache verify`
/// needs to rebuild the [`InjectionTarget`] and re-execute the group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachedTarget {
    /// Byte within the instruction.
    pub byte_index: u8,
    /// Bit within the byte.
    pub bit: u8,
    /// First byte of the instruction.
    pub first_byte: u8,
    /// Encoded instruction length.
    pub inst_len: u8,
    /// Table-2-order index of the error location.
    pub location: u8,
    /// Whether the instruction is a conditional branch.
    pub is_cond_branch: bool,
}

/// One memoized checkpoint group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupEntry {
    /// Shared instruction address (the store's lookup key).
    pub addr: u32,
    /// Content key over the target tuples and injected-region bytes.
    pub key: String,
    /// Targets in campaign order.
    pub targets: Vec<CachedTarget>,
    /// Executed-code footprint of the group's boot + replays.
    pub foot: Vec<FootRange>,
    /// Image text hashed over `foot` at store time; a mismatch against
    /// the current image invalidates the entry.
    pub foot_hash: String,
    /// One digested outcome per target, in `targets` order.
    pub runs: Vec<CachedRun>,
}

/// One per-(app, client, scheme, recorder) store file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreFile {
    /// Store layout version ([`CACHE_SCHEMA`]).
    pub schema: u32,
    /// Digested-run serialization version ([`persist::DIGEST_SCHEMA`]).
    pub digest_schema: u32,
    /// Application name.
    pub app: String,
    /// Client name.
    pub client: String,
    /// Encoding scheme tag ([`EncodingScheme::cache_tag`]).
    pub scheme: String,
    /// Whether the campaign ran with the flight recorder.
    pub recorder: bool,
    /// Context key every group below is valid under.
    pub context: String,
    /// Memoized groups, address-sorted.
    pub groups: Vec<GroupEntry>,
}

// ---------------------------------------------------------------------
// Key derivations
// ---------------------------------------------------------------------

/// The per-(app, client, scheme, recorder) context key: a change to
/// anything here invalidates every group of the client's store. Engine
/// options (mode, threads, block/trace cache) are deliberately *not*
/// keyed — results are bit-identical across them (pinned by the
/// differential tests), so entries interoperate across execution modes.
pub fn context_key(
    app: &AppSpec,
    spec: &ClientSpec,
    scheme: EncodingScheme,
    recorder: bool,
    golden: &GoldenRun,
) -> String {
    let mut h = KeyHasher::new("fisec-cache-context");
    h.u32(CACHE_SCHEMA);
    h.u32(persist::DIGEST_SCHEMA);
    h.str(FAULT_MODEL);
    h.u64(fisec_inject::BUDGET_MULTIPLIER);
    h.u64(fisec_inject::BUDGET_FLOOR);
    h.str(app.name);
    h.u32(app.image.text_base);
    h.u32(app.image.data_base);
    h.u64(app.image.text.len() as u64);
    // The full data segment: any run may read any of it, and it is tiny
    // compared to hashing time elsewhere.
    h.bytes(&app.image.data);
    h.str(&spec.name);
    h.str(&spec.fingerprint);
    h.str(scheme.cache_tag());
    h.u32(u32::from(recorder));
    // Golden observables: classification compares every run against the
    // golden stop/verdict/trace, so any behavior change on the client's
    // golden path is a (correct) full miss for that client.
    h.u64(golden.icount);
    h.str(&persist::stop_to_string(golden.stop.clone()));
    h.str(persist::client_to_string(golden.client));
    for m in golden.trace.messages() {
        h.u32(match m.dir {
            Dir::ToClient => 0,
            Dir::ToServer => 1,
        });
        h.bytes(&m.bytes);
    }
    h.hex()
}

fn location_index(loc: ErrorLocation) -> u8 {
    ErrorLocation::ALL
        .iter()
        .position(|l| *l == loc)
        .expect("every ErrorLocation variant appears in ErrorLocation::ALL") as u8
}

fn cached_target(t: &InjectionTarget) -> CachedTarget {
    CachedTarget {
        byte_index: t.byte_index,
        bit: t.bit,
        first_byte: t.first_byte,
        inst_len: t.inst_len,
        location: location_index(t.location),
        is_cond_branch: t.is_cond_branch,
    }
}

/// Rebuild the [`InjectionTarget`]s of a stored group (for `fisec cache
/// verify`). `None` when a stored location index is out of range.
pub fn entry_targets(entry: &GroupEntry) -> Option<Vec<InjectionTarget>> {
    entry
        .targets
        .iter()
        .map(|t| {
            Some(InjectionTarget {
                addr: entry.addr,
                inst_len: t.inst_len,
                byte_index: t.byte_index,
                bit: t.bit,
                first_byte: t.first_byte,
                location: *ErrorLocation::ALL.get(t.location as usize)?,
                is_cond_branch: t.is_cond_branch,
            })
        })
        .collect()
}

/// Image text bytes over `[start, start+len)`, clipped to the text
/// segment. Bytes outside text (data, stack, wild execution targets)
/// contribute nothing: the data segment is already in the context key
/// and non-image regions have no static content to key on.
fn text_slice(image: &Image, start: u32, len: u32) -> &[u8] {
    let end = u64::from(start) + u64::from(len);
    let t0 = u64::from(image.text_base);
    let t1 = t0 + image.text.len() as u64;
    let lo = u64::from(start).clamp(t0, t1);
    let hi = end.clamp(t0, t1);
    &image.text[(lo - t0) as usize..(hi - t0) as usize]
}

/// The per-group content key: the shared address, every target tuple,
/// and the raw code bytes of the injected region. Covers the injected
/// instruction even for never-activated groups, where the footprint
/// cannot.
pub fn group_key(image: &Image, targets: &[InjectionTarget]) -> String {
    let mut h = KeyHasher::new("fisec-cache-group");
    let addr = targets.first().map_or(0, |t| t.addr);
    h.u32(addr);
    h.u64(targets.len() as u64);
    let mut max_len = 0u32;
    for t in targets {
        let c = cached_target(t);
        h.inner.update(&[
            c.byte_index,
            c.bit,
            c.first_byte,
            c.inst_len,
            c.location,
            u8::from(c.is_cond_branch),
        ]);
        max_len = max_len.max(u32::from(t.inst_len));
    }
    h.bytes(text_slice(image, addr, max_len));
    h.hex()
}

/// Coalesce `(start, len)` ranges: sort, merge overlaps and adjacency.
/// Used to union the per-run footprints of a from-scratch group into
/// one stored footprint.
pub fn merge_ranges(mut ranges: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    ranges.sort_unstable();
    let mut out: Vec<(u32, u32)> = Vec::new();
    for (start, len) in ranges {
        if len == 0 {
            continue;
        }
        if let Some(last) = out.last_mut() {
            let end = u64::from(last.0) + u64::from(last.1);
            if u64::from(start) <= end {
                let new_end = end.max(u64::from(start) + u64::from(len));
                last.1 = (new_end - u64::from(last.0)) as u32;
                continue;
            }
        }
        out.push((start, len));
    }
    out
}

/// Hash the current image text over a stored footprint. Self-consistent
/// per entry: entries recorded under different marking granularities
/// (block vs per-step engine) validate against their own ranges.
pub fn footprint_hash(image: &Image, ranges: &[FootRange]) -> String {
    let mut h = KeyHasher::new("fisec-cache-foot");
    for r in ranges {
        h.u32(r.start);
        h.u32(r.len);
        h.bytes(text_slice(image, r.start, r.len));
    }
    h.hex()
}

// ---------------------------------------------------------------------
// The cache handle and per-client store
// ---------------------------------------------------------------------

/// Handle on a cache root directory.
#[derive(Debug, Clone)]
pub struct CampaignCache {
    root: PathBuf,
}

/// Result of consulting the store for one checkpoint group.
pub enum CacheLookup {
    /// Every run of the group, decoded; fold without executing.
    Hit(Vec<CachedDigestedRun>),
    /// An entry existed but its key, shape or footprint hash no longer
    /// matches — the group was invalidated by a change.
    Stale,
    /// No entry for this address.
    Miss,
}

impl CampaignCache {
    /// Cache at an explicit root (`--cache DIR`).
    pub fn at(root: PathBuf) -> CampaignCache {
        CampaignCache { root }
    }

    /// The default root, `$HOME/.fisec-cache`; `None` when `HOME` is
    /// unset (caching silently disabled).
    pub fn default_root() -> Option<PathBuf> {
        std::env::var_os("HOME").map(|h| PathBuf::from(h).join(".fisec-cache"))
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Open (load or initialize) the store for one campaign column.
    /// Never fails: unreadable, torn, stale-schema or context-mismatched
    /// files degrade to an empty (all-miss) store.
    pub fn open_client(
        &self,
        app: &AppSpec,
        spec: &ClientSpec,
        scheme: EncodingScheme,
        recorder: bool,
        golden: &GoldenRun,
    ) -> ClientStore {
        let context = context_key(app, spec, scheme, recorder, golden);
        let path = self.root.join(store_file_name(
            app.name,
            &spec.name,
            scheme.cache_tag(),
            recorder,
        ));
        let mut loaded = HashMap::new();
        let mut context_invalidated = false;
        let mut dropped_groups = 0;
        if let Some(file) = read_store(&path) {
            if file.context == context {
                for g in file.groups {
                    loaded.insert(g.addr, g);
                }
            } else {
                // Keyed under a different context (golden behavior,
                // client script, scheme internals, fault model): every
                // entry is unusable. Dropping them keeps the store free
                // of orphans; re-execution repopulates it.
                context_invalidated = true;
                dropped_groups = file.groups.len();
            }
        }
        ClientStore {
            path,
            app: app.name.to_string(),
            client: spec.name.clone(),
            scheme: scheme.cache_tag().to_string(),
            recorder,
            context,
            loaded,
            fresh: Mutex::new(Vec::new()),
            context_invalidated,
            dropped_groups,
        }
    }
}

/// Deterministic store file name for one campaign column.
pub fn store_file_name(app: &str, client: &str, scheme_tag: &str, recorder: bool) -> String {
    format!(
        "{app}-{client}-{scheme_tag}{}.json",
        if recorder { "-rec" } else { "" }
    )
}

/// The loaded store for one (app, client, scheme, recorder) column:
/// lookups against the entries on disk, fresh results accumulated from
/// worker threads, one atomic write-back at the end of the column.
pub struct ClientStore {
    path: PathBuf,
    app: String,
    client: String,
    scheme: String,
    recorder: bool,
    context: String,
    loaded: HashMap<u32, GroupEntry>,
    fresh: Mutex<Vec<GroupEntry>>,
    /// Whether a stored file existed but was keyed under a different
    /// context (full miss).
    pub context_invalidated: bool,
    /// Groups dropped by the context invalidation.
    pub dropped_groups: usize,
}

impl ClientStore {
    /// Consult the store for one checkpoint group.
    pub fn lookup(&self, image: &Image, targets: &[InjectionTarget]) -> CacheLookup {
        let Some(addr) = targets.first().map(|t| t.addr) else {
            return CacheLookup::Miss;
        };
        let Some(entry) = self.loaded.get(&addr) else {
            return CacheLookup::Miss;
        };
        // Shape check first: a key collision with a different target
        // count must never index out of step with the campaign.
        if entry.runs.len() != targets.len() || entry.targets.len() != targets.len() {
            return CacheLookup::Stale;
        }
        if entry.key != group_key(image, targets) {
            return CacheLookup::Stale;
        }
        if entry.foot_hash != footprint_hash(image, &entry.foot) {
            return CacheLookup::Stale;
        }
        let mut runs = Vec::with_capacity(entry.runs.len());
        for c in &entry.runs {
            match persist::decode_run(c) {
                Some(run) => runs.push(run),
                // Malformed payload: a miss, never a panic.
                None => return CacheLookup::Stale,
            }
        }
        CacheLookup::Hit(runs)
    }

    /// Record one freshly executed group. Thread-safe; the entry lands
    /// on disk at the next [`ClientStore::save`].
    pub fn record(
        &self,
        image: &Image,
        targets: &[InjectionTarget],
        runs: &[CachedDigestedRun],
        foot: Vec<(u32, u32)>,
    ) {
        let Some(addr) = targets.first().map(|t| t.addr) else {
            return;
        };
        debug_assert_eq!(runs.len(), targets.len());
        let foot: Vec<FootRange> = foot
            .into_iter()
            .map(|(start, len)| FootRange { start, len })
            .collect();
        let entry = GroupEntry {
            addr,
            key: group_key(image, targets),
            targets: targets.iter().map(cached_target).collect(),
            foot_hash: footprint_hash(image, &foot),
            foot,
            runs: runs
                .iter()
                .map(|(run, div)| persist::encode_run(run, *div))
                .collect(),
        };
        self.fresh.lock().expect("no worker panicked").push(entry);
    }

    /// Fresh entries recorded so far (store writes performed at
    /// [`ClientStore::save`] time).
    pub fn fresh_count(&self) -> usize {
        self.fresh.lock().expect("no worker panicked").len()
    }

    /// Merge and write the store back atomically (tmp + rename). Keeps
    /// valid loaded entries not revisited by this campaign (e.g. MISC
    /// groups when this run was `--cond-branches-only`); fresh results
    /// win on address collision.
    ///
    /// # Errors
    /// I/O errors creating the cache directory or writing the file. The
    /// campaign treats a failed save as a warning, not a failure.
    pub fn save(&self) -> std::io::Result<()> {
        let mut merged: HashMap<u32, GroupEntry> = if self.context_invalidated {
            HashMap::new()
        } else {
            self.loaded.clone()
        };
        for e in self.fresh.lock().expect("no worker panicked").drain(..) {
            merged.insert(e.addr, e);
        }
        let mut groups: Vec<GroupEntry> = merged.into_values().collect();
        groups.sort_by_key(|g| g.addr);
        let file = StoreFile {
            schema: CACHE_SCHEMA,
            digest_schema: persist::DIGEST_SCHEMA,
            app: self.app.clone(),
            client: self.client.clone(),
            scheme: self.scheme.clone(),
            recorder: self.recorder,
            context: self.context.clone(),
            groups,
        };
        if let Some(dir) = self.path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let json = serde_json::to_string(&file).expect("store contains no non-finite floats");
        let tmp = self.path.with_extension("json.tmp");
        {
            // No fsync: the rename keeps torn writes from ever becoming
            // visible under the store's name, and a file lost to a
            // power cut merely re-runs its groups — `load_store`
            // degrades anything unreadable to a miss. Durability is not
            // worth a per-client fsync stall on the campaign path.
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(json.as_bytes())?;
        }
        std::fs::rename(&tmp, &self.path)
    }
}

/// Parse a store file. `None` for unreadable, torn, non-JSON,
/// schema-mismatched or otherwise malformed files — every failure mode
/// is a cache miss.
pub fn read_store(path: &Path) -> Option<StoreFile> {
    let text = std::fs::read_to_string(path).ok()?;
    let file: StoreFile = serde_json::from_str(&text).ok()?;
    (file.schema == CACHE_SCHEMA && file.digest_schema == persist::DIGEST_SCHEMA).then_some(file)
}

// ---------------------------------------------------------------------
// Store maintenance (`fisec cache ls|gc`)
// ---------------------------------------------------------------------

/// One row of `fisec cache ls`.
#[derive(Debug, Clone)]
pub struct StoreSummary {
    /// File name within the cache root.
    pub file: String,
    /// File size in bytes.
    pub bytes: u64,
    /// Seconds since last modification (0 when unavailable).
    pub age_secs: u64,
    /// Parsed store, when the file is valid under the current schema.
    pub store: Option<StoreFile>,
}

/// All store files under `root`, name-sorted (deterministic output).
pub fn store_paths(root: &Path) -> Vec<PathBuf> {
    let Ok(rd) = std::fs::read_dir(root) else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = rd
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    paths
}

/// Summarize every store file under `root`.
pub fn ls(root: &Path) -> Vec<StoreSummary> {
    store_paths(root)
        .into_iter()
        .map(|p| {
            let meta = std::fs::metadata(&p).ok();
            let bytes = meta.as_ref().map_or(0, std::fs::Metadata::len);
            let age_secs = meta
                .and_then(|m| m.modified().ok())
                .and_then(|t| std::time::SystemTime::now().duration_since(t).ok())
                .map_or(0, |d| d.as_secs());
            StoreSummary {
                file: p
                    .file_name()
                    .map_or_else(String::new, |n| n.to_string_lossy().into_owned()),
                bytes,
                age_secs,
                store: read_store(&p),
            }
        })
        .collect()
}

/// Files evicted by [`gc`].
#[derive(Debug, Clone, Default)]
pub struct GcReport {
    /// `(file name, bytes)` of every evicted store.
    pub evicted: Vec<(String, u64)>,
    /// Files kept.
    pub kept: usize,
    /// Total bytes kept.
    pub kept_bytes: u64,
}

/// Evict store files: everything older than `max_age_secs`, then —
/// oldest first — enough files to bring the root under `max_size`
/// bytes. Invalid files count like any other (they are dead weight).
pub fn gc(root: &Path, max_size: Option<u64>, max_age_secs: Option<u64>) -> GcReport {
    let mut entries: Vec<(PathBuf, u64, u64)> = store_paths(root)
        .into_iter()
        .map(|p| {
            let meta = std::fs::metadata(&p).ok();
            let bytes = meta.as_ref().map_or(0, std::fs::Metadata::len);
            let age = meta
                .and_then(|m| m.modified().ok())
                .and_then(|t| std::time::SystemTime::now().duration_since(t).ok())
                .map_or(0, |d| d.as_secs());
            (p, bytes, age)
        })
        .collect();
    let mut report = GcReport::default();
    let evict = |p: &Path, bytes: u64, report: &mut GcReport| {
        if std::fs::remove_file(p).is_ok() {
            report.evicted.push((
                p.file_name()
                    .map_or_else(String::new, |n| n.to_string_lossy().into_owned()),
                bytes,
            ));
        }
    };
    if let Some(max_age) = max_age_secs {
        entries.retain(|(p, bytes, age)| {
            if *age > max_age {
                evict(p, *bytes, &mut report);
                false
            } else {
                true
            }
        });
    }
    if let Some(max_size) = max_size {
        let mut total: u64 = entries.iter().map(|(_, b, _)| *b).sum();
        // Oldest first.
        entries.sort_by_key(|(_, _, age)| std::cmp::Reverse(*age));
        let mut i = 0;
        while total > max_size && i < entries.len() {
            let (p, bytes, _) = &entries[i];
            evict(p, *bytes, &mut report);
            total -= *bytes;
            i += 1;
        }
        entries.drain(..i);
    }
    report.kept = entries.len();
    report.kept_bytes = entries.iter().map(|(_, b, _)| *b).sum();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisec_inject::golden_run;

    fn sha_hex(data: &[u8]) -> String {
        let mut h = sha::Sha256::new();
        h.update(data);
        h.finalize().iter().fold(String::new(), |mut s, b| {
            use std::fmt::Write as _;
            let _ = write!(s, "{b:02x}");
            s
        })
    }

    #[test]
    fn sha256_matches_fips_vectors() {
        assert_eq!(
            sha_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Exercise the multi-block and buffered-tail paths.
        let long = vec![b'a'; 1_000_000];
        assert_eq!(
            sha_hex(&long),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
        // Incremental updates across block boundaries agree with one-shot.
        let data: Vec<u8> = (0..=255u8).cycle().take(777).collect();
        let mut inc = sha::Sha256::new();
        for chunk in data.chunks(13) {
            inc.update(chunk);
        }
        let mut one = sha::Sha256::new();
        one.update(&data);
        assert_eq!(inc.finalize(), one.finalize());
    }

    fn test_store(dir: &Path, app: &AppSpec) -> (ClientStore, GoldenRun) {
        let spec = &app.clients[0];
        let golden = golden_run(&app.image, spec).unwrap();
        let cache = CampaignCache::at(dir.to_path_buf());
        let store = cache.open_client(app, spec, EncodingScheme::Baseline, false, &golden);
        (store, golden)
    }

    fn sample_group(app: &AppSpec) -> Vec<InjectionTarget> {
        let set = fisec_inject::enumerate_targets(&app.image, &app.auth_funcs, true);
        let addr = set.targets[0].addr;
        set.targets
            .iter()
            .take_while(|t| t.addr == addr)
            .copied()
            .collect()
    }

    fn sample_runs(n: usize) -> Vec<CachedDigestedRun> {
        (0..n)
            .map(|i| {
                (
                    InjectionRun {
                        outcome: fisec_inject::OutcomeClass::NotManifested,
                        activated: true,
                        stop: fisec_os::Stop::Exited(0),
                        client: fisec_net::ClientStatus::Denied,
                        crash_latency: None,
                        transient_deviation: false,
                        divergence: None,
                    },
                    (i % 2 == 0).then_some((Some(i as u64), None)),
                )
            })
            .collect()
    }

    #[test]
    fn store_round_trips_and_survives_reopen() {
        let dir = std::env::temp_dir().join("fisec-cache-test-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let app = AppSpec::ftpd();
        let group = sample_group(&app);
        let runs = sample_runs(group.len());
        let (store, _) = test_store(&dir, &app);
        assert!(matches!(
            store.lookup(&app.image, &group),
            CacheLookup::Miss
        ));
        store.record(&app.image, &group, &runs, vec![(group[0].addr, 16)]);
        store.save().unwrap();
        // No tmp file left behind.
        assert_eq!(store_paths(&dir).len(), 1);
        let (store, _) = test_store(&dir, &app);
        match store.lookup(&app.image, &group) {
            CacheLookup::Hit(got) => assert_eq!(got, runs),
            _ => panic!("expected a hit after reopen"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_stale_and_collision_shaped_entries_are_misses() {
        let dir = std::env::temp_dir().join("fisec-cache-test-harden");
        let _ = std::fs::remove_dir_all(&dir);
        let app = AppSpec::ftpd();
        let group = sample_group(&app);
        let runs = sample_runs(group.len());
        let (store, _) = test_store(&dir, &app);
        store.record(&app.image, &group, &runs, vec![(group[0].addr, 16)]);
        store.save().unwrap();
        let path = store_paths(&dir)[0].clone();

        // Torn tail: truncate mid-JSON → unreadable → empty store.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let (store, _) = test_store(&dir, &app);
        assert!(matches!(
            store.lookup(&app.image, &group),
            CacheLookup::Miss
        ));

        // Stale schema version → ignored wholesale.
        std::fs::write(&path, full.replacen("\"schema\":1", "\"schema\":999", 1)).unwrap();
        let (store, _) = test_store(&dir, &app);
        assert!(matches!(
            store.lookup(&app.image, &group),
            CacheLookup::Miss
        ));

        // Hash-collision-shaped entry: right key string, wrong shape
        // (fewer runs than targets) → stale, never a bad fold.
        std::fs::write(&path, &full).unwrap();
        let mut file = read_store(&path).unwrap();
        file.groups[0].runs.pop();
        std::fs::write(&path, serde_json::to_string(&file).unwrap()).unwrap();
        let (store, _) = test_store(&dir, &app);
        assert!(matches!(
            store.lookup(&app.image, &group),
            CacheLookup::Stale
        ));

        // Malformed payload inside a well-shaped entry → stale.
        std::fs::write(&path, &full).unwrap();
        let mut file = read_store(&path).unwrap();
        file.groups[0].runs[0].outcome = "bogus".to_string();
        std::fs::write(&path, serde_json::to_string(&file).unwrap()).unwrap();
        let (store, _) = test_store(&dir, &app);
        assert!(matches!(
            store.lookup(&app.image, &group),
            CacheLookup::Stale
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn code_byte_pokes_invalidate_exactly_the_covering_entries() {
        let dir = std::env::temp_dir().join("fisec-cache-test-poke");
        let _ = std::fs::remove_dir_all(&dir);
        let mut app = AppSpec::ftpd();
        let group = sample_group(&app);
        let runs = sample_runs(group.len());
        let (store, _) = test_store(&dir, &app);
        // Footprint far away from the injected region.
        let far = app.image.text_base + app.image.text.len() as u32 - 64;
        store.record(&app.image, &group, &runs, vec![(far, 32)]);
        store.save().unwrap();

        // A poke inside the injected instruction changes the group key.
        let (store, _) = test_store(&dir, &app);
        let off = (group[0].addr - app.image.text_base) as usize;
        app.image.text[off] ^= 0x01;
        assert!(matches!(
            store.lookup(&app.image, &group),
            CacheLookup::Stale
        ));
        app.image.text[off] ^= 0x01;

        // A poke inside the stored footprint changes the footprint hash.
        let foff = (far - app.image.text_base) as usize + 5;
        app.image.text[foff] ^= 0x80;
        assert!(matches!(
            store.lookup(&app.image, &group),
            CacheLookup::Stale
        ));
        app.image.text[foff] ^= 0x80;

        // A poke outside both leaves the entry valid.
        let elsewhere = off + 200;
        app.image.text[elsewhere] ^= 0x40;
        assert!(matches!(
            store.lookup(&app.image, &group),
            CacheLookup::Hit(_)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn context_changes_are_a_full_miss() {
        let dir = std::env::temp_dir().join("fisec-cache-test-context");
        let _ = std::fs::remove_dir_all(&dir);
        let app = AppSpec::ftpd();
        let group = sample_group(&app);
        let runs = sample_runs(group.len());
        let (store, golden) = test_store(&dir, &app);
        store.record(&app.image, &group, &runs, vec![(group[0].addr, 16)]);
        store.save().unwrap();

        // Same context: hit. Doctored client fingerprint: full miss.
        let cache = CampaignCache::at(dir.clone());
        let spec = &app.clients[0];
        let store = cache.open_client(&app, spec, EncodingScheme::Baseline, false, &golden);
        assert!(matches!(
            store.lookup(&app.image, &group),
            CacheLookup::Hit(_)
        ));
        let mut doctored = AppSpec::ftpd();
        doctored.clients[0].fingerprint = "edited-script".to_string();
        let store = cache.open_client(
            &doctored,
            &doctored.clients[0],
            EncodingScheme::Baseline,
            false,
            &golden,
        );
        assert!(store.context_invalidated);
        assert_eq!(store.dropped_groups, 1);
        assert!(matches!(
            store.lookup(&doctored.image, &group),
            CacheLookup::Miss
        ));

        // A different scheme lands in a different file entirely.
        let store = cache.open_client(&app, spec, EncodingScheme::NewEncoding, false, &golden);
        assert!(!store.context_invalidated);
        assert!(matches!(
            store.lookup(&app.image, &group),
            CacheLookup::Miss
        ));

        // Golden observables are keyed: a doctored golden icount is a
        // context miss (stands in for any golden-path behavior change).
        let mut golden2 = golden.clone();
        golden2.icount += 1;
        let store = cache.open_client(&app, spec, EncodingScheme::Baseline, false, &golden2);
        assert!(store.context_invalidated);

        // The fault model string participates in the context key.
        let a = context_key(&app, spec, EncodingScheme::Baseline, false, &golden);
        assert_eq!(
            a,
            context_key(&app, spec, EncodingScheme::Baseline, false, &golden),
            "context key must be deterministic"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_evicts_by_age_and_size() {
        let dir = std::env::temp_dir().join("fisec-cache-test-gc");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.json"), vec![b'x'; 100]).unwrap();
        std::fs::write(dir.join("b.json"), vec![b'y'; 200]).unwrap();
        // Size cap alone: evict until under budget (both files share an
        // mtime, so either order is valid — assert the invariant).
        let report = gc(&dir, Some(250), None);
        assert!(!report.evicted.is_empty());
        assert!(report.kept_bytes <= 250);
        // Age cap of zero evicts nothing newer than now; a huge age cap
        // keeps everything.
        let report = gc(&dir, None, Some(3600));
        assert!(report.evicted.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_targets_round_trip() {
        let app = AppSpec::ftpd();
        let group = sample_group(&app);
        let entry = GroupEntry {
            addr: group[0].addr,
            key: String::new(),
            targets: group.iter().map(cached_target).collect(),
            foot: Vec::new(),
            foot_hash: String::new(),
            runs: Vec::new(),
        };
        assert_eq!(entry_targets(&entry).unwrap(), group);
        let mut bad = entry;
        bad.targets[0].location = 99;
        assert!(entry_targets(&bad).is_none());
    }
}
