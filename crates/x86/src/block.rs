//! Basic-block cache for the interpreter.
//!
//! The campaign engine replays the same few hundred bytes of server text
//! thousands of times, so paying fetch + decode + bookkeeping per retired
//! instruction is the dominant cost (EXPERIMENTS.md phase profile). A
//! [`Block`] is a straight-line run of instructions decoded once; the
//! [`Machine`](crate::Machine) dispatch loop then executes a whole block
//! per iteration with a single budget/breakpoint check and one batched
//! icount add — the classic dynamic-translation move, minus the
//! translation (execution still goes through the interpreter's `exec`).
//!
//! Soundness rests on one invariant, maintained by
//! [`Memory`](crate::Memory)'s executable-write journal: *every cached
//! block decodes to exactly the bytes currently in memory*. Each write
//! that bumps the executable generation logs its address, and the machine
//! invalidates exactly the blocks covering logged bytes — on entry to the
//! run loop, between instructions of a self-modifying block, and across
//! snapshot restores (where the journal also proves the snapshot is an
//! ancestor state, so a rewind only needs to drop blocks over the bytes
//! poked since it was taken).

use crate::cpu::{handler_of, Handler};
use crate::inst::{Cond, Inst, MemOperand, Op, OpSize, Operand, Reg8};
use std::sync::Arc;

/// Number of sets in the block cache (power of two); same index scheme
/// as the decoded-instruction cache. Conflicts only cost a rebuild,
/// never correctness.
const CACHE_SETS: usize = 4096;

/// Associativity: each set holds this many blocks with one LRU bit, so
/// two hot entries that hash to the same set no longer thrash each
/// other (the conflict pattern the direct-mapped PR 3 cache paid for
/// with rebuild storms — evictions under pressure are now counted in
/// [`BlockStats::conflict_evictions`]).
const CACHE_WAYS: usize = 2;

/// Longest block, in instructions. Bounds the work a single dispatch
/// commits to before budget and breakpoints are re-checked.
pub(crate) const MAX_BLOCK_INSTS: usize = 64;

/// A decoded straight-line run of instructions starting at `entry`,
/// terminated by a control transfer, a software interrupt, an invalid
/// instruction, the end of fetchable memory, or the length cap.
#[derive(Debug)]
pub struct Block {
    /// Entry EIP — the cache key.
    pub entry: u32,
    /// One past the last byte of the last instruction (`u64` because a
    /// block may end exactly at the 4 GiB boundary).
    pub end: u64,
    /// The lowered instructions with their addresses.
    pub insts: Vec<LInst>,
    /// Whether any instruction observes the live instruction counter
    /// (`rdtsc`). Such blocks are executed through the precise
    /// single-step path so the counter they read is exact.
    pub reads_icount: bool,
    /// Whether any lowered instruction may write memory (and therefore
    /// bump the executable generation). Blocks without writes take the
    /// instrumentation-free fast executor: no per-instruction
    /// self-modification re-check is ever needed.
    pub writes: bool,
}

/// One instruction of a block: the decoded form (kept for the `Slow`
/// fallback), the successor address, the pre-resolved fast form, and
/// its execution handler (threaded dispatch: one indirect call per
/// µop instead of a match over every variant).
#[derive(Debug, Clone, Copy)]
pub struct LInst {
    pub(crate) addr: u32,
    pub(crate) next: u32,
    pub(crate) inst: Inst,
    pub(crate) uop: UOp,
    pub(crate) handler: Handler,
}

impl LInst {
    /// Lower one decoded instruction at `addr` (whose successor is
    /// `next`) and resolve its dispatch handler.
    pub(crate) fn new(addr: u32, next: u32, inst: Inst) -> LInst {
        let uop = lower(&inst, next);
        LInst {
            addr,
            next,
            inst,
            uop,
            handler: handler_of(uop),
        }
    }
}

/// Pre-resolved `base + disp` effective address (no SIB index). `base`
/// is a register number, or [`Ea::NO_BASE`] for absolute addressing.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Ea {
    pub base: u8,
    pub disp: u32,
}

impl Ea {
    pub const NO_BASE: u8 = 8;
}

/// Two-operand 32-bit ALU kinds sharing one lowered fast path. `Cmp`
/// and `Test` compute flags without a writeback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AluK {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Cmp,
    Test,
}

/// A lowered instruction. The handful of operand shapes that dominate
/// the compiled servers' dynamic mix (lea/push/pop/mov through
/// `[base+disp]`, register ALU, relative branches — ~95% of retired
/// instructions, see EXPERIMENTS.md) get direct variants the block
/// executor dispatches without the general `exec` operand machinery;
/// everything else is `Slow` and falls back to `exec` verbatim. Every
/// fast variant preserves `exec`'s semantics exactly: same flag
/// helpers, same access order, same fault addresses and partial-write
/// behaviour.
#[derive(Debug, Clone, Copy)]
pub(crate) enum UOp {
    MovRR { d: u8, s: u8 },
    MovRI { d: u8, v: u32 },
    MovRM { d: u8, ea: Ea },
    MovMR { ea: Ea, s: u8 },
    MovM8R8 { ea: Ea, s: Reg8 },
    MovsxR32M8 { d: u8, ea: Ea },
    MovzxR32M8 { d: u8, ea: Ea },
    Lea { d: u8, ea: Ea },
    PushR { s: u8 },
    PushI { v: u32 },
    PopR { d: u8 },
    IncR { d: u8 },
    DecR { d: u8 },
    AluRR { k: AluK, d: u8, s: u8 },
    AluRI { k: AluK, d: u8, v: u32 },
    AluMI { k: AluK, ea: Ea, v: u32 },
    JmpRel { t: u32 },
    JccRel { c: Cond, t: u32 },
    CallRel { t: u32 },
    Ret { extra: u16 },
    Leave,
    Nop,
    // Residual slow-path shapes measured by the PR 7 profiler (the
    // itoa idiv/cdq cluster, crypt_hash's imul, the int80 syscall
    // gate) get dedicated µops so hot code stays out of generic exec.
    Cdq,
    DivR { s: u8, signed: bool },
    DivM { ea: Ea, signed: bool },
    MulR { s: u8, signed: bool },
    ImulRR { d: u8, s: u8 },
    ImulRM { d: u8, ea: Ea },
    ImulRRI { d: u8, s: u8, v: u32 },
    Int80,
    Slow,
}

impl UOp {
    /// Can this form write memory (and therefore bump the executable
    /// generation)? The block executor only re-checks the generation
    /// after instructions for which this holds; the rest cannot
    /// self-modify. `Slow` is conservatively `true`.
    #[inline]
    pub(crate) fn may_write(self) -> bool {
        matches!(
            self,
            UOp::MovMR { .. }
                | UOp::MovM8R8 { .. }
                | UOp::AluMI { .. }
                | UOp::PushR { .. }
                | UOp::PushI { .. }
                | UOp::CallRel { .. }
                | UOp::Slow
        )
    }
}

/// Lower one decoded instruction (whose successor is `next`) to its
/// fast form, or `Slow` when no specialized variant applies.
pub(crate) fn lower(i: &Inst, next: u32) -> UOp {
    let ea_of = |m: &MemOperand| {
        if m.index.is_some() {
            return None;
        }
        Some(Ea {
            base: m.base.map_or(Ea::NO_BASE, |r| r as u8),
            disp: m.disp as u32,
        })
    };
    let d32 = i.size == OpSize::Dword;
    let alu = match i.op {
        Op::Add => Some(AluK::Add),
        Op::Sub => Some(AluK::Sub),
        Op::And => Some(AluK::And),
        Op::Or => Some(AluK::Or),
        Op::Xor => Some(AluK::Xor),
        Op::Cmp => Some(AluK::Cmp),
        Op::Test => Some(AluK::Test),
        _ => None,
    };
    match (i.op, &i.dst, &i.src) {
        (Op::Nop, _, _) => UOp::Nop,
        (Op::Mov, Some(Operand::Reg(d)), Some(Operand::Reg(s))) if d32 => UOp::MovRR {
            d: *d as u8,
            s: *s as u8,
        },
        (Op::Mov, Some(Operand::Reg(d)), Some(Operand::Imm(v))) if d32 => UOp::MovRI {
            d: *d as u8,
            v: *v as u32,
        },
        (Op::Mov, Some(Operand::Reg(d)), Some(Operand::Mem(m))) if d32 => match ea_of(m) {
            Some(ea) => UOp::MovRM { d: *d as u8, ea },
            None => UOp::Slow,
        },
        (Op::Mov, Some(Operand::Mem(m)), Some(Operand::Reg(s))) if d32 => match ea_of(m) {
            Some(ea) => UOp::MovMR { ea, s: *s as u8 },
            None => UOp::Slow,
        },
        (Op::Mov, Some(Operand::Mem(m)), Some(Operand::Reg8(s))) if i.size == OpSize::Byte => {
            match ea_of(m) {
                Some(ea) => UOp::MovM8R8 { ea, s: *s },
                None => UOp::Slow,
            }
        }
        (Op::Movsx, Some(Operand::Reg(d)), Some(Operand::Mem(m)))
            if d32 && i.size2 == OpSize::Byte =>
        {
            match ea_of(m) {
                Some(ea) => UOp::MovsxR32M8 { d: *d as u8, ea },
                None => UOp::Slow,
            }
        }
        (Op::Movzx, Some(Operand::Reg(d)), Some(Operand::Mem(m)))
            if d32 && i.size2 == OpSize::Byte =>
        {
            match ea_of(m) {
                Some(ea) => UOp::MovzxR32M8 { d: *d as u8, ea },
                None => UOp::Slow,
            }
        }
        // `lea` ignores the operand size in exec (always a 32-bit write).
        (Op::Lea, Some(Operand::Reg(d)), Some(Operand::Mem(m))) => match ea_of(m) {
            Some(ea) => UOp::Lea { d: *d as u8, ea },
            None => UOp::Slow,
        },
        (Op::Push, Some(Operand::Reg(s)), _) if d32 => UOp::PushR { s: *s as u8 },
        (Op::Push, Some(Operand::Imm(v)), _) if d32 => UOp::PushI { v: *v as u32 },
        (Op::Pop, Some(Operand::Reg(d)), _) if d32 => UOp::PopR { d: *d as u8 },
        (Op::Inc, Some(Operand::Reg(d)), _) if d32 => UOp::IncR { d: *d as u8 },
        (Op::Dec, Some(Operand::Reg(d)), _) if d32 => UOp::DecR { d: *d as u8 },
        (_, Some(Operand::Reg(d)), Some(Operand::Reg(s))) if d32 && alu.is_some() => UOp::AluRR {
            k: alu.unwrap(),
            d: *d as u8,
            s: *s as u8,
        },
        (_, Some(Operand::Reg(d)), Some(Operand::Imm(v))) if d32 && alu.is_some() => UOp::AluRI {
            k: alu.unwrap(),
            d: *d as u8,
            v: *v as u32,
        },
        (_, Some(Operand::Mem(m)), Some(Operand::Imm(v))) if d32 && alu.is_some() => {
            match ea_of(m) {
                Some(ea) => UOp::AluMI {
                    k: alu.unwrap(),
                    ea,
                    v: *v as u32,
                },
                None => UOp::Slow,
            }
        }
        (Op::Jmp, Some(Operand::Rel(d)), _) if d32 => UOp::JmpRel {
            t: next.wrapping_add(*d as u32),
        },
        (Op::Jcc(c), Some(Operand::Rel(d)), _) if d32 => UOp::JccRel {
            c,
            t: next.wrapping_add(*d as u32),
        },
        (Op::Call, Some(Operand::Rel(d)), _) if d32 => UOp::CallRel {
            t: next.wrapping_add(*d as u32),
        },
        (Op::Ret(extra), _, _) => UOp::Ret { extra },
        (Op::Leave, _, _) => UOp::Leave,
        (Op::Cdq, _, _) if d32 => UOp::Cdq,
        (Op::Div | Op::Idiv, Some(Operand::Reg(s)), _) if d32 => UOp::DivR {
            s: *s as u8,
            signed: i.op == Op::Idiv,
        },
        (Op::Div | Op::Idiv, Some(Operand::Mem(m)), _) if d32 => match ea_of(m) {
            Some(ea) => UOp::DivM {
                ea,
                signed: i.op == Op::Idiv,
            },
            None => UOp::Slow,
        },
        (Op::Mul | Op::Imul1, Some(Operand::Reg(s)), _) if d32 => UOp::MulR {
            s: *s as u8,
            signed: i.op == Op::Imul1,
        },
        (Op::Imul2, Some(Operand::Reg(d)), Some(Operand::Reg(s))) if d32 => UOp::ImulRR {
            d: *d as u8,
            s: *s as u8,
        },
        (Op::Imul2, Some(Operand::Reg(d)), Some(Operand::Mem(m))) if d32 => match ea_of(m) {
            Some(ea) => UOp::ImulRM { d: *d as u8, ea },
            None => UOp::Slow,
        },
        (Op::Imul3, Some(Operand::Reg(d)), Some(Operand::Reg(s)))
            if d32 && matches!(i.src2, Some(Operand::Imm(_))) =>
        {
            let Some(Operand::Imm(v)) = i.src2 else {
                unreachable!()
            };
            UOp::ImulRRI {
                d: *d as u8,
                s: *s as u8,
                v: v as u32,
            }
        }
        (Op::Int(0x80), _, _) => UOp::Int80,
        _ => UOp::Slow,
    }
}

impl Block {
    /// Does the block's byte range cover `addr`?
    #[inline]
    pub fn covers(&self, addr: u32) -> bool {
        (self.entry as u64) <= (addr as u64) && (addr as u64) < self.end
    }
}

/// Cumulative block-cache counters, exposed for tests and the bench
/// crate's cache-retention measurements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Blocks decoded and inserted.
    pub built: u64,
    /// Dispatches served from the cache.
    pub hits: u64,
    /// Blocks dropped by invalidation (targeted or full clears).
    pub invalidated: u64,
    /// Resident blocks displaced by an insert into a full set (set
    /// pressure, not staleness — each one is a future rebuild).
    pub conflict_evictions: u64,
    /// Blocks currently resident.
    pub cached: usize,
}

/// Two-way set-associative `entry → Arc<Block>` cache with per-set LRU.
/// Blocks are immutable and reference-counted so a dispatched block
/// stays valid even if executing it invalidates its own slot
/// (self-modifying code).
#[derive(Debug, Clone, Default)]
pub(crate) struct BlockCache {
    /// `CACHE_SETS * CACHE_WAYS` entries, set-major: the ways of set
    /// `s` live at `s * CACHE_WAYS ..`.
    slots: Vec<Option<Arc<Block>>>,
    /// Per-set LRU: the way index to victimize next.
    lru: Vec<u8>,
    /// Indices of occupied slots, unordered. Keeps journal-driven
    /// invalidation proportional to the resident population instead of
    /// the full slot array — restore-heavy campaigns flush the journal
    /// several times per run.
    occupied: Vec<u32>,
    built: u64,
    hits: u64,
    invalidated: u64,
    conflict_evictions: u64,
}

impl BlockCache {
    #[inline]
    fn set_of(entry: u32) -> usize {
        (entry as usize ^ (entry as usize >> 12)) & (CACHE_SETS - 1)
    }

    /// Count a resident-loop re-execution: the dispatcher re-ran the
    /// block it already holds without consulting the cache, which is a
    /// hit for accounting purposes (same decoded bytes reused).
    #[inline]
    pub fn note_resident_hit(&mut self) {
        self.hits += 1;
    }

    /// The cached block entered at `entry`, if resident.
    #[inline]
    pub fn get(&mut self, entry: u32) -> Option<Arc<Block>> {
        let base = Self::set_of(entry) * CACHE_WAYS;
        for way in 0..CACHE_WAYS {
            if let Some(Some(b)) = self.slots.get(base + way) {
                if b.entry == entry {
                    self.hits += 1;
                    self.lru[base / CACHE_WAYS] = (way ^ 1) as u8;
                    return Some(Arc::clone(b));
                }
            }
        }
        None
    }

    /// Insert a freshly built block into its set: an empty way if one
    /// exists, else the LRU way (a conflict eviction).
    pub fn insert(&mut self, block: Arc<Block>) {
        if self.slots.is_empty() {
            self.slots.resize(CACHE_SETS * CACHE_WAYS, None);
            self.lru.resize(CACHE_SETS, 0);
        }
        self.built += 1;
        let set = Self::set_of(block.entry);
        let base = set * CACHE_WAYS;
        let way = match (0..CACHE_WAYS).find(|&w| self.slots[base + w].is_none()) {
            Some(w) => w,
            None => {
                self.conflict_evictions += 1;
                self.lru[set] as usize
            }
        };
        if self.slots[base + way].is_none() {
            self.occupied.push((base + way) as u32);
        }
        self.slots[base + way] = Some(block);
        self.lru[set] = (way ^ 1) as u8;
    }

    /// Drop every block whose byte range covers any of `addrs` (the
    /// executable bytes just written, straight from the memory journal).
    pub fn invalidate_writes(&mut self, addrs: &[u32]) {
        if self.occupied.is_empty() || addrs.is_empty() {
            return;
        }
        let slots = &mut self.slots;
        let invalidated = &mut self.invalidated;
        self.occupied.retain(|&i| {
            let slot = &mut slots[i as usize];
            match slot {
                Some(b) if addrs.iter().any(|&a| b.covers(a)) => {
                    *invalidated += 1;
                    *slot = None;
                    false
                }
                other => other.is_some(),
            }
        });
    }

    /// Drop everything (lineage breaks, decoder swaps, engine toggles).
    pub fn clear(&mut self) {
        self.invalidated += self.resident() as u64;
        self.slots.clear();
        self.lru.clear();
        self.occupied.clear();
    }

    fn resident(&self) -> usize {
        self.occupied.len()
    }

    pub fn stats(&self) -> BlockStats {
        BlockStats {
            built: self.built,
            hits: self.hits,
            invalidated: self.invalidated,
            conflict_evictions: self.conflict_evictions,
            cached: self.resident(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Op;

    fn block(entry: u32, nbytes: u32) -> Arc<Block> {
        let inst = Inst::new(Op::Nop);
        Arc::new(Block {
            entry,
            end: entry as u64 + nbytes as u64,
            insts: vec![LInst::new(entry, entry.wrapping_add(1), inst)],
            reads_icount: false,
            writes: false,
        })
    }

    #[test]
    fn covers_is_half_open() {
        let b = block(0x1000, 4);
        assert!(!b.covers(0xFFF));
        assert!(b.covers(0x1000));
        assert!(b.covers(0x1003));
        assert!(!b.covers(0x1004));
    }

    #[test]
    fn invalidation_is_targeted() {
        let mut c = BlockCache::default();
        c.insert(block(0x1000, 8));
        c.insert(block(0x1100, 8));
        assert_eq!(c.stats().cached, 2);
        c.invalidate_writes(&[0x1004]);
        assert!(c.get(0x1000).is_none());
        assert!(c.get(0x1100).is_some());
        let s = c.stats();
        assert_eq!((s.cached, s.invalidated, s.hits), (1, 1, 1));
        // A write outside every block is free.
        c.invalidate_writes(&[0x9000]);
        assert_eq!(c.stats().cached, 1);
    }

    #[test]
    fn two_way_sets_hold_a_pair_and_evict_lru_on_the_third() {
        let mut c = BlockCache::default();
        // All three hash to set 1: set(e) = (e ^ e>>12) & 4095.
        let (a, b, d) = (0x0001u32, 0x1000u32, 0x2003u32);
        assert_eq!(BlockCache::set_of(a), BlockCache::set_of(b));
        assert_eq!(BlockCache::set_of(a), BlockCache::set_of(d));
        c.insert(block(a, 4));
        c.insert(block(b, 4));
        // Two conflicting entries coexist — the direct-mapped cache
        // would have thrashed here.
        assert!(c.get(a).is_some());
        assert!(c.get(b).is_some());
        assert_eq!(c.stats().conflict_evictions, 0);
        // A third entry displaces the least recently used way (`a` was
        // touched before `b`), and the displacement is counted.
        c.insert(block(d, 4));
        assert!(c.get(a).is_none(), "LRU way must be the victim");
        assert!(c.get(b).is_some());
        assert!(c.get(d).is_some());
        assert_eq!(c.stats().conflict_evictions, 1);
    }
}
