//! Encoder for the instruction subset the assembler and compiler emit.
//!
//! The encoder and decoder satisfy `decode(&encode(i)?) == i` (up to the
//! `len` field, which only the decoder fills in) for every instruction the
//! encoder accepts — a property test in `tests/` exercises this over the
//! whole encodable space.
//!
//! Branch displacement selection mirrors the hardware reality the paper
//! depends on: `Jcc`/`jmp` with a displacement that fits in `i8` get the
//! short (2-byte, opcodes `0x70..=0x7F`/`0xEB`) form, others the long
//! (6-byte `0x0F 0x80..=0x8F` / 5-byte `0xE9`) form. The two-pass assembler
//! uses the same rule for relaxation.

use crate::inst::{Inst, MemOperand, Op, OpSize, Operand, Reg32, Reg8, RepKind, StrOp};
use std::fmt;

/// Errors from [`encode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The operation is not in the encodable subset.
    UnsupportedOp(String),
    /// The operand combination is not encodable for this op.
    BadOperands(String),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::UnsupportedOp(s) => write!(f, "unsupported instruction: {s}"),
            EncodeError::BadOperands(s) => write!(f, "bad operand combination: {s}"),
        }
    }
}

impl std::error::Error for EncodeError {}

fn bad(i: &Inst) -> EncodeError {
    EncodeError::BadOperands(format!("{i}"))
}

/// Emit ModRM (+ SIB + displacement) for `reg` field and an r/m operand.
fn put_modrm(out: &mut Vec<u8>, reg: u8, rm: &Operand) -> Result<(), EncodeError> {
    match rm {
        Operand::Reg(r) => out.push(0xC0 | (reg << 3) | *r as u8),
        Operand::Reg16(r) => out.push(0xC0 | (reg << 3) | *r as u8),
        Operand::Reg8(r) => out.push(0xC0 | (reg << 3) | *r as u8),
        Operand::Mem(m) => put_mem(out, reg, m)?,
        _ => {
            return Err(EncodeError::BadOperands(
                "immediate/rel used as r/m".to_string(),
            ))
        }
    }
    Ok(())
}

fn put_mem(out: &mut Vec<u8>, reg: u8, m: &MemOperand) -> Result<(), EncodeError> {
    if let Some((idx, scale)) = m.index {
        if idx == Reg32::Esp {
            return Err(EncodeError::BadOperands("esp cannot be an index".into()));
        }
        let ss = match scale {
            1 => 0u8,
            2 => 1,
            4 => 2,
            8 => 3,
            _ => return Err(EncodeError::BadOperands(format!("bad scale {scale}"))),
        };
        match m.base {
            None => {
                // mod=00, rm=100, SIB base=101: [index*scale + disp32]
                out.push((reg << 3) | 4);
                out.push((ss << 6) | ((idx as u8) << 3) | 5);
                out.extend_from_slice(&m.disp.to_le_bytes());
            }
            Some(base) => {
                let (md, disp_bytes): (u8, &[u8]) = if m.disp == 0 && base != Reg32::Ebp {
                    (0, &[])
                } else if (-128..=127).contains(&m.disp) {
                    (1, &m.disp.to_le_bytes()[..1])
                } else {
                    (2, &m.disp.to_le_bytes()[..])
                };
                // Cannot borrow twice; copy disp bytes.
                let db = disp_bytes.to_vec();
                out.push((md << 6) | (reg << 3) | 4);
                out.push((ss << 6) | ((idx as u8) << 3) | base as u8);
                out.extend_from_slice(&db);
            }
        }
        return Ok(());
    }
    match m.base {
        None => {
            // [disp32]
            out.push((reg << 3) | 5);
            out.extend_from_slice(&m.disp.to_le_bytes());
        }
        Some(Reg32::Esp) => {
            // Needs SIB with no index.
            let (md, db): (u8, Vec<u8>) = if m.disp == 0 {
                (0, vec![])
            } else if (-128..=127).contains(&m.disp) {
                (1, m.disp.to_le_bytes()[..1].to_vec())
            } else {
                (2, m.disp.to_le_bytes().to_vec())
            };
            out.push((md << 6) | (reg << 3) | 4);
            out.push(0x24); // scale=0, index=100 (none), base=esp
            out.extend_from_slice(&db);
        }
        Some(base) => {
            let (md, db): (u8, Vec<u8>) = if m.disp == 0 && base != Reg32::Ebp {
                (0, vec![])
            } else if (-128..=127).contains(&m.disp) {
                (1, m.disp.to_le_bytes()[..1].to_vec())
            } else {
                (2, m.disp.to_le_bytes().to_vec())
            };
            out.push((md << 6) | (reg << 3) | base as u8);
            out.extend_from_slice(&db);
        }
    }
    Ok(())
}

fn alu_index(op: Op) -> Option<u8> {
    Some(match op {
        Op::Add => 0,
        Op::Or => 1,
        Op::Adc => 2,
        Op::Sbb => 3,
        Op::And => 4,
        Op::Sub => 5,
        Op::Xor => 6,
        Op::Cmp => 7,
        _ => return None,
    })
}

fn shift_index(op: Op) -> Option<u8> {
    Some(match op {
        Op::Rol => 0,
        Op::Ror => 1,
        Op::Rcl => 2,
        Op::Rcr => 3,
        Op::Shl => 4,
        Op::Shr => 5,
        Op::Sar => 7,
        _ => return None,
    })
}

/// Encode an instruction to bytes.
///
/// # Errors
/// [`EncodeError`] if the op or operand combination is outside the
/// encodable subset (the decoder understands strictly more than the
/// encoder produces).
pub fn encode(i: &Inst) -> Result<Vec<u8>, EncodeError> {
    let mut out = Vec::with_capacity(8);
    if i.size == OpSize::Word {
        // Only a few word-size forms are needed; emit the prefix up front.
        out.push(0x66);
    }
    match i.op {
        // ── ALU ──────────────────────────────────────────────────────
        op if alu_index(op).is_some() => {
            let n = alu_index(op).unwrap();
            match (i.dst, i.src) {
                (Some(dst @ (Operand::Reg(_) | Operand::Reg16(_))), Some(Operand::Imm(v)))
                    if i.size != OpSize::Byte =>
                {
                    if i.size == OpSize::Dword && (-128..=127).contains(&v) {
                        out.push(0x83);
                        put_modrm(&mut out, n, &dst)?;
                        out.push(v as u8);
                    } else {
                        out.push(0x81);
                        put_modrm(&mut out, n, &dst)?;
                        match i.size {
                            OpSize::Word => out.extend_from_slice(&(v as u16).to_le_bytes()),
                            _ => out.extend_from_slice(&(v as u32).to_le_bytes()),
                        }
                    }
                }
                (Some(dst @ Operand::Mem(_)), Some(Operand::Imm(v))) => match i.size {
                    OpSize::Byte => {
                        out.push(0x80);
                        put_modrm(&mut out, n, &dst)?;
                        out.push(v as u8);
                    }
                    OpSize::Word => {
                        out.push(0x81);
                        put_modrm(&mut out, n, &dst)?;
                        out.extend_from_slice(&(v as u16).to_le_bytes());
                    }
                    OpSize::Dword => {
                        if (-128..=127).contains(&v) {
                            out.push(0x83);
                            put_modrm(&mut out, n, &dst)?;
                            out.push(v as u8);
                        } else {
                            out.push(0x81);
                            put_modrm(&mut out, n, &dst)?;
                            out.extend_from_slice(&(v as u32).to_le_bytes());
                        }
                    }
                },
                (Some(dst @ Operand::Reg8(_)), Some(Operand::Imm(v))) => {
                    out.push(0x80);
                    put_modrm(&mut out, n, &dst)?;
                    out.push(v as u8);
                }
                (
                    Some(dst @ (Operand::Mem(_) | Operand::Reg(_) | Operand::Reg16(_))),
                    Some(Operand::Reg(s)),
                ) => {
                    out.push((n << 3) | 0x01);
                    put_modrm(&mut out, s as u8, &dst)?;
                }
                (Some(dst @ Operand::Mem(_)), Some(Operand::Reg8(s))) => {
                    out.push(n << 3);
                    put_modrm(&mut out, s as u8, &dst)?;
                }
                (Some(Operand::Reg8(d)), Some(src @ (Operand::Mem(_) | Operand::Reg8(_)))) => {
                    out.push((n << 3) | 0x02);
                    put_modrm(&mut out, d as u8, &src)?;
                }
                (Some(Operand::Reg(d)), Some(src @ Operand::Mem(_))) => {
                    out.push((n << 3) | 0x03);
                    put_modrm(&mut out, d as u8, &src)?;
                }
                _ => return Err(bad(i)),
            }
        }

        Op::Test => match (i.dst, i.src) {
            (Some(dst @ (Operand::Reg(_) | Operand::Mem(_))), Some(Operand::Reg(s)))
                if i.size == OpSize::Dword =>
            {
                out.push(0x85);
                put_modrm(&mut out, s as u8, &dst)?;
            }
            (Some(dst @ (Operand::Reg8(_) | Operand::Mem(_))), Some(Operand::Reg8(s))) => {
                out.push(0x84);
                put_modrm(&mut out, s as u8, &dst)?;
            }
            (Some(dst @ (Operand::Reg(_) | Operand::Mem(_))), Some(Operand::Imm(v)))
                if i.size == OpSize::Dword =>
            {
                out.push(0xF7);
                put_modrm(&mut out, 0, &dst)?;
                out.extend_from_slice(&(v as u32).to_le_bytes());
            }
            (Some(dst @ (Operand::Reg8(_) | Operand::Mem(_))), Some(Operand::Imm(v))) => {
                out.push(0xF6);
                put_modrm(&mut out, 0, &dst)?;
                out.push(v as u8);
            }
            _ => return Err(bad(i)),
        },

        // ── mov ──────────────────────────────────────────────────────
        Op::Mov => match (i.dst, i.src) {
            (Some(Operand::Reg(d)), Some(Operand::Imm(v))) if i.size == OpSize::Dword => {
                out.push(0xB8 + d as u8);
                out.extend_from_slice(&(v as u32).to_le_bytes());
            }
            (Some(Operand::Reg16(d)), Some(Operand::Imm(v))) => {
                out.push(0xB8 + d as u8);
                out.extend_from_slice(&(v as u16).to_le_bytes());
            }
            (Some(Operand::Reg8(d)), Some(Operand::Imm(v))) => {
                out.push(0xB0 + d as u8);
                out.push(v as u8);
            }
            (Some(dst @ Operand::Mem(_)), Some(Operand::Imm(v))) => match i.size {
                OpSize::Byte => {
                    out.push(0xC6);
                    put_modrm(&mut out, 0, &dst)?;
                    out.push(v as u8);
                }
                OpSize::Word => {
                    out.push(0xC7);
                    put_modrm(&mut out, 0, &dst)?;
                    out.extend_from_slice(&(v as u16).to_le_bytes());
                }
                OpSize::Dword => {
                    out.push(0xC7);
                    put_modrm(&mut out, 0, &dst)?;
                    out.extend_from_slice(&(v as u32).to_le_bytes());
                }
            },
            (Some(dst @ (Operand::Reg(_) | Operand::Mem(_))), Some(Operand::Reg(s)))
                if i.size == OpSize::Dword =>
            {
                out.push(0x89);
                put_modrm(&mut out, s as u8, &dst)?;
            }
            (Some(Operand::Reg(d)), Some(src @ Operand::Mem(_))) if i.size == OpSize::Dword => {
                out.push(0x8B);
                put_modrm(&mut out, d as u8, &src)?;
            }
            (Some(dst @ (Operand::Reg8(_) | Operand::Mem(_))), Some(Operand::Reg8(s))) => {
                out.push(0x88);
                put_modrm(&mut out, s as u8, &dst)?;
            }
            (Some(Operand::Reg8(d)), Some(src @ Operand::Mem(_))) => {
                out.push(0x8A);
                put_modrm(&mut out, d as u8, &src)?;
            }
            _ => return Err(bad(i)),
        },

        Op::Movzx | Op::Movsx => {
            let base: u8 = if i.op == Op::Movzx { 0xB6 } else { 0xBE };
            let (Some(Operand::Reg(d)), Some(src)) = (i.dst, i.src) else {
                return Err(bad(i));
            };
            out.push(0x0F);
            match i.size2 {
                OpSize::Byte => out.push(base),
                OpSize::Word => out.push(base + 1),
                OpSize::Dword => return Err(bad(i)),
            }
            put_modrm(&mut out, d as u8, &src)?;
        }

        Op::Lea => {
            let (Some(Operand::Reg(d)), Some(src @ Operand::Mem(_))) = (i.dst, i.src) else {
                return Err(bad(i));
            };
            out.push(0x8D);
            put_modrm(&mut out, d as u8, &src)?;
        }

        Op::Xchg => match (i.dst, i.src) {
            (Some(dst @ (Operand::Reg(_) | Operand::Mem(_))), Some(Operand::Reg(s))) => {
                out.push(0x87);
                put_modrm(&mut out, s as u8, &dst)?;
            }
            _ => return Err(bad(i)),
        },

        // ── stack ────────────────────────────────────────────────────
        Op::Push => match i.dst {
            Some(Operand::Reg(r)) => out.push(0x50 + r as u8),
            Some(Operand::Imm(v)) => {
                if (-128..=127).contains(&v) {
                    out.push(0x6A);
                    out.push(v as u8);
                } else {
                    out.push(0x68);
                    out.extend_from_slice(&(v as u32).to_le_bytes());
                }
            }
            Some(m @ Operand::Mem(_)) => {
                out.push(0xFF);
                put_modrm(&mut out, 6, &m)?;
            }
            _ => return Err(bad(i)),
        },
        Op::Pop => match i.dst {
            Some(Operand::Reg(r)) => out.push(0x58 + r as u8),
            Some(m @ Operand::Mem(_)) => {
                out.push(0x8F);
                put_modrm(&mut out, 0, &m)?;
            }
            _ => return Err(bad(i)),
        },

        // ── unary ────────────────────────────────────────────────────
        Op::Inc | Op::Dec => {
            let n: u8 = if i.op == Op::Inc { 0 } else { 1 };
            match i.dst {
                Some(Operand::Reg(r)) if i.size == OpSize::Dword => {
                    out.push(if i.op == Op::Inc { 0x40 } else { 0x48 } + r as u8)
                }
                Some(m @ Operand::Mem(_)) if i.size == OpSize::Dword => {
                    out.push(0xFF);
                    put_modrm(&mut out, n, &m)?;
                }
                Some(d @ (Operand::Reg8(_) | Operand::Mem(_))) if i.size == OpSize::Byte => {
                    out.push(0xFE);
                    put_modrm(&mut out, n, &d)?;
                }
                _ => return Err(bad(i)),
            }
        }
        Op::Neg | Op::Not | Op::Mul | Op::Imul1 | Op::Div | Op::Idiv => {
            let n: u8 = match i.op {
                Op::Not => 2,
                Op::Neg => 3,
                Op::Mul => 4,
                Op::Imul1 => 5,
                Op::Div => 6,
                Op::Idiv => 7,
                _ => unreachable!(),
            };
            let Some(d) = i.dst else { return Err(bad(i)) };
            out.push(if i.size == OpSize::Byte { 0xF6 } else { 0xF7 });
            put_modrm(&mut out, n, &d)?;
        }
        Op::Imul2 => {
            let (Some(Operand::Reg(d)), Some(src)) = (i.dst, i.src) else {
                return Err(bad(i));
            };
            out.push(0x0F);
            out.push(0xAF);
            put_modrm(&mut out, d as u8, &src)?;
        }
        Op::Imul3 => {
            let (Some(Operand::Reg(d)), Some(src), Some(Operand::Imm(v))) = (i.dst, i.src, i.src2)
            else {
                return Err(bad(i));
            };
            if (-128..=127).contains(&v) {
                out.push(0x6B);
                put_modrm(&mut out, d as u8, &src)?;
                out.push(v as u8);
            } else {
                out.push(0x69);
                put_modrm(&mut out, d as u8, &src)?;
                out.extend_from_slice(&(v as u32).to_le_bytes());
            }
        }

        // ── shifts ───────────────────────────────────────────────────
        op if shift_index(op).is_some() => {
            let n = shift_index(op).unwrap();
            let Some(d) = i.dst else { return Err(bad(i)) };
            let byte = i.size == OpSize::Byte;
            match i.src {
                Some(Operand::Imm(1)) => {
                    out.push(if byte { 0xD0 } else { 0xD1 });
                    put_modrm(&mut out, n, &d)?;
                }
                Some(Operand::Imm(v)) => {
                    out.push(if byte { 0xC0 } else { 0xC1 });
                    put_modrm(&mut out, n, &d)?;
                    out.push(v as u8);
                }
                Some(Operand::Reg8(Reg8::Cl)) => {
                    out.push(if byte { 0xD2 } else { 0xD3 });
                    put_modrm(&mut out, n, &d)?;
                }
                _ => return Err(bad(i)),
            }
        }

        // ── control transfer ─────────────────────────────────────────
        Op::Jcc(c) => {
            let Some(Operand::Rel(d)) = i.dst else {
                return Err(bad(i));
            };
            if (-128..=127).contains(&d) {
                out.push(0x70 | c as u8);
                out.push(d as u8);
            } else {
                out.push(0x0F);
                out.push(0x80 | c as u8);
                out.extend_from_slice(&d.to_le_bytes());
            }
        }
        Op::Setcc(c) => {
            let Some(d) = i.dst else { return Err(bad(i)) };
            out.push(0x0F);
            out.push(0x90 | c as u8);
            put_modrm(&mut out, 0, &d)?;
        }
        Op::Jmp => {
            let Some(Operand::Rel(d)) = i.dst else {
                return Err(bad(i));
            };
            if (-128..=127).contains(&d) {
                out.push(0xEB);
                out.push(d as u8);
            } else {
                out.push(0xE9);
                out.extend_from_slice(&d.to_le_bytes());
            }
        }
        Op::JmpInd => {
            let Some(d) = i.dst else { return Err(bad(i)) };
            out.push(0xFF);
            put_modrm(&mut out, 4, &d)?;
        }
        Op::Call => {
            let Some(Operand::Rel(d)) = i.dst else {
                return Err(bad(i));
            };
            out.push(0xE8);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Op::CallInd => {
            let Some(d) = i.dst else { return Err(bad(i)) };
            out.push(0xFF);
            put_modrm(&mut out, 2, &d)?;
        }
        Op::Ret(0) => out.push(0xC3),
        Op::Ret(n) => {
            out.push(0xC2);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Op::Leave => out.push(0xC9),
        Op::Loop => {
            let Some(Operand::Rel(d)) = i.dst else {
                return Err(bad(i));
            };
            if !(-128..=127).contains(&d) {
                return Err(bad(i));
            }
            out.push(0xE2);
            out.push(d as u8);
        }
        Op::Jecxz => {
            let Some(Operand::Rel(d)) = i.dst else {
                return Err(bad(i));
            };
            if !(-128..=127).contains(&d) {
                return Err(bad(i));
            }
            out.push(0xE3);
            out.push(d as u8);
        }

        // ── misc ─────────────────────────────────────────────────────
        Op::Nop => out.push(0x90),
        Op::Int3 => out.push(0xCC),
        Op::Int(n) => {
            out.push(0xCD);
            out.push(n);
        }
        Op::Cdq => out.push(0x99),
        Op::Cwde => out.push(0x98),
        Op::Pushf => out.push(0x9C),
        Op::Popf => out.push(0x9D),
        Op::Clc => out.push(0xF8),
        Op::Stc => out.push(0xF9),
        Op::Cld => out.push(0xFC),
        Op::Std => out.push(0xFD),
        Op::Str(s) => {
            if let Some(r) = i.rep {
                // rep prefix must precede 0x66; fix ordering if present.
                let pos = if i.size == OpSize::Word {
                    out.len() - 1
                } else {
                    out.len()
                };
                out.insert(
                    pos,
                    match r {
                        RepKind::RepE => 0xF3,
                        RepKind::RepNe => 0xF2,
                    },
                );
            }
            let byte = i.size == OpSize::Byte;
            out.push(match (s, byte) {
                (StrOp::Movs, true) => 0xA4,
                (StrOp::Movs, false) => 0xA5,
                (StrOp::Cmps, true) => 0xA6,
                (StrOp::Cmps, false) => 0xA7,
                (StrOp::Stos, true) => 0xAA,
                (StrOp::Stos, false) => 0xAB,
                (StrOp::Lods, true) => 0xAC,
                (StrOp::Lods, false) => 0xAD,
                (StrOp::Scas, true) => 0xAE,
                (StrOp::Scas, false) => 0xAF,
            });
        }

        ref op => return Err(EncodeError::UnsupportedOp(format!("{op:?}"))),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;
    use crate::inst::Cond;

    fn roundtrip(i: Inst) {
        let bytes = encode(&i).unwrap_or_else(|e| panic!("encode {i}: {e}"));
        let mut expect = i;
        expect.len = bytes.len() as u8;
        let got = decode(&bytes);
        assert_eq!(got, expect, "bytes {bytes:02x?}");
    }

    #[test]
    fn roundtrip_mov_forms() {
        roundtrip(
            Inst::new(Op::Mov)
                .dst(Operand::Reg(Reg32::Eax))
                .src(Operand::Imm(0x1234)),
        );
        roundtrip(
            Inst::new(Op::Mov)
                .dst(Operand::Reg(Reg32::Edi))
                .src(Operand::Imm(-1)),
        );
        roundtrip(
            Inst::new(Op::Mov)
                .dst(Operand::Reg(Reg32::Eax))
                .src(Operand::Mem(MemOperand::base_disp(Reg32::Ebp, -8))),
        );
        roundtrip(
            Inst::new(Op::Mov)
                .dst(Operand::Mem(MemOperand::base_disp(Reg32::Esp, 4)))
                .src(Operand::Reg(Reg32::Ecx)),
        );
        roundtrip(
            Inst::new(Op::Mov)
                .dst(Operand::Mem(MemOperand::abs(0x2000)))
                .src(Operand::Imm(7)),
        );
        roundtrip(
            Inst::new(Op::Mov)
                .dst(Operand::Reg8(Reg8::Al))
                .src(Operand::Imm(0x41))
                .size(OpSize::Byte),
        );
    }

    #[test]
    fn roundtrip_alu() {
        roundtrip(
            Inst::new(Op::Add)
                .dst(Operand::Reg(Reg32::Esp))
                .src(Operand::Imm(8)),
        );
        roundtrip(
            Inst::new(Op::Sub)
                .dst(Operand::Reg(Reg32::Esp))
                .src(Operand::Imm(0x1000)),
        );
        roundtrip(
            Inst::new(Op::Cmp)
                .dst(Operand::Reg(Reg32::Eax))
                .src(Operand::Reg(Reg32::Ebx)),
        );
        roundtrip(
            Inst::new(Op::Xor)
                .dst(Operand::Reg(Reg32::Ebx))
                .src(Operand::Reg(Reg32::Ebx)),
        );
        roundtrip(
            Inst::new(Op::And)
                .dst(Operand::Reg(Reg32::Eax))
                .src(Operand::Mem(MemOperand::base_disp(Reg32::Esi, 0))),
        );
    }

    #[test]
    fn roundtrip_branches() {
        roundtrip(Inst::new(Op::Jcc(Cond::E)).dst(Operand::Rel(6)));
        roundtrip(Inst::new(Op::Jcc(Cond::Ne)).dst(Operand::Rel(-2)));
        roundtrip(Inst::new(Op::Jcc(Cond::G)).dst(Operand::Rel(1000)));
        roundtrip(Inst::new(Op::Jmp).dst(Operand::Rel(5)));
        roundtrip(Inst::new(Op::Jmp).dst(Operand::Rel(-4096)));
        roundtrip(Inst::new(Op::Call).dst(Operand::Rel(0x100)));
        roundtrip(Inst::new(Op::Ret(0)));
        roundtrip(Inst::new(Op::Ret(8)));
    }

    #[test]
    fn jcc_short_form_is_two_bytes() {
        let bytes = encode(&Inst::new(Op::Jcc(Cond::E)).dst(Operand::Rel(6))).unwrap();
        assert_eq!(bytes, vec![0x74, 0x06]);
        let bytes = encode(&Inst::new(Op::Jcc(Cond::Ne)).dst(Operand::Rel(200))).unwrap();
        assert_eq!(bytes.len(), 6);
        assert_eq!(&bytes[..2], &[0x0F, 0x85]);
    }

    #[test]
    fn roundtrip_stack_ops() {
        roundtrip(Inst::new(Op::Push).dst(Operand::Reg(Reg32::Ebp)));
        roundtrip(Inst::new(Op::Push).dst(Operand::Imm(0x2000)));
        roundtrip(Inst::new(Op::Push).dst(Operand::Imm(-1)));
        roundtrip(Inst::new(Op::Push).dst(Operand::Mem(MemOperand::base_disp(Reg32::Ebp, 8))));
        roundtrip(Inst::new(Op::Pop).dst(Operand::Reg(Reg32::Ebp)));
        roundtrip(Inst::new(Op::Leave));
    }

    #[test]
    fn roundtrip_muldiv() {
        roundtrip(
            Inst::new(Op::Imul2)
                .dst(Operand::Reg(Reg32::Eax))
                .src(Operand::Reg(Reg32::Ecx)),
        );
        roundtrip(Inst {
            op: Op::Imul3,
            dst: Some(Operand::Reg(Reg32::Eax)),
            src: Some(Operand::Reg(Reg32::Eax)),
            src2: Some(Operand::Imm(10)),
            size: OpSize::Dword,
            size2: OpSize::Dword,
            rep: None,
            len: 0,
        });
        roundtrip(Inst::new(Op::Div).dst(Operand::Reg(Reg32::Ecx)));
        roundtrip(Inst::new(Op::Idiv).dst(Operand::Reg(Reg32::Ecx)));
        roundtrip(Inst::new(Op::Cdq));
        roundtrip(Inst::new(Op::Neg).dst(Operand::Reg(Reg32::Eax)));
    }

    #[test]
    fn roundtrip_shifts() {
        roundtrip(
            Inst::new(Op::Shl)
                .dst(Operand::Reg(Reg32::Eax))
                .src(Operand::Imm(4)),
        );
        roundtrip(
            Inst::new(Op::Sar)
                .dst(Operand::Reg(Reg32::Edx))
                .src(Operand::Imm(1)),
        );
        roundtrip(
            Inst::new(Op::Shr)
                .dst(Operand::Reg(Reg32::Eax))
                .src(Operand::Reg8(Reg8::Cl)),
        );
    }

    #[test]
    fn roundtrip_setcc_movzx() {
        roundtrip(
            Inst::new(Op::Setcc(Cond::E))
                .dst(Operand::Reg8(Reg8::Al))
                .size(OpSize::Byte),
        );
        let mut i = Inst::new(Op::Movzx)
            .dst(Operand::Reg(Reg32::Eax))
            .src(Operand::Reg8(Reg8::Al));
        i.size2 = OpSize::Byte;
        roundtrip(i);
    }

    #[test]
    fn roundtrip_sib_addressing() {
        roundtrip(
            Inst::new(Op::Lea)
                .dst(Operand::Reg(Reg32::Eax))
                .src(Operand::Mem(MemOperand {
                    base: Some(Reg32::Ebx),
                    index: Some((Reg32::Ecx, 4)),
                    disp: 8,
                })),
        );
        roundtrip(
            Inst::new(Op::Mov)
                .dst(Operand::Reg(Reg32::Edx))
                .src(Operand::Mem(MemOperand {
                    base: None,
                    index: Some((Reg32::Esi, 2)),
                    disp: 0x3000,
                })),
        );
    }

    #[test]
    fn roundtrip_string_ops() {
        let mut i = Inst::new(Op::Str(StrOp::Movs)).size(OpSize::Byte);
        i.rep = Some(RepKind::RepE);
        roundtrip(i);
        let mut i = Inst::new(Op::Str(StrOp::Scas)).size(OpSize::Byte);
        i.rep = Some(RepKind::RepNe);
        roundtrip(i);
        roundtrip(Inst::new(Op::Str(StrOp::Stos)).size(OpSize::Dword));
    }

    #[test]
    fn roundtrip_int() {
        roundtrip(Inst::new(Op::Int(0x80)));
        roundtrip(Inst::new(Op::Int3));
        roundtrip(Inst::new(Op::Nop));
    }

    #[test]
    fn esp_index_rejected() {
        let i = Inst::new(Op::Lea)
            .dst(Operand::Reg(Reg32::Eax))
            .src(Operand::Mem(MemOperand {
                base: None,
                index: Some((Reg32::Esp, 1)),
                disp: 0,
            }));
        assert!(encode(&i).is_err());
    }

    #[test]
    fn unsupported_op_errors() {
        assert!(matches!(
            encode(&Inst::new(Op::Cpuid)),
            Err(EncodeError::UnsupportedOp(_))
        ));
    }
}
