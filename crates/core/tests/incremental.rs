//! Incremental-cache differential tests: a campaign folded out of the
//! persistent store must be indistinguishable — byte for byte — from
//! one computed live, in both execution modes, while the telemetry
//! counters prove the warm run actually skipped the work.
//!
//! The contract under test (ISSUE 9):
//!   * cold (populating), warm (folding) and cache-off campaigns render
//!     identical Table 1 text and Figure 4 latency vectors;
//!   * an unchanged-tree warm run is 100% cache hits — zero snapshot
//!     restores, fresh boots for the golden runs only;
//!   * editing a client script (fingerprint) cold-misses that client's
//!     store without touching the others;
//!   * poking a code byte re-runs the affected groups and the store
//!     self-heals: the next run is all hits again;
//!   * switching the encoding scheme never reuses the other scheme's
//!     entries.

use fisec_apps::AppSpec;
use fisec_core::{
    figure4, run_campaign_cached, tables::render_table1, CampaignCache, CampaignConfig,
    CampaignResult, EncodingScheme, ExecutionMode,
};
use fisec_telemetry::{metric, MetricsShard, Telemetry};
use std::path::PathBuf;

fn temp_cache(tag: &str) -> (CampaignCache, PathBuf) {
    let dir = std::env::temp_dir().join(format!("fisec-incremental-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (CampaignCache::at(dir.clone()), dir)
}

/// Run one campaign and return its result plus the final metrics.
fn run(
    app: &AppSpec,
    cfg: &CampaignConfig,
    cache: Option<&CampaignCache>,
) -> (CampaignResult, MetricsShard) {
    let tel = Telemetry::collecting();
    let result = run_campaign_cached(app, cfg, &tel, cache);
    let snap = tel.metrics.snapshot();
    (result, snap)
}

/// Every observable artefact must match: the rendered Table 1, the
/// Figure 4 inputs and rendering, and the full per-run record vectors.
fn assert_identical(a: &CampaignResult, b: &CampaignResult, what: &str) {
    assert_eq!(
        render_table1(&[a]),
        render_table1(&[b]),
        "{what}: Table 1 drifted"
    );
    assert_eq!(a.runs_per_client, b.runs_per_client, "{what}");
    assert_eq!(a.clients.len(), b.clients.len(), "{what}");
    for (x, y) in a.clients.iter().zip(&b.clients) {
        assert_eq!(x.client, y.client, "{what}");
        assert_eq!(x.counts, y.counts, "{what}: {} tallies drifted", x.client);
        assert_eq!(
            x.brkfsv_by_location, y.brkfsv_by_location,
            "{what}: {} location breakdown drifted",
            x.client
        );
        assert_eq!(
            x.crash_latencies, y.crash_latencies,
            "{what}: {} Figure-4 latencies drifted",
            x.client
        );
        assert_eq!(
            figure4::render(&figure4::histogram(&x.crash_latencies)),
            figure4::render(&figure4::histogram(&y.crash_latencies)),
            "{what}: {} Figure 4 drifted",
            x.client
        );
        assert_eq!(x.transient_deviations, y.transient_deviations, "{what}");
        assert_eq!(
            x.records, y.records,
            "{what}: {} per-run records drifted",
            x.client
        );
    }
}

#[test]
fn warm_run_is_all_hits_zero_replays_and_byte_identical_in_both_modes() {
    let app = AppSpec::ftpd();
    for mode in [ExecutionMode::Snapshot, ExecutionMode::FromScratch] {
        let cfg = CampaignConfig {
            mode,
            ..CampaignConfig::default()
        };
        let (cache, dir) = temp_cache(&format!("warm-{}", mode.name()));

        let (off, _) = run(&app, &cfg, None);
        let (cold, cold_m) = run(&app, &cfg, Some(&cache));
        let (warm, warm_m) = run(&app, &cfg, Some(&cache));

        assert_identical(&cold, &off, "cold vs cache-off");
        assert_identical(&warm, &off, "warm vs cache-off");

        // Cold: every consulted group missed and was stored.
        let groups = cold_m.counter(metric::CACHE_MISS_GROUPS);
        assert!(groups > 0, "{mode:?}: cold run consulted no groups");
        assert_eq!(cold_m.counter(metric::CACHE_HIT_GROUPS), 0);
        assert_eq!(cold_m.counter(metric::CACHE_STORES), groups);

        // Warm: 100% hits, no stores, and the engine never replayed —
        // zero snapshot restores. Snapshot mode boots twice per client
        // (golden + the NA-prefilter coverage boot, which by design
        // runs before the store is consulted); from-scratch once.
        assert_eq!(warm_m.counter(metric::CACHE_HIT_GROUPS), groups, "{mode:?}");
        assert_eq!(warm_m.counter(metric::CACHE_MISS_GROUPS), 0, "{mode:?}");
        assert_eq!(warm_m.counter(metric::CACHE_STALE_GROUPS), 0, "{mode:?}");
        assert_eq!(warm_m.counter(metric::CACHE_STORES), 0, "{mode:?}");
        assert_eq!(warm_m.counter(metric::RESTORES), 0, "{mode:?}");
        let boots_per_client = match mode {
            ExecutionMode::Snapshot => 2,
            ExecutionMode::FromScratch => 1,
        };
        assert_eq!(
            warm_m.counter(metric::FRESH_BOOTS),
            boots_per_client * app.clients.len() as u64,
            "{mode:?}: warm run must boot golden/coverage and nothing else"
        );
        assert!(warm_m.counter(metric::CACHE_SYNTH_RUNS) > 0, "{mode:?}");

        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn snapshot_store_warms_a_from_scratch_run_and_vice_versa() {
    // The two engines observe different footprint granularities (block
    // vs instruction), but entries validate over their own recorded
    // ranges — a store populated by one mode must fold cleanly into
    // the other and produce identical bytes.
    let app = AppSpec::ftpd();
    let (cache, dir) = temp_cache("crossmode");
    let snap_cfg = CampaignConfig::default();
    let scratch_cfg = CampaignConfig {
        mode: ExecutionMode::FromScratch,
        ..CampaignConfig::default()
    };

    let (cold, cold_m) = run(&app, &snap_cfg, Some(&cache));
    let groups = cold_m.counter(metric::CACHE_MISS_GROUPS);
    // Every group the snapshot campaign stored folds into the
    // from-scratch run. From-scratch consults *more* groups — the ones
    // the snapshot NA-prefilter proved dead and never stored — and
    // those miss, run live, and heal into the store.
    let (warm_scratch, m) = run(&app, &scratch_cfg, Some(&cache));
    assert_eq!(m.counter(metric::CACHE_HIT_GROUPS), groups);
    assert!(
        m.counter(metric::CACHE_MISS_GROUPS) > 0,
        "prefiltered groups are absent"
    );
    assert_identical(
        &warm_scratch,
        &cold,
        "from-scratch warmed by snapshot store",
    );

    // Healed: a second from-scratch run folds everything.
    let (_, m) = run(&app, &scratch_cfg, Some(&cache));
    assert_eq!(m.counter(metric::CACHE_MISS_GROUPS), 0);

    let (warm_snap, m) = run(&app, &snap_cfg, Some(&cache));
    assert_eq!(m.counter(metric::CACHE_HIT_GROUPS), groups);
    assert_identical(&warm_snap, &cold, "snapshot warmed again");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_script_change_cold_misses_that_client_only() {
    let app = AppSpec::ftpd();
    let cfg = CampaignConfig::default();
    let (cache, dir) = temp_cache("fingerprint");

    let (cold, cold_m) = run(&app, &cfg, Some(&cache));
    let groups = cold_m.counter(metric::CACHE_MISS_GROUPS);

    // Doctor one client's script fingerprint: the campaign executes
    // identically (the fingerprint is pure identity), but that client's
    // store context no longer matches.
    let mut edited = AppSpec::ftpd();
    edited.clients[0].fingerprint = "edited-script-v2".to_string();
    let (warm, m) = run(&edited, &cfg, Some(&cache));

    let hits = m.counter(metric::CACHE_HIT_GROUPS);
    let misses = m.counter(metric::CACHE_MISS_GROUPS);
    assert!(hits > 0, "other clients must keep their entries");
    assert!(misses > 0, "the edited client must cold-miss");
    assert_eq!(hits + misses, groups, "every group is a hit or a miss");
    // The dropped entries are reported as stale context.
    assert_eq!(m.counter(metric::CACHE_STALE_GROUPS), misses);
    // Execution is unchanged, so the results still match.
    assert_identical(&warm, &cold, "fingerprint edit");

    // The store healed: rerunning the edited app is all hits again.
    let (_, m) = run(&edited, &cfg, Some(&cache));
    assert_eq!(m.counter(metric::CACHE_HIT_GROUPS), groups);
    assert_eq!(m.counter(metric::CACHE_MISS_GROUPS), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn code_byte_poke_reruns_affected_groups_and_the_store_self_heals() {
    let app = AppSpec::ftpd();
    let cfg = CampaignConfig::default();
    let (cache, dir) = temp_cache("poke");

    let (_, _) = run(&app, &cfg, Some(&cache));

    // Flip the condition of one injected branch (0x7x ^ 1 keeps the
    // instruction length, so the target set shape survives). This is a
    // real semantic edit: the campaign outcome may change, and the
    // cache must notice.
    let mut poked = AppSpec::ftpd();
    let targets = fisec_inject::enumerate_targets(&poked.image, &poked.auth_funcs, false).targets;
    let t = targets
        .iter()
        .find(|t| t.is_cond_branch && (0x70..0x80).contains(&t.first_byte))
        .expect("ftpd auth code has a short conditional branch");
    let off = (t.addr - poked.image.text_base) as usize;
    poked.image.text[off] ^= 0x01;

    let (warm, m) = run(&poked, &cfg, Some(&cache));
    let (off_result, _) = run(&poked, &cfg, None);
    assert_identical(&warm, &off_result, "poked warm vs poked cache-off");
    assert!(
        m.counter(metric::CACHE_MISS_GROUPS) + m.counter(metric::CACHE_STALE_GROUPS) > 0,
        "a code edit must re-run something"
    );

    // Self-heal: the next run of the poked tree is warm again and
    // still byte-identical. The poke may have changed the golden run
    // itself (the flipped branch is live auth code), shifting both the
    // store context and the prefilter's consult set — so the property
    // is "no misses left", not a hit count carried over from the
    // unpoked tree.
    let (warm2, m) = run(&poked, &cfg, Some(&cache));
    assert!(m.counter(metric::CACHE_HIT_GROUPS) > 0);
    assert_eq!(m.counter(metric::CACHE_MISS_GROUPS), 0);
    assert_eq!(m.counter(metric::CACHE_STALE_GROUPS), 0);
    assert_eq!(m.counter(metric::RESTORES), 0);
    assert_identical(&warm2, &off_result, "poked re-warm");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scheme_change_never_reuses_the_other_schemes_entries() {
    let app = AppSpec::ftpd();
    let (cache, dir) = temp_cache("scheme");
    let base = CampaignConfig::default();
    let newenc = CampaignConfig {
        scheme: EncodingScheme::NewEncoding,
        ..CampaignConfig::default()
    };

    let (_, m) = run(&app, &base, Some(&cache));
    let base_groups = m.counter(metric::CACHE_MISS_GROUPS);
    assert!(base_groups > 0);

    // The other scheme lives in its own store file: zero hits.
    let (_, m) = run(&app, &newenc, Some(&cache));
    assert_eq!(m.counter(metric::CACHE_HIT_GROUPS), 0);
    assert!(m.counter(metric::CACHE_MISS_GROUPS) > 0);

    // Both schemes now warm independently.
    let (_, m) = run(&app, &newenc, Some(&cache));
    assert_eq!(m.counter(metric::CACHE_MISS_GROUPS), 0);
    let (_, m) = run(&app, &base, Some(&cache));
    assert_eq!(m.counter(metric::CACHE_HIT_GROUPS), base_groups);
    assert_eq!(m.counter(metric::CACHE_MISS_GROUPS), 0);

    let _ = std::fs::remove_dir_all(&dir);
}
