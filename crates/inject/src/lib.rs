//! # fisec-inject — the NFTAPE-style breakpoint fault injector
//!
//! Reproduces the paper's §4 experimental procedure:
//!
//! 1. load the server executable;
//! 2. set a breakpoint at the instruction picked for injection;
//! 3. start the server with a scripted client logging in;
//! 4. if the breakpoint is hit, the error is **activated**: flip the
//!    chosen bit in the chosen byte (optionally through the §6.2
//!    old→new→flip→new→old mapping) and continue;
//! 5. monitor the run to completion and classify the outcome against the
//!    golden (error-free) run: **NA**, **NM**, **SD**, **FSV** or
//!    **BRK**, plus the crash latency used by Figure 4 and the error
//!    location taxonomy of Tables 2/3.

pub mod classify;
pub mod divergence;
pub mod forensics;
pub mod latent;
pub mod location;
pub mod persist;
pub mod propagation;
pub mod target;

pub use classify::{classify_run, GoldenRun, InjectionRun, OutcomeClass};
pub use divergence::{DivergenceReport, GoldenContinuation, RECORDER_EDGES};
pub use forensics::{crash_forensics, CrashReport, PathSegment};
pub use latent::{LatentError, LatentRunner};
pub use location::ErrorLocation;
pub use propagation::{kind_label, PropagationReport};
pub use target::{enumerate_targets, InjectionTarget, TargetSet};

use fisec_apps::ClientSpec;
use fisec_asm::Image;
use fisec_encoding::{remap_flip, ByteCtx, EncodingScheme};
use fisec_net::Trace;
use fisec_os::{Process, Stop};
use fisec_x86::{ExecProfile, Footprint, DEFAULT_TAINT_HORIZON};
use std::time::Instant;

/// Default multiplier on the golden run's instruction count used as the
/// per-run budget (runaway/hang detection).
pub const BUDGET_MULTIPLIER: u64 = 8;
/// Floor for the per-run budget.
pub const BUDGET_FLOOR: u64 = 400_000;

/// Execution-engine options threaded from the campaign configuration
/// into every process an injection entry point boots. Orthogonal to
/// [`EncodingScheme`]: the scheme changes *what* is injected, the engine
/// options only change *how* execution is simulated — outcomes are
/// bit-identical either way (pinned by differential tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOpts {
    /// Execute through the basic-block cache (the default). `false` is
    /// the `--no-block-cache` escape hatch: the reference per-step
    /// interpreter.
    pub block_cache: bool,
    /// Promote hot blocks into tier-2 superblock traces (the default;
    /// only meaningful with `block_cache`). `false` is the
    /// `--no-trace-cache` escape hatch: tier-1 block dispatch only.
    /// Outcomes are bit-identical either way (pinned by differential
    /// tests).
    pub trace_cache: bool,
    /// Arm the flight recorder on every activated run and diff it
    /// against a golden continuation of the same checkpoint (see
    /// [`divergence`]). Off by default; outcomes are bit-identical
    /// either way (pinned by differential tests) — the flag only adds
    /// the recorded traces and [`DivergenceReport`]s.
    pub flight_recorder: bool,
    /// Collect the hot-spot execution profile (per-block dispatch and
    /// retire counters, slow-path sites, block-cache traffic) for every
    /// process the entry points boot. Off by default; outcomes are
    /// bit-identical either way (pinned by differential tests) — the
    /// recorded-entry-point returns gain an [`ExecProfile`], nothing
    /// else changes.
    pub profiler: bool,
    /// Record the executed-code [`Footprint`] of every process the
    /// entry points boot (dispatch-granularity byte ranges fetched for
    /// execution, accumulated across checkpoint restores). Off by
    /// default; outcomes are bit-identical either way — the flag only
    /// adds the [`Footprint`] to the recorded-entry-point returns. The
    /// campaign cache uses it to key a group's memoized results on the
    /// image bytes the group actually executed.
    pub footprint: bool,
    /// Arm the propagation tracer (see [`fisec_x86::taint`]) on every
    /// activated run, seeded at the injected instruction. Off by
    /// default; outcomes are bit-identical either way (pinned by
    /// differential tests) — the flag only adds a [`PropagationReport`]
    /// per activated run to the recorded-entry-point returns.
    pub propagation: bool,
}

impl Default for EngineOpts {
    fn default() -> EngineOpts {
        EngineOpts {
            block_cache: true,
            trace_cache: true,
            flight_recorder: false,
            profiler: false,
            footprint: false,
            propagation: false,
        }
    }
}

impl EngineOpts {
    /// This configuration with footprint recording switched on.
    #[must_use]
    pub fn with_footprint(mut self) -> EngineOpts {
        self.footprint = true;
        self
    }

    fn apply(self, p: &mut Process) {
        p.machine.set_block_engine(self.block_cache);
        p.machine.set_trace_cache(self.trace_cache);
        if self.profiler {
            p.machine.enable_profiler();
        }
        if self.footprint {
            p.machine.enable_footprint();
        }
    }
}

/// Record the golden (error-free) run for a client pattern.
///
/// # Errors
/// Propagates [`fisec_os::LoadError`] if the image cannot be loaded.
pub fn golden_run(image: &Image, client: &ClientSpec) -> Result<GoldenRun, fisec_os::LoadError> {
    golden_run_opts(image, client, EngineOpts::default())
}

/// [`golden_run`] with explicit engine options.
///
/// # Errors
/// Propagates [`fisec_os::LoadError`] if the image cannot be loaded.
pub fn golden_run_opts(
    image: &Image,
    client: &ClientSpec,
    engine: EngineOpts,
) -> Result<GoldenRun, fisec_os::LoadError> {
    let mut p = Process::load(image, client.make())?;
    engine.apply(&mut p);
    p.set_budget(50_000_000);
    let stop = p.run();
    Ok(GoldenRun {
        stop,
        client: p.client_status(),
        trace: p.trace(),
        icount: p.icount(),
    })
}

/// Record the golden run *and* the set of instruction addresses it
/// executes. The campaign engine uses the coverage set to classify
/// targets at never-executed addresses as NA without spawning a run:
/// execution before activation is identical to golden, so a breakpoint
/// at an uncovered address can never be hit.
///
/// # Errors
/// Propagates [`fisec_os::LoadError`] if the image cannot be loaded.
pub fn golden_run_with_coverage(
    image: &Image,
    client: &ClientSpec,
) -> Result<(GoldenRun, std::collections::HashSet<u32>), fisec_os::LoadError> {
    golden_run_with_coverage_opts(image, client, EngineOpts::default())
}

/// [`golden_run_with_coverage`] with explicit engine options.
///
/// # Errors
/// Propagates [`fisec_os::LoadError`] if the image cannot be loaded.
pub fn golden_run_with_coverage_opts(
    image: &Image,
    client: &ClientSpec,
    engine: EngineOpts,
) -> Result<(GoldenRun, std::collections::HashSet<u32>), fisec_os::LoadError> {
    let mut p = Process::load(image, client.make())?;
    engine.apply(&mut p);
    p.set_budget(50_000_000);
    p.machine.enable_coverage();
    let stop = p.run();
    let golden = GoldenRun {
        stop,
        client: p.client_status(),
        trace: p.trace(),
        icount: p.icount(),
    };
    let coverage = p
        .machine
        .coverage()
        .expect("coverage was enabled before the run");
    Ok((golden, coverage))
}

/// Per-run execution metadata reported by the metered entry points, for
/// the telemetry layer: what the run cost, not what it concluded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunMeta {
    /// Guest instructions retired for this run: since the restore point
    /// for a snapshot replay, since boot for a fresh run. For a group
    /// whose breakpoint was never reached, every synthesized NA run
    /// reports the shared prefix's icount (the work a from-scratch run
    /// would have retired).
    pub icount: u64,
    /// Host microseconds executing the post-activation suffix (0 for
    /// runs that never activated).
    pub run_micros: u64,
    /// Host microseconds classifying the outcome against golden.
    pub classify_micros: u64,
}

/// Per-boot metadata shared by every run of a metered call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupMeta {
    /// Host microseconds booting from `_start` to the breakpoint (or to
    /// the natural stop when the breakpoint was never reached).
    pub boot_micros: u64,
    /// Host microseconds capturing the checkpoint (0 when no checkpoint
    /// was taken).
    pub snapshot_micros: u64,
    /// Checkpoint restores performed.
    pub restores: u64,
    /// Whether the breakpoint was reached (the error could activate).
    pub activated: bool,
}

fn micros_since(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Execute one injection experiment.
///
/// # Errors
/// Propagates [`fisec_os::LoadError`] if the image cannot be loaded.
pub fn run_injection(
    image: &Image,
    client: &ClientSpec,
    golden: &GoldenRun,
    target: &InjectionTarget,
    scheme: EncodingScheme,
) -> Result<InjectionRun, fisec_os::LoadError> {
    run_injection_metered(image, client, golden, target, scheme).map(|(run, _, _)| run)
}

/// [`run_injection`] plus the run's execution metadata (icount, host
/// time split by phase). The extra cost over the unmetered path is a
/// handful of monotonic-clock reads.
///
/// # Errors
/// Propagates [`fisec_os::LoadError`] if the image cannot be loaded.
pub fn run_injection_metered(
    image: &Image,
    client: &ClientSpec,
    golden: &GoldenRun,
    target: &InjectionTarget,
    scheme: EncodingScheme,
) -> Result<(InjectionRun, RunMeta, GroupMeta), fisec_os::LoadError> {
    run_injection_metered_opts(image, client, golden, target, scheme, EngineOpts::default())
}

/// [`run_injection_metered`] with explicit engine options.
///
/// # Errors
/// Propagates [`fisec_os::LoadError`] if the image cannot be loaded.
pub fn run_injection_metered_opts(
    image: &Image,
    client: &ClientSpec,
    golden: &GoldenRun,
    target: &InjectionTarget,
    scheme: EncodingScheme,
    engine: EngineOpts,
) -> Result<(InjectionRun, RunMeta, GroupMeta), fisec_os::LoadError> {
    run_injection_recorded(image, client, golden, target, scheme, engine)
        .map(|(run, meta, group, _, _, _, _)| (run, meta, group))
}

/// [`run_injection_metered_opts`] plus the [`DivergenceReport`] of the
/// run when `engine.flight_recorder` is on and the error activated,
/// plus the run's [`ExecProfile`] when `engine.profiler` is on, plus
/// the run's executed-code [`Footprint`] when `engine.footprint` is on,
/// plus the run's [`PropagationReport`] when `engine.propagation` is on
/// and the error activated. With the recorder on, the process is
/// checkpointed at the breakpoint and resumed once *without* the flip
/// (recorder armed) to capture the golden continuation, then restored
/// and injected as usual — the injected run's outcome is bit-identical
/// to the recorder-off path.
///
/// # Errors
/// Propagates [`fisec_os::LoadError`] if the image cannot be loaded.
#[allow(clippy::type_complexity)]
pub fn run_injection_recorded(
    image: &Image,
    client: &ClientSpec,
    golden: &GoldenRun,
    target: &InjectionTarget,
    scheme: EncodingScheme,
    engine: EngineOpts,
) -> Result<
    (
        InjectionRun,
        RunMeta,
        GroupMeta,
        Option<DivergenceReport>,
        Option<ExecProfile>,
        Option<Footprint>,
        Option<PropagationReport>,
    ),
    fisec_os::LoadError,
> {
    let boot_start = Instant::now();
    let mut p = Process::load(image, client.make())?;
    engine.apply(&mut p);
    let budget = (golden.icount * BUDGET_MULTIPLIER).max(BUDGET_FLOOR);
    p.set_budget(budget);
    p.machine.add_breakpoint(target.addr);

    let first = p.run();
    let boot_micros = micros_since(boot_start);
    let Stop::Breakpoint(_) = first else {
        // Instruction never executed: error not activated.
        let run = InjectionRun {
            outcome: OutcomeClass::NotActivated,
            activated: false,
            stop: first,
            client: p.client_status(),
            crash_latency: None,
            transient_deviation: false,
            divergence: None,
        };
        let meta = RunMeta {
            icount: p.icount(),
            run_micros: 0,
            classify_micros: 0,
        };
        let group = GroupMeta {
            boot_micros,
            ..GroupMeta::default()
        };
        let profile = p.machine.take_exec_profile();
        let footprint = p.machine.take_footprint();
        return Ok((run, meta, group, None, profile, footprint, None));
    };

    // With the recorder on, capture the golden continuation first: the
    // checkpoint makes the detour invisible to the injected run (the
    // restore rewinds registers, memory, icount, breakpoints and the
    // client channel — the same machinery the group engine relies on).
    let mut snapshot_micros = 0;
    let golden_ref = if engine.flight_recorder {
        let snapshot_start = Instant::now();
        let checkpoint = p.snapshot();
        snapshot_micros = micros_since(snapshot_start);
        let gc = golden_continuation(&mut p, target.addr);
        p.restore(&checkpoint);
        Some(gc)
    } else {
        None
    };

    // Activated: corrupt the byte and continue.
    let byte_addr = target.addr.wrapping_add(target.byte_index as u32);
    let orig = p
        .machine
        .mem
        .peek8(byte_addr)
        .expect("target byte is mapped: it was decoded from the image");
    let ctx = byte_ctx(target);
    let corrupted = remap_flip(orig, target.bit, ctx, scheme);
    p.machine
        .mem
        .poke8(byte_addr, corrupted)
        .expect("target byte is mapped");
    p.machine.remove_breakpoint(target.addr);
    let activation_icount = p.icount();
    if engine.flight_recorder {
        p.machine.enable_flight_recorder(RECORDER_EDGES);
    }
    if engine.propagation {
        p.machine
            .enable_taint(Some(target.addr), DEFAULT_TAINT_HORIZON);
    }

    let run_start = Instant::now();
    let stop = p.run();
    let run_micros = micros_since(run_start);
    let report = golden_ref.map(|gc| {
        let faulty = p
            .machine
            .take_flight_trace()
            .expect("recorder was armed before the run");
        divergence::diff_run(&gc, faulty, &p.machine.mem)
    });
    let prop = p.machine.take_propagation_log().map(|log| {
        let mut rep = PropagationReport::new(log, activation_icount);
        if decision_site(image, target.addr) {
            rep.mark_corrupted_decision(target.addr);
        }
        rep
    });
    let final_trace = p.trace();
    let crash_latency = match stop {
        Stop::Crashed(_) => Some(p.icount() - activation_icount),
        _ => None,
    };
    let classify_start = Instant::now();
    let run = classify_run(golden, stop, p.client_status(), final_trace, crash_latency);
    let meta = RunMeta {
        icount: p.icount(),
        run_micros,
        classify_micros: micros_since(classify_start),
    };
    let group = GroupMeta {
        boot_micros,
        snapshot_micros,
        restores: 0,
        activated: true,
    };
    let profile = p.machine.take_exec_profile();
    let footprint = p.machine.take_footprint();
    Ok((run, meta, group, report, profile, footprint, prop))
}

/// Resume a process checkpointed at its (disarmed) breakpoint with the
/// recorder on and no fault planted, capturing the reference the faulty
/// runs are diffed against. The caller restores the checkpoint after.
fn golden_continuation(p: &mut Process, addr: u32) -> GoldenContinuation {
    p.machine.remove_breakpoint(addr);
    p.machine.enable_flight_recorder(RECORDER_EDGES);
    let stop = p.run();
    let trace = p
        .machine
        .take_flight_trace()
        .expect("recorder was armed before the run");
    GoldenContinuation {
        trace: std::sync::Arc::new(trace),
        stop,
        mem: p.machine.mem.clone(),
    }
}

/// Execute every experiment in a group of targets sharing one
/// instruction address, replaying the boot-to-breakpoint prefix only
/// once.
///
/// The process boots with a breakpoint at the shared address exactly as
/// [`run_injection`] does. If the breakpoint is never hit, every target
/// in the group is NA with the same record the from-scratch path would
/// produce (pre-activation execution is deterministic). Otherwise the
/// process is checkpointed at the breakpoint and each target replays
/// only the post-flip suffix from the restored checkpoint: peek the
/// pristine byte, flip, disarm, run, classify — observably identical to
/// a from-scratch run because [`fisec_os::Process::restore`] rewinds
/// registers, memory, icount, breakpoints and the client channel.
///
/// # Errors
/// Propagates [`fisec_os::LoadError`] if the image cannot be loaded.
///
/// # Panics
/// If the targets do not all share one instruction address.
pub fn run_injection_group(
    image: &Image,
    client: &ClientSpec,
    golden: &GoldenRun,
    targets: &[InjectionTarget],
    scheme: EncodingScheme,
) -> Result<Vec<InjectionRun>, fisec_os::LoadError> {
    run_injection_group_metered(image, client, golden, targets, scheme)
        .map(|(runs, _)| runs.into_iter().map(|(run, _)| run).collect())
}

/// [`run_injection_group`] plus per-run and per-boot execution metadata
/// for the telemetry layer. Results are bit-identical to the unmetered
/// path; the only extra work is monotonic-clock reads around each phase.
///
/// # Errors
/// Propagates [`fisec_os::LoadError`] if the image cannot be loaded.
///
/// # Panics
/// If the targets do not all share one instruction address.
pub fn run_injection_group_metered(
    image: &Image,
    client: &ClientSpec,
    golden: &GoldenRun,
    targets: &[InjectionTarget],
    scheme: EncodingScheme,
) -> Result<(Vec<(InjectionRun, RunMeta)>, GroupMeta), fisec_os::LoadError> {
    run_injection_group_metered_opts(
        image,
        client,
        golden,
        targets,
        scheme,
        EngineOpts::default(),
    )
}

/// [`run_injection_group_metered`] with explicit engine options.
///
/// # Errors
/// Propagates [`fisec_os::LoadError`] if the image cannot be loaded.
///
/// # Panics
/// If the targets do not all share one instruction address.
pub fn run_injection_group_metered_opts(
    image: &Image,
    client: &ClientSpec,
    golden: &GoldenRun,
    targets: &[InjectionTarget],
    scheme: EncodingScheme,
    engine: EngineOpts,
) -> Result<(Vec<(InjectionRun, RunMeta)>, GroupMeta), fisec_os::LoadError> {
    run_injection_group_recorded(image, client, golden, targets, scheme, engine).map(
        |(runs, group, _, _)| {
            (
                runs.into_iter()
                    .map(|(run, meta, _, _)| (run, meta))
                    .collect(),
                group,
            )
        },
    )
}

/// [`run_injection_group_metered_opts`] plus a [`DivergenceReport`] per
/// activated run when `engine.flight_recorder` is on: the checkpoint is
/// resumed once without the flip (recorder armed) as the group's golden
/// continuation, then every target's replay records its own trace and
/// is diffed against it. Outcomes are bit-identical to the recorder-off
/// path. When `engine.profiler` is on, one [`ExecProfile`] covering the
/// boot and every replay of the group is returned as well (the profile
/// deliberately survives checkpoint restores, so it accounts for all
/// instructions the group retired). When `engine.footprint` is on, one
/// [`Footprint`] unioning the boot and every replay is returned — the
/// byte ranges whose contents the campaign cache must key the group's
/// memoized results on. When `engine.propagation` is on, each replay
/// arms the taint tracer seeded at the group's address and its sealed
/// [`PropagationReport`] rides along per run — the tracer is per-run
/// state, so the restore at the top of the next replay would drop it
/// anyway; the explicit take seals it first.
///
/// # Errors
/// Propagates [`fisec_os::LoadError`] if the image cannot be loaded.
///
/// # Panics
/// If the targets do not all share one instruction address.
#[allow(clippy::type_complexity)]
pub fn run_injection_group_recorded(
    image: &Image,
    client: &ClientSpec,
    golden: &GoldenRun,
    targets: &[InjectionTarget],
    scheme: EncodingScheme,
    engine: EngineOpts,
) -> Result<
    (
        Vec<(
            InjectionRun,
            RunMeta,
            Option<DivergenceReport>,
            Option<PropagationReport>,
        )>,
        GroupMeta,
        Option<ExecProfile>,
        Option<Footprint>,
    ),
    fisec_os::LoadError,
> {
    let Some(addr) = targets.first().map(|t| t.addr) else {
        return Ok((Vec::new(), GroupMeta::default(), None, None));
    };
    assert!(
        targets.iter().all(|t| t.addr == addr),
        "run_injection_group requires targets sharing one address"
    );
    let boot_start = Instant::now();
    let mut p = Process::load(image, client.make())?;
    engine.apply(&mut p);
    let budget = (golden.icount * BUDGET_MULTIPLIER).max(BUDGET_FLOOR);
    p.set_budget(budget);
    p.machine.add_breakpoint(addr);

    let first = p.run();
    let boot_micros = micros_since(boot_start);
    let Stop::Breakpoint(_) = first else {
        // Instruction never executed: the whole group is not activated,
        // and (determinism) every from-scratch run would stop the same
        // way with the same client verdict. Each synthesized run is
        // billed the shared prefix's icount — the work a from-scratch
        // run would have retired.
        let na = InjectionRun {
            outcome: OutcomeClass::NotActivated,
            activated: false,
            stop: first,
            client: p.client_status(),
            crash_latency: None,
            transient_deviation: false,
            divergence: None,
        };
        let meta = RunMeta {
            icount: p.icount(),
            run_micros: 0,
            classify_micros: 0,
        };
        let group = GroupMeta {
            boot_micros,
            ..GroupMeta::default()
        };
        let profile = p.machine.take_exec_profile();
        let footprint = p.machine.take_footprint();
        return Ok((
            vec![(na, meta, None, None); targets.len()],
            group,
            profile,
            footprint,
        ));
    };

    let snapshot_start = Instant::now();
    let checkpoint = p.snapshot();
    let snapshot_micros = micros_since(snapshot_start);
    let activation_icount = p.icount();
    // One golden continuation serves the whole group; the restore at
    // the top of every replay rewinds the detour.
    let golden_ref = engine
        .flight_recorder
        .then(|| golden_continuation(&mut p, addr));
    let mut runs = Vec::with_capacity(targets.len());
    for target in targets {
        let replay_start = Instant::now();
        p.restore(&checkpoint);
        let byte_addr = target.addr.wrapping_add(target.byte_index as u32);
        let orig = p
            .machine
            .mem
            .peek8(byte_addr)
            .expect("target byte is mapped: it was decoded from the image");
        let ctx = byte_ctx(target);
        let corrupted = remap_flip(orig, target.bit, ctx, scheme);
        p.machine
            .mem
            .poke8(byte_addr, corrupted)
            .expect("target byte is mapped");
        p.machine.remove_breakpoint(target.addr);
        if engine.flight_recorder {
            p.machine.enable_flight_recorder(RECORDER_EDGES);
        }
        if engine.propagation {
            p.machine
                .enable_taint(Some(target.addr), DEFAULT_TAINT_HORIZON);
        }

        let stop = p.run();
        let run_micros = micros_since(replay_start);
        let report = golden_ref.as_ref().map(|gc| {
            let faulty = p
                .machine
                .take_flight_trace()
                .expect("recorder was armed before the replay");
            divergence::diff_run(gc, faulty, &p.machine.mem)
        });
        let prop = p.machine.take_propagation_log().map(|log| {
            let mut rep = PropagationReport::new(log, activation_icount);
            if decision_site(image, target.addr) {
                rep.mark_corrupted_decision(target.addr);
            }
            rep
        });
        let final_trace = p.trace();
        let crash_latency = match stop {
            Stop::Crashed(_) => Some(p.icount() - activation_icount),
            _ => None,
        };
        let classify_start = Instant::now();
        let run = classify_run(golden, stop, p.client_status(), final_trace, crash_latency);
        let meta = RunMeta {
            icount: p.icount().saturating_sub(activation_icount),
            run_micros,
            classify_micros: micros_since(classify_start),
        };
        runs.push((run, meta, report, prop));
    }
    let group = GroupMeta {
        boot_micros,
        snapshot_micros,
        restores: p.restore_count(),
        activated: true,
    };
    let profile = p.machine.take_exec_profile();
    let footprint = p.machine.take_footprint();
    Ok((runs, group, profile, footprint))
}

/// Determine the §6.2 mapping context for the corrupted byte.
fn byte_ctx(target: &InjectionTarget) -> ByteCtx {
    if target.byte_index == 0 {
        ByteCtx::OneByteOpcode
    } else if target.byte_index == 1 && target.first_byte == 0x0F {
        ByteCtx::SecondOpcodeByte
    } else {
        ByteCtx::Other
    }
}

/// Whether the *original* instruction at `addr` is a control transfer.
/// A flip there corrupts a control-flow decision directly, which the
/// taint tracer (seeing only the corrupted text) cannot know.
fn decision_site(image: &Image, addr: u32) -> bool {
    let Some(off) = addr
        .checked_sub(image.text_base)
        .map(|o| o as usize)
        .filter(|&o| o < image.text.len())
    else {
        return false;
    };
    let end = (off + 16).min(image.text.len());
    fisec_x86::decode(&image.text[off..end]).is_control_transfer()
}

/// Convenience: is `trace` a plausible truncated prefix of `golden`?
/// (Used for the transient-deviation analysis around crashes.)
pub fn is_trace_prefix(trace: &Trace, golden: &Trace) -> bool {
    classify::trace_is_prefix(trace, golden)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisec_apps::AppSpec;

    #[test]
    fn byte_ctx_selection() {
        let mk = |first_byte, byte_index| InjectionTarget {
            addr: 0x1000,
            inst_len: 6,
            byte_index,
            bit: 0,
            first_byte,
            location: ErrorLocation::SixByteCond2,
            is_cond_branch: true,
        };
        assert_eq!(byte_ctx(&mk(0x74, 0)), ByteCtx::OneByteOpcode);
        assert_eq!(byte_ctx(&mk(0x0F, 1)), ByteCtx::SecondOpcodeByte);
        assert_eq!(byte_ctx(&mk(0x74, 1)), ByteCtx::Other);
        assert_eq!(byte_ctx(&mk(0x0F, 3)), ByteCtx::Other);
    }

    #[test]
    fn not_activated_when_breakpoint_unreached() {
        let app = AppSpec::ftpd();
        let client = &app.clients[0];
        let golden = golden_run(&app.image, client).unwrap();
        // Target an address in `pass` that Client3-style flows wouldn't
        // reach — simplest: an address in the *anonymous* arm while
        // logging in as a named user. Instead, inject into a function
        // the flow never calls: use `retr`'s body with Client1 (denied,
        // never retrieves). Find a branch inside `retr`.
        let f = app.image.func("retr").unwrap().clone();
        let insts = app.image.decode_func(&f);
        let (addr, inst) = insts
            .iter()
            .find(|(_, i)| i.is_cond_branch())
            .expect("retr has branches");
        let t = InjectionTarget {
            addr: *addr,
            inst_len: inst.len,
            byte_index: 0,
            bit: 0,
            first_byte: 0x74,
            location: ErrorLocation::TwoByteCondOpcode,
            is_cond_branch: true,
        };
        let r = run_injection(&app.image, client, &golden, &t, EncodingScheme::Baseline).unwrap();
        assert_eq!(r.outcome, OutcomeClass::NotActivated);
        assert!(!r.activated);
    }
}
