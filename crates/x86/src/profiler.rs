//! Interpreter hot-spot profiler.
//!
//! The phase profiler (fisec-telemetry) says *replay* dominates campaign
//! wall-clock; this module says *where inside replay* the time goes. An
//! [`ExecProfile`] rides on a [`Machine`](crate::Machine) and tallies,
//! per basic block, how often the block engine dispatched it and how
//! many instructions it retired; per address, which decoded shapes still
//! fall through [`UOp::Slow`](crate::block) to the generic `exec` path;
//! and the block-cache hit/build/invalidation traffic since profiling
//! began. That ranked view is the input the tier-2 superblock work needs
//! (ROADMAP): the top blocks are the linking candidates, the slow-shape
//! tally is the lowering backlog.
//!
//! The profiler is pure observation: it never touches architectural
//! state, so campaign outcomes are bit-identical with it on or off
//! (pinned by differential tests), and every instrumentation site is a
//! single `Option` check when disabled. Like the flight recorder it is
//! *not* snapshot state — but unlike the recorder it deliberately
//! survives [`Machine::restore`](crate::Machine::restore), so one
//! profile accumulates across every replay of a checkpoint group.

use crate::block::BlockStats;
use crate::inst::{Inst, OpSize, Operand};
use crate::trace::TraceStats;
use std::collections::HashMap;

/// Dispatch/retire tallies for one basic block (keyed by entry EIP).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockTally {
    /// Times the block engine executed this block (resident-loop
    /// re-executions count: same decoded bytes, re-retired).
    pub dispatches: u64,
    /// Instructions retired under this block's entry, summed over all
    /// dispatches (partial executions count what actually retired).
    pub retired: u64,
}

/// One address whose instruction executes through the generic slow path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowSite {
    /// Operand-shape label, e.g. `shl32 r32, imm` (computed once, on
    /// the first hit).
    pub shape: String,
    /// Times the slow path ran here.
    pub count: u64,
}

/// The collected profile: per-block tallies, slow-path sites, the
/// stepwise-retirement residue and the block-cache counter delta.
#[derive(Debug, Clone, Default)]
pub struct ExecProfile {
    /// Per-block dispatch/retire tallies keyed by entry EIP.
    pub blocks: HashMap<u32, BlockTally>,
    /// Per-superblock dispatch/retire tallies keyed by trace entry EIP
    /// (tier-2; the same instructions also appear under their blocks'
    /// tallies, so this is attribution, not additional retirement).
    pub traces: HashMap<u32, BlockTally>,
    /// Slow-path sites keyed by instruction address.
    pub slow: HashMap<u32, SlowSite>,
    /// Instructions retired through the precise single-step path (the
    /// stepwise engine, or the block engine's breakpoint/budget/rdtsc
    /// fallbacks) — work no block tally accounts for.
    pub stepwise_retired: u64,
    /// Block-cache counters observed while profiling (delta between
    /// enable and [`crate::Machine::take_exec_profile`]).
    pub cache: BlockStats,
    /// Trace-cache counters observed while profiling (same delta
    /// window): built/hit/side-exit attribution for tier 2.
    pub trace_cache: TraceStats,
    baseline: BlockStats,
    trace_baseline: TraceStats,
}

impl ExecProfile {
    /// Start a profile whose cache counters are measured relative to
    /// `baseline` / `trace_baseline` (the machine's [`BlockStats`] and
    /// [`TraceStats`] at enable time).
    pub fn begin(baseline: BlockStats, trace_baseline: TraceStats) -> ExecProfile {
        ExecProfile {
            baseline,
            trace_baseline,
            ..ExecProfile::default()
        }
    }

    /// Record one block dispatch that retired `retired` instructions.
    #[inline]
    pub fn note_block(&mut self, entry: u32, retired: u64) {
        let t = self.blocks.entry(entry).or_default();
        t.dispatches += 1;
        t.retired += retired;
    }

    /// Record one completed tier-2 trace dispatch that retired `retired`
    /// instructions across its linked blocks.
    #[inline]
    pub fn note_trace(&mut self, entry: u32, retired: u64) {
        let t = self.traces.entry(entry).or_default();
        t.dispatches += 1;
        t.retired += retired;
    }

    /// Record one slow-path execution at `addr`. The shape string is
    /// computed only on the site's first hit.
    pub fn note_slow(&mut self, addr: u32, inst: &Inst) {
        self.slow
            .entry(addr)
            .or_insert_with(|| SlowSite {
                shape: op_shape(inst),
                count: 0,
            })
            .count += 1;
    }

    /// Total instructions the profile accounts for.
    pub fn total_retired(&self) -> u64 {
        self.blocks.values().map(|t| t.retired).sum::<u64>() + self.stepwise_retired
    }

    /// Finalize against the machine's current cache counters, filling
    /// [`ExecProfile::cache`] and [`ExecProfile::trace_cache`] with the
    /// deltas since [`ExecProfile::begin`].
    pub(crate) fn seal(&mut self, now: BlockStats, traces_now: TraceStats) {
        self.cache = BlockStats {
            built: now.built.saturating_sub(self.baseline.built),
            hits: now.hits.saturating_sub(self.baseline.hits),
            invalidated: now.invalidated.saturating_sub(self.baseline.invalidated),
            conflict_evictions: now
                .conflict_evictions
                .saturating_sub(self.baseline.conflict_evictions),
            cached: now.cached,
        };
        self.trace_cache = TraceStats {
            built: traces_now.built.saturating_sub(self.trace_baseline.built),
            hits: traces_now.hits.saturating_sub(self.trace_baseline.hits),
            side_exits: traces_now
                .side_exits
                .saturating_sub(self.trace_baseline.side_exits),
            invalidated: traces_now
                .invalidated
                .saturating_sub(self.trace_baseline.invalidated),
            cached: traces_now.cached,
        };
    }
}

/// A compact operand-shape label for a decoded instruction: op name,
/// operand size, and the *kind* of each operand (not its value), so all
/// sites executing the same shape aggregate under one backlog line.
pub fn op_shape(i: &Inst) -> String {
    let size = match i.size {
        OpSize::Byte => "8",
        OpSize::Word => "16",
        OpSize::Dword => "32",
    };
    let mut s = format!("{:?}", i.op).to_lowercase();
    s.push_str(size);
    if let Some(d) = &i.dst {
        s.push(' ');
        s.push_str(operand_shape(d));
    }
    if let Some(src) = &i.src {
        s.push_str(", ");
        s.push_str(operand_shape(src));
    }
    if let Some(src2) = &i.src2 {
        s.push_str(", ");
        s.push_str(operand_shape(src2));
    }
    s
}

fn operand_shape(op: &Operand) -> &'static str {
    match op {
        Operand::Reg(_) => "r32",
        Operand::Reg16(_) => "r16",
        Operand::Reg8(_) => "r8",
        Operand::Imm(_) => "imm",
        Operand::Rel(_) => "rel",
        Operand::Mem(m) => {
            if m.index.is_some() {
                "[b+i*s+d]"
            } else if m.base.is_some() {
                "[b+d]"
            } else {
                "[abs]"
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{MemOperand, Op, Reg32};

    #[test]
    fn tallies_accumulate_per_block() {
        let mut p = ExecProfile::begin(BlockStats::default(), TraceStats::default());
        p.note_block(0x1000, 5);
        p.note_block(0x1000, 5);
        p.note_block(0x2000, 1);
        assert_eq!(p.blocks[&0x1000].dispatches, 2);
        assert_eq!(p.blocks[&0x1000].retired, 10);
        assert_eq!(p.blocks[&0x2000].retired, 1);
        p.stepwise_retired = 3;
        assert_eq!(p.total_retired(), 14);
    }

    #[test]
    fn slow_sites_compute_shape_once() {
        let mut p = ExecProfile::begin(BlockStats::default(), TraceStats::default());
        let mut i = Inst::new(Op::Shl);
        i.dst = Some(Operand::Reg(Reg32::Eax));
        i.src = Some(Operand::Imm(3));
        p.note_slow(0x1234, &i);
        p.note_slow(0x1234, &i);
        let site = &p.slow[&0x1234];
        assert_eq!(site.count, 2);
        assert_eq!(site.shape, "shl32 r32, imm");
    }

    #[test]
    fn shapes_distinguish_addressing_kinds() {
        let mut i = Inst::new(Op::Mov);
        i.dst = Some(Operand::Reg(Reg32::Ecx));
        i.src = Some(Operand::Mem(MemOperand {
            base: Some(Reg32::Ebx),
            index: Some((Reg32::Esi, 4)),
            disp: 8,
        }));
        assert_eq!(op_shape(&i), "mov32 r32, [b+i*s+d]");
        i.src = Some(Operand::Mem(MemOperand {
            base: None,
            index: None,
            disp: 0x8049000,
        }));
        assert_eq!(op_shape(&i), "mov32 r32, [abs]");
    }

    #[test]
    fn seal_takes_the_cache_delta() {
        let mut p = ExecProfile::begin(
            BlockStats {
                built: 10,
                hits: 100,
                invalidated: 5,
                conflict_evictions: 1,
                cached: 7,
            },
            TraceStats {
                built: 2,
                hits: 20,
                side_exits: 1,
                invalidated: 0,
                cached: 2,
            },
        );
        p.seal(
            BlockStats {
                built: 12,
                hits: 150,
                invalidated: 6,
                conflict_evictions: 4,
                cached: 9,
            },
            TraceStats {
                built: 5,
                hits: 90,
                side_exits: 3,
                invalidated: 1,
                cached: 4,
            },
        );
        assert_eq!(p.cache.built, 2);
        assert_eq!(p.cache.hits, 50);
        assert_eq!(p.cache.invalidated, 1);
        assert_eq!(p.cache.conflict_evictions, 3);
        assert_eq!(p.cache.cached, 9);
        assert_eq!(p.trace_cache.built, 3);
        assert_eq!(p.trace_cache.hits, 70);
        assert_eq!(p.trace_cache.side_exits, 2);
        assert_eq!(p.trace_cache.invalidated, 1);
        assert_eq!(p.trace_cache.cached, 4);
    }
}
