//! Per-run propagation reports over the x86 taint tracer.
//!
//! Where [`crate::divergence`] answers "when did corrupted *control
//! flow* leave the golden path", this module answers the data-flow
//! question upstream of it: how the corrupted value the injected
//! instruction produced travelled through registers, flags and memory
//! before the run stopped — in particular whether it reached a compare
//! or branch decision, the security-critical moment the conditional-
//! branch hardening literature singles out.
//!
//! The recorded entry points in the crate root arm the tracer right
//! after the flip is planted (exactly where the flight recorder is
//! armed) and seal its [`PropagationLog`] into a [`PropagationReport`]
//! when the run stops.

use fisec_x86::taint::{PropEvent, PropKind, PropagationLog};
use std::fmt;

/// How far the corrupted data of one activated injection travelled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropagationReport {
    /// The sealed corruption timeline.
    pub log: PropagationLog,
    /// Instruction count at activation (the breakpoint), the zero point
    /// the timeline's offsets are rendered against.
    pub activation_icount: u64,
}

impl PropagationReport {
    /// Seal a log taken at the end of a run.
    pub fn new(log: PropagationLog, activation_icount: u64) -> PropagationReport {
        PropagationReport {
            log,
            activation_icount,
        }
    }

    /// Whether the injected instruction ever executed (taint was born).
    pub fn seeded(&self) -> bool {
        self.log.seed_icount.is_some()
    }

    /// Instructions from the seed to the first tainted compare or
    /// taint-dependent control transfer — the taint-to-branch latency
    /// the telemetry layer histograms. `None` when corrupted data never
    /// reached a decision in the observed window.
    pub fn taint_to_decision(&self) -> Option<u64> {
        let seed = self.log.seed_icount?;
        self.log.first_decision().map(|d| d.saturating_sub(seed))
    }

    /// Whether corrupted data reached a compare or branch decision
    /// before the run stopped.
    pub fn reached_decision(&self) -> bool {
        self.log.first_decision().is_some()
    }

    /// Whether the corruption reached a tainted compare before any
    /// tainted store — the ordering the campaign aggregation reports.
    pub fn compare_before_store(&self) -> bool {
        match (self.log.first_compare, self.log.first_write) {
            (Some(c), Some(w)) => c <= w,
            (Some(_), None) => true,
            _ => false,
        }
    }

    /// The flip landed on a control-transfer instruction, so the
    /// control-flow decision at the seed site is made by the corruption
    /// itself — there is no upstream data flow to observe before it.
    /// Recorded as a tainted branch at seed time (the data-flow tracer
    /// only sees the *corrupted* text, which may no longer be a branch,
    /// so the injector — which knows the original instruction — calls
    /// this). No-op when the run never activated or a branch event at
    /// or before the seed already exists.
    pub fn mark_corrupted_decision(&mut self, addr: u32) {
        let Some(seed) = self.log.seed_icount else {
            return;
        };
        if self.log.first_branch.is_some_and(|b| b <= seed) {
            return;
        }
        self.log.first_branch = Some(seed);
        let at = self
            .log
            .events
            .iter()
            .position(|e| e.icount > seed)
            .unwrap_or(self.log.events.len());
        let width = self
            .log
            .events
            .iter()
            .find(|e| e.kind == PropKind::Seed)
            .map_or(0, |e| e.width);
        self.log.events.insert(
            at,
            PropEvent {
                icount: seed,
                addr,
                kind: PropKind::Branch,
                width,
            },
        );
    }

    /// Offset of an absolute icount from the activation point.
    fn rel(&self, icount: u64) -> u64 {
        icount.saturating_sub(self.activation_icount)
    }
}

impl fmt::Display for PropagationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let Some(seed) = self.log.seed_icount else {
            return writeln!(
                f,
                "taint never seeded: the corrupted instruction did not retire"
            );
        };
        writeln!(
            f,
            "taint seeded at activation+{} (icount {seed})",
            self.rel(seed)
        )?;
        let firsts: [(&str, Option<u64>); 5] = [
            ("first tainted write", self.log.first_write),
            ("first tainted flag", self.log.first_flag),
            ("first tainted compare", self.log.first_compare),
            ("first tainted branch", self.log.first_branch),
            ("first tainted syscall arg", self.log.first_syscall_arg),
        ];
        for (label, at) in firsts {
            if let Some(at) = at {
                writeln!(f, "  {label:<25} at activation+{}", self.rel(at))?;
            }
        }
        match self.log.death {
            Some(d) => writeln!(
                f,
                "  taint died at activation+{} (every corrupted location overwritten clean)",
                self.rel(d)
            )?,
            None if self.log.frozen => writeln!(
                f,
                "  taint still live when the observation horizon froze the tracer"
            )?,
            None => writeln!(
                f,
                "  taint still live at stop (width {})",
                self.log.final_width
            )?,
        }
        writeln!(
            f,
            "  peak width {} byte(s); {} live instruction(s) observed{}{}",
            self.log.peak_width,
            self.log.hooked,
            if self.log.saturated {
                "; shadow saturated"
            } else {
                ""
            },
            if self.log.dropped > 0 {
                "; event log truncated"
            } else {
                ""
            },
        )
    }
}

/// One-word label for an event kind, shared by the CLI timeline and the
/// HTML report.
pub fn kind_label(kind: PropKind) -> &'static str {
    match kind {
        PropKind::Seed => "seed",
        PropKind::Write { .. } => "write",
        PropKind::Flag => "flag",
        PropKind::Compare => "compare",
        PropKind::Branch => "branch",
        PropKind::SyscallArg { .. } => "syscall",
        PropKind::Death => "death",
        PropKind::Frozen => "frozen",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_with(
        seed: Option<u64>,
        compare: Option<u64>,
        branch: Option<u64>,
        write: Option<u64>,
    ) -> PropagationLog {
        PropagationLog {
            seed_icount: seed,
            first_compare: compare,
            first_branch: branch,
            first_write: write,
            ..PropagationLog::default()
        }
    }

    #[test]
    fn decision_latency_is_seed_relative() {
        let r = PropagationReport::new(log_with(Some(100), Some(140), Some(150), None), 99);
        assert_eq!(r.taint_to_decision(), Some(40));
        assert!(r.reached_decision());
        assert!(r.compare_before_store());
    }

    #[test]
    fn store_first_flips_the_ordering() {
        let r = PropagationReport::new(log_with(Some(100), Some(140), None, Some(120)), 99);
        assert!(!r.compare_before_store());
    }

    #[test]
    fn unseeded_report_renders_and_answers_nothing() {
        let r = PropagationReport::new(log_with(None, None, None, None), 0);
        assert!(!r.seeded());
        assert_eq!(r.taint_to_decision(), None);
        assert!(format!("{r}").contains("never seeded"));
    }

    #[test]
    fn display_orders_the_firsts() {
        let mut log = log_with(Some(100), Some(105), Some(106), Some(110));
        log.first_flag = Some(105);
        log.death = Some(130);
        log.peak_width = 9;
        log.hooked = 31;
        let r = PropagationReport::new(log, 100);
        let text = format!("{r}");
        assert!(text.contains("seeded at activation+0"));
        assert!(text.contains("first tainted compare"));
        assert!(text.contains("taint died at activation+30"));
        assert!(text.contains("peak width 9"));
    }
}
