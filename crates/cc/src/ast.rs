//! Abstract syntax tree for the mini-C dialect.

/// Mini-C types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// 32-bit signed integer.
    Int,
    /// 8-bit signed character.
    Char,
    /// No value (function returns only).
    Void,
    /// Pointer to `T`.
    Ptr(Box<Type>),
    /// Array of `n` elements of `T` (decays to `Ptr(T)` in expressions).
    Array(Box<Type>, u32),
}

impl Type {
    /// Size in bytes.
    pub fn size(&self) -> u32 {
        match self {
            Type::Int | Type::Ptr(_) => 4,
            Type::Char => 1,
            Type::Void => 0,
            Type::Array(t, n) => t.size() * n,
        }
    }

    /// Element type after a deref / index; `None` for non-pointers.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) | Type::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// Pointer-decayed version of this type.
    pub fn decay(&self) -> Type {
        match self {
            Type::Array(t, _) => Type::Ptr(t.clone()),
            t => t.clone(),
        }
    }

    /// True for `int`, `char` (values that fit the ALU directly).
    pub fn is_scalar_int(&self) -> bool {
        matches!(self, Type::Int | Type::Char)
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

impl BinOp {
    /// True for the six comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
    /// `~`
    BitNot,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Num(i32),
    /// Character literal (value of type `char`).
    CharLit(u8),
    /// String literal (type `char *`, interned in the data segment).
    Str(Vec<u8>),
    /// Variable reference.
    Var(String),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Assignment (`lhs = rhs`), value is the stored value.
    Assign(Box<Expr>, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
    /// Array indexing `a[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// Pointer dereference `*p`.
    Deref(Box<Expr>),
    /// Address-of `&lv`.
    Addr(Box<Expr>),
    /// Postfix `lv++` / `lv--`; value is the *old* value.
    PostIncDec(Box<Expr>, bool),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Expression statement.
    Expr(Expr),
    /// Local declaration (one declarator), with optional initializer.
    Decl {
        /// Declared type (possibly an array).
        ty: Type,
        /// Name.
        name: String,
        /// Initializer expression.
        init: Option<Expr>,
    },
    /// `if (cond) then else?`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then: Vec<Stmt>,
        /// Else-branch.
        els: Vec<Stmt>,
    },
    /// `while (cond) body`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; step) body` — any clause may be empty.
    For {
        /// Init clause.
        init: Option<Box<Stmt>>,
        /// Condition (empty = true).
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return expr?;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// Nested block.
    Block(Vec<Stmt>),
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInit {
    /// Zero-initialized.
    Zero,
    /// Integer initializer.
    Num(i32),
    /// String initializer for `char name[] = "..."` (NUL appended).
    Str(Vec<u8>),
}

/// A global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Declared type.
    pub ty: Type,
    /// Name.
    pub name: String,
    /// Initializer.
    pub init: GlobalInit,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    /// Return type.
    pub ret: Type,
    /// Name.
    pub name: String,
    /// Parameters (type, name).
    pub params: Vec<(Type, String)>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A parsed translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Globals in definition order.
    pub globals: Vec<Global>,
    /// Functions in definition order.
    pub funcs: Vec<Func>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_sizes() {
        assert_eq!(Type::Int.size(), 4);
        assert_eq!(Type::Char.size(), 1);
        assert_eq!(Type::Ptr(Box::new(Type::Char)).size(), 4);
        assert_eq!(Type::Array(Box::new(Type::Int), 10).size(), 40);
        assert_eq!(Type::Array(Box::new(Type::Char), 8).size(), 8);
    }

    #[test]
    fn array_decay() {
        let a = Type::Array(Box::new(Type::Char), 16);
        assert_eq!(a.decay(), Type::Ptr(Box::new(Type::Char)));
        assert_eq!(Type::Int.decay(), Type::Int);
        assert_eq!(a.pointee(), Some(&Type::Char));
    }

    #[test]
    fn comparison_predicate() {
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::Ge.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::And.is_comparison());
    }
}
