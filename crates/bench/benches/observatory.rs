//! Observatory overhead: the full ftpd campaign with the profiler off
//! (the default) and on. The hot-spot profiler's contract is ≤ 10%
//! extra wall-clock — its fast path is two counter increments per block
//! dispatch — and the measured ratio feeds the `observatory` block of
//! `BENCH_campaign.json`, which `fisec bench-diff` then gates in CI.

use criterion::{criterion_group, criterion_main, Criterion};
use fisec_apps::AppSpec;
use fisec_core::{run_campaign, CampaignConfig};
use fisec_telemetry::Telemetry;

fn bench(c: &mut Criterion) {
    let ftpd = AppSpec::ftpd();
    let off = CampaignConfig::default();
    let on = CampaignConfig {
        profiler: true,
        ..CampaignConfig::default()
    };

    // Regenerate the differential artefact once: the profiler must be a
    // pure observer — identical outcomes with it on or off.
    let plain = run_campaign(&ftpd, &off);
    let profiled = run_campaign(&ftpd, &on);
    for (a, b) in plain.clients.iter().zip(&profiled.clients) {
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.crash_latencies, b.crash_latencies);
    }

    // And the profile itself is non-trivial: the campaign retires real
    // work inside cached blocks.
    let tel = Telemetry::collecting();
    fisec_core::run_campaign_traced(&ftpd, &on, &tel);
    let snap = tel.metrics.snapshot();
    let data = snap.profile();
    assert!(!data.is_empty(), "profiled campaign produced no profile");
    println!(
        "\n== profile cross-check: {} blocks, {} instructions retired, {} cache hits ==",
        data.blocks.len(),
        data.total_retired(),
        data.cache_hits
    );

    c.bench_function("campaign/ftpd_profiler_off", |b| {
        b.iter(|| run_campaign(&ftpd, &off))
    });
    c.bench_function("campaign/ftpd_profiler_on", |b| {
        b.iter(|| run_campaign(&ftpd, &on))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
