//! # fisec-os — process model and Linux-i386-flavoured syscall layer
//!
//! A [`Process`] couples a loaded [`fisec_asm::Image`] with a
//! [`fisec_x86::Machine`] and a [`fisec_net::Channel`]. It services
//! `int 0x80` software interrupts the way Linux i386 does for the three
//! syscalls the servers need (`exit`=1, `read`=3, `write`=4), builds the
//! address space (text r-x, data rw-, stack rw-, everything else unmapped),
//! and reports how the process ended: clean exit, crash (with the fault
//! and the POSIX signal name), or hang.
//!
//! Syscall servicing happens outside the CPU loop, so instruction counts
//! never include "kernel" work — matching the paper's Figure 4 metric
//! ("not counting those executed inside the kernel").

use fisec_asm::Image;
use fisec_net::{Channel, ClientDriver, ClientStatus, ReadOutcome, Trace};
use fisec_x86::{Fault, Machine, Memory, Perms, Region, RunOutcome};
use std::fmt;

/// Stack top (grows down). A guard gap below the stack region makes large
/// overruns fault like they would with a real guard page.
pub const STACK_TOP: u32 = 0xC000_0000;
/// Stack size in bytes.
pub const STACK_SIZE: u32 = 0x0002_0000; // 128 KiB

/// Linux i386 syscall numbers understood by the kernel shim.
pub mod sysno {
    /// `exit(code)`.
    pub const EXIT: u32 = 1;
    /// `read(fd, buf, count)`.
    pub const READ: u32 = 3;
    /// `write(fd, buf, count)`.
    pub const WRITE: u32 = 4;
}

/// The socket file descriptor connecting the server to its client (both
/// directions, like a connected TCP socket dup'ed onto 0/1).
pub const SOCKET_FDS: [u32; 3] = [0, 1, 4];

/// Why a process stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stop {
    /// `exit(code)` was called.
    Exited(i32),
    /// The process took a fatal fault (the paper's *system detection*).
    Crashed(Fault),
    /// The instruction budget ran out (runaway loop).
    Budget,
    /// A `read` blocked with no client data and no way to make progress.
    Deadlock,
    /// An armed breakpoint was hit (only when running under the injector).
    Breakpoint(u32),
}

impl Stop {
    /// True for crash-class stops.
    pub fn is_crash(&self) -> bool {
        matches!(self, Stop::Crashed(_))
    }

    /// True for hang-class stops (budget exhaustion or deadlock).
    pub fn is_hang(&self) -> bool {
        matches!(self, Stop::Budget | Stop::Deadlock)
    }
}

impl fmt::Display for Stop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stop::Exited(c) => write!(f, "exited with code {c}"),
            Stop::Crashed(fault) => write!(f, "crashed: {fault} ({})", fault.signal_name()),
            Stop::Budget => write!(f, "instruction budget exhausted"),
            Stop::Deadlock => write!(f, "deadlocked on read"),
            Stop::Breakpoint(a) => write!(f, "stopped at breakpoint {a:#010x}"),
        }
    }
}

/// Errors constructing a process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The image has no `_start` symbol.
    NoEntry,
    /// Segments overlap or are unmappable.
    Map(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::NoEntry => write!(f, "image has no _start symbol"),
            LoadError::Map(e) => write!(f, "cannot map image: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// A simulated server process: machine + kernel shim + client channel.
#[derive(Debug)]
pub struct Process {
    /// The CPU and address space.
    pub machine: Machine,
    channel: Channel,
    exit_code: Option<i32>,
    budget: u64,
}

/// Default instruction budget per connection. Generous: a normal
/// authentication session takes well under 100k instructions.
pub const DEFAULT_BUDGET: u64 = 5_000_000;

/// Full state of a [`Process`] captured by [`Process::snapshot`]:
/// machine (registers, memory, icount, breakpoints, trace ring),
/// channel (client state machine, queued bytes, traffic trace), exit
/// status and budget. Restoring rewinds the whole simulated world to
/// the capture point, so one boot-to-breakpoint prefix can be replayed
/// under many different injected faults.
#[derive(Debug, Clone)]
pub struct ProcessSnapshot {
    machine: fisec_x86::MachineSnapshot,
    channel: Channel,
    exit_code: Option<i32>,
    budget: u64,
}

impl Process {
    /// Load `image` and connect it to `client`.
    ///
    /// # Errors
    /// [`LoadError`] if the image lacks `_start` or its segments overlap.
    pub fn load(image: &Image, client: Box<dyn ClientDriver>) -> Result<Process, LoadError> {
        let entry = image.func("_start").ok_or(LoadError::NoEntry)?.start;
        let mut mem = Memory::new();
        mem.map(Region::with_data(
            "text",
            image.text_base,
            image.text.clone(),
            Perms::RX,
        ))
        .map_err(|e| LoadError::Map(e.to_string()))?;
        if !image.data.is_empty() {
            mem.map(Region::with_data(
                "data",
                image.data_base,
                image.data.clone(),
                Perms::RW,
            ))
            .map_err(|e| LoadError::Map(e.to_string()))?;
        }
        mem.map(Region::zeroed(
            "stack",
            STACK_TOP - STACK_SIZE,
            STACK_SIZE,
            Perms::RW,
        ))
        .map_err(|e| LoadError::Map(e.to_string()))?;
        let mut machine = Machine::new(mem);
        machine.cpu.eip = entry;
        machine.cpu.regs[fisec_x86::Reg32::Esp as usize] = STACK_TOP - 16;
        Ok(Process {
            machine,
            channel: Channel::new(client),
            exit_code: None,
            budget: DEFAULT_BUDGET,
        })
    }

    /// Override the instruction budget.
    pub fn set_budget(&mut self, budget: u64) {
        self.budget = budget;
    }

    /// Checkpoint the whole simulated world: machine, channel (client
    /// state + traffic so far), exit status and budget.
    pub fn snapshot(&self) -> ProcessSnapshot {
        ProcessSnapshot {
            machine: self.machine.snapshot(),
            channel: self.channel.clone(),
            exit_code: self.exit_code,
            budget: self.budget,
        }
    }

    /// Rewind to a previously captured [`ProcessSnapshot`] of this
    /// process. Execution after the restore is observably identical to
    /// execution from the original capture point.
    pub fn restore(&mut self, snap: &ProcessSnapshot) {
        self.machine.restore(&snap.machine);
        self.channel = snap.channel.clone();
        self.exit_code = snap.exit_code;
        self.budget = snap.budget;
    }

    /// Instructions retired so far.
    pub fn icount(&self) -> u64 {
        self.machine.icount
    }

    /// Instructions retired since an earlier [`Process::icount`] mark.
    /// Note a [`Process::restore`] rewinds `icount`, so take the mark
    /// after the restore when measuring one replayed suffix.
    pub fn icount_since(&self, mark: u64) -> u64 {
        self.machine.icount.saturating_sub(mark)
    }

    /// How many checkpoint restores this process has performed
    /// (monotonic — restoring does not rewind it).
    pub fn restore_count(&self) -> u64 {
        self.machine.restore_count()
    }

    /// The client's verdict so far.
    pub fn client_status(&self) -> ClientStatus {
        self.channel.client_status()
    }

    /// Normalized traffic trace so far.
    pub fn trace(&self) -> Trace {
        self.channel.trace_snapshot()
    }

    /// Run until exit, crash, hang, or breakpoint.
    pub fn run(&mut self) -> Stop {
        loop {
            if let Some(code) = self.exit_code {
                return Stop::Exited(code);
            }
            let remaining = self.budget.saturating_sub(self.machine.icount);
            if remaining == 0 {
                return Stop::Budget;
            }
            match self.machine.run_until_event(remaining) {
                RunOutcome::Breakpoint(a) => return Stop::Breakpoint(a),
                RunOutcome::Fault(f) => return Stop::Crashed(f),
                RunOutcome::Budget => return Stop::Budget,
                RunOutcome::Syscall(0x80) => {
                    if let Some(stop) = self.syscall() {
                        return stop;
                    }
                }
                RunOutcome::Syscall(_) => {
                    // int n (n != 0x80) faults in Machine::step already.
                    unreachable!("only int 0x80 surfaces as a syscall");
                }
            }
        }
    }

    /// Service one syscall; `Some(stop)` ends the run.
    fn syscall(&mut self) -> Option<Stop> {
        let nr = self.machine.cpu.regs[0]; // eax
        let a1 = self.machine.cpu.regs[3]; // ebx
        let a2 = self.machine.cpu.regs[1]; // ecx
        let a3 = self.machine.cpu.regs[2]; // edx
        match nr {
            sysno::EXIT => {
                self.exit_code = Some(a1 as i32);
                return Some(Stop::Exited(a1 as i32));
            }
            sysno::READ => {
                let ret = self.sys_read(a1, a2, a3);
                match ret {
                    Ok(n) => self.machine.cpu.regs[0] = n,
                    Err(e) => self.machine.cpu.regs[0] = e as u32,
                }
                if self.machine.cpu.regs[0] == WOULD_DEADLOCK {
                    return Some(Stop::Deadlock);
                }
            }
            sysno::WRITE => {
                let ret = self.sys_write(a1, a2, a3);
                self.machine.cpu.regs[0] = match ret {
                    Ok(n) => n,
                    Err(e) => e as u32,
                };
            }
            _ => {
                // ENOSYS, like Linux for an unimplemented syscall.
                self.machine.cpu.regs[0] = (-38i32) as u32;
            }
        }
        None
    }

    fn sys_read(&mut self, fd: u32, buf: u32, count: u32) -> Result<u32, i32> {
        if !SOCKET_FDS.contains(&fd) {
            return Err(-9); // EBADF
        }
        let max = count.min(8192) as usize;
        if max == 0 {
            return Ok(0);
        }
        match self.channel.server_read(max) {
            ReadOutcome::WouldBlock => Ok(WOULD_DEADLOCK),
            ReadOutcome::Data(data) => {
                // Copy to user memory; a bad buffer is EFAULT like Linux.
                match self.machine.mem.write_bytes(buf, &data) {
                    Ok(()) => Ok(data.len() as u32),
                    Err(_) => Err(-14), // EFAULT
                }
            }
        }
    }

    fn sys_write(&mut self, fd: u32, buf: u32, count: u32) -> Result<u32, i32> {
        if !SOCKET_FDS.contains(&fd) {
            return Err(-9); // EBADF
        }
        // Cap pathological lengths (a corrupted length register would
        // otherwise ask for gigabytes); Linux would cap at the socket
        // buffer size similarly.
        let n = count.min(65536);
        match self.machine.mem.read_bytes(buf, n) {
            Ok(data) => {
                self.channel.server_write(&data);
                Ok(n)
            }
            Err(_) => Err(-14), // EFAULT
        }
    }
}

/// Sentinel for a read that cannot make progress (not a real Linux errno;
/// never observed by the guest because the run stops).
const WOULD_DEADLOCK: u32 = u32::MAX - 1000;

/// Outcome summary of a completed connection run (used by the injector).
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// How the server stopped.
    pub stop: Stop,
    /// The client's verdict.
    pub client: ClientStatus,
    /// Normalized traffic.
    pub trace: Trace,
    /// Instructions retired.
    pub icount: u64,
}

/// Run a full session of `image` against `client`.
///
/// # Errors
/// [`LoadError`] if the image cannot be loaded.
pub fn run_session(
    image: &Image,
    client: Box<dyn ClientDriver>,
    budget: u64,
) -> Result<SessionResult, LoadError> {
    let mut p = Process::load(image, client)?;
    p.set_budget(budget);
    let stop = p.run();
    Ok(SessionResult {
        stop,
        client: p.client_status(),
        trace: p.trace(),
        icount: p.icount(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisec_net::ClientDriver;

    /// Client that feeds scripted lines on demand and records what it saw.
    #[derive(Clone)]
    struct ScriptClient {
        inputs: Vec<Vec<u8>>,
        next: usize,
        saw: Vec<u8>,
    }

    impl ScriptClient {
        fn new(inputs: &[&str]) -> Box<ScriptClient> {
            Box::new(ScriptClient {
                inputs: inputs.iter().map(|s| s.as_bytes().to_vec()).collect(),
                next: 0,
                saw: Vec::new(),
            })
        }
    }

    impl ClientDriver for ScriptClient {
        fn on_server_data(&mut self, data: &[u8], _out: &mut dyn FnMut(Vec<u8>)) {
            self.saw.extend_from_slice(data);
        }

        fn on_server_read_idle(&mut self, out: &mut dyn FnMut(Vec<u8>)) {
            if self.next < self.inputs.len() {
                out(self.inputs[self.next].clone());
                self.next += 1;
            }
        }

        fn status(&self) -> ClientStatus {
            ClientStatus::InProgress
        }
    }

    fn build(src: &str) -> fisec_asm::Image {
        fisec_cc::build_image(&[src]).expect("build")
    }

    #[test]
    fn restore_count_counts_process_rewinds() {
        let img = build("int main() { return 42; }");
        let mut p = Process::load(&img, ScriptClient::new(&[])).unwrap();
        assert_eq!(p.restore_count(), 0);
        let snap = p.snapshot();
        let mark = p.icount();
        assert_eq!(p.run(), Stop::Exited(42));
        let ran = p.icount_since(mark);
        assert!(ran > 0);
        p.restore(&snap);
        assert_eq!(p.restore_count(), 1);
        // The rewound process replays to the same stop with the same
        // instruction delta.
        let mark = p.icount();
        assert_eq!(p.run(), Stop::Exited(42));
        assert_eq!(p.icount_since(mark), ran);
        assert_eq!(p.restore_count(), 1);
    }

    #[test]
    fn exit_code_propagates() {
        let img = build("int main() { return 42; }");
        let r = run_session(&img, ScriptClient::new(&[]), 100_000).unwrap();
        assert_eq!(r.stop, Stop::Exited(42));
    }

    #[test]
    fn write_reaches_client() {
        let img = build(r#"int main() { write_str(1, "220 ready\r\n"); return 0; }"#);
        let r = run_session(&img, ScriptClient::new(&[]), 100_000).unwrap();
        assert_eq!(r.stop, Stop::Exited(0));
        let msgs = r.trace;
        assert_eq!(msgs.messages().len(), 1);
        assert_eq!(msgs.messages()[0].bytes, b"220 ready\r\n");
    }

    #[test]
    fn read_pulls_from_client() {
        let img = build(
            r#"
            int main() {
                char buf[64];
                int n;
                n = read(0, buf, 63);
                buf[n] = 0;
                write_str(1, buf);
                return n;
            }
            "#,
        );
        let r = run_session(&img, ScriptClient::new(&["USER alice\r\n"]), 200_000).unwrap();
        assert_eq!(r.stop, Stop::Exited(12));
        assert_eq!(r.trace.messages().len(), 2);
        assert_eq!(r.trace.messages()[1].bytes, b"USER alice\r\n");
    }

    #[test]
    fn deadlocked_read_stops() {
        let img = build("int main() { char b[8]; read(0, b, 4); return 0; }");
        let r = run_session(&img, ScriptClient::new(&[]), 100_000).unwrap();
        assert_eq!(r.stop, Stop::Deadlock);
        assert!(r.stop.is_hang());
    }

    #[test]
    fn crash_reports_fault() {
        // Write through a null pointer.
        let img = build("int main() { int *p; p = 0; *p = 1; return 0; }");
        let r = run_session(&img, ScriptClient::new(&[]), 100_000).unwrap();
        let Stop::Crashed(f) = r.stop else {
            panic!("expected crash, got {:?}", r.stop)
        };
        assert_eq!(f.signal_name(), "SIGSEGV");
    }

    #[test]
    fn divide_by_zero_crashes_sigfpe() {
        let img = build("int zero; int main() { return 7 / zero; }");
        let r = run_session(&img, ScriptClient::new(&[]), 100_000).unwrap();
        let Stop::Crashed(f) = r.stop else {
            panic!("expected crash")
        };
        assert_eq!(f.signal_name(), "SIGFPE");
    }

    #[test]
    fn budget_exhaustion_is_hang() {
        let img = build("int main() { while (1) { } return 0; }");
        let r = run_session(&img, ScriptClient::new(&[]), 10_000).unwrap();
        assert_eq!(r.stop, Stop::Budget);
    }

    #[test]
    fn bad_fd_is_ebadf() {
        let img = build("int main() { char b[4]; return read(7, b, 4); }");
        let r = run_session(&img, ScriptClient::new(&[]), 100_000).unwrap();
        assert_eq!(r.stop, Stop::Exited(-9));
    }

    #[test]
    fn bad_buffer_is_efault() {
        let img = build("int main() { return write(1, 16, 4); }");
        let r = run_session(&img, ScriptClient::new(&[]), 100_000).unwrap();
        assert_eq!(r.stop, Stop::Exited(-14));
    }

    #[test]
    fn unknown_syscall_is_enosys() {
        let img = build("int main() { return __syscall3(999, 0, 0, 0); }");
        let r = run_session(&img, ScriptClient::new(&[]), 100_000).unwrap();
        assert_eq!(r.stop, Stop::Exited(-38));
    }

    #[test]
    fn stack_and_locals_work() {
        let img = build(
            r#"
            int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            int main() { return fib(12); }
            "#,
        );
        let r = run_session(&img, ScriptClient::new(&[]), 2_000_000).unwrap();
        assert_eq!(r.stop, Stop::Exited(144));
    }

    #[test]
    fn string_routines_behave() {
        let img = build(
            r#"
            int main() {
                char buf[32];
                strcpy(buf, "abc");
                strcat(buf, "def");
                if (strcmp(buf, "abcdef") != 0) { return 1; }
                if (strlen(buf) != 6) { return 2; }
                if (strncmp(buf, "abcXYZ", 3) != 0) { return 3; }
                if (atoi("-123") != -123) { return 4; }
                return 0;
            }
            "#,
        );
        let r = run_session(&img, ScriptClient::new(&[]), 1_000_000).unwrap();
        assert_eq!(r.stop, Stop::Exited(0));
    }

    #[test]
    fn crypt_hash_is_deterministic_and_distinct() {
        let img = build(
            r#"
            int main() {
                char h1[16];
                char h2[16];
                char h3[16];
                crypt_hash("secret", h1);
                crypt_hash("secret", h2);
                crypt_hash("Secret", h3);
                if (strcmp(h1, h2) != 0) { return 1; }
                if (strcmp(h1, h3) == 0) { return 2; }
                return 0;
            }
            "#,
        );
        let r = run_session(&img, ScriptClient::new(&[]), 1_000_000).unwrap();
        assert_eq!(r.stop, Stop::Exited(0));
    }

    #[test]
    fn icount_excludes_kernel_work() {
        // A program that only syscalls should retire very few instructions.
        let img = build(r#"int main() { write_str(1, "x"); return 0; }"#);
        let r = run_session(&img, ScriptClient::new(&[]), 1_000_000).unwrap();
        assert!(r.icount < 2_000, "icount {}", r.icount);
    }
}
