//! AT&T-flavoured disassembly formatting.
//!
//! The [`fmt_att`] formatter renders decoded instructions the way the
//! paper's figures do (`jne <232>`, `test %eax,%eax`, `push $0x8062907`),
//! and [`DisasmLine`]/[`disassemble`] produce objdump-style listings used
//! by the examples and the CLI's `disasm` subcommand.

use crate::inst::{Inst, InvalidKind, Op, OpSize, Operand, RepKind, StrOp};

/// One listing line: address, raw bytes, rendered text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisasmLine {
    /// Instruction address.
    pub addr: u32,
    /// Raw encoded bytes.
    pub bytes: Vec<u8>,
    /// AT&T-style rendering.
    pub text: String,
}

impl std::fmt::Display for DisasmLine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let hex: Vec<String> = self.bytes.iter().map(|b| format!("{b:02x}")).collect();
        write!(f, "{:8x}:\t{:<21}\t{}", self.addr, hex.join(" "), self.text)
    }
}

/// Render a sized operand AT&T-style.
fn fmt_operand(op: &Operand, next: u32) -> String {
    match op {
        Operand::Reg(r) => format!("%{r}"),
        Operand::Reg16(r) => format!("%{r}"),
        Operand::Reg8(r) => format!("%{r}"),
        Operand::Imm(v) => {
            if *v < 0 {
                format!("$-{:#x}", v.unsigned_abs())
            } else {
                format!("${v:#x}")
            }
        }
        Operand::Rel(d) => format!("{:#x}", next.wrapping_add(*d as u32)),
        Operand::Mem(m) => {
            let mut s = String::new();
            if m.disp != 0 || (m.base.is_none() && m.index.is_none()) {
                if m.disp < 0 {
                    s.push_str(&format!("-{:#x}", (m.disp as i64).unsigned_abs()));
                } else {
                    s.push_str(&format!("{:#x}", m.disp));
                }
            }
            if m.base.is_some() || m.index.is_some() {
                s.push('(');
                if let Some(b) = m.base {
                    s.push_str(&format!("%{b}"));
                }
                if let Some((i, sc)) = m.index {
                    s.push_str(&format!(",%{i},{sc}"));
                }
                s.push(')');
            }
            s
        }
    }
}

fn size_suffix(size: OpSize) -> &'static str {
    match size {
        OpSize::Byte => "b",
        OpSize::Word => "w",
        OpSize::Dword => "l",
    }
}

/// Mnemonic for an operation.
fn mnemonic(i: &Inst) -> String {
    match i.op {
        Op::Add => "add".into(),
        Op::Or => "or".into(),
        Op::Adc => "adc".into(),
        Op::Sbb => "sbb".into(),
        Op::And => "and".into(),
        Op::Sub => "sub".into(),
        Op::Xor => "xor".into(),
        Op::Cmp => "cmp".into(),
        Op::Test => "test".into(),
        Op::Mov => "mov".into(),
        Op::Movzx => "movz".into(),
        Op::Movsx => "movs".into(),
        Op::Lea => "lea".into(),
        Op::Xchg => "xchg".into(),
        Op::Push => "push".into(),
        Op::Pop => "pop".into(),
        Op::Inc => "inc".into(),
        Op::Dec => "dec".into(),
        Op::Neg => "neg".into(),
        Op::Not => "not".into(),
        Op::Mul => "mul".into(),
        Op::Imul1 | Op::Imul2 | Op::Imul3 => "imul".into(),
        Op::Div => "div".into(),
        Op::Idiv => "idiv".into(),
        Op::Shl => "shl".into(),
        Op::Shr => "shr".into(),
        Op::Sar => "sar".into(),
        Op::Rol => "rol".into(),
        Op::Ror => "ror".into(),
        Op::Rcl => "rcl".into(),
        Op::Rcr => "rcr".into(),
        Op::Shld => "shld".into(),
        Op::Shrd => "shrd".into(),
        Op::Bt => "bt".into(),
        Op::Bts => "bts".into(),
        Op::Btr => "btr".into(),
        Op::Btc => "btc".into(),
        Op::Xadd => "xadd".into(),
        Op::Bswap => "bswap".into(),
        Op::Cmpxchg => "cmpxchg".into(),
        Op::Arpl => "arpl".into(),
        Op::Jcc(c) => format!("j{}", c.suffix()),
        Op::Setcc(c) => format!("set{}", c.suffix()),
        Op::Jmp | Op::JmpInd => "jmp".into(),
        Op::Call | Op::CallInd => "call".into(),
        Op::Ret(_) => "ret".into(),
        Op::Leave => "leave".into(),
        Op::Enter(_, _) => "enter".into(),
        Op::Nop => "nop".into(),
        Op::Int(n) => format!("int ${n:#x}"),
        Op::Int3 => "int3".into(),
        Op::Into => "into".into(),
        Op::Pushf => "pushf".into(),
        Op::Popf => "popf".into(),
        Op::Sahf => "sahf".into(),
        Op::Lahf => "lahf".into(),
        Op::Cwde => {
            if i.size == OpSize::Word {
                "cbw".into()
            } else {
                "cwde".into()
            }
        }
        Op::Cdq => {
            if i.size == OpSize::Word {
                "cwd".into()
            } else {
                "cdq".into()
            }
        }
        Op::Pusha => "pusha".into(),
        Op::Popa => "popa".into(),
        Op::Clc => "clc".into(),
        Op::Stc => "stc".into(),
        Op::Cmc => "cmc".into(),
        Op::Cld => "cld".into(),
        Op::Std => "std".into(),
        Op::Loop => "loop".into(),
        Op::Loope => "loope".into(),
        Op::Loopne => "loopne".into(),
        Op::Jecxz => "jecxz".into(),
        Op::Str(s) => {
            let rep = match i.rep {
                Some(RepKind::RepE) => "rep ",
                Some(RepKind::RepNe) => "repne ",
                None => "",
            };
            let base = match s {
                StrOp::Movs => "movs",
                StrOp::Stos => "stos",
                StrOp::Lods => "lods",
                StrOp::Scas => "scas",
                StrOp::Cmps => "cmps",
            };
            format!("{rep}{base}{}", size_suffix(i.size))
        }
        Op::Xlat => "xlat".into(),
        Op::Bound => "bound".into(),
        Op::Aaa => "aaa".into(),
        Op::Aas => "aas".into(),
        Op::Daa => "daa".into(),
        Op::Das => "das".into(),
        Op::Aam(_) => "aam".into(),
        Op::Aad(_) => "aad".into(),
        Op::Salc => "salc".into(),
        Op::Fpu => "(x87)".into(),
        Op::Cpuid => "cpuid".into(),
        Op::Rdtsc => "rdtsc".into(),
        Op::Fwait => "fwait".into(),
        Op::Invalid(k) => match k {
            InvalidKind::Undefined => "(bad)".into(),
            InvalidKind::Privileged => "(priv)".into(),
            InvalidKind::Truncated => "(trunc)".into(),
            InvalidKind::TooLong => "(toolong)".into(),
        },
    }
}

/// Format one instruction at `addr` AT&T-style (operands reversed
/// relative to the internal dst/src order, as AT&T does).
pub fn fmt_att(i: &Inst, addr: u32) -> String {
    let next = addr.wrapping_add(i.len as u32);
    let m = mnemonic(i);
    let mut ops: Vec<String> = Vec::new();
    // AT&T operand order: src, dst (i.e., reversed).
    if let Some(s2) = &i.src2 {
        ops.push(fmt_operand(s2, next));
    }
    if let Some(s) = &i.src {
        ops.push(fmt_operand(s, next));
    }
    if let Some(d) = &i.dst {
        ops.push(fmt_operand(d, next));
    }
    match i.op {
        Op::Ret(0) | Op::Int(_) | Op::Int3 | Op::Str(_) => m,
        Op::Ret(n) => format!("ret ${n:#x}"),
        Op::Enter(f, l) => format!("enter ${f:#x}, ${l:#x}"),
        Op::Aam(n) | Op::Aad(n) => format!("{m} ${n:#x}"),
        _ if ops.is_empty() => m,
        _ => format!("{m} {}", ops.join(",")),
    }
}

/// Disassemble a byte range linearly starting at `base`.
pub fn disassemble(bytes: &[u8], base: u32) -> Vec<DisasmLine> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let i = crate::decode(&bytes[pos..bytes.len().min(pos + 15)]);
        let addr = base + pos as u32;
        out.push(DisasmLine {
            addr,
            bytes: bytes[pos..(pos + i.len as usize).min(bytes.len())].to_vec(),
            text: fmt_att(&i, addr),
        });
        pos += i.len as usize;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;

    fn att(bytes: &[u8], addr: u32) -> String {
        fmt_att(&decode(bytes), addr)
    }

    #[test]
    fn renders_paper_figure1_sequence() {
        // The disassembly in the paper's Figure 1.
        assert_eq!(att(&[0x50], 0x216), "push %eax");
        assert_eq!(att(&[0x51], 0x216), "push %ecx");
        assert_eq!(att(&[0x85, 0xC0], 0x226), "test %eax,%eax");
        assert_eq!(att(&[0x75, 0x02], 0x228), "jne 0x22c");
        assert_eq!(att(&[0x31, 0xDB], 0x230), "xor %ebx,%ebx");
        assert_eq!(att(&[0x74, 0x10], 0x234), "je 0x246");
        assert_eq!(
            att(&[0x68, 0x07, 0x29, 0x06, 0x08], 0x240),
            "push $0x8062907"
        );
    }

    #[test]
    fn renders_memory_operands() {
        assert_eq!(att(&[0x8B, 0x45, 0xFC], 0), "mov -0x4(%ebp),%eax");
        assert_eq!(
            att(&[0x8B, 0x44, 0x88, 0x04], 0),
            "mov 0x4(%eax,%ecx,4),%eax"
        );
        assert_eq!(att(&[0xA1, 0x00, 0x20, 0x00, 0x00], 0), "mov 0x2000,%eax");
        assert_eq!(att(&[0x89, 0x03], 0), "mov %eax,(%ebx)");
    }

    #[test]
    fn renders_calls_and_rets() {
        assert_eq!(att(&[0xE8, 0x0B, 0x00, 0x00, 0x00], 0x100), "call 0x110");
        assert_eq!(att(&[0xC3], 0), "ret");
        assert_eq!(att(&[0xC2, 0x08, 0x00], 0), "ret $0x8");
        assert_eq!(att(&[0xCD, 0x80], 0), "int $0x80");
    }

    #[test]
    fn renders_string_and_invalid() {
        assert_eq!(att(&[0xF3, 0xA4], 0), "rep movsb");
        assert_eq!(att(&[0x0F, 0x0B], 0), "(bad)");
        assert_eq!(att(&[0xF4], 0), "(priv)");
        assert_eq!(att(&[0xD6], 0), "salc");
    }

    #[test]
    fn renders_negative_immediates() {
        assert_eq!(att(&[0x6A, 0xFF], 0), "push $-0x1");
        assert_eq!(att(&[0x83, 0xC4, 0xF8], 0), "add $-0x8,%esp");
    }

    #[test]
    fn listing_covers_bytes() {
        let bytes = vec![0x55, 0x89, 0xE5, 0xB8, 1, 0, 0, 0, 0xC9, 0xC3];
        let lines = disassemble(&bytes, 0x1000);
        assert_eq!(lines.len(), 5);
        let total: usize = lines.iter().map(|l| l.bytes.len()).sum();
        assert_eq!(total, bytes.len());
        assert_eq!(lines[0].text, "push %ebp");
        assert_eq!(lines[1].text, "mov %esp,%ebp");
        let rendered = format!("{}", lines[0]);
        assert!(rendered.contains("1000:"));
        assert!(rendered.contains("55"));
    }

    #[test]
    fn renders_imul3_and_setcc() {
        assert_eq!(att(&[0x6B, 0xC1, 0x0A], 0), "imul $0xa,%ecx,%eax");
        assert_eq!(att(&[0x0F, 0x94, 0xC0], 0), "sete %al");
        assert_eq!(att(&[0x0F, 0xB6, 0xC0], 0), "movz %al,%eax");
    }
}
