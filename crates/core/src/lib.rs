//! # fisec-core — the experiment layer of the DSN'01 reproduction
//!
//! This crate reproduces the paper's evaluation on top of the fisec
//! substrates:
//!
//! | Artefact | API | Renderer |
//! |---|---|---|
//! | Table 1 (result distributions) | [`run_campaign`] | [`tables::render_table1`] |
//! | Table 2 (location taxonomy) | [`fisec_inject::ErrorLocation`] | [`tables::render_table2`] |
//! | Table 3 (BRK+FSV by location) | [`run_campaign`] | [`tables::render_table3`] |
//! | Table 4 (new encoding map) | `fisec_encoding::table4` | `fisec_encoding::render_table4` |
//! | Table 5 (new-encoding campaign) | [`run_campaign`] with [`EncodingScheme::NewEncoding`] | [`tables::render_table5`] |
//! | Figure 4 (crash latency histogram) | [`figure4::histogram`] | [`figure4::render`] |
//! | §7 random-injection rate | [`random::run_random_campaign`] | — |
//! | §5.4 load/diversity study | [`load::run_load_study`] | [`load::render`] |
//! | §5.3 entry-points ablation | [`ablation::entry_points_study`] | [`ablation::render_entry_points`] |
//! | §4 sampling ablation | [`ablation::sampling_study`] | [`ablation::render_sampling`] |
//! | data-segment extension (§7 future work) | [`data_errors::run_data_campaign`] | [`data_errors::render`] |
//!
//! The heavy campaigns (every bit of every control-transfer instruction
//! in the authentication functions × every client pattern × two encoding
//! schemes) are deterministic; the random studies take explicit seeds.
//!
//! ```no_run
//! use fisec_core::{run_campaign, CampaignConfig, tables};
//! let ftpd = fisec_apps::AppSpec::ftpd();
//! let result = run_campaign(&ftpd, &CampaignConfig::default());
//! println!("{}", tables::render_table1(&[&result]));
//! ```

pub mod ablation;
pub mod benchdiff;
pub mod cache;
pub mod campaign;
pub mod counts;
pub mod data_errors;
pub mod explain;
pub mod figure4;
pub mod hotblocks;
pub mod load;
pub mod propagate;
pub mod random;
pub mod report;
pub mod stats;
pub mod tables;
pub mod trace;

pub use cache::CampaignCache;
pub use campaign::{
    run_campaign, run_campaign_cached, run_campaign_traced, CampaignConfig, CampaignResult,
    ClientCampaign, ExecutionMode, PropagationStats, RunRecord,
};
pub use counts::{LocationCounts, OutcomeCounts};
pub use fisec_encoding::EncodingScheme;

use serde::{Deserialize, Serialize};

/// Compact, serializable summary of one campaign (used for
/// EXPERIMENTS.md snapshots and regression comparison).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSummary {
    /// Application name.
    pub app: String,
    /// Scheme label.
    pub scheme: String,
    /// Targeted instructions.
    pub instructions: usize,
    /// Conditional branches targeted.
    pub cond_branches: usize,
    /// Runs per client.
    pub runs_per_client: usize,
    /// Per-client outcome tallies, in client order.
    pub clients: Vec<ClientSummary>,
}

/// Per-client tallies of a summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientSummary {
    /// Client name.
    pub client: String,
    /// Outcome tallies.
    pub counts: OutcomeCounts,
    /// BRK∪FSV location tallies.
    pub locations: LocationCounts,
    /// Crash count with traffic deviation before the crash.
    pub transient_deviations: usize,
    /// Share of crashes within 100 instructions of activation.
    pub crash_within_100: f64,
}

impl From<&CampaignResult> for CampaignSummary {
    fn from(r: &CampaignResult) -> CampaignSummary {
        CampaignSummary {
            app: r.app.clone(),
            scheme: r.scheme.to_string(),
            instructions: r.instructions,
            cond_branches: r.cond_branches,
            runs_per_client: r.runs_per_client,
            clients: r
                .clients
                .iter()
                .map(|c| {
                    let h = figure4::histogram(&c.crash_latencies);
                    ClientSummary {
                        client: c.client.clone(),
                        counts: c.counts,
                        locations: c.brkfsv_by_location,
                        transient_deviations: c.transient_deviations,
                        // Rounded so the value survives JSON round-trips
                        // exactly (snapshot comparisons).
                        crash_within_100: (h.within_100 * 1e6).round() / 1e6,
                    }
                })
                .collect(),
        }
    }
}

impl CampaignSummary {
    /// Serialize as pretty JSON.
    ///
    /// # Panics
    /// Never panics in practice (the structure is always serializable).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("summary serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_serializes() {
        let s = CampaignSummary {
            app: "ftpd".into(),
            scheme: "baseline x86".into(),
            instructions: 10,
            cond_branches: 8,
            runs_per_client: 100,
            clients: vec![ClientSummary {
                client: "Client1".into(),
                counts: OutcomeCounts {
                    na: 50,
                    nm: 20,
                    sd: 25,
                    fsv: 4,
                    brk: 1,
                },
                locations: LocationCounts::default(),
                transient_deviations: 2,
                crash_within_100: 0.9,
            }],
        };
        let j = s.to_json();
        assert!(j.contains("\"brk\": 1"));
        let back: CampaignSummary = serde_json::from_str(&j).unwrap();
        assert_eq!(back, s);
    }
}
