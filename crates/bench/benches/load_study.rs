//! Regenerates the §5.4 load/diversity ablation — the probability that a
//! latent error manifests grows with the diversity of client request
//! patterns — and benchmarks a golden session.

use criterion::{criterion_group, criterion_main, Criterion};
use fisec_apps::AppSpec;
use fisec_core::load::{render, run_load_study};
use fisec_inject::golden_run;

fn bench(c: &mut Criterion) {
    let ftpd = AppSpec::ftpd();
    let samples = if fisec_bench::quick_mode() { 40 } else { 200 };

    let r = run_load_study(&ftpd, samples, 77);
    println!("\n== §5.4: latent-error manifestation vs. client diversity ==");
    println!("{}", render(&r));
    assert!(r.is_monotone(), "diversity can only increase manifestation");

    for (i, spec) in ftpd.clients.iter().enumerate() {
        let name = spec.name.clone();
        c.bench_function(&format!("golden_session/ftpd_client{}", i + 1), |b| {
            b.iter(|| golden_run(&ftpd.image, spec).unwrap())
        });
        let _ = name;
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
