//! # fisec-telemetry — observability for the injection engine
//!
//! The campaign engine drives hundreds of thousands of simulated
//! process runs; this crate is how you *see* it working, NFTAPE-style
//! (the paper's harness logged every injection run for post-hoc
//! analysis, §4). Three layers, all zero-cost when disabled:
//!
//! * an **event stream** ([`event`]): one structured record per
//!   injection run (target, outcome, worker, snapshot-vs-fresh-boot,
//!   NA-prefilter hit, instructions, microseconds), emitted through an
//!   [`EventSink`] — a no-op [`NullSink`], an in-memory collector
//!   ([`MemorySink`]) or a JSONL writer ([`JsonlSink`]) whose output
//!   `fisec stats` can replay back into the paper's tables;
//! * a **metrics registry** ([`metrics`]): named counters and log₂
//!   histograms (replay latency, group size, queue wait, icount per
//!   run) accumulated in per-worker [`MetricsShard`]s that merge into
//!   the shared [`MetricsRegistry`] only when a worker finishes, so the
//!   hot path never contends a lock;
//! * a **phase profiler** ([`profile`]): attributes campaign wall-clock
//!   to boot / snapshot / replay / classify / reassemble and renders a
//!   breakdown table, giving every perf PR a measured baseline.
//!
//! A [`Telemetry`] bundle carries all three plus a live [`Progress`]
//! meter (runs/s, ETA, per-outcome tally on stderr). The engine takes
//! `&Telemetry`; [`Telemetry::disabled`] makes every instrumentation
//! site a single branch.

pub mod chrome;
pub mod event;
pub mod hotspot;
pub mod metrics;
pub mod profile;
pub mod progress;

pub use chrome::{check_span_nesting, chrome_trace_json};
pub use event::{
    read_jsonl, read_jsonl_path, CacheEvent, CampaignEndEvent, CampaignEvent, EventSink, JsonlSink,
    MemorySink, NullSink, ProfileEvent, PropagationEvent, RandomBatchEvent, RandomCampaignEvent,
    RandomEndEvent, RunEvent, SpanEvent, TraceEvent,
};
pub use hotspot::{HotBlock, ProfileData, SlowShape};
pub use metrics::{metric, LogHistogram, MetricsRegistry, MetricsShard, OutcomeHists};
pub use profile::{render_phase_table, Phase, PhaseTimes};
pub use progress::Progress;

use std::sync::Arc;

/// Everything the campaign engine needs to report what it is doing:
/// an event sink, a metrics registry and a live progress meter.
pub struct Telemetry {
    enabled: bool,
    /// Destination for the structured per-run event stream.
    pub sink: Arc<dyn EventSink>,
    /// Counters, histograms and phase timings, merged across workers.
    pub metrics: MetricsRegistry,
    /// Live throughput/ETA meter (stderr).
    pub progress: Progress,
}

impl Telemetry {
    /// The default: every sink is a no-op and instrumentation sites
    /// reduce to one `enabled()` branch.
    pub fn disabled() -> Telemetry {
        Telemetry {
            enabled: false,
            sink: Arc::new(NullSink),
            metrics: MetricsRegistry::new(),
            progress: Progress::new(false),
        }
    }

    /// Full collection into `sink`, with the live progress meter on
    /// when `progress` is set.
    pub fn new(sink: Arc<dyn EventSink>, progress: bool) -> Telemetry {
        Telemetry {
            enabled: true,
            sink,
            metrics: MetricsRegistry::new(),
            progress: Progress::new(progress),
        }
    }

    /// Metrics and phase profile only: no event stream, no progress
    /// meter. Used by benches and the report generator to print a
    /// breakdown without paying for per-run events.
    pub fn collecting() -> Telemetry {
        Telemetry {
            enabled: true,
            sink: Arc::new(NullSink),
            metrics: MetricsRegistry::new(),
            progress: Progress::new(false),
        }
    }

    /// Should the engine collect metrics/timings at all?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Should the engine build per-run events? (Implies [`enabled`](Telemetry::enabled).)
    pub fn events_enabled(&self) -> bool {
        self.enabled && self.sink.enabled()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled)
            .field("events", &self.sink.enabled())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_bundle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        assert!(!t.events_enabled());
        assert!(!t.sink.enabled());
    }

    #[test]
    fn memory_bundle_collects() {
        let t = Telemetry::new(Arc::new(MemorySink::new()), false);
        assert!(t.enabled());
        assert!(t.events_enabled());
    }

    #[test]
    fn collecting_bundle_has_no_event_stream() {
        let t = Telemetry::collecting();
        assert!(t.enabled());
        assert!(!t.events_enabled());
    }
}
