//! # fisec-x86 — a deterministic user-mode IA-32 interpreter
//!
//! This crate is the hardware substrate for the fault-injection security
//! study. It models the 32-bit Intel architecture at the level the study
//! needs:
//!
//! * a **total decoder** over the full one-byte opcode map and the relevant
//!   `0x0F` two-byte opcodes (conditional branches, `setcc`, `movzx`/`movsx`,
//!   `imul`). "Total" means any byte sequence decodes to *something* — either
//!   a real instruction or an explicit [`Op::Invalid`] — because injected
//!   single-bit errors produce arbitrary bytes;
//! * an **encoder** for the subset emitted by the assembler/compiler, with
//!   the property `decode(encode(i)) == i`;
//! * a flat 32-bit **paged memory** model with per-region permissions, so
//!   wild stores and wild branches fault exactly as they would under Linux
//!   (`SIGSEGV`-like faults);
//! * an interpreter [`Machine`] with precise instruction counting (needed for
//!   the paper's Figure 4 crash-latency histogram) and breakpoint support
//!   (needed by the NFTAPE-style injector).
//!
//! The machine is fully deterministic: no host time, no host randomness.
//!
//! ## Example
//!
//! ```
//! use fisec_x86::{Machine, Memory, Region, Perms, StepEvent};
//!
//! // mov eax, 7; inc eax
//! let text = vec![0xB8, 7, 0, 0, 0, 0x40];
//! let mut mem = Memory::new();
//! mem.map(Region::with_data("text", 0x1000, text, Perms::RX)).unwrap();
//! let mut m = Machine::new(mem);
//! m.cpu.eip = 0x1000;
//! assert_eq!(m.step(), StepEvent::Executed);
//! assert_eq!(m.step(), StepEvent::Executed);
//! assert_eq!(m.cpu.regs[fisec_x86::Reg32::Eax as usize], 8);
//! ```

pub mod block;
pub mod cpu;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod flags;
pub mod inst;
pub mod mem;
pub mod profiler;
pub mod recorder;
pub mod taint;
pub mod trace;

pub use block::{Block, BlockStats};
pub use cpu::{Cpu, Footprint, Machine, MachineSnapshot, RunOutcome, StepEvent};
pub use decode::decode;
pub use disasm::{disassemble, fmt_att, DisasmLine};
pub use encode::encode;
pub use inst::{
    Cond, Fault, Inst, InvalidKind, MemOperand, Op, OpSize, Operand, Reg16, Reg32, Reg8, RepKind,
    StrOp,
};
pub use mem::{Memory, Perms, Region};
pub use profiler::{op_shape, BlockTally, ExecProfile, SlowSite};
pub use recorder::{Edge, EdgeKind, FlightTrace};
pub use taint::{PropEvent, PropKind, PropagationLog, TaintTracer, DEFAULT_TAINT_HORIZON};
pub use trace::{SuperTrace, TraceStats};

/// EFLAGS bit positions used by the interpreter.
pub mod eflags {
    /// Carry flag.
    pub const CF: u32 = 1 << 0;
    /// Parity flag.
    pub const PF: u32 = 1 << 2;
    /// Auxiliary carry flag.
    pub const AF: u32 = 1 << 4;
    /// Zero flag.
    pub const ZF: u32 = 1 << 6;
    /// Sign flag.
    pub const SF: u32 = 1 << 7;
    /// Direction flag.
    pub const DF: u32 = 1 << 10;
    /// Overflow flag.
    pub const OF: u32 = 1 << 11;
    /// The always-set reserved bit 1.
    pub const RESERVED1: u32 = 1 << 1;
    /// Mask of the arithmetic status flags.
    pub const STATUS_MASK: u32 = CF | PF | AF | ZF | SF | OF;
}
