//! Validation the paper could not perform (§6.2): build the hypothetical
//! re-encoded processor *for real* and verify that the paper's
//! old→new→flip→new→old evaluation trick produces outcome-identical
//! experiments.
//!
//! Direct path: re-encode the server image into the new ISA
//! ([`fisec_encoding::reencode_image_text`]), run it on a machine whose
//! decoder understands the new ISA ([`fisec_encoding::decode_new_isa`]),
//! and flip the target bit directly in the re-encoded text.
//!
//! Trick path: `run_injection(..., EncodingScheme::NewEncoding)` on the
//! unmodified image and stock decoder.

use fisec_apps::{AppSpec, ClientSpec};
use fisec_asm::Image;
use fisec_core::EncodingScheme;
use fisec_encoding::{decode_new_isa, reencode_image_text};
use fisec_inject::{
    classify_run, enumerate_targets, golden_run, run_injection, GoldenRun, InjectionTarget,
    OutcomeClass,
};
use fisec_os::{Process, Stop};

/// Run one injection *directly on the new-ISA processor*.
fn run_direct_new_isa(
    new_image: &Image,
    client: &ClientSpec,
    golden: &GoldenRun,
    target: &InjectionTarget,
) -> OutcomeClass {
    let mut p = Process::load(new_image, client.make()).expect("loads");
    p.machine.set_decoder(decode_new_isa);
    p.set_budget((golden.icount * 8).max(400_000));
    p.machine.add_breakpoint(target.addr);
    let first = p.run();
    let Stop::Breakpoint(_) = first else {
        return OutcomeClass::NotActivated;
    };
    let byte_addr = target.addr.wrapping_add(u32::from(target.byte_index));
    let orig = p.machine.mem.peek8(byte_addr).expect("mapped");
    // Direct flip in new-ISA text: this IS the fault model on the
    // hypothetical processor.
    p.machine
        .mem
        .poke8(byte_addr, orig ^ (1 << target.bit))
        .expect("mapped");
    p.machine.remove_breakpoint(target.addr);
    let activation = p.icount();
    let stop = p.run();
    let latency = match stop {
        Stop::Crashed(_) => Some(p.icount() - activation),
        _ => None,
    };
    classify_run(golden, stop, p.client_status(), p.trace(), latency).outcome
}

#[test]
fn golden_runs_identical_on_reencoded_cpu() {
    for app in [AppSpec::ftpd(), AppSpec::sshd()] {
        let new_image = reencode_image_text(&app.image);
        assert_ne!(
            app.image.text, new_image.text,
            "{}: text must change",
            app.name
        );
        for spec in &app.clients {
            let old_golden = golden_run(&app.image, spec).unwrap();
            let mut p = Process::load(&new_image, spec.make()).unwrap();
            p.machine.set_decoder(decode_new_isa);
            p.set_budget(50_000_000);
            let stop = p.run();
            assert_eq!(stop, old_golden.stop, "{} {}", app.name, spec.name);
            assert_eq!(p.client_status(), old_golden.client);
            assert!(
                p.trace().matches(&old_golden.trace),
                "{} {}: traffic must be identical on the re-encoded CPU",
                app.name,
                spec.name
            );
            assert_eq!(
                p.icount(),
                old_golden.icount,
                "instruction counts must match exactly"
            );
        }
    }
}

#[test]
fn trick_and_direct_injection_agree() {
    let app = AppSpec::ftpd();
    let new_image = reencode_image_text(&app.image);
    let client = &app.clients[0];
    let golden = golden_run(&app.image, client).unwrap();
    let set = enumerate_targets(&app.image, &["pass"], false);
    // Sample broadly: every opcode bit plus a spread of operand bits.
    let sample: Vec<_> = set
        .targets
        .iter()
        .filter(|t| t.byte_index == 0 || (t.bit % 3 == 0))
        .collect();
    assert!(sample.len() > 150, "sample too small: {}", sample.len());
    let mut checked = 0;
    for t in sample {
        let trick = run_injection(&app.image, client, &golden, t, EncodingScheme::NewEncoding)
            .unwrap()
            .outcome;
        let direct = run_direct_new_isa(&new_image, client, &golden, t);
        assert_eq!(
            trick, direct,
            "divergence at {:#x} byte {} bit {}",
            t.addr, t.byte_index, t.bit
        );
        checked += 1;
    }
    assert!(checked > 150);
}

#[test]
fn trick_and_direct_agree_for_sshd_cond_branches() {
    let app = AppSpec::sshd();
    let new_image = reencode_image_text(&app.image);
    let client = &app.clients[0];
    let golden = golden_run(&app.image, client).unwrap();
    let set = enumerate_targets(&app.image, &["auth_password"], true);
    for t in &set.targets {
        let trick = run_injection(&app.image, client, &golden, t, EncodingScheme::NewEncoding)
            .unwrap()
            .outcome;
        let direct = run_direct_new_isa(&new_image, client, &golden, t);
        assert_eq!(
            trick, direct,
            "divergence at {:#x} byte {} bit {}",
            t.addr, t.byte_index, t.bit
        );
    }
}
