//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::rc::Rc;
use std::sync::Arc;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// deterministic function of the test RNG.
pub trait Strategy: Clone {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            inner: self,
            f: Arc::new(f),
        }
    }

    /// Keep only values satisfying `pred`, regenerating otherwise.
    /// Panics (rather than rejecting globally, as upstream does) when
    /// the predicate rejects 1000 draws in a row.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred: Arc::new(pred),
        }
    }

    /// Recursively grown values: `self` generates the leaves, and
    /// `recurse` builds one more level on top of a strategy for the
    /// level below. `depth` bounds the nesting; the size/branch hints
    /// of the upstream API are accepted and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut level = self.boxed();
        for _ in 0..depth {
            // Mix the shallower level back in so generated values span
            // all depths, not just the maximum.
            level = Union::new(vec![(1, level.clone()), (2, recurse(level).boxed())]).boxed();
        }
        level
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F: ?Sized> {
    inner: S,
    f: Arc<F>,
}

impl<S: Clone, F: ?Sized> Clone for Map<S, F> {
    fn clone(&self) -> Map<S, F> {
        Map {
            inner: self.inner.clone(),
            f: Arc::clone(&self.f),
        }
    }
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S: Strategy> {
    inner: S,
    reason: String,
    #[allow(clippy::type_complexity)]
    pred: Arc<dyn Fn(&S::Value) -> bool>,
}

impl<S: Strategy> Clone for Filter<S> {
    fn clone(&self) -> Filter<S> {
        Filter {
            inner: self.inner.clone(),
            reason: self.reason.clone(),
            pred: Arc::clone(&self.pred),
        }
    }
}

impl<S: Strategy> Strategy for Filter<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive draws",
            self.reason
        );
    }
}

/// Weighted union of strategies over one value type (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Union<T> {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "empty union");
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "union weights sum to zero");
        Union { arms, total }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.u64_below(self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick within total")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (self.start as i128 + r as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let r = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
