//! Golden opcode-map test: pins the decoding *class* of every one-byte
//! opcode so decoder changes are always deliberate. The classes matter
//! to the study: an injected byte's class determines whether the run
//! crashes with SIGILL (undefined), SIGSEGV (privileged), or keeps
//! executing (valid instruction).

use fisec_x86::{decode, InvalidKind, Op};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    /// Decodes to an executable instruction.
    Valid,
    /// Decodes but faults as privileged/unsupported (#GP-class).
    Priv,
    /// Undefined opcode (#UD-class).
    Undef,
}

fn classify(first: u8) -> Class {
    // Follow each opcode with enough plausible bytes for any operand
    // form (ModRM with SIB+disp32 and imm32).
    let tail = [
        0x84u8, 0x24, 0x10, 0x00, 0x00, 0x00, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
    ];
    let mut bytes = vec![first];
    bytes.extend_from_slice(&tail);
    let i = decode(&bytes);
    match i.op {
        Op::Invalid(InvalidKind::Privileged) => Class::Priv,
        Op::Invalid(InvalidKind::Undefined) => Class::Undef,
        Op::Invalid(k) => panic!("unexpected invalid kind {k:?} for {first:#04x}"),
        _ => Class::Valid,
    }
}

#[test]
fn one_byte_opcode_classes_are_pinned() {
    use Class::{Priv, Undef, Valid};
    // Expected class for every one-byte opcode 0x00..=0xFF.
    // Prefix bytes classify through whatever follows; with our tail they
    // end up Valid (the tail decodes as test/and forms).
    let mut expect = [Valid; 256];
    let privileged = [
        0x07u8, 0x17, 0x1F, // pop seg
        0x6C, 0x6D, 0x6E, 0x6F, // ins/outs
        0x8E, // mov sreg, r/m
        0x9A, // call far
        0xC4, 0xC5, // les/lds
        0xCA, 0xCB, 0xCF, // retf/iret
        0xE4, 0xE5, 0xE6, 0xE7, 0xEC, 0xED, 0xEE, 0xEF, // in/out
        0xEA, // jmp far
        0xF4, // hlt
        0xFA, 0xFB, // cli/sti
    ];
    for b in privileged {
        expect[b as usize] = Priv;
    }
    // 0x62 bound with mod=11 (our tail's ModRM 0x84 is mod=10, memory —
    // so bound is Valid here). 0x8D lea with memory ModRM: Valid.
    // 0xD6 salc is valid (undocumented but executes).
    // F-group: 0xF0 lock with our tail (test [..], ..) — `test` is not
    // lockable, so lock+tail is Undefined.
    expect[0xF0] = Undef;
    // 0x67 address-size prefix followed by our memory-ModRM tail decodes
    // as privileged-class (16-bit addressing is not modelled).
    expect[0x67] = Priv;
    // 0x0F leads into the two-byte map; with tail byte 0x84 it is je
    // rel32 => Valid.

    let mut failures = Vec::new();
    for b in 0u16..=255 {
        let got = classify(b as u8);
        let want = expect[b as usize];
        if got != want {
            failures.push(format!("{b:#04x}: got {got:?}, want {want:?}"));
        }
    }
    assert!(
        failures.is_empty(),
        "opcode map drifted:\n{}",
        failures.join("\n")
    );
}

#[test]
fn two_byte_opcode_known_points() {
    // Spot-pin the 0x0F second-byte map regions.
    let mk = |b2: u8| {
        let bytes = [0x0F, b2, 0xC0, 0x11, 0x22, 0x33, 0x44, 0x55];
        decode(&bytes).op
    };
    // Branches.
    for b2 in 0x80..=0x8F {
        assert!(matches!(mk(b2), Op::Jcc(_)), "{b2:#04x}");
    }
    // setcc.
    for b2 in 0x90..=0x9F {
        assert!(matches!(mk(b2), Op::Setcc(_)), "{b2:#04x}");
    }
    // Hint-nop space.
    for b2 in 0x18..=0x1F {
        assert_eq!(mk(b2), Op::Nop, "{b2:#04x}");
    }
    assert_eq!(mk(0xA2), Op::Cpuid);
    assert_eq!(mk(0xAF), Op::Imul2);
    assert_eq!(mk(0xB6), Op::Movzx);
    assert_eq!(mk(0xBE), Op::Movsx);
    assert_eq!(mk(0x31), Op::Rdtsc);
    assert_eq!(mk(0xC8), Op::Bswap);
    assert_eq!(mk(0x0B), Op::Invalid(InvalidKind::Undefined)); // ud2
    assert_eq!(mk(0x01), Op::Invalid(InvalidKind::Privileged)); // lgdt etc.
    assert_eq!(mk(0x30), Op::Invalid(InvalidKind::Privileged)); // wrmsr
}

#[test]
fn every_single_byte_flip_of_je_decodes_to_expected_family() {
    // The exact transition set the paper's §6 analyses for je (0x74).
    let expect: [(u8, &str); 8] = [
        (0x75, "jcc"),  // bit 0 -> jne
        (0x76, "jcc"),  // bit 1 -> jbe
        (0x70, "jcc"),  // bit 2 -> jo
        (0x7C, "jcc"),  // bit 3 -> jl
        (0x64, "pfx"),  // bit 4 -> fs prefix
        (0x54, "push"), // bit 5 -> push esp
        (0x34, "alu"),  // bit 6 -> xor al, imm8
        (0xF4, "priv"), // bit 7 -> hlt
    ];
    for (i, (byte, family)) in expect.iter().enumerate() {
        assert_eq!(0x74u8 ^ (1 << i), *byte);
        let decoded = decode(&[*byte, 0x06, 0x90, 0x90]);
        let ok = match *family {
            "jcc" => matches!(decoded.op, Op::Jcc(_)),
            "pfx" => decoded.len >= 2, // prefix consumed + following inst
            "push" => decoded.op == Op::Push,
            "alu" => decoded.op == Op::Xor,
            "priv" => decoded.op == Op::Invalid(InvalidKind::Privileged),
            _ => unreachable!(),
        };
        assert!(ok, "bit {i}: {byte:#04x} decoded as {:?}", decoded.op);
    }
}
