//! Ablation studies backing the paper's §5.3 claim (multiple entry
//! points raise break-in probability) and its §4 methodology choice
//! (exhaustive over random injection).

use criterion::{criterion_group, criterion_main, Criterion};
use fisec_apps::AppSpec;
use fisec_core::ablation::{
    entry_points_study, render_entry_points, render_sampling, sampling_study,
};
use fisec_core::{run_campaign, CampaignConfig};

fn bench(c: &mut Criterion) {
    let cfg = CampaignConfig::default();

    println!("\n== §5.3 ablation: single vs multiple points of entry (sshd, Client1) ==");
    let ep = entry_points_study(&cfg);
    println!("{}", render_entry_points(&ep));
    assert!(
        ep.multi_brk() >= ep.single_brk(),
        "multi-entry must not be safer"
    );

    println!("== §4 ablation: what random sampling would have estimated (ftpd, Client1) ==");
    let mut ftpd = AppSpec::ftpd();
    ftpd.clients.truncate(1);
    let result = run_campaign(&ftpd, &cfg);
    let (truth, rows) = sampling_study(&result, 0, &[50, 200, 500, result.runs_per_client], 500, 4);
    println!("{}", render_sampling(truth, &rows));

    c.bench_function("ablation/sampling_resample", |b| {
        b.iter(|| sampling_study(std::hint::black_box(&result), 0, &[200], 50, 9))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
